"""Serving-scheduler benchmark: FIFO vs skew-aware packing vs 2-device
sharding on a Zipf stream-length workload (see
:mod:`repro.bench.serve_perf`).

Asserts the CI floors — skew-aware packing >= 1.5x over FIFO, 2-device
sharding >= 1.8x over 1 device — and records the ``serve`` section of
``BENCH_PERF.json`` in place (the rest of the file is refreshed by
``bench_perf_regression.py``).

Run under pytest-benchmark with the rest of the suite, or standalone:

    PYTHONPATH=src python benchmarks/bench_serve_scheduler.py [--quick]
"""

import json
import sys
from pathlib import Path

from repro.bench import format_serve_comparison, run_serve_comparison
from repro.bench.report import render_perf_json
from repro.bench.serve_perf import PACKING_FLOOR, SHARDING_FLOOR

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_PERF.json"


def record_serve_section(serve, path=OUTPUT):
    """Merge the serve results into BENCH_PERF.json without touching
    the other harness sections."""
    results = json.loads(path.read_text()) if path.exists() else {}
    results["serve"] = serve
    path.write_text(render_perf_json(results))
    return path


def check_floors(serve):
    assert serve["packing_speedup"] >= PACKING_FLOOR, (
        f"skew-aware packing speedup "
        f"{serve['packing_speedup']:.2f}x regressed below the "
        f"{PACKING_FLOOR}x floor over FIFO"
    )
    assert serve["sharding_speedup"] >= SHARDING_FLOOR, (
        f"2-device sharding speedup "
        f"{serve['sharding_speedup']:.2f}x regressed below the "
        f"{SHARDING_FLOOR}x floor over 1 device"
    )
    cost_model = serve["cost_model"]
    assert cost_model["pass"], (
        f"certified-bound packing makespan "
        f"{cost_model['certified_makespan']} drifted "
        f"{cost_model['gap'] * 100:.1f}% from the calibrated "
        f"{cost_model['calibrated_makespan']} (tolerance "
        f"{cost_model['tolerance'] * 100:.0f}%)"
    )
    assert serve["pass"]


def test_serve_scheduler(once):
    serve = once(run_serve_comparison)
    print("\n" + format_serve_comparison(serve))
    record_serve_section(serve)
    check_floors(serve)


def main(argv):
    unknown = [arg for arg in argv if arg != "--quick"]
    if unknown:
        print(f"unknown argument(s): {' '.join(unknown)}\n"
              f"usage: bench_serve_scheduler.py [--quick]")
        return 2
    quick = "--quick" in argv
    serve = run_serve_comparison(quick=quick)
    print(format_serve_comparison(serve))
    if not quick:
        path = record_serve_section(serve)
        print(f"\nwrote serve section to {path}")
    if not serve["pass"]:
        print("ERROR: serving speedup floors not met")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
