"""Figure 8: lines of code, Fleet vs the CPU/GPU baseline.

The paper's point: Fleet programs are comparable in size to CUDA, with
integer coding larger in Fleet (managing 8-bit output chunks) and regex
smaller (the circuit is generated from the pattern).
"""

from repro.bench import PAPER_FIGURE8, figure8_rows, format_figure8


def test_figure8_lines_of_code(once):
    rows = once(figure8_rows)
    print("\n" + format_figure8(rows))
    by_title = {title: (fleet, isa) for title, fleet, isa in rows}
    # Same order of magnitude as the baselines, per app (within ~3x).
    for title, (fleet_loc, isa_loc) in by_title.items():
        assert fleet_loc < 3 * isa_loc + 60, title
        assert isa_loc < 3 * fleet_loc + 60, title
    # JSON and integer coding are the largest Fleet programs (paper:
    # 201 and 315 lines), regex among the smallest (35).
    assert by_title["Regex"][0] == min(v[0] for v in by_title.values())
    big_two = sorted(
        by_title, key=lambda t: by_title[t][0], reverse=True
    )[:2]
    assert set(big_two) <= {"JSON Parsing", "Integer Coding",
                            "Decision Tree"}
    assert sorted(PAPER_FIGURE8) == sorted(by_title)
