"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints it (measured next to the paper's value). The timed quantity is the
full experiment, run once (``pedantic`` with one round) — these are
simulations whose *results* matter, not microbenchmarks.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return run
