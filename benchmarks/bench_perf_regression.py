"""Perf-regression benchmark: slow vs fast simulation engines.

Times the interpreter against the compiled-to-Python unit engine (JSON
parsing, integer coding) and stepped against event-driven memory
simulation (the Figure 9 sink-PU ablation points) in one run, checks
exactness, and writes ``BENCH_PERF.json`` at the repo root.

Run under pytest-benchmark with the rest of the suite, or standalone:

    PYTHONPATH=src python benchmarks/bench_perf_regression.py [--quick]
"""

import sys
from pathlib import Path

from repro.bench import format_perf, render_perf_json, run_perf_regression

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_PERF.json"


def write_report(results, path=OUTPUT):
    path.write_text(render_perf_json(results))
    return path


def test_perf_regression(once):
    results = once(run_perf_regression)
    print("\n" + format_perf(results))
    write_report(results)
    assert results["aggregate"]["all_match"], (
        "fast engines diverged from the oracles"
    )
    assert results["aggregate"]["speedup"] >= 5.0, (
        f"aggregate speedup {results['aggregate']['speedup']:.1f}x "
        f"regressed below the 5x floor"
    )
    assert results["obs_overhead"]["disabled_faster"], (
        "observability-disabled simulation is not faster than the "
        "instrumented one — instrumentation cost leaked into the "
        "disabled path"
    )
    telemetry = results["telemetry_overhead"]
    assert telemetry["reports_identical"], (
        "serve reports diverged with telemetry enabled — metrics leaked "
        "into the deterministic report"
    )
    assert telemetry["pass"], (
        f"telemetry overhead {telemetry['overhead_ratio']:.2f}x exceeds "
        f"the {telemetry['ceiling']:.2f}x ceiling (or recorded nothing)"
    )
    dse = results["dse"]
    assert dse["all_within_area"], (
        "a DSE winner spent more modeled area than its hand-picked "
        "baseline — the search may not grow the area budget"
    )
    assert dse["aggregate"]["speedup"] >= dse["aggregate"]["floor"], (
        f"DSE tuned-over-baseline aggregate "
        f"{dse['aggregate']['speedup']:.3f}x is below the "
        f"{dse['aggregate']['floor']}x floor"
    )
    lint = results["lint_certified"]
    assert lint["all_certified"], (
        "a catalog unit lost its clean restriction certificate (or its "
        "specialized lowering)"
    )
    assert lint["all_match"], (
        "certified-specialized codegen diverged from the guarded "
        "compiled engine"
    )
    assert lint["aggregate"]["speedup"] >= lint["aggregate"]["floor"], (
        f"certified-specialization speedup "
        f"{lint['aggregate']['speedup']:.2f}x is below the "
        f"{lint['aggregate']['floor']}x floor"
    )
    native = results["native_engine"]
    if "cases" in native:  # skipped (no toolchain) otherwise
        assert native["aggregate"]["all_match"], (
            "native C engine diverged from the guarded compiled engine"
        )
        assert (native["aggregate"]["speedup"]
                >= native["aggregate"]["floor"]), (
            f"native-engine speedup "
            f"{native['aggregate']['speedup']:.1f}x is below the "
            f"{native['aggregate']['floor']}x floor"
        )
    batch = results["batch_engine"]
    if "cases" in batch:  # skipped (numpy unavailable) otherwise
        assert batch["aggregate"]["all_match"], (
            "SIMD batch engine diverged from sequential compiled runs"
        )
        assert batch["aggregate"]["speedup"] >= 10.0, (
            f"batch-engine aggregate speedup "
            f"{batch['aggregate']['speedup']:.1f}x is below the 10x "
            f"floor at the {batch['lanes']}-lane fleet size"
        )


def main(argv):
    unknown = [arg for arg in argv if arg != "--quick"]
    if unknown:
        print(f"unknown argument(s): {' '.join(unknown)}\n"
              f"usage: bench_perf_regression.py [--quick]")
        return 2
    quick = "--quick" in argv
    results = run_perf_regression(quick=quick)
    print(format_perf(results))
    path = write_report(results)
    print(f"\nwrote {path}")
    if not results["aggregate"]["all_match"]:
        print("ERROR: fast engines diverged from the oracles")
        return 1
    if not quick and results["aggregate"]["speedup"] < 5.0:
        print("ERROR: aggregate speedup below the 5x floor")
        return 1
    if not quick and not results["obs_overhead"]["disabled_faster"]:
        print("ERROR: obs-disabled run not faster than instrumented")
        return 1
    telemetry = results["telemetry_overhead"]
    if not telemetry["pass"]:
        print(f"ERROR: telemetry overhead "
              f"{telemetry['overhead_ratio']:.2f}x exceeds the "
              f"{telemetry['ceiling']:.2f}x ceiling, recorded nothing, "
              f"or changed the serve report")
        return 1
    dse = results["dse"]
    if not dse["pass"]:
        print(f"ERROR: DSE tuned-over-baseline aggregate "
              f"{dse['aggregate']['speedup']:.3f}x missed the "
              f"{dse['aggregate']['floor']}x floor, or a winner grew "
              f"its area budget")
        return 1
    lint = results["lint_certified"]
    if not (lint["all_certified"] and lint["all_match"]):
        print("ERROR: lint-certified run lost its certificate or "
              "diverged from the guarded compiled engine")
        return 1
    if not quick and lint["aggregate"]["speedup"] < lint["aggregate"]["floor"]:
        print(f"ERROR: certified-specialization speedup below the "
              f"{lint['aggregate']['floor']}x floor")
        return 1
    native = results["native_engine"]
    if "cases" in native:
        if not native["aggregate"]["all_match"]:
            print("ERROR: native C engine diverged from the guarded "
                  "compiled engine")
            return 1
        if not quick and (native["aggregate"]["speedup"]
                          < native["aggregate"]["floor"]):
            print(f"ERROR: native-engine speedup below the "
                  f"{native['aggregate']['floor']}x floor")
            return 1
    batch = results["batch_engine"]
    if "cases" in batch:
        if not batch["aggregate"]["all_match"]:
            print("ERROR: SIMD batch engine diverged from sequential "
                  "compiled runs")
            return 1
        if not quick and batch["aggregate"]["speedup"] < 10.0:
            print("ERROR: batch-engine aggregate speedup below the 10x "
                  "floor")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
