"""Section 7.3's absolute memory-system numbers.

Paper: the input controller reaches 27.24 GB/s = 91% of the 30.1 GB/s
measured peak (64-beat bursts) and 85% of the 32 GB/s theoretical; adding
symmetric output (echo) yields 11.38 GB/s each way.
"""

from repro.bench import run_sec73_memory

THEORETICAL_GBPS = 32.0  # 512 bits x 125 MHz x 4 channels


def test_sec73_absolute_throughput(once):
    results = once(run_sec73_memory, fixed_cycles=30_000)
    default = results["input_default_burst"]
    peak = results["input_peak_burst64"]
    echo_in = results["echo_input"]
    echo_out = results["echo_output"]
    print(f"\ninput (1024b bursts): {default:.2f} GB/s (paper 27.24)")
    print(f"peak (64-beat bursts): {peak:.2f} GB/s (paper 30.1)")
    print(f"default/peak = {default / peak:.0%} (paper 91%)")
    print(f"default/theoretical = {default / THEORETICAL_GBPS:.0%} "
          f"(paper 85%)")
    print(f"echo in/out: {echo_in:.2f}/{echo_out:.2f} GB/s (paper 11.38)")
    assert 0.80 < default / THEORETICAL_GBPS < 0.90
    assert 0.85 < default / peak < 0.97
    assert peak < THEORETICAL_GBPS
    # Echo: both directions sustained, each well below input-only rate
    # (the bus is shared and pays turnaround).
    assert abs(echo_in - echo_out) / echo_in < 0.05
    assert 8.0 < echo_in < 16.0
