"""Channel-scaling ablation: the paper's controllers need "no further
coordination among the separate channels", so throughput must scale
linearly from one to the F1's four channels — and PU counts per channel,
not total bus width, set the compute ceiling."""

from repro.memory import MemoryConfig, SinkPu, simulate_channels


def test_channel_scaling_is_linear(once):
    cfg = MemoryConfig()

    def experiment():
        results = {}
        for channels in (1, 2, 4):
            stats = simulate_channels(
                cfg,
                lambda i: [SinkPu(1 << 16) for _ in range(128)],
                channels=channels,
                fixed_cycles=20_000,
            )
            results[channels] = stats.input_gbps
        return results

    results = once(experiment)
    per_channel = {c: v / c for c, v in results.items()}
    print("\nchannels -> total GB/s: "
          + ", ".join(f"{c}:{v:.2f}" for c, v in results.items()))
    # Perfect linearity (channels are independent by construction);
    # per-channel rate constant within simulation noise.
    base = per_channel[1]
    for channels, rate in per_channel.items():
        assert abs(rate - base) / base < 0.02, channels
    assert 26.0 < results[4] < 29.0  # the paper's 27.24 regime
