"""Figure 9: memory-controller optimization ablation.

Paper: none 0.98 GB/s -> async address supply 1.88 GB/s (-> 1.9x) ->
async + burst registers 27.24 GB/s (-> 14.5x more).

Runs with cycle attribution (``repro.obs``) enabled so each ablation
point's throughput delta is pinned to its mechanism: synchronous
addressing shows up as idle cycles (no address supplied ahead of the
data), the single-register ablation as no-burst-register stalls, and the
full controller as data beats dominating.
"""

from repro.bench import (
    PAPER_FIGURE9,
    format_figure9,
    format_figure9_attribution,
    run_figure9,
)
from repro.obs.attribution import DATA_BEAT_IN, IDLE, NO_BURST_REGISTER


def test_figure9_ablation(once):
    results = once(run_figure9, fixed_cycles=30_000, attribution=True)
    print("\n" + format_figure9(results))
    print("\n" + format_figure9_attribution(results))
    values = {label: gbps for label, gbps, _ in results}
    none = values["None"]
    async_only = values["Async. Addr. Supply"]
    full = values["Async. Addr. Supply & Burst Regs."]
    # The paper's factors: ~1.9x from async supply, ~14.5x from burst regs.
    assert 1.4 < async_only / none < 2.6
    assert 10 < full / async_only < 20
    # And the absolute numbers land within 15% of the paper's.
    for label, measured in values.items():
        assert measured == PAPER_FIGURE9[label] * (
            1 + (measured / PAPER_FIGURE9[label] - 1)
        )
        assert abs(measured / PAPER_FIGURE9[label] - 1) < 0.15, (
            label, measured
        )
    # Each optimization removes the stall category it targets: the
    # dominant cycle class identifies the bottleneck at every point.
    dominant = {
        label: max(attr, key=attr.get) for label, _, attr in results
    }
    assert dominant["None"] == IDLE
    assert dominant["Async. Addr. Supply"] == NO_BURST_REGISTER
    assert dominant["Async. Addr. Supply & Burst Regs."] == DATA_BEAT_IN
