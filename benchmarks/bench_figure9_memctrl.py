"""Figure 9: memory-controller optimization ablation.

Paper: none 0.98 GB/s -> async address supply 1.88 GB/s (-> 1.9x) ->
async + burst registers 27.24 GB/s (-> 14.5x more).
"""

from repro.bench import PAPER_FIGURE9, format_figure9, run_figure9


def test_figure9_ablation(once):
    results = once(run_figure9, fixed_cycles=30_000)
    print("\n" + format_figure9(results))
    values = dict(results)
    none = values["None"]
    async_only = values["Async. Addr. Supply"]
    full = values["Async. Addr. Supply & Burst Regs."]
    # The paper's factors: ~1.9x from async supply, ~14.5x from burst regs.
    assert 1.4 < async_only / none < 2.6
    assert 10 < full / async_only < 20
    # And the absolute numbers land within 15% of the paper's.
    for label, measured in values.items():
        assert measured == PAPER_FIGURE9[label] * (
            1 + (measured / PAPER_FIGURE9[label] - 1)
        )
        assert abs(measured / PAPER_FIGURE9[label] - 1) < 0.15, (
            label, measured
        )
