"""Section 7.2's divergence and vectorization experiments.

Paper: feeding *identical* data to every GPU stream speeds JSON parsing
up by 2.33x and integer coding by 1.25x (control-flow divergence is the
loss); disabling AVX2 slows the CPU Bloom filter by 3.79x (the one
vectorizable application).
"""

from repro.baselines.cpu import BLOOM_AVX2_SPEEDUP
from repro.bench.catalog import catalog
from repro.isa import SimtExecutor


def identical_data_speedup(spec, lanes=16, nbytes=1500):
    """warp issues with per-lane streams / warp issues with one stream
    replicated — the paper's identical-data experiment."""
    program = spec.program()
    (warp_small, warp_large), = spec.gpu_warp_pairs(
        lanes=lanes, small=400, large=nbytes
    )[:1]
    different = SimtExecutor(program).run(warp_large)
    identical = SimtExecutor(program).run([warp_large[0]] * lanes)
    return (
        different.warp_issues
        / identical.warp_issues
        * (sum(identical.lane_steps) / sum(different.lane_steps))
    )


def test_json_identical_data_speedup(once):
    speedup = once(identical_data_speedup, catalog()["json_parsing"])
    print(f"\nJSON identical-data speedup: {speedup:.2f}x (paper 2.33x)")
    assert 1.5 < speedup < 4.5


def test_int_coding_identical_data_speedup(once):
    speedup = once(identical_data_speedup, catalog()["integer_coding"])
    print(f"\nInteger coding identical-data speedup: {speedup:.2f}x "
          f"(paper 1.25x)")
    assert speedup > 1.1  # divergence is a real loss


def test_regex_is_divergence_free(once):
    speedup = once(identical_data_speedup, catalog()["regex"])
    print(f"\nRegex identical-data speedup: {speedup:.2f}x "
          f"(branchless NFA)")
    assert speedup < 1.1


def test_bloom_avx2_factor_documented(once):
    factor = once(lambda: BLOOM_AVX2_SPEEDUP)
    print(f"\nBloom AVX2 speedup applied to the CPU model: {factor}x "
          f"(the paper's measured value)")
    assert factor == 3.79
