"""Design-choice ablations beyond the paper's Figure 9.

* burst-size sweep: larger bursts improve DRAM efficiency but cost burst-
  register area (the paper's stated tradeoff; it chose 1024 bits);
* burst-register count sweep: throughput saturates at r = bus/port = 16;
* blocking vs nonblocking output addressing with a filtering PU mix (the
  paper's rationale for the nonblocking default).
"""

from repro.memory import (
    EchoPu,
    MemoryConfig,
    RatePu,
    SinkPu,
    simulate_channels,
)
from repro.system.area import pu_overhead


def test_burst_size_sweep(once):
    base = MemoryConfig()

    def experiment():
        rows = []
        for beats in (1, 2, 4, 16, 64):
            cfg = base.replace(beats_per_burst=beats)
            stats = simulate_channels(
                cfg, lambda i: [SinkPu(1 << 16) for _ in range(128)],
                channels=1, fixed_cycles=20_000,
            )
            # burst registers are flip-flop storage inside the two
            # controllers: 2 (in+out) x r registers x burst bits
            burst_reg_kbits = (
                2 * cfg.burst_registers * cfg.burst_bytes * 8 / 1024
            )
            rows.append((beats, 4 * stats.input_gbps, burst_reg_kbits))
        return rows

    rows = once(experiment)
    print("\nbeats/burst  GB/s   burst-reg Kb (controllers)")
    for beats, gbps, kbits in rows:
        print(f"{beats:>11}  {gbps:5.2f}  {kbits:>8.0f}")
    throughputs = [gbps for _, gbps, _ in rows]
    assert throughputs == sorted(throughputs)  # monotone in burst size
    # diminishing returns: 2 beats already within 15% of 64 beats — the
    # paper's rationale for choosing 1024-bit bursts
    assert throughputs[1] > 0.85 * throughputs[-1]
    # but register area grows linearly with burst size
    assert rows[-1][2] == 32 * rows[1][2]
    assert pu_overhead(base).bram36 >= 2  # per-PU buffers are BRAM


def test_burst_register_sweep(once):
    base = MemoryConfig()

    def experiment():
        results = {}
        for r in (1, 2, 4, 8, 16, 32):
            cfg = base.replace(burst_registers=r)
            stats = simulate_channels(
                cfg, lambda i: [SinkPu(1 << 16) for _ in range(128)],
                channels=1, fixed_cycles=20_000,
            )
            results[r] = 4 * stats.input_gbps
        return results

    results = once(experiment)
    print("\nr (burst regs) -> GB/s: "
          + ", ".join(f"{r}:{v:.1f}" for r, v in results.items()))
    # saturates at r = bus_width/port_width = 16 (the paper's choice)
    assert results[16] > 0.9 * results[32]
    assert results[16] > 5 * results[1]


def test_output_blocking_ablation(once):
    def experiment():
        out = {}
        for blocking in (False, True):
            cfg = MemoryConfig().replace(output_blocking=blocking)
            # a filter-heavy mix: one PU almost never outputs
            def make_pus(_):
                return [
                    RatePu(1 << 15, vcycles_per_token=1,
                           output_ratio=0.001)
                ] + [EchoPu(1 << 15) for _ in range(15)]

            stats = simulate_channels(
                cfg, make_pus, channels=1, fixed_cycles=15_000
            )
            out[blocking] = stats.output_gbps
        return out

    results = once(experiment)
    print(f"\noutput GB/s: nonblocking {results[False]:.2f}, "
          f"blocking {results[True]:.2f} (the paper's default is "
          f"nonblocking for exactly this reason)")
    assert results[False] > 1.5 * results[True]
