"""Figure 7: Fleet vs CPU vs GPU across the six applications.

Each application is one benchmark; the final benchmark prints the
assembled table next to the paper's values. The shape to verify: Fleet
beats the CPU everywhere (tens to hundreds of times in perf/W), beats the
GPU in perf/W on all or nearly all applications, and the four streaming
applications (JSON, Smith-Waterman, regex, Bloom) are bound by the
~27 GB/s memory system rather than by their compute ceilings.
"""

import pytest

from repro.bench import PAPER_FIGURE7, format_figure7, run_figure7

APPS = [
    "json_parsing",
    "integer_coding",
    "decision_tree",
    "smith_waterman",
    "regex",
    "bloom_filter",
]

_rows = {}


@pytest.mark.parametrize("app", APPS)
def test_figure7_app(once, app):
    rows = once(run_figure7, apps=[app], sim_cycles=12_000, gpu_lanes=16)
    row = rows[0]
    _rows[app] = row
    paper = PAPER_FIGURE7[row.title]
    # Shape assertions, not absolute matches.
    assert row.fleet.gbps > row.cpu.gbps, "Fleet must beat the CPU"
    assert row.fleet_vs_cpu_ppw > 5, "perf/W vs CPU is tens-to-hundreds x"
    assert row.fleet.pu_count >= 100, "hundreds of PUs fit"
    assert row.fleet.gbps <= row.fleet.theoretical_gbps * 1.01
    print(f"\n{row.title}: fleet {row.fleet.gbps:.2f} GB/s "
          f"(paper {paper[1]}), {row.fleet.pu_count} PUs (paper {paper[0]})")


def test_figure7_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_rows) == len(APPS):
        print("\n" + format_figure7([_rows[a] for a in APPS]))
