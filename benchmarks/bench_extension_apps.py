"""The framework-generality claim, tested on applications the paper did
not evaluate: the two extension units (Aho-Corasick string search and CSV
column extraction) run through the same Figure-7 pipeline — area fit,
functional profile, memory-system simulation — with no per-app tuning.

Both are single-cycle-per-token parsers, so both should land in the
memory-bound ~21-27 GB/s regime with hundreds of PUs, like the paper's
JSON/regex/SW/Bloom column.
"""

import random

from repro.apps import csv_extract_unit, string_search_unit
from repro.apps.string_search import AhoCorasick
from repro.system import evaluate_fleet_app


def _log_text(rnd, nbytes):
    words = ["service", "ok", "request", "cache", "ERROR", "timeout"]
    out = bytearray()
    while len(out) < nbytes:
        out += (rnd.choice(words) + " ").encode()
    return bytes(out[:nbytes])


def _csv_text(rnd, nbytes):
    out = bytearray()
    while len(out) < nbytes:
        out += (
            f"{rnd.randrange(10**6)},{rnd.choice('abcdef')},"
            f"\"v,{rnd.randrange(100)}\",{rnd.randrange(10**4)}\n"
        ).encode()
    end = out.rfind(b"\n", 0, nbytes)
    return bytes(out[:end + 1])


def test_string_search_full_pipeline(once):
    rnd = random.Random(61)
    automaton = AhoCorasick([b"ERROR", b"timeout", b"panic"])
    stream = list(automaton.encode_header()) + list(_log_text(rnd, 3000))
    result = once(
        evaluate_fleet_app, "string_search", string_search_unit(),
        [stream], sim_cycles=10_000,
    )
    print(f"\nstring search: {result.pu_count} PUs, "
          f"{result.gbps:.1f} GB/s "
          f"(ceiling {result.theoretical_gbps:.1f}), "
          f"{result.perf_per_watt:.2f} GB/s/W")
    assert result.profile.vcycles_per_token < 1.05  # 1 cycle/char
    assert result.pu_count >= 100
    assert 15 < result.gbps < 30  # the memory-bound regime


def test_csv_extract_full_pipeline(once):
    rnd = random.Random(62)
    stream = list(_csv_text(rnd, 3000))
    result = once(
        evaluate_fleet_app, "csv_extract", csv_extract_unit((0, 2)),
        [stream], sim_cycles=10_000,
    )
    print(f"\nCSV extract: {result.pu_count} PUs, "
          f"{result.gbps:.1f} GB/s "
          f"(ceiling {result.theoretical_gbps:.1f}), "
          f"{result.perf_per_watt:.2f} GB/s/W")
    assert result.profile.vcycles_per_token < 1.05
    # no BRAMs: among the densest-packing units, like regex
    assert result.pu_count >= 400
    assert 15 < result.gbps < 30
