"""Section 7.4: the commercial HLS comparison.

Paper: the HLS memory controller reaches 524.84 MB/s (pipelined) /
675.06 MB/s (unrolled) on one channel — 13.0x / 10.1x below Fleet's
6.8 GB/s single-channel rate and bounded by 1 GB/s (64 bits/cycle through
the local array ports). Naively ported processing units get initiation
intervals of 15 (JSON) and 18 (integer coding) instead of Fleet's 1, and
use ~4.6x / ~2.8x more logic.
"""

from repro.apps import int_coding_unit, json_field_unit
from repro.baselines import (
    estimate_module_hls,
    hls_initiation_interval,
    simulate_hls_memory,
)
from repro.compiler import compile_unit
from repro.memory import MemoryConfig, SinkPu, simulate_channels
from repro.system.area import estimate_module


def test_hls_memory_controller(once):
    cfg = MemoryConfig()

    def experiment():
        fleet = simulate_channels(
            cfg, lambda i: [SinkPu(1 << 16) for _ in range(128)],
            channels=1, fixed_cycles=25_000,
        ).input_gbps
        pipelined = simulate_hls_memory(cfg, outstanding=1,
                                        fixed_cycles=25_000)
        unrolled = simulate_hls_memory(cfg, outstanding=2,
                                       fixed_cycles=25_000)
        return fleet, pipelined, unrolled

    fleet, pipelined, unrolled = once(experiment)
    print(f"\nFleet single-channel input: {fleet:.2f} GB/s (paper 6.8)")
    print(f"HLS pipelined: {pipelined * 1000:.0f} MB/s (paper 524.84), "
          f"{fleet / pipelined:.1f}x below Fleet (paper 13.0x)")
    print(f"HLS unrolled: {unrolled * 1000:.0f} MB/s (paper 675.06), "
          f"{fleet / unrolled:.1f}x below Fleet (paper 10.1x)")
    assert pipelined < unrolled <= 1.0  # the 64-bit/cycle serial bound
    assert 5 < fleet / unrolled < 25
    assert 8 < fleet / pipelined < 25


def test_hls_initiation_intervals(once):
    def experiment():
        return (
            hls_initiation_interval(json_field_unit()),
            hls_initiation_interval(int_coding_unit()),
            hls_initiation_interval(
                json_field_unit(), assume_mutual_exclusion=True
            ),
        )

    json_ii, int_ii, fleet_ii = once(experiment)
    print(f"\nHLS II: JSON {json_ii} (paper 15), integer coding {int_ii} "
          f"(paper 18); Fleet-style exclusive scheduling: {fleet_ii}")
    assert fleet_ii == 1  # the Fleet language restriction guarantee
    assert json_ii >= 8
    assert int_ii >= 6


def test_hls_area_ratios(once):
    def experiment():
        ratios = {}
        for name, unit in (("json", json_field_unit()),
                           ("int", int_coding_unit())):
            module = compile_unit(unit)
            fleet = estimate_module(module)
            hls = estimate_module_hls(
                module, hls_initiation_interval(unit)
            )
            ratios[name] = hls.luts / fleet.luts
        return ratios

    ratios = once(experiment)
    print(f"\nHLS/Fleet logic: JSON {ratios['json']:.1f}x (paper 4.6x), "
          f"integer coding {ratios['int']:.1f}x (paper 2.8x)")
    assert 2.5 < ratios["json"] < 7.0
    assert 1.8 < ratios["int"] < 5.0
    assert ratios["json"] > ratios["int"]  # the paper's ordering
