"""Observability under concurrency: collectors are per-`Observation`
instances with no shared module-level state, so independent simulations
on parallel threads (the serving runtime's device shards) must attribute
exactly as they do serially."""

import json
import threading

from repro.apps import identity_unit, sink_unit
from repro.obs import Observation, build_report, validate_report
from repro.report import make_streams
from repro.serve.__main__ import run_demo
from repro.system import run_full_system

#: (app factory, streams, channels) cases run both serially and racing.
CASES = [
    (identity_unit, make_streams(4, 1024, seed=11), 1),
    (sink_unit, make_streams(4, 2048, seed=22), 2),
    (identity_unit, make_streams(2, 512, seed=33), 1),
    (sink_unit, make_streams(6, 768, seed=44), 2),
]


def _observed_report(unit_factory, streams, channels):
    obs = Observation()
    run_full_system(
        unit_factory(), list(streams), channels=channels, obs=obs,
    )
    return validate_report(build_report(obs))


def test_parallel_full_system_runs_attribute_like_serial_runs():
    serial = [_observed_report(*case) for case in CASES]

    results = [None] * len(CASES)
    errors = []

    def worker(index):
        try:
            results[index] = _observed_report(*CASES[index])
        except Exception as error:  # surfaced after join
            errors.append((index, error))

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(len(CASES))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, f"concurrent observed runs failed: {errors}"
    for index, (expected, racing) in enumerate(zip(serial, results)):
        assert racing == expected, (
            f"case {index}: attribution diverged under concurrency — "
            f"obs collectors are sharing state across instances"
        )


def test_two_servers_in_parallel_threads_match_serial_reports():
    # Two full serving runtimes (each with its own device workers and
    # per-batch collectors) racing in one process: reports must be
    # byte-identical to the same runs performed one at a time.
    configs = [dict(jobs=6, seed=5, devices=2, window_streams=16),
               dict(jobs=6, seed=9, devices=1, window_streams=8)]

    def run(kwargs):
        report, server = run_demo(**kwargs)
        server.stop()
        return json.dumps(report, sort_keys=True)

    serial = [run(kwargs) for kwargs in configs]

    results = [None, None]

    def worker(index):
        results[index] = run(configs[index])

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in (0, 1)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert results == serial
