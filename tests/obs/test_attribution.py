"""Cycle attribution: closed-form refresh counting, the classifier's
category signatures, stall sub-classification, and ChannelStats wiring."""

import pytest

from repro.memory import (
    ChannelSystem,
    MemoryConfig,
    RatePu,
    SinkPu,
    simulate_channels,
)
from repro.obs import ChannelAttribution, Observation, refresh_cycles_between
from repro.obs.attribution import (
    CATEGORIES,
    DATA_BEAT_IN,
    DATA_BEAT_OUT,
    IDLE,
    NO_BURST_REGISTER,
    PU_BACKPRESSURE,
    REFRESH,
    summarize_attribution,
)


def _observed_run(config, make_pus, *, fixed_cycles=4_000,
                  event_driven=True):
    obs = Observation()
    stats = simulate_channels(
        config, make_pus, channels=1, fixed_cycles=fixed_cycles,
        event_driven=event_driven, obs=obs,
    )
    return stats, obs.channels[0]


# ---------------------------------------------------------------------------
# refresh_cycles_between
# ---------------------------------------------------------------------------


def test_refresh_closed_form_matches_brute_force():
    for interval, rc in [(128, 8), (7, 3), (10, 10), (5, 1)]:
        for start in range(0, 40):
            for end in range(start, start + 40):
                expected = sum(
                    1 for c in range(start, end) if c % interval < rc
                )
                assert refresh_cycles_between(
                    start, end, interval, rc
                ) == expected, (interval, rc, start, end)


def test_refresh_closed_form_edges():
    assert refresh_cycles_between(10, 10, 128, 8) == 0
    assert refresh_cycles_between(20, 10, 128, 8) == 0
    assert refresh_cycles_between(0, 100, 0, 8) == 0
    assert refresh_cycles_between(0, 100, 128, 0) == 0
    # A window fully inside one refresh burst.
    assert refresh_cycles_between(2, 5, 128, 8) == 3


# ---------------------------------------------------------------------------
# ChannelAttribution basics
# ---------------------------------------------------------------------------


def test_attribution_record_total_and_percentages():
    attr = ChannelAttribution()
    assert attr.total == 0
    assert attr.percentages() == {c: 0.0 for c in CATEGORIES}
    attr.record(DATA_BEAT_IN, 3)
    attr.record(IDLE)
    assert attr.total == 4
    assert attr.as_dict()[DATA_BEAT_IN] == 3
    assert attr.percentages()[DATA_BEAT_IN] == 75.0
    assert "data_beat_in" in repr(attr)

    other = ChannelAttribution()
    other.record(DATA_BEAT_IN, 3)
    other.record(IDLE)
    assert attr == other
    other.record(IDLE)
    assert attr != other


def test_summarize_attribution_skips_empty_categories():
    text = summarize_attribution({DATA_BEAT_IN: 75, IDLE: 25, REFRESH: 0})
    assert "data_beat_in" in text
    assert "75.00%" in text
    assert "refresh" not in text


# ---------------------------------------------------------------------------
# Classifier signatures: each ablation's bottleneck dominates
# ---------------------------------------------------------------------------


def test_sum_equals_total_cycles():
    stats, chan = _observed_run(
        MemoryConfig(), lambda i: [SinkPu(1 << 14) for _ in range(32)]
    )
    assert sum(chan.attribution.cycles.values()) == stats.cycles
    assert chan.reg_occupancy.total == stats.cycles


def test_sync_addressing_shows_up_as_idle():
    stats, chan = _observed_run(
        MemoryConfig().replace(burst_registers=1, async_addressing=False),
        lambda i: [SinkPu(1 << 14) for _ in range(32)],
    )
    attr = chan.attribution.cycles
    assert max(attr, key=attr.get) == IDLE
    # The DRAM access latency gap: well over half of all cycles.
    assert attr[IDLE] > stats.cycles // 2


def test_single_register_shows_up_as_no_burst_register():
    _, chan = _observed_run(
        MemoryConfig().replace(burst_registers=1),
        lambda i: [SinkPu(1 << 14) for _ in range(32)],
    )
    attr = chan.attribution.cycles
    assert max(attr, key=attr.get) == NO_BURST_REGISTER
    assert attr[PU_BACKPRESSURE] == 0  # sinks never defer a drain


def test_full_controller_shows_up_as_data_beats():
    _, chan = _observed_run(
        MemoryConfig(), lambda i: [SinkPu(1 << 14) for _ in range(32)]
    )
    attr = chan.attribution.cycles
    assert max(attr, key=attr.get) == DATA_BEAT_IN


def test_slow_pus_show_up_as_backpressure():
    # Slow consumers (compute 3x the drain time) behind enough burst
    # registers: drains are deferred by busy PU buffers, so the consumer
    # stall must classify as backpressure, not as a register shortage.
    _, chan = _observed_run(
        MemoryConfig().replace(burst_registers=4),
        lambda i: [
            RatePu(1 << 14, vcycles_per_token=3, token_bytes=4)
            for _ in range(8)
        ],
        fixed_cycles=6_000,
    )
    attr = chan.attribution.cycles
    assert attr[PU_BACKPRESSURE] > 0
    assert attr[PU_BACKPRESSURE] > attr[NO_BURST_REGISTER]
    deferred = sum(s.deferred_bursts for s in chan.pu_stats)
    assert deferred > 0


def test_refresh_cycles_attributed():
    config = MemoryConfig()
    stats, chan = _observed_run(
        config, lambda i: [SinkPu(1 << 14) for _ in range(32)]
    )
    attr = chan.attribution.cycles
    expected = refresh_cycles_between(
        0, stats.cycles, config.refresh_interval, config.refresh_cycles
    )
    # Refresh windows always idle the bus, so the attribution must count
    # exactly the configured duty cycle.
    assert attr[REFRESH] == expected


def test_output_path_attributes_write_beats():
    from repro.memory import EchoPu

    _, chan = _observed_run(
        MemoryConfig(), lambda i: [EchoPu(1 << 13) for _ in range(16)]
    )
    attr = chan.attribution.cycles
    assert attr[DATA_BEAT_OUT] > 0
    assert chan.write_bursts.value > 0


# ---------------------------------------------------------------------------
# ChannelStats integration
# ---------------------------------------------------------------------------


def test_channel_stats_carries_attribution():
    obs = Observation()
    system = ChannelSystem(
        MemoryConfig(), [SinkPu(1 << 12) for _ in range(8)], obs=obs
    )
    stats = system.run_for(2_000)
    assert stats.attribution is not None
    assert sum(stats.attribution.values()) == stats.cycles
    assert "top=" in repr(stats)
    summary = stats.summary()
    assert "cycles" in summary
    assert DATA_BEAT_IN in summary


def test_channel_stats_without_obs_unchanged():
    system = ChannelSystem(MemoryConfig(), [SinkPu(1 << 12)])
    stats = system.run_for(1_000)
    assert stats.attribution is None
    assert "top=" not in repr(stats)
    assert stats.summary()  # still renders without a breakdown


def test_per_pu_accounting_conserves_bytes():
    stats, chan = _observed_run(
        MemoryConfig(), lambda i: [SinkPu(1 << 12) for _ in range(8)]
    )
    assert sum(s.bytes_in for s in chan.pu_stats) == stats.bytes_in
    total_bursts = sum(s.bursts for s in chan.pu_stats)
    assert total_bursts == chan.read_bursts.value
    for pu_stats in chan.pu_stats:
        assert 0.0 <= pu_stats.utilization(stats.cycles) <= 1.0


def test_addr_lead_positive_with_async_addressing():
    _, chan = _observed_run(
        MemoryConfig(), lambda i: [SinkPu(1 << 12) for _ in range(8)]
    )
    # Every burst's last beat arrives at least dram_latency after its
    # address was submitted.
    assert chan.addr_lead.total > 0
    assert min(chan.addr_lead.buckets) >= MemoryConfig().dram_latency


def test_attribution_rejects_unknown_category():
    attr = ChannelAttribution()
    with pytest.raises(KeyError):
        attr.record("not_a_category")
