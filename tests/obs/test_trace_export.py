"""Chrome trace-event export: schema validity, timestamp ordering,
engine independence, and a golden-file smoke test."""

import json
from pathlib import Path

from repro.memory import EchoPu, MemoryConfig, simulate_channels
from repro.obs import Observation, TraceRecorder
from repro.obs.tracer import TID_AXI_READ, TID_AXI_WRITE, TID_PU_BASE
from repro.report import _validate_trace

GOLDEN = Path(__file__).parent / "golden_trace.json"


def _traced_run(*, event_driven=True, pus=4, stream_bytes=1 << 10,
                fixed_cycles=1_500):
    obs = Observation(trace=True)
    simulate_channels(
        MemoryConfig(),
        lambda i: [EchoPu(stream_bytes) for _ in range(pus)],
        channels=1, fixed_cycles=fixed_cycles,
        event_driven=event_driven, obs=obs,
    )
    return obs


def golden_trace():
    """The deterministic trace the committed golden file was generated
    from (regenerate with ``python -c "from tests.obs.test_trace_export
    import write_golden; write_golden()"``)."""
    return _traced_run().tracer.to_chrome(MemoryConfig().frequency_hz)


def write_golden():
    GOLDEN.write_text(json.dumps(golden_trace(), indent=1) + "\n")
    return GOLDEN


# ---------------------------------------------------------------------------
# Recorder primitives
# ---------------------------------------------------------------------------


def test_recorder_event_shapes():
    rec = TraceRecorder()
    rec.process_name(0, "channel 0")
    rec.thread_name(0, TID_AXI_READ, "axi-read")
    rec.complete("read pu0", 10, 40, pid=0, tid=TID_AXI_READ,
                 args={"bytes": 128})
    rec.instant("marker", 12, pid=0, tid=TID_AXI_WRITE)
    assert len(rec) == 2  # metadata not counted as events

    trace = rec.to_chrome()
    events = trace["traceEvents"]
    # Metadata first, then data events sorted by timestamp.
    assert [e["ph"] for e in events] == ["M", "M", "X", "i"]
    span = events[2]
    assert span["ts"] == 10 and span["dur"] == 30
    assert trace["otherData"]["timestamp_unit"] == "cycles"


def test_cycle_to_microsecond_conversion():
    rec = TraceRecorder()
    rec.complete("span", 125, 250)
    trace = rec.to_chrome(frequency_hz=125_000_000)
    span = next(e for e in trace["traceEvents"] if e["ph"] == "X")
    # 125 cycles at 125 MHz is exactly one microsecond.
    assert span["ts"] == 1.0
    assert span["dur"] == 1.0
    assert trace["otherData"]["timestamp_unit"] == "us"


def test_write_trace_requires_tracing_enabled():
    import pytest

    with pytest.raises(ValueError):
        Observation().write_trace("/tmp/never-written.json")


# ---------------------------------------------------------------------------
# Exported simulation traces
# ---------------------------------------------------------------------------


def test_simulation_trace_is_schema_valid():
    obs = _traced_run()
    trace = _validate_trace(obs.tracer.to_chrome(obs.frequency_hz))
    events = trace["traceEvents"]
    # Track metadata names the channel process and its threads.
    meta = [e for e in events if e["ph"] == "M"]
    names = {(e["name"], e["args"]["name"]) for e in meta}
    assert ("process_name", "channel 0") in names
    assert ("thread_name", "axi-read") in names
    assert ("thread_name", "axi-write") in names
    assert ("thread_name", "pu 0") in names
    # Read spans ride the AXI-read thread, drains the PU threads, write
    # bursts the AXI-write thread.
    tids = {e["tid"] for e in events if e["ph"] == "X"}
    assert TID_AXI_READ in tids
    assert TID_AXI_WRITE in tids
    assert any(tid >= TID_PU_BASE for tid in tids)


def test_trace_timestamps_monotonic_and_json_serializable():
    obs = _traced_run()
    trace = obs.tracer.to_chrome(obs.frequency_hz)
    timed = [e["ts"] for e in trace["traceEvents"] if e["ph"] != "M"]
    assert timed == sorted(timed)
    json.loads(json.dumps(trace))  # round-trips as plain JSON


def test_trace_engine_independent():
    fast = _traced_run(event_driven=True)
    slow = _traced_run(event_driven=False)
    assert fast.tracer.to_chrome(fast.frequency_hz) == \
        slow.tracer.to_chrome(slow.frequency_hz)


def test_write_trace_file(tmp_path):
    obs = _traced_run(pus=2, fixed_cycles=600)
    path = tmp_path / "trace.json"
    obs.write_trace(path)
    _validate_trace(json.loads(path.read_text()))


def test_golden_trace_smoke():
    """The committed golden file matches a fresh deterministic run —
    catches accidental changes to event naming, track layout, or the
    timestamp conversion. Regenerate via ``write_golden()`` when the
    trace format changes intentionally."""
    assert GOLDEN.exists(), "golden trace file missing"
    golden = json.loads(GOLDEN.read_text())
    _validate_trace(golden)
    assert golden == golden_trace()
