"""The structured run report and the ``python -m repro.report`` CLI."""

import json

import pytest

from repro.memory import MemoryConfig, SinkPu, simulate_channels
from repro.obs import (
    REPORT_SCHEMA,
    Observation,
    build_report,
    format_report,
    validate_report,
)
from repro.report import APPS, main, make_streams, run_instrumented


def _observed(channels=2):
    obs = Observation()
    simulate_channels(
        MemoryConfig(), lambda i: [SinkPu(1 << 12) for _ in range(8)],
        channels=channels, fixed_cycles=1_500, obs=obs,
    )
    return obs


# ---------------------------------------------------------------------------
# Report structure
# ---------------------------------------------------------------------------


def test_report_structure_and_invariants():
    obs = _observed()
    report = validate_report(build_report(obs))
    assert report["schema"] == REPORT_SCHEMA
    assert len(report["channels"]) == 2
    for channel in report["channels"]:
        assert sum(channel["attribution"].values()) == channel["cycles"]
    agg = report["aggregate"]
    assert agg["cycles"] == sum(c["cycles"] for c in report["channels"])
    assert sum(agg["attribution"].values()) == agg["cycles"]
    json.loads(json.dumps(report))  # plain JSON-serializable data


def test_validate_report_catches_corruption():
    report = build_report(_observed())
    report["channels"][0]["attribution"]["idle"] += 1
    with pytest.raises(AssertionError):
        validate_report(report)


def test_format_report_mentions_categories_and_pus():
    obs = _observed(channels=1)
    text = format_report(build_report(obs))
    assert "data_beat_in" in text
    assert "channel 0" in text
    # Observation.summary() is the same rendering.
    assert obs.summary() == text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_make_streams_deterministic():
    a = make_streams(3, 256, seed=7)
    b = make_streams(3, 256, seed=7)
    assert a == b
    assert len(a) == 3 and all(len(s) == 256 for s in a)
    assert make_streams(1, 256, seed=8) != [a[0]]


def test_run_instrumented_returns_observed_result():
    result, obs = run_instrumented(
        app="sink", streams=2, stream_bytes=512
    )
    assert result.observation is obs
    assert obs.channels
    validate_report(build_report(obs))


def test_cli_human_output(capsys):
    assert main(["--app", "identity", "--streams", "2",
                 "--stream-bytes", "512"]) == 0
    out = capsys.readouterr().out
    assert "identity" in out
    assert "data_beat_in" in out


def test_cli_writes_json_and_trace(tmp_path, capsys):
    json_path = tmp_path / "report.json"
    trace_path = tmp_path / "trace.json"
    assert main(["--app", "sink", "--streams", "2",
                 "--stream-bytes", "512",
                 "--json", str(json_path),
                 "--trace", str(trace_path)]) == 0
    report = json.loads(json_path.read_text())
    assert report["schema"] == REPORT_SCHEMA
    validate_report(report)
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]

    capsys.readouterr()  # drop the table output


def test_cli_json_to_stdout(capsys):
    assert main(["--streams", "1", "--stream-bytes", "256",
                 "--json", "-"]) == 0
    out = capsys.readouterr().out
    payload = out[out.index("{"):]
    report = json.loads(payload)
    assert report["schema"] == REPORT_SCHEMA


def test_cli_engines_agree(capsys):
    for engine in ("event", "stepped"):
        assert main(["--engine", engine, "--streams", "1",
                     "--stream-bytes", "256"]) == 0
    capsys.readouterr()


def test_cli_apps_registry():
    for name, factory in APPS.items():
        unit = factory()
        assert unit is not None, name
