"""Verilog emission: structure, not simulation (no Verilog tools here)."""

from repro.apps import block_frequencies_unit, identity_unit
from repro.compiler import compile_unit
from repro.rtl import Module, emit_verilog, ir


def test_ports_and_module_shape():
    m = Module("widget")
    a = m.input("a", 8)
    m.output("out", ir.truncate(a + 1, 8))
    text = emit_verilog(m)
    assert text.startswith("module widget (")
    assert "input clock" in text
    assert "input [7:0] a" in text
    assert "output [7:0] out" in text
    assert text.rstrip().endswith("endmodule")


def test_register_block_with_enable():
    m = Module("r")
    en = m.input("en", 1)
    r = m.reg("r0", 4, init=9)
    r.next = ir.truncate(r.q + 1, 4)
    r.enable = en
    m.output("q", r.q)
    text = emit_verilog(m)
    assert "reg [3:0] r0 = 4'd9;" in text
    assert "always @(posedge clock)" in text
    assert "if (en) r0 <=" in text


def test_bram_pattern():
    m = Module("mem")
    spec = m.bram("buf", 16, 8)
    spec.rd_addr = ir.Const(0, 4)
    spec.wr_en = ir.Const(0, 1)
    spec.wr_addr = ir.Const(0, 4)
    spec.wr_data = ir.Const(0, 8)
    m.output("q", spec.rd_data)
    text = emit_verilog(m)
    assert "reg [7:0] buf__mem [0:15];" in text
    assert "buf__rd_data <= buf__mem[" in text


def test_shared_nodes_emitted_once():
    m = Module("dag")
    a = m.input("a", 8)
    shared = ir.truncate(a * a, 8)
    m.output("x", ir.truncate(shared + shared, 8))
    m.output("y", ir.truncate(shared + 1, 8))
    text = emit_verilog(m)
    # the multiply appears exactly once, as a hoisted temp wire
    assert text.count("(a * a)") == 1


def test_compiled_units_emit(tmp_path):
    for unit in (identity_unit(), block_frequencies_unit(block_size=4)):
        text = emit_verilog(compile_unit(unit))
        assert "module fleet_" in text
        assert "input_ready" in text
        assert "output_finished" in text
        # write it out to prove it serializes cleanly
        (tmp_path / f"{unit.name}.v").write_text(text)


def test_email_regex_unit_emits_compactly():
    from repro.apps import regex_match_unit

    text = emit_verilog(compile_unit(regex_match_unit()))
    # The NFA circuit is small; the file must not blow up combinatorially.
    assert text.count("\n") < 2000
