module fleet_identity (
  input clock,
  input [7:0] input_token,
  input input_valid,
  input output_ready,
  input input_finished,
  output output_valid,
  output [7:0] output_token,
  output input_ready,
  output output_finished
);
  wire while_done = 1'd1;
  assign output_valid = (v & (~(|(f)) & while_done));
  assign output_token = i;
  wire v_done = (v & (~(|(output_valid)) | output_ready));
  wire sf_next = (f | (input_finished & ~(|(input_valid))));
  wire while_done_n = 1'd1;
  assign input_ready = (~(|(v)) | (while_done & (~(|(output_valid)) | output_ready)));
  assign output_finished = (~(|(v)) & f);
  wire issue_next = (v_done | input_ready);
  reg [7:0] i = 8'd0;
  reg v = 1'd0;
  reg f = 1'd0;
  always @(posedge clock) begin
    if (input_ready) i <= input_token;
    if (input_ready) v <= (input_valid | (~(|(f)) & input_finished));
    if (input_ready) f <= (f | input_finished);
  end
endmodule
