module fleet_regex_match (
  input clock,
  input [7:0] input_token,
  input input_valid,
  input output_ready,
  input input_finished,
  output output_valid,
  output [31:0] output_token,
  output input_ready,
  output output_finished
);
  wire _t0 = ~(|(f));
  wire _t1 = (i == 7'd100);
  wire _t2 = (r_state_1 | r_state_2);
  wire _t3 = (_t1 & _t2);
  wire [32:0] _t4 = (r_position + 1'd1);
  wire while_done = 1'd1;
  assign output_valid = (v & ((_t0 & _t3) & while_done));
  assign output_token = r_position;
  wire v_done = (v & (~(|(output_valid)) | output_ready));
  wire r_state_0_n = ((_t0 & while_done) ? ((i == 7'd97) & 1'd1) : r_state_0);
  wire r_state_1_n = ((_t0 & while_done) ? ((i == 7'd98) & ((r_state_0 | r_state_1) | r_state_2)) : r_state_1);
  wire r_state_2_n = ((_t0 & while_done) ? ((i == 7'd99) & ((r_state_0 | r_state_1) | r_state_2)) : r_state_2);
  wire r_state_3_n = ((_t0 & while_done) ? _t3 : r_state_3);
  wire [31:0] r_position_n = ((_t0 & while_done) ? _t4[31:0] : r_position);
  wire r_state_0_ne = (v_done ? r_state_0_n : r_state_0);
  wire r_state_1_ne = (v_done ? r_state_1_n : r_state_1);
  wire r_state_2_ne = (v_done ? r_state_2_n : r_state_2);
  wire r_state_3_ne = (v_done ? r_state_3_n : r_state_3);
  wire [31:0] r_position_ne = (v_done ? r_position_n : r_position);
  wire sf_next = (f | (input_finished & ~(|(input_valid))));
  wire while_done_n = 1'd1;
  assign input_ready = (~(|(v)) | (while_done & (~(|(output_valid)) | output_ready)));
  assign output_finished = (~(|(v)) & f);
  wire issue_next = (v_done | input_ready);
  reg [7:0] i = 8'd0;
  reg v = 1'd0;
  reg f = 1'd0;
  reg r_state_0 = 1'd0;
  reg r_state_1 = 1'd0;
  reg r_state_2 = 1'd0;
  reg r_state_3 = 1'd0;
  reg [31:0] r_position = 32'd0;
  always @(posedge clock) begin
    if (input_ready) i <= input_token;
    if (input_ready) v <= (input_valid | (~(|(f)) & input_finished));
    if (input_ready) f <= (f | input_finished);
    if (v_done) r_state_0 <= r_state_0_n;
    if (v_done) r_state_1 <= r_state_1_n;
    if (v_done) r_state_2 <= r_state_2_n;
    if (v_done) r_state_3 <= r_state_3_n;
    if (v_done) r_position <= r_position_n;
  end
endmodule
