module fleet_block_frequencies (
  input clock,
  input [7:0] input_token,
  input input_valid,
  input output_ready,
  input input_finished,
  output output_valid,
  output [7:0] output_token,
  output input_ready,
  output output_finished
);
  wire _t0 = (r_item_counter == 7'd100);
  wire _t1 = (r_frequencies_idx < 9'd256);
  wire [8:0] _t2 = ((_t0 & _t1) ? r_frequencies_idx : i);
  wire [7:0] _t3 = ((r_item_counter == 7'd100) ? 1'd1 : (r_item_counter + 1'd1));
  wire [9:0] _t4 = (r_frequencies_idx + 1'd1);
  wire _t5 = (r_item_counter_ne == 7'd100);
  wire _t6 = (r_frequencies_idx_ne < 9'd256);
  wire _t7 = (_t0 & _t1);
  wire [8:0] _t8 = (_t7 ? r_frequencies_idx : i);
  wire [7:0] _t9 = _t8[7:0];
  wire _t10 = (_t7 | while_done);
  wire _t11 = (v_done & _t10);
  wire [8:0] _t12 = (b_frequencies_rd + 1'd1);
  wire [7:0] _t13 = _t12[7:0];
  wire [7:0] _t14 = (_t7 ? 1'd0 : _t13);
  wire [8:0] _t15 = ((_t5 & _t6) ? r_frequencies_idx_ne : input_token);
  wire while_done = ~(|((_t0 & _t1)));
  wire [7:0] b_frequencies_cur_rd_addr = _t2[7:0];
  wire [7:0] b_frequencies_rd = (({1'd0, b_frequencies_cur_rd_addr} == b_frequencies_last_addr) ? b_frequencies_last_data : b_frequencies__rd_data);
  assign output_valid = (v & (_t0 & _t1));
  assign output_token = b_frequencies_rd;
  wire v_done = (v & (~(|(output_valid)) | output_ready));
  wire [6:0] r_item_counter_n = (while_done ? _t3[6:0] : r_item_counter);
  wire [8:0] r_frequencies_idx_n = ((_t0 & _t1) ? _t4[8:0] : ((_t0 & while_done) ? 1'd0 : r_frequencies_idx));
  wire [6:0] r_item_counter_ne = (v_done ? r_item_counter_n : r_item_counter);
  wire [8:0] r_frequencies_idx_ne = (v_done ? r_frequencies_idx_n : r_frequencies_idx);
  wire sf_next = (f | (input_finished & ~(|(input_valid))));
  wire while_done_n = ~(|((_t5 & _t6)));
  assign input_ready = (~(|(v)) | (while_done & (~(|(output_valid)) | output_ready)));
  assign output_finished = (~(|(v)) & f);
  wire issue_next = (v_done | input_ready);
  reg [7:0] i = 8'd0;
  reg v = 1'd0;
  reg f = 1'd0;
  reg [6:0] r_item_counter = 7'd0;
  reg [8:0] r_frequencies_idx = 9'd0;
  reg [8:0] b_frequencies_last_addr = 9'd511;
  reg [7:0] b_frequencies_last_data = 8'd0;
  reg [7:0] b_frequencies__mem [0:255];
  reg [7:0] b_frequencies__rd_data = 8'd0;
  always @(posedge clock) begin
    if (input_ready) i <= input_token;
    if (input_ready) v <= (input_valid | (~(|(f)) & input_finished));
    if (input_ready) f <= (f | input_finished);
    if (v_done) r_item_counter <= r_item_counter_n;
    if (v_done) r_frequencies_idx <= r_frequencies_idx_n;
    if (_t11) b_frequencies_last_addr <= {1'd0, _t9};
    if (_t11) b_frequencies_last_data <= _t14;
    b_frequencies__rd_data <= b_frequencies__mem[(issue_next ? _t15[7:0] : b_frequencies_cur_rd_addr)];
    if (_t11) b_frequencies__mem[_t9] <= _t14;
  end
endmodule
