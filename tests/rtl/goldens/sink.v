module fleet_sink (
  input clock,
  input [7:0] input_token,
  input input_valid,
  input output_ready,
  input input_finished,
  output output_valid,
  output [7:0] output_token,
  output input_ready,
  output output_finished
);
  wire [32:0] _t0 = (r_consumed + 1'd1);
  wire while_done = 1'd1;
  assign output_valid = (v & 1'd0);
  assign output_token = 8'd0;
  wire v_done = (v & (~(|(output_valid)) | output_ready));
  wire [31:0] r_consumed_n = (while_done ? _t0[31:0] : r_consumed);
  wire [31:0] r_consumed_ne = (v_done ? r_consumed_n : r_consumed);
  wire sf_next = (f | (input_finished & ~(|(input_valid))));
  wire while_done_n = 1'd1;
  assign input_ready = (~(|(v)) | (while_done & (~(|(output_valid)) | output_ready)));
  assign output_finished = (~(|(v)) & f);
  wire issue_next = (v_done | input_ready);
  reg [7:0] i = 8'd0;
  reg v = 1'd0;
  reg f = 1'd0;
  reg [31:0] r_consumed = 32'd0;
  always @(posedge clock) begin
    if (input_ready) i <= input_token;
    if (input_ready) v <= (input_valid | (~(|(f)) & input_finished));
    if (input_ready) f <= (f | input_finished);
    if (v_done) r_consumed <= r_consumed_n;
  end
endmodule
