module fleet_csv_extract (
  input clock,
  input [7:0] input_token,
  input input_valid,
  input output_ready,
  input input_finished,
  output output_valid,
  output [7:0] output_token,
  output input_ready,
  output output_finished
);
  wire _t0 = ~(|(f));
  wire _t1 = (r_state == 1'd0);
  wire _t2 = (_t0 & _t1);
  wire _t3 = (i == 6'd34);
  wire _t4 = ~(|(_t3));
  wire _t5 = (_t2 & _t4);
  wire _t6 = (i == 6'd44);
  wire _t7 = (_t5 & _t6);
  wire _t8 = (r_col == 1'd0);
  wire _t9 = (r_col == 2'd2);
  wire _t10 = (_t8 | _t9);
  wire _t11 = (_t7 & _t10);
  wire _t12 = (_t11 & while_done);
  wire _t13 = (_t0 & _t1);
  wire _t14 = ~(|(_t3));
  wire _t15 = (_t13 & _t14);
  wire _t16 = ~(|(_t6));
  wire _t17 = (_t15 & _t16);
  wire _t18 = (i == 4'd10);
  wire _t19 = (_t17 & _t18);
  wire _t20 = (_t19 & _t10);
  wire _t21 = (_t20 & while_done);
  wire _t22 = (_t0 & _t1);
  wire _t23 = ~(|(_t3));
  wire _t24 = (_t22 & _t23);
  wire _t25 = ~(|(_t6));
  wire _t26 = (_t24 & _t25);
  wire _t27 = ~(|(_t18));
  wire _t28 = (_t26 & _t27);
  wire _t29 = (_t28 & _t10);
  wire _t30 = (_t29 & while_done);
  wire _t31 = ~(|(_t1));
  wire _t32 = (_t0 & _t31);
  wire _t33 = (r_state == 1'd1);
  wire _t34 = (_t32 & _t33);
  wire _t35 = (i == 6'd44);
  wire _t36 = (_t34 & _t35);
  wire _t37 = (_t36 & _t10);
  wire _t38 = (_t37 & while_done);
  wire _t39 = ~(|(_t1));
  wire _t40 = (_t0 & _t39);
  wire _t41 = (_t40 & _t33);
  wire _t42 = ~(|(_t35));
  wire _t43 = (_t41 & _t42);
  wire _t44 = (i == 4'd10);
  wire _t45 = (_t43 & _t44);
  wire _t46 = (_t45 & _t10);
  wire _t47 = (_t46 & while_done);
  wire _t48 = ~(|(_t1));
  wire _t49 = (_t0 & _t48);
  wire _t50 = (_t49 & _t33);
  wire _t51 = ~(|(_t35));
  wire _t52 = (_t50 & _t51);
  wire _t53 = ~(|(_t44));
  wire _t54 = (_t52 & _t53);
  wire _t55 = (_t54 & _t10);
  wire _t56 = (_t55 & while_done);
  wire _t57 = ~(|(_t1));
  wire _t58 = (_t0 & _t57);
  wire _t59 = ~(|(_t33));
  wire _t60 = (_t58 & _t59);
  wire _t61 = (r_state == 2'd2);
  wire _t62 = (_t60 & _t61);
  wire _t63 = (i == 6'd34);
  wire _t64 = ~(|(_t63));
  wire _t65 = (_t62 & _t64);
  wire _t66 = (_t65 & _t10);
  wire _t67 = (_t66 & while_done);
  wire _t68 = ~(|(_t1));
  wire _t69 = (_t0 & _t68);
  wire _t70 = ~(|(_t33));
  wire _t71 = (_t69 & _t70);
  wire _t72 = ~(|(_t61));
  wire _t73 = (_t71 & _t72);
  wire _t74 = (i == 6'd34);
  wire _t75 = (_t73 & _t74);
  wire _t76 = (_t75 & _t10);
  wire _t77 = (_t76 & while_done);
  wire _t78 = ~(|(_t1));
  wire _t79 = (_t0 & _t78);
  wire _t80 = ~(|(_t33));
  wire _t81 = (_t79 & _t80);
  wire _t82 = ~(|(_t61));
  wire _t83 = (_t81 & _t82);
  wire _t84 = ~(|(_t74));
  wire _t85 = (_t83 & _t84);
  wire _t86 = (i == 6'd44);
  wire _t87 = (_t85 & _t86);
  wire _t88 = (_t87 & _t10);
  wire _t89 = (_t88 & while_done);
  wire _t90 = (i == 4'd10);
  wire [8:0] _t91 = (r_col + 1'd1);
  wire [8:0] _t92 = (r_col + 1'd1);
  wire [8:0] _t93 = (r_col + 1'd1);
  wire while_done = 1'd1;
  assign output_valid = (v & (((((((((_t12 | _t21) | _t30) | _t38) | _t47) | _t56) | _t67) | _t77) | _t89) | ((((((((_t0 & ~(|(_t1))) & ~(|(_t33))) & ~(|(_t61))) & ~(|(_t74))) & ~(|(_t86))) & _t90) & _t10) & while_done)));
  assign output_token = (_t12 ? 1'd0 : (_t21 ? 1'd0 : (_t30 ? i : (_t38 ? 1'd0 : (_t47 ? 1'd0 : (_t56 ? i : (_t67 ? i : (_t77 ? 6'd34 : (_t89 ? 1'd0 : 1'd0)))))))));
  wire v_done = (v & (~(|(output_valid)) | output_ready));
  wire [1:0] r_state_n = ((((_t0 & _t1) & _t3) & while_done) ? 2'd2 : (((((_t0 & _t1) & ~(|(_t3))) & _t6) & while_done) ? 1'd0 : ((((((_t0 & _t1) & ~(|(_t3))) & ~(|(_t6))) & _t18) & while_done) ? 1'd0 : ((((((_t0 & _t1) & ~(|(_t3))) & ~(|(_t6))) & ~(|(_t18))) & while_done) ? 1'd1 : (((((_t0 & ~(|(_t1))) & _t33) & _t35) & while_done) ? 1'd0 : ((((((_t0 & ~(|(_t1))) & _t33) & ~(|(_t35))) & _t44) & while_done) ? 1'd0 : ((((((_t0 & ~(|(_t1))) & ~(|(_t33))) & _t61) & _t63) & while_done) ? 2'd3 : ((((((_t0 & ~(|(_t1))) & ~(|(_t33))) & ~(|(_t61))) & _t74) & while_done) ? 2'd2 : (((((((_t0 & ~(|(_t1))) & ~(|(_t33))) & ~(|(_t61))) & ~(|(_t74))) & _t86) & while_done) ? 1'd0 : ((((((((_t0 & ~(|(_t1))) & ~(|(_t33))) & ~(|(_t61))) & ~(|(_t74))) & ~(|(_t86))) & _t90) & while_done) ? 1'd0 : r_state))))))))));
  wire [7:0] r_col_n = (((((_t0 & _t1) & ~(|(_t3))) & _t6) & while_done) ? _t91[7:0] : ((((((_t0 & _t1) & ~(|(_t3))) & ~(|(_t6))) & _t18) & while_done) ? 1'd0 : (((((_t0 & ~(|(_t1))) & _t33) & _t35) & while_done) ? _t92[7:0] : ((((((_t0 & ~(|(_t1))) & _t33) & ~(|(_t35))) & _t44) & while_done) ? 1'd0 : (((((((_t0 & ~(|(_t1))) & ~(|(_t33))) & ~(|(_t61))) & ~(|(_t74))) & _t86) & while_done) ? _t93[7:0] : ((((((((_t0 & ~(|(_t1))) & ~(|(_t33))) & ~(|(_t61))) & ~(|(_t74))) & ~(|(_t86))) & _t90) & while_done) ? 1'd0 : r_col))))));
  wire [1:0] r_state_ne = (v_done ? r_state_n : r_state);
  wire [7:0] r_col_ne = (v_done ? r_col_n : r_col);
  wire sf_next = (f | (input_finished & ~(|(input_valid))));
  wire while_done_n = 1'd1;
  assign input_ready = (~(|(v)) | (while_done & (~(|(output_valid)) | output_ready)));
  assign output_finished = (~(|(v)) & f);
  wire issue_next = (v_done | input_ready);
  reg [7:0] i = 8'd0;
  reg v = 1'd0;
  reg f = 1'd0;
  reg [1:0] r_state = 2'd0;
  reg [7:0] r_col = 8'd0;
  always @(posedge clock) begin
    if (input_ready) i <= input_token;
    if (input_ready) v <= (input_valid | (~(|(f)) & input_finished));
    if (input_ready) f <= (f | input_finished);
    if (v_done) r_state <= r_state_n;
    if (v_done) r_col <= r_col_n;
  end
endmodule
