module fleet_string_search (
  input clock,
  input [7:0] input_token,
  input input_valid,
  input output_ready,
  input input_finished,
  output output_valid,
  output [31:0] output_token,
  output input_ready,
  output output_finished
);
  wire _t0 = ~(|(f));
  wire _t1 = (r_mode == 1'd0);
  wire _t2 = (r_mode == 1'd1);
  wire _t3 = (r_mode == 2'd2);
  wire _t4 = (r_mode == 2'd3);
  wire _t5 = (r_mode == 3'd4);
  wire [11:0] _t6 = {r_state, i};
  wire [11:0] _t7 = _t6[11:0];
  wire [7:0] _t8 = r_entry_total[7:0];
  wire [15:0] _t9 = {i, _t8};
  wire [16:0] _t10 = (r_entry_total - 1'd1);
  wire _t11 = (r_entry_count == _t10);
  wire [16:0] _t12 = (_t11 ? 1'd0 : (r_entry_count + 1'd1));
  wire [32:0] _t13 = (r_position + 1'd1);
  wire [11:0] _t14 = r_entry_idx[11:0];
  wire _t15 = ~(|(_t1));
  wire _t16 = (_t0 & _t15);
  wire _t17 = ~(|(_t2));
  wire _t18 = (_t16 & _t17);
  wire _t19 = ~(|(_t3));
  wire _t20 = (_t18 & _t19);
  wire _t21 = ~(|(_t4));
  wire _t22 = (_t20 & _t21);
  wire _t23 = (_t22 & _t5);
  wire _t24 = (_t23 & while_done);
  wire _t25 = (v_done & _t24);
  wire [11:0] _t26 = {r_state_ne, input_token};
  wire [11:0] _t27 = _t26[11:0];
  wire while_done = 1'd1;
  wire [11:0] b_table_cur_rd_addr = (((((((_t0 & ~(|(_t1))) & ~(|(_t2))) & ~(|(_t3))) & ~(|(_t4))) & ~(|(_t5))) & while_done) ? _t7 : _t7);
  wire [7:0] b_table_rd = (({1'd0, b_table_cur_rd_addr} == b_table_last_addr) ? b_table_last_data : b_table__rd_data);
  assign output_valid = (v & (((((((_t0 & ~(|(_t1))) & ~(|(_t2))) & ~(|(_t3))) & ~(|(_t4))) & ~(|(_t5))) & (b_table_rd[7] == 1'd1)) & while_done));
  assign output_token = r_position;
  wire v_done = (v & (~(|(output_valid)) | output_ready));
  wire [2:0] r_mode_n = (((_t0 & _t1) & while_done) ? 1'd1 : ((((_t0 & ~(|(_t1))) & _t2) & while_done) ? ((_t9 == 1'd0) ? 3'd5 : 2'd2) : (((((_t0 & ~(|(_t1))) & ~(|(_t2))) & _t3) & while_done) ? 2'd3 : ((((((_t0 & ~(|(_t1))) & ~(|(_t2))) & ~(|(_t3))) & _t4) & while_done) ? 3'd4 : (((((((_t0 & ~(|(_t1))) & ~(|(_t2))) & ~(|(_t3))) & ~(|(_t4))) & _t5) & while_done) ? (_t11 ? 3'd5 : 2'd2) : r_mode)))));
  wire [15:0] r_entry_total_n = (((_t0 & _t1) & while_done) ? i : ((((_t0 & ~(|(_t1))) & _t2) & while_done) ? _t9 : r_entry_total));
  wire [15:0] r_entry_count_n = (((((((_t0 & ~(|(_t1))) & ~(|(_t2))) & ~(|(_t3))) & ~(|(_t4))) & _t5) & while_done) ? _t12[15:0] : r_entry_count);
  wire [15:0] r_entry_idx_n = (((((_t0 & ~(|(_t1))) & ~(|(_t2))) & _t3) & while_done) ? i : ((((((_t0 & ~(|(_t1))) & ~(|(_t2))) & ~(|(_t3))) & _t4) & while_done) ? {i, r_entry_idx[7:0]} : r_entry_idx));
  wire [3:0] r_state_n = (((((((_t0 & ~(|(_t1))) & ~(|(_t2))) & ~(|(_t3))) & ~(|(_t4))) & ~(|(_t5))) & while_done) ? b_table_rd[3:0] : r_state);
  wire [31:0] r_position_n = (((((((_t0 & ~(|(_t1))) & ~(|(_t2))) & ~(|(_t3))) & ~(|(_t4))) & ~(|(_t5))) & while_done) ? _t13[31:0] : r_position);
  wire [2:0] r_mode_ne = (v_done ? r_mode_n : r_mode);
  wire [15:0] r_entry_total_ne = (v_done ? r_entry_total_n : r_entry_total);
  wire [15:0] r_entry_count_ne = (v_done ? r_entry_count_n : r_entry_count);
  wire [15:0] r_entry_idx_ne = (v_done ? r_entry_idx_n : r_entry_idx);
  wire [3:0] r_state_ne = (v_done ? r_state_n : r_state);
  wire [31:0] r_position_ne = (v_done ? r_position_n : r_position);
  wire sf_next = (f | (input_finished & ~(|(input_valid))));
  wire while_done_n = 1'd1;
  assign input_ready = (~(|(v)) | (while_done & (~(|(output_valid)) | output_ready)));
  assign output_finished = (~(|(v)) & f);
  wire issue_next = (v_done | input_ready);
  reg [7:0] i = 8'd0;
  reg v = 1'd0;
  reg f = 1'd0;
  reg [2:0] r_mode = 3'd0;
  reg [15:0] r_entry_total = 16'd0;
  reg [15:0] r_entry_count = 16'd0;
  reg [15:0] r_entry_idx = 16'd0;
  reg [3:0] r_state = 4'd0;
  reg [31:0] r_position = 32'd0;
  reg [12:0] b_table_last_addr = 13'd8191;
  reg [7:0] b_table_last_data = 8'd0;
  reg [7:0] b_table__mem [0:4095];
  reg [7:0] b_table__rd_data = 8'd0;
  always @(posedge clock) begin
    if (input_ready) i <= input_token;
    if (input_ready) v <= (input_valid | (~(|(f)) & input_finished));
    if (input_ready) f <= (f | input_finished);
    if (v_done) r_mode <= r_mode_n;
    if (v_done) r_entry_total <= r_entry_total_n;
    if (v_done) r_entry_count <= r_entry_count_n;
    if (v_done) r_entry_idx <= r_entry_idx_n;
    if (v_done) r_state <= r_state_n;
    if (v_done) r_position <= r_position_n;
    if (_t25) b_table_last_addr <= {1'd0, _t14};
    if (_t25) b_table_last_data <= i;
    b_table__rd_data <= b_table__mem[(issue_next ? (((((((~(|(sf_next)) & ~(|((r_mode_ne == 1'd0)))) & ~(|((r_mode_ne == 1'd1)))) & ~(|((r_mode_ne == 2'd2)))) & ~(|((r_mode_ne == 2'd3)))) & ~(|((r_mode_ne == 3'd4)))) & while_done_n) ? _t27 : _t27) : b_table_cur_rd_addr)];
    if (_t25) b_table__mem[_t14] <= i;
  end
endmodule
