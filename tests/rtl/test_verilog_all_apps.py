"""Verilog emission sanity across the full application suite (including
the extension app and runtime-checked variants)."""

import pytest

from repro.apps import (
    bloom_filter_unit,
    csv_extract_unit,
    decision_tree_unit,
    int_coding_unit,
    json_field_unit,
    regex_match_unit,
    smith_waterman_unit,
    string_search_unit,
)
from repro.compiler import compile_unit
from repro.rtl import emit_verilog

ALL_UNITS = [
    ("json", json_field_unit),
    ("int_coding", int_coding_unit),
    ("decision_tree", decision_tree_unit),
    ("smith_waterman", smith_waterman_unit),
    ("regex", regex_match_unit),
    ("bloom", lambda: bloom_filter_unit(block_size=64, num_hashes=8,
                                        section_bits=2048)),
    ("string_search", string_search_unit),
    ("csv_extract", csv_extract_unit),
]


@pytest.mark.parametrize("name,factory", ALL_UNITS,
                         ids=[n for n, _ in ALL_UNITS])
def test_every_app_emits_valid_shaped_verilog(name, factory):
    text = emit_verilog(compile_unit(factory()))
    assert text.startswith("module fleet_")
    assert text.rstrip().endswith("endmodule")
    # balanced brackets as a cheap structural check
    assert text.count("(") == text.count(")")
    assert text.count("[") == text.count("]")
    # all four handshake ports present
    for port in ("input_ready", "output_valid", "output_finished",
                 "input_finished"):
        assert port in text
    # bounded size: hoisting must keep the DAG from exploding
    assert text.count("\n") < 20_000


def test_runtime_checked_unit_emits():
    unit = json_field_unit()
    text = emit_verilog(compile_unit(unit, insert_runtime_checks=True))
    assert "restriction_error" in text
