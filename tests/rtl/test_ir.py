"""RTL IR construction and validation."""

import pytest

from repro.lang import FleetSyntaxError, FleetWidthError
from repro.rtl import Module, RtlSimulator, ir


class TestValues:
    def test_const_width_inference(self):
        assert ir.Const(0).width == 1
        assert ir.Const(255).width == 8

    def test_const_must_fit(self):
        with pytest.raises(FleetWidthError):
            ir.Const(256, 8)

    def test_binop_widths(self):
        a = ir.Const(3, 4)
        b = ir.Const(3, 6)
        assert (a + b).width == 7
        assert (a * b).width == 10
        assert a.eq(b).width == 1

    def test_zext_and_truncate(self):
        a = ir.Const(3, 4)
        assert ir.zext(a, 8).width == 8
        assert ir.truncate(a, 2).width == 2
        assert ir.truncate(a, 8) is a
        with pytest.raises(FleetWidthError):
            ir.zext(a, 2)

    def test_mux_requires_one_bit_condition(self):
        with pytest.raises(FleetWidthError):
            ir.mux(ir.Const(2, 2), 1, 0)


class TestModule:
    def test_duplicate_signal_names_rejected(self):
        m = Module("m")
        m.input("x", 8)
        with pytest.raises(FleetSyntaxError):
            m.wire("x", ir.Const(0, 1))

    def test_unconnected_register_rejected(self):
        m = Module("m")
        m.reg("r", 8)
        with pytest.raises(FleetSyntaxError, match="no next"):
            m.finalize()

    def test_unconnected_bram_port_rejected(self):
        m = Module("m")
        spec = m.bram("b", 16, 8)
        spec.rd_addr = ir.Const(0, 4)
        spec.wr_en = ir.Const(0, 1)
        spec.wr_addr = ir.Const(0, 4)
        with pytest.raises(FleetSyntaxError, match="wr_data"):
            m.finalize()

    def test_combinational_cycle_detected(self):
        m = Module("m")
        # a = b + 1; b = a + 1 requires forward declaration trickery:
        # build with a placeholder then patch, as a buggy generator might.
        a_sig = m._new_signal("a", 8, ir.WIRE)
        b_sig = m._new_signal("b", 8, ir.WIRE)
        m.wires.append((a_sig, ir.truncate(b_sig + 1, 8)))
        m.wires.append((b_sig, ir.truncate(a_sig + 1, 8)))
        m.finalize()
        with pytest.raises(FleetSyntaxError, match="cycle"):
            RtlSimulator(m)
