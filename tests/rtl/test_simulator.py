"""Cycle-accurate RTL simulation semantics."""

import pytest

from repro.lang import FleetSimulationError
from repro.rtl import Module, RtlSimulator, ir


def make_accumulator():
    """acc <= acc + in every cycle; out = acc."""
    m = Module("acc")
    x = m.input("x", 8)
    acc = m.reg("acc", 16)
    acc.next = ir.truncate(acc.q + x, 16)
    m.output("out", acc.q)
    return m


class TestCombinational:
    def test_wire_evaluation(self):
        m = Module("comb")
        a = m.input("a", 8)
        b = m.input("b", 8)
        m.output("sum", ir.truncate(a + b, 8))
        sim = RtlSimulator(m)
        sim.set_inputs(a=200, b=100)
        assert sim.outputs()["sum"] == 44  # wraps at 8 bits

    def test_wire_chains_evaluate_in_order(self):
        m = Module("chain")
        a = m.input("a", 4)
        w1 = m.wire("w1", ir.truncate(a + 1, 4))
        w2 = m.wire("w2", ir.truncate(w1 + 1, 4))
        m.output("out", w2)
        sim = RtlSimulator(m)
        sim.set_inputs(a=3)
        assert sim.outputs()["out"] == 5

    def test_deep_wire_chain_exceeds_recursion_limit(self):
        # Levelization is iterative: a chain far deeper than Python's
        # recursion limit must still sort, compile, and evaluate.
        m = Module("deep")
        a = m.input("a", 16)
        node = a
        for i in range(5000):
            node = m.wire(f"w{i}", ir.truncate(node + 1, 16))
        m.output("out", node)
        sim = RtlSimulator(m)
        sim.set_inputs(a=7)
        assert sim.outputs()["out"] == (7 + 5000) & 0xFFFF

    def test_combinational_cycle_rejected(self):
        m = Module("loop")
        a = m.input("a", 4)
        w1 = m.wire("w1", ir.truncate(a + 1, 4))
        w2 = m.wire("w2", ir.truncate(w1 + 1, 4))
        m.output("out", w2)
        # The builder API cannot express a cycle; rewire w1 to close one
        # (malformed IR is exactly what levelization must reject).
        m.wires[0] = (w1, ir.truncate(w2 + 1, 4))
        with pytest.raises(Exception, match="combinational cycle through"):
            RtlSimulator(m)

    def test_shared_subexpressions_hoisted(self):
        # Deep DAG: 2^40 tree nodes if expanded; must compile instantly.
        m = Module("dag")
        a = m.input("a", 8)
        node = ir.wrap(a)
        for _ in range(40):
            node = ir.truncate(node + node, 8)
        m.output("out", node)
        sim = RtlSimulator(m)
        sim.set_inputs(a=1)
        assert sim.outputs()["out"] == (1 << 40) % 256

    def test_unknown_input_rejected(self):
        sim = RtlSimulator(make_accumulator())
        with pytest.raises(FleetSimulationError):
            sim.set_inputs(nope=1)

    def test_oversized_input_rejected(self):
        sim = RtlSimulator(make_accumulator())
        with pytest.raises(FleetSimulationError):
            sim.set_inputs(x=256)


class TestRegisters:
    def test_register_updates_on_edge(self):
        sim = RtlSimulator(make_accumulator())
        sim.step(x=5)
        sim.step(x=7)
        assert sim.peek("acc") == 12

    def test_register_init_value(self):
        m = Module("init")
        r = m.reg("r", 8, init=42)
        r.next = r.q
        m.output("out", r.q)
        sim = RtlSimulator(m)
        assert sim.outputs()["out"] == 42

    def test_register_enable_gates_update(self):
        m = Module("en")
        en = m.input("en", 1)
        r = m.reg("r", 8)
        r.next = ir.truncate(r.q + 1, 8)
        r.enable = en
        m.output("out", r.q)
        sim = RtlSimulator(m)
        sim.step(en=0)
        sim.step(en=1)
        sim.step(en=0)
        assert sim.peek("r") == 1

    def test_registers_update_concurrently(self):
        m = Module("swap")
        a = m.reg("a", 4, init=1)
        b = m.reg("b", 4, init=2)
        a.next = b.q
        b.next = a.q
        m.output("oa", a.q)
        sim = RtlSimulator(m)
        sim.step()
        assert sim.peek("a") == 2
        assert sim.peek("b") == 1


class TestBrams:
    def make_bram_module(self):
        m = Module("mem")
        rd_addr = m.input("rd_addr", 4)
        wr_en = m.input("wr_en", 1)
        wr_addr = m.input("wr_addr", 4)
        wr_data = m.input("wr_data", 8)
        spec = m.bram("b", 16, 8)
        spec.rd_addr = rd_addr
        spec.wr_en = wr_en
        spec.wr_addr = wr_addr
        spec.wr_data = wr_data
        m.output("rd_data", spec.rd_data)
        return m

    def test_one_cycle_read_latency(self):
        sim = RtlSimulator(self.make_bram_module())
        sim.step(wr_en=1, wr_addr=3, wr_data=99, rd_addr=0)
        sim.step(wr_en=0, rd_addr=3)  # address sampled at this edge
        assert sim.outputs()["rd_data"] == 99

    def test_read_during_write_returns_old_data(self):
        sim = RtlSimulator(self.make_bram_module())
        sim.step(wr_en=1, wr_addr=5, wr_data=11, rd_addr=0)
        # Same-cycle read+write of address 5: read data (next cycle) must
        # be the OLD value (11 was written at the first edge).
        sim.step(wr_en=1, wr_addr=5, wr_data=22, rd_addr=5)
        assert sim.outputs()["rd_data"] == 11
        sim.step(rd_addr=5, wr_en=0)
        assert sim.outputs()["rd_data"] == 22

    def test_reset_clears_memory(self):
        sim = RtlSimulator(self.make_bram_module())
        sim.step(wr_en=1, wr_addr=1, wr_data=7, rd_addr=1)
        sim.reset()
        assert sim.peek_bram("b") == [0] * 16

    def test_cycle_counter(self):
        sim = RtlSimulator(self.make_bram_module())
        for _ in range(5):
            sim.step(wr_en=0, rd_addr=0, wr_addr=0, wr_data=0)
        assert sim.cycle == 5
