"""Golden Verilog snapshots for every application unit.

Each app compiles (with small deterministic parameters, to keep the
snapshots reviewable) to a checked-in ``.v`` file under
``tests/rtl/goldens/``. Any change to the compiler or emitter that
alters the generated text for any app fails here, making RTL churn
visible in review.

To regenerate after an *intentional* compiler/emitter change::

    PYTHONPATH=src python -m pytest tests/rtl/test_goldens.py \
        --update-goldens

then review the golden diffs like any other source change (see
``docs/testing.md``).
"""

import os

import pytest

from repro.apps import (
    block_frequencies_unit,
    bloom_filter_unit,
    csv_extract_unit,
    decision_tree_unit,
    identity_unit,
    int_coding_unit,
    json_field_unit,
    regex_match_unit,
    sink_unit,
    smith_waterman_unit,
    string_search_unit,
)
from repro.compiler import compile_unit
from repro.rtl import emit_verilog

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

# Reduced parameters: deterministic, and small enough that a golden diff
# is reviewable by eye.
APP_UNITS = [
    ("identity", identity_unit),
    ("sink", sink_unit),
    ("block_frequencies", block_frequencies_unit),
    ("csv_extract", csv_extract_unit),
    ("int_coding", int_coding_unit),
    ("bloom_filter", lambda: bloom_filter_unit(
        block_size=16, num_hashes=4, section_bits=256)),
    ("decision_tree", lambda: decision_tree_unit(
        max_features=8, max_trees=4, max_nodes=64)),
    ("json_field", lambda: json_field_unit(max_states=8, max_depth=8)),
    ("regex_match", lambda: regex_match_unit("a(b|c)+d")),
    ("smith_waterman", lambda: smith_waterman_unit(target_length=4)),
    ("string_search", lambda: string_search_unit(max_states=16)),
]


@pytest.mark.parametrize("name,factory", APP_UNITS,
                         ids=[n for n, _ in APP_UNITS])
def test_golden_verilog(name, factory, update_goldens):
    text = emit_verilog(compile_unit(factory()))
    path = os.path.join(GOLDEN_DIR, f"{name}.v")
    if update_goldens:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        pytest.skip(f"golden rewritten: {path}")
    assert os.path.exists(path), (
        f"missing golden {path}; run pytest with --update-goldens"
    )
    with open(path, "r", encoding="utf-8") as handle:
        golden = handle.read()
    assert text == golden, (
        f"emitted Verilog for {name!r} differs from its golden snapshot; "
        "if the change is intentional, regenerate with --update-goldens "
        "and review the diff"
    )


def test_goldens_directory_has_no_strays():
    expected = {f"{name}.v" for name, _ in APP_UNITS}
    actual = {
        name for name in os.listdir(GOLDEN_DIR) if name.endswith(".v")
    }
    assert actual == expected
