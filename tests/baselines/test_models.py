"""CPU/GPU performance models and the HLS comparator."""

import pytest

from repro.baselines import (
    estimate_module_hls,
    evaluate_cpu_app,
    evaluate_gpu_app,
    hls_initiation_interval,
    simulate_hls_memory,
)
from repro.baselines.apps.regex_isa import regex_program
from repro.bench.catalog import catalog
from repro.compiler import compile_unit
from repro.lang import UnitBuilder
from repro.memory import MemoryConfig
from repro.system.area import estimate_module


class TestCpuModel:
    def test_marginal_cost_amortizes_header(self):
        spec = catalog()["decision_tree"]
        result = evaluate_cpu_app(
            "dtree", spec.program(), spec.stream_pairs(small=600, large=2400)
        )
        # steady-state tree walking is tens of instructions per byte,
        # far above the ~1/byte of the loading phase
        assert result.instr_per_byte > 10

    def test_simd_speedup_applied(self):
        spec = catalog()["bloom_filter"]
        pairs = spec.stream_pairs(small=2048, large=6144)
        scalar = evaluate_cpu_app("bloom", spec.program(), pairs)
        simd = evaluate_cpu_app(
            "bloom", spec.program(), pairs, simd_speedup=3.79
        )
        assert simd.gbps == pytest.approx(
            min(scalar.gbps * 3.79, 40.0), rel=0.01
        )

    def test_memory_bandwidth_cap(self):
        spec = catalog()["regex"]
        result = evaluate_cpu_app(
            "r", spec.program(), spec.stream_pairs(small=400, large=1200),
            simd_speedup=10_000.0,
        )
        assert result.gbps == 40.0


class TestGpuModel:
    def test_divergence_measured_not_assumed(self):
        spec = catalog()["json_parsing"]
        result = evaluate_gpu_app(
            "json", spec.program(),
            spec.gpu_warp_pairs(lanes=16, small=500, large=1500),
        )
        assert 1.5 < result.divergence < 4.5  # the paper measured 2.33

    def test_branchless_regex_converges(self):
        spec = catalog()["regex"]
        result = evaluate_gpu_app(
            "regex", spec.program(),
            spec.gpu_warp_pairs(lanes=8, small=400, large=1200),
        )
        assert result.divergence == pytest.approx(1.0, abs=0.05)


class TestHlsModel:
    def test_memory_controller_order_of_magnitude(self):
        cfg = MemoryConfig()
        pipelined = simulate_hls_memory(cfg, outstanding=1,
                                        fixed_cycles=20_000)
        unrolled = simulate_hls_memory(cfg, outstanding=2,
                                       fixed_cycles=20_000)
        # the paper: 524.84 and 675.06 MB/s, both under the 1 GB/s
        # serial-port bound and ~10x below Fleet's 6.8 GB/s per channel
        assert 0.2 < pipelined < 1.0
        assert pipelined < unrolled <= 1.0

    def test_ii_one_with_exclusion_analysis(self):
        b = UnitBuilder("x", input_width=8, output_width=8)
        with b.when(b.input == 0):
            b.emit(1)
        with b.elif_(b.input == 1):
            b.emit(2)
        unit = b.finish()
        assert hls_initiation_interval(
            unit, assume_mutual_exclusion=True
        ) == 1
        assert hls_initiation_interval(unit) == 2

    def test_paper_snippet_example(self):
        # if (state == 0) out[..]=0; if (state == 1) out[..]=1; -> II 2
        b = UnitBuilder("snippet", input_width=8, output_width=8)
        state = b.reg("state", width=1)
        with b.when(state == 0):
            b.emit(0)
        with b.when(state == 1):
            b.emit(1)
        unit = b.finish()
        assert hls_initiation_interval(unit) == 2

    def test_fleet_apps_have_large_naive_ii(self):
        from repro.apps import int_coding_unit, json_field_unit

        assert hls_initiation_interval(json_field_unit()) >= 8
        assert hls_initiation_interval(int_coding_unit()) >= 6

    def test_area_inflation_ratios(self):
        from repro.apps import int_coding_unit, json_field_unit

        for unit, low, high in (
            (json_field_unit(), 2.5, 7.0),  # paper: 4.6x
            (int_coding_unit(), 1.8, 5.0),  # paper: 2.8x
        ):
            module = compile_unit(unit)
            fleet = estimate_module(module)
            hls = estimate_module_hls(
                module, hls_initiation_interval(unit)
            )
            assert low < hls.luts / fleet.luts < high

    def test_regex_unit_modelled_consistently(self):
        program = regex_program()
        assert program.source_lines > 10
