"""Every ISA baseline program computes bit-exactly what the golden model
(and therefore the Fleet unit) computes — the three-way cross-check."""

import pytest

from repro.apps import (
    bloom_reference,
    decision_tree_reference,
    int_coding_reference,
    json_fields_reference,
    regex_reference,
    smith_waterman_reference,
)
from repro.apps.decision_tree import encode_points
from repro.apps.json_parser import make_stream as json_make_stream
from repro.apps.smith_waterman import make_stream as sw_make_stream
from repro.baselines.apps.bloom_isa import bloom_program
from repro.baselines.apps.decision_tree_isa import decision_tree_program
from repro.baselines.apps.int_coding_isa import int_coding_program
from repro.baselines.apps.json_isa import json_program
from repro.baselines.apps.regex_isa import regex_program
from repro.baselines.apps.smith_waterman_isa import smith_waterman_program
from repro.bench.workloads import (
    JSON_FIELDS,
    email_text,
    json_records,
    make_gbt_model,
    rng,
)
from repro.isa import ScalarExecutor, SimtExecutor


def test_json_isa_matches_golden():
    rnd = rng(21)
    text = json_records(rnd, 2500)
    stream = json_make_stream(JSON_FIELDS, text)
    result = ScalarExecutor(json_program()).run(stream)
    assert result.outputs == json_fields_reference(JSON_FIELDS, text)


@pytest.mark.parametrize("bits", [5, 15, 25])
def test_int_coding_isa_matches_golden(bits):
    rnd = rng(22 + bits)
    data = [rnd.randrange(256) for _ in range(0)] or [
        b for _ in range(20)
        for b in rnd.randrange(1 << bits).to_bytes(4, "little")
    ]
    result = ScalarExecutor(int_coding_program()).run(data)
    assert result.outputs == int_coding_reference(data)


def test_decision_tree_isa_matches_golden():
    rnd = rng(23)
    model = make_gbt_model(rnd, n_features=4, n_trees=5, depth=4)
    points = [[rnd.randrange(1 << 20) for _ in range(4)]
              for _ in range(10)]
    stream = list(model.encode_header() + encode_points(points))
    result = ScalarExecutor(decision_tree_program()).run(stream)
    assert result.outputs == decision_tree_reference(model, points)


def test_smith_waterman_isa_matches_golden():
    rnd = rng(24)
    payload = [rnd.choice(b"ACGT") for _ in range(400)]
    stream = sw_make_stream(list(b"ACGTACGT"), 10, payload)
    result = ScalarExecutor(smith_waterman_program(8)).run(stream)
    assert result.outputs == smith_waterman_reference(stream, 8)


def test_regex_isa_matches_golden():
    rnd = rng(25)
    text = email_text(rnd, 2000)
    result = ScalarExecutor(regex_program()).run(text)
    assert result.outputs == regex_reference(text)


def test_bloom_isa_matches_golden():
    rnd = rng(26)
    data = [rnd.randrange(256) for _ in range(8 * 4 * 4)]
    program = bloom_program(block_size=8, num_hashes=4, section_bits=256)
    result = ScalarExecutor(program).run(data)
    assert result.outputs == bloom_reference(data, 8, 4, 256)


def test_simt_lanes_match_scalar_per_stream():
    rnd = rng(27)
    program = json_program()
    streams = [
        json_make_stream(JSON_FIELDS, json_records(rnd, 400))
        for _ in range(6)
    ]
    warp = SimtExecutor(program).run(streams)
    for stream, lane_out in zip(streams, warp.outputs):
        assert lane_out == ScalarExecutor(program).run(stream).outputs
