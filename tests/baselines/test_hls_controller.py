"""The HLS serial memory controller in isolation."""

from repro.baselines.hls import HlsSerialController, simulate_hls_memory
from repro.memory import MemoryConfig
from repro.memory.dram import DramChannel


def test_delivers_all_bytes_eventually():
    cfg = MemoryConfig().replace(refresh_interval=0, bank_gap_every=0)
    dram = DramChannel(cfg)
    controller = HlsSerialController(cfg, dram, n_streams=4,
                                     stream_bytes=512)
    for cycle in range(100_000):
        if controller.finished:
            break
        controller.step(cycle)
    assert controller.finished
    assert controller.bytes_delivered == 4 * 512


def test_round_robin_across_streams():
    cfg = MemoryConfig().replace(refresh_interval=0, bank_gap_every=0)
    dram = DramChannel(cfg)
    controller = HlsSerialController(cfg, dram, n_streams=4,
                                     stream_bytes=1 << 14)
    for cycle in range(3000):
        controller.step(cycle)
    consumed = [
        (1 << 14) - remaining for remaining in controller.remaining
    ]
    assert max(consumed) - min(consumed) <= cfg.burst_bytes


def test_serial_fill_bounds_throughput():
    # 64 bits/cycle fabric-side = 1 GB/s at 125 MHz, whatever the DRAM
    # could deliver.
    cfg = MemoryConfig().replace(dram_latency=0, refresh_interval=0,
                                 bank_gap_every=0)
    gbps = simulate_hls_memory(cfg, outstanding=8, fixed_cycles=20_000)
    assert gbps <= 1.0


def test_outstanding_window_hides_latency():
    cfg = MemoryConfig()
    one = simulate_hls_memory(cfg, outstanding=1, fixed_cycles=20_000)
    two = simulate_hls_memory(cfg, outstanding=2, fixed_cycles=20_000)
    assert two > one
