"""Input/output controller behaviour: round-robin, skipping, backpressure,
and the blocking/nonblocking addressing modes."""

from repro.memory import (
    ChannelSystem,
    EchoPu,
    MemoryConfig,
    RatePu,
    SinkPu,
)


def quiet(**overrides):
    base = dict(refresh_interval=0, bank_gap_every=0)
    base.update(overrides)
    return MemoryConfig().replace(**base)


class TestInputController:
    def test_all_streams_fully_delivered(self):
        cfg = quiet()
        pus = [SinkPu(1000 + 64 * i) for i in range(5)]
        system = ChannelSystem(cfg, pus)
        system.run(max_cycles=100_000)
        for pu in pus:
            assert pu.input_remaining == 0

    def test_round_robin_is_fair(self):
        cfg = quiet()
        pus = [SinkPu(1 << 14) for _ in range(8)]
        system = ChannelSystem(cfg, pus)
        system.run_for(2000)
        delivered = [pu.input_delivered for pu in pus]
        assert max(delivered) - min(delivered) <= cfg.burst_bytes

    def test_finished_streams_skipped(self):
        cfg = quiet()
        # one tiny stream among big ones: the controller must keep
        # feeding the others after it finishes
        pus = [SinkPu(128)] + [SinkPu(1 << 14) for _ in range(3)]
        system = ChannelSystem(cfg, pus)
        system.run_for(3000)
        assert pus[0].input_remaining == 0
        assert all(pu.input_delivered > 1024 for pu in pus[1:])

    def test_blocking_addressing_waits_on_slow_pu(self):
        # The paper's default is blocking because PUs "generally process
        # input at roughly the same rate"; when they don't, the blocking
        # unit throttles everyone to the slowest PU.
        cfg = quiet(input_blocking=True)
        pus = [RatePu(1 << 14, vcycles_per_token=64)] + [
            SinkPu(1 << 14) for _ in range(7)
        ]
        system = ChannelSystem(cfg, pus)
        system.run_for(8000)
        fast = min(pu.input_delivered for pu in pus[1:])
        assert fast <= pus[0].input_delivered + 2 * cfg.burst_bytes

    def test_nonblocking_addressing_isolates_slow_pu(self):
        cfg = quiet(input_blocking=False)
        pus = [RatePu(1 << 14, vcycles_per_token=64)] + [
            SinkPu(1 << 14) for _ in range(7)
        ]
        system = ChannelSystem(cfg, pus)
        system.run_for(8000)
        fast = min(pu.input_delivered for pu in pus[1:])
        assert fast > 2 * pus[0].input_delivered

    def test_sync_addressing_serializes(self):
        sync = quiet(burst_registers=1, async_addressing=False)
        async_ = quiet(burst_registers=1)
        results = {}
        for name, cfg in (("sync", sync), ("async", async_)):
            pus = [SinkPu(1 << 14) for _ in range(4)]
            system = ChannelSystem(cfg, pus)
            stats = system.run_for(4000)
            results[name] = stats.bytes_in
        assert results["async"] > 1.5 * results["sync"]

    def test_burst_registers_scale_throughput(self):
        results = {}
        for r in (1, 16):
            cfg = quiet(burst_registers=r)
            pus = [SinkPu(1 << 16) for _ in range(32)]
            system = ChannelSystem(cfg, pus)
            stats = system.run_for(4000)
            results[r] = stats.bytes_in
        assert results[16] > 8 * results[1]


class TestOutputController:
    def test_echo_outputs_everything(self):
        cfg = quiet()
        pus = [EchoPu(3000) for _ in range(4)]
        system = ChannelSystem(cfg, pus)
        stats = system.run(max_cycles=100_000)
        assert stats.bytes_out == 4 * 3000

    def test_partial_final_burst_flushed(self):
        cfg = quiet()
        pus = [EchoPu(100)]  # under one burst
        system = ChannelSystem(cfg, pus)
        stats = system.run(max_cycles=50_000)
        assert stats.bytes_out == 100

    def test_per_pu_output_regions_do_not_interleave(self):
        cfg = quiet()
        n, size = 4, 600
        data = bytearray(n * size + n * 1024)
        bases, out_bases = [], []
        offset = 0
        streams = []
        for i in range(n):
            stream = bytes([i + 1]) * size
            streams.append(stream)
            bases.append(offset)
            data[offset:offset + size] = stream
            offset += size
        for i in range(n):
            out_bases.append(offset)
            offset += 1024
        pus = [EchoPu(size) for _ in range(n)]
        system = ChannelSystem(cfg, pus, data=data, stream_bases=bases,
                               out_bases=out_bases)
        system.run(max_cycles=100_000)
        for i in range(n):
            region = bytes(data[out_bases[i]:out_bases[i] + size])
            assert region == streams[i]

    def test_nonblocking_skips_filtering_pus(self):
        # One PU produces no output; nonblocking addressing must still
        # drain the others promptly.
        cfg = quiet(output_blocking=False)
        pus = [SinkPu(1 << 14)] + [EchoPu(1 << 14) for _ in range(3)]
        system = ChannelSystem(cfg, pus)
        system.run_for(4000)
        assert sum(pu.output_taken for pu in pus[1:]) > 3000

    def test_blocking_stalls_on_skewed_output(self):
        # The paper's rationale for nonblocking output addressing: with
        # one filter-like PU, blocking mode throttles everyone.
        results = {}
        for blocking in (False, True):
            cfg = quiet(output_blocking=blocking)
            pus = [
                RatePu(1 << 14, vcycles_per_token=1,
                       output_ratio=0.001)
            ] + [EchoPu(1 << 14) for _ in range(3)]
            system = ChannelSystem(cfg, pus)
            system.run_for(6000)
            results[blocking] = sum(pu.output_taken for pu in pus)
        assert results[False] > 2 * results[True]
