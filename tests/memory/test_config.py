"""Memory configuration arithmetic."""

import pytest

from repro.memory import MemoryConfig


def test_default_matches_paper_f1_setup():
    cfg = MemoryConfig()
    assert cfg.bus_bytes == 64  # 512-bit AXI4 data bus
    assert cfg.burst_bytes == 128  # 1024-bit bursts
    assert cfg.port_width_bits == 32  # w = 32 on the F1
    assert cfg.burst_registers == 16  # r = 512/32
    assert cfg.frequency_hz == 125_000_000


def test_drain_cycles():
    cfg = MemoryConfig()
    # 128 bytes through a 4-byte port
    assert cfg.drain_cycles == 32


def test_gbps_conversion():
    cfg = MemoryConfig()
    # 64 bytes/cycle at 125 MHz = 8 GB/s
    assert cfg.gbps(64 * 1000, 1000) == pytest.approx(8.0)
    assert cfg.gbps(100, 0) == 0.0


def test_replace_preserves_and_overrides():
    cfg = MemoryConfig()
    other = cfg.replace(beats_per_burst=64, dram_latency=10)
    assert other.beats_per_burst == 64
    assert other.dram_latency == 10
    assert other.port_width_bits == cfg.port_width_bits
    assert cfg.beats_per_burst == 2  # original untouched


def test_replace_burst_registers_resets_outstanding_window():
    cfg = MemoryConfig()
    narrowed = cfg.replace(burst_registers=1)
    assert narrowed.max_outstanding == 2  # 2 * r
