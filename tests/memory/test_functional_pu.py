"""FunctionalPu: the computing PU model."""

import pytest

from repro.apps import identity_unit
from repro.lang import UnitBuilder
from repro.lang.errors import FleetSimulationError
from repro.memory import FunctionalPu


def test_requires_byte_tokens():
    b = UnitBuilder("wide", input_width=16, output_width=16)
    b.emit(b.input)
    with pytest.raises(FleetSimulationError, match="8-bit"):
        FunctionalPu(b.finish(), 100)


def test_requires_data_payloads():
    pu = FunctionalPu(identity_unit(), 8)
    with pytest.raises(FleetSimulationError, match="data-carrying"):
        pu.deliver_burst(0, 10, 8, payload=None)


def test_computes_and_times():
    pu = FunctionalPu(identity_unit(), 8)
    done = pu.deliver_burst(0, 4, 8, payload=bytes(range(8)))
    # 8 tokens at 1 vcycle each dominates the 4-cycle drain, plus the
    # cleanup virtual cycle at stream end
    assert done == 9
    assert bytes(pu.output_tokens) == bytes(range(8))
    assert pu.output_available(done) == 8


def test_multi_burst_stream():
    pu = FunctionalPu(identity_unit(), 6)
    pu.deliver_burst(0, 2, 4, payload=b"abcd")
    done = pu.deliver_burst(10, 12, 2, payload=b"ef")
    assert bytes(pu.output_tokens) == b"abcdef"
    assert pu.output_finished(done)


def test_wide_output_tokens_serialized_little_endian():
    b = UnitBuilder("w32", input_width=8, output_width=32)
    with b.when(b.not_(b.stream_finished)):
        b.emit(b.cat(b.input, b.input, b.input, b.input))
    pu = FunctionalPu(b.finish(), 1)
    done = pu.deliver_burst(0, 1, 1, payload=b"\x05")
    payload = pu.take_output(done, 4)
    assert payload == b"\x05\x05\x05\x05"
