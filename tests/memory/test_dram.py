"""DRAM/AXI channel model."""

import pytest

from repro.memory import DramChannel, MemoryConfig


def quiet_config(**overrides):
    """No refresh/bank noise: deterministic timing for unit tests."""
    base = dict(refresh_interval=0, bank_gap_every=0, turnaround_cycles=0)
    base.update(overrides)
    return MemoryConfig().replace(**base)


def drain(dram, cycles, read_accept=True):
    beats = []
    for _ in range(cycles):
        delivered = dram.step(read_accept=read_accept)
        if delivered is not None:
            beats.append(delivered)
    return beats


class TestReads:
    def test_latency_respected(self):
        cfg = quiet_config(dram_latency=10)
        dram = DramChannel(cfg)
        dram.submit_read(0, 2, tag="a")
        beats = drain(dram, 9)
        assert beats == []
        beats = drain(dram, 3)
        assert [b[1] for b in beats] == [0, 1]
        assert beats[-1][2] is True  # last flag

    def test_in_order_delivery_across_requests(self):
        cfg = quiet_config(dram_latency=2)
        dram = DramChannel(cfg)
        dram.submit_read(0, 1, tag="first")
        dram.submit_read(64, 1, tag="second")
        beats = drain(dram, 10)
        assert [b[0] for b in beats] == ["first", "second"]

    def test_read_accept_backpressure(self):
        cfg = quiet_config(dram_latency=1)
        dram = DramChannel(cfg)
        dram.submit_read(0, 1, tag="x")
        assert drain(dram, 5, read_accept=False) == []
        assert len(drain(dram, 5, read_accept=True)) == 1

    def test_data_mode_returns_memory_contents(self):
        cfg = quiet_config(dram_latency=1)
        data = bytearray(range(128)) + bytearray(128)
        dram = DramChannel(cfg, data=data)
        dram.submit_read(0, 2, tag="x")
        beats = drain(dram, 10)
        assert beats[0][3] == bytes(range(64))
        assert beats[1][3] == bytes(range(64, 128))


class TestWrites:
    def test_write_lands_in_memory(self):
        cfg = quiet_config(dram_latency=1)
        data = bytearray(128)
        dram = DramChannel(cfg, data=data)
        dram.submit_write(64, 1, tag="w")
        dram.push_write_beat("w", b"\xAB" * 64)
        drain(dram, 5)
        assert data[64:128] == b"\xAB" * 64

    def test_write_data_must_match_address_order(self):
        cfg = quiet_config()
        dram = DramChannel(cfg)
        dram.submit_write(0, 1, tag="w1")
        dram.submit_write(64, 1, tag="w2")
        with pytest.raises(AssertionError, match="address order"):
            dram.push_write_beat("w2", None)

    def test_write_waits_for_data(self):
        cfg = quiet_config()
        dram = DramChannel(cfg)
        dram.submit_write(0, 1, tag="w")
        drain(dram, 5)
        assert dram.write_beats == 0
        dram.push_write_beat("w", None)
        drain(dram, 2)
        assert dram.write_beats == 1


class TestBusSharing:
    def test_turnaround_penalty_applied(self):
        cfg = quiet_config(dram_latency=1, turnaround_cycles=4)
        dram = DramChannel(cfg)
        dram.submit_write(0, 1, tag="w")
        dram.push_write_beat("w", None)
        # bus starts in READ direction with no reads -> must switch
        drain(dram, 3)
        assert dram.write_beats == 0  # still turning around
        drain(dram, 3)
        assert dram.write_beats == 1

    def test_refresh_steals_cycles(self):
        cfg = MemoryConfig().replace(
            refresh_interval=10, refresh_cycles=5, dram_latency=0,
            bank_gap_every=0, turnaround_cycles=0,
        )
        dram = DramChannel(cfg)
        for i in range(6):
            dram.submit_read(i * 64, 1, tag=i)
        beats = drain(dram, 10)
        # half of every 10-cycle window is refresh
        assert len(beats) == 5

    def test_busy_counter_tracks_transfers(self):
        cfg = quiet_config(dram_latency=0)
        dram = DramChannel(cfg)
        dram.submit_read(0, 3, tag="x")
        drain(dram, 5)
        assert dram.busy_cycles == 3
