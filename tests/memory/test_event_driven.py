"""Event-driven fast-forwarding must be cycle-exact: every scenario is
run twice — pure stepping and event-driven — and the complete observable
state is compared, not just aggregate throughput."""

import pytest

from repro.apps import identity_unit
from repro.memory import (
    ChannelSystem,
    EchoPu,
    MemoryConfig,
    RatePu,
    SinkPu,
)
from repro.system import run_full_system

BASE = MemoryConfig()


def snapshot(system):
    ic = system.input_controller
    oc = system.output_controller
    dram = system.dram
    return {
        "cycle": system.cycle,
        "dram_cycle": dram.cycle,
        "read_beats": dram.read_beats,
        "write_beats": dram.write_beats,
        "busy_cycles": dram.busy_cycles,
        "bytes_delivered": ic.bytes_delivered,
        "bytes_accepted": oc.bytes_accepted,
        "input_rr": ic._rr,
        "output_rr": oc._rr,
        "register_free_at": tuple(r.free_at for r in ic._registers),
        "pu_free_at": tuple(pu.free_at for pu in system.pus),
        "pu_output_taken": tuple(pu.output_taken for pu in system.pus),
        "drained": system.drained(),
    }


def run_both(config, make_pus, *, fixed_cycles=None, max_cycles=300_000):
    snaps = []
    for event_driven in (False, True):
        system = ChannelSystem(
            config, make_pus(), event_driven=event_driven
        )
        if fixed_cycles is not None:
            system.run_for(fixed_cycles)
        else:
            system.run(max_cycles=max_cycles)
        snaps.append(snapshot(system))
    return snaps


SCENARIOS = {
    # Figure 9's three ablation points with the sink PU (fixed horizon).
    "fig9_none": (
        BASE.replace(burst_registers=1, async_addressing=False),
        lambda: [SinkPu(1 << 14) for _ in range(64)], 8_000,
    ),
    "fig9_async": (
        BASE.replace(burst_registers=1),
        lambda: [SinkPu(1 << 14) for _ in range(64)], 8_000,
    ),
    "fig9_full": (
        BASE,
        lambda: [SinkPu(1 << 14) for _ in range(64)], 8_000,
    ),
    # Output path engaged, run to drain.
    "echo": (
        BASE,
        lambda: [EchoPu(2048) for _ in range(32)], None,
    ),
    "echo_sync": (
        BASE.replace(burst_registers=1, async_addressing=False),
        lambda: [EchoPu(1024) for _ in range(16)], None,
    ),
    # Heterogeneous rates: the round-robin walk matters.
    "rate_mix": (
        BASE,
        lambda: [
            RatePu(2048, vcycles_per_token=1 + i % 5,
                   output_ratio=0.25 * (i % 3))
            for i in range(32)
        ], None,
    ),
    # Blocking ablations: the parked round-robin pointer matters.
    "blocking_out": (
        BASE.replace(output_blocking=True),
        lambda: [
            RatePu(1024, vcycles_per_token=1,
                   output_ratio=(1.0 if i % 7 == 0 else 0.05))
            for i in range(32)
        ], None,
    ),
    "blocking_in": (
        BASE.replace(input_blocking=True),
        lambda: [
            RatePu(1024, vcycles_per_token=(8 if i == 0 else 1))
            for i in range(32)
        ], None,
    ),
    # Slow consumers: long idle gaps, the fast path's best case.
    "long_drain": (
        BASE,
        lambda: [
            RatePu(1024, vcycles_per_token=60, output_ratio=0.1)
            for _ in range(8)
        ], None,
    ),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_event_driven_cycle_exact(name):
    config, make_pus, fixed = SCENARIOS[name]
    stepped, event = run_both(config, make_pus, fixed_cycles=fixed)
    assert stepped == event


def test_event_driven_run_to_drain_completes():
    system = ChannelSystem(
        BASE, [RatePu(1024, vcycles_per_token=60) for _ in range(8)]
    )
    stats = system.run()
    assert system.drained()
    assert stats.bytes_in == 8 * 1024


def test_full_system_event_driven_matches_stepped():
    unit = identity_unit()
    streams = [bytes(range(64)) * 4, b"fleet" * 50, b"\x00" * 96]
    results = [
        run_full_system(unit, streams, event_driven=event_driven)
        for event_driven in (False, True)
    ]
    stepped, event = results
    assert stepped.cycles == event.cycles
    assert stepped.outputs == event.outputs
    assert stepped.output_bytes == event.output_bytes
    # And the run round-trips the data through simulated DRAM intact.
    for stream, region in zip(streams, event.output_bytes):
        assert region == stream
