"""Shared fixtures for the test suite."""

import random

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite golden Verilog snapshots instead of comparing",
    )


@pytest.fixture
def update_goldens(request):
    """True when the run should rewrite golden snapshot files."""
    return request.config.getoption("--update-goldens")


@pytest.fixture
def rnd():
    """A deterministically seeded RNG per test."""
    return random.Random(0xF1EE7)


@pytest.fixture
def rnd_factory():
    """Factory for independently seeded RNGs."""
    return lambda seed: random.Random(seed)
