"""Shared fixtures for the test suite."""

import random

import pytest


@pytest.fixture
def rnd():
    """A deterministically seeded RNG per test."""
    return random.Random(0xF1EE7)


@pytest.fixture
def rnd_factory():
    """Factory for independently seeded RNGs."""
    return lambda seed: random.Random(seed)
