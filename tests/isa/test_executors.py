"""The baseline ISA: assembler, scalar executor, SIMT executor."""

import pytest

from repro.isa import (
    Program,
    ProgramBuilder,
    ScalarExecutor,
    SimtExecutor,
)
from repro.lang import FleetSimulationError


def echo_program():
    p = ProgramBuilder("echo", local_words=8)
    p.label("loop")
    p.intok("x", "eof")
    p.outtok("x")
    p.br("loop")
    p.label("eof")
    p.halt()
    return p.assemble()


class TestAssembler:
    def test_undefined_label_rejected(self):
        p = ProgramBuilder("bad")
        p.br("nowhere")
        with pytest.raises(ValueError, match="nowhere"):
            p.assemble()

    def test_duplicate_label_rejected(self):
        p = ProgramBuilder("bad")
        p.label("x")
        with pytest.raises(ValueError):
            p.label("x")

    def test_alu_names_not_confused_with_labels(self):
        p = ProgramBuilder("ok")
        p.label("shl")  # a label that shadows an ALU name
        p.shl("a", "a", 1)
        p.br("shl")
        program = p.assemble()
        assert isinstance(program, Program)

    def test_unknown_alu_rejected(self):
        p = ProgramBuilder("bad")
        with pytest.raises(ValueError):
            p.bin("frobnicate", "a", "b", "c")

    def test_registers_allocated_by_name(self):
        p = ProgramBuilder("regs")
        p.li("a", 1)
        p.li("b", 2)
        p.li("a", 3)
        assert p.assemble().n_regs == 2


class TestScalar:
    def test_echo(self):
        result = ScalarExecutor(echo_program()).run([1, 2, 3])
        assert result.outputs == [1, 2, 3]

    def test_op_counts_by_category(self):
        p = ProgramBuilder("count")
        p.li("a", 1)
        p.mul("a", "a", 7)
        p.add("a", "a", 1)
        p.store("a", 0)
        p.load("b", 0)
        p.halt()
        result = ScalarExecutor(p.assemble()).run([])
        assert result.op_counts["mul_alu"] == 1
        assert result.op_counts["bin"] == 1
        assert result.op_counts["load"] == 1
        assert result.op_counts["store"] == 1

    def test_blen_op(self):
        p = ProgramBuilder("bl")
        p.li("a", 0b10110)
        p.bin("blen", "b", "a", 0)
        p.outtok("b")
        p.halt()
        assert ScalarExecutor(p.assemble()).run([]).outputs == [5]

    def test_runaway_detected(self):
        p = ProgramBuilder("spin")
        p.label("loop")
        p.br("loop")
        program = p.assemble()
        with pytest.raises(FleetSimulationError):
            ScalarExecutor(program, max_steps=1000).run([])

    def test_branch_semantics(self):
        p = ProgramBuilder("br")
        p.intok("x", "done")
        p.brz("x", "zero")
        p.outtok(1)
        p.br("done")
        p.label("zero")
        p.outtok(0)
        p.label("done")
        p.halt()
        program = p.assemble()
        assert ScalarExecutor(program).run([5]).outputs == [1]
        assert ScalarExecutor(program).run([0]).outputs == [0]


class TestSimt:
    def test_lanes_isolated(self):
        result = SimtExecutor(echo_program()).run([[1, 2], [3], [4, 5, 6]])
        assert result.outputs == [[1, 2], [3], [4, 5, 6]]

    def test_identical_streams_fully_converged(self):
        result = SimtExecutor(echo_program()).run([[7, 8, 9]] * 8)
        assert result.divergence_factor == pytest.approx(1.0)

    def test_different_lengths_diverge_at_tail(self):
        result = SimtExecutor(echo_program()).run([[1] * 10, [1] * 5])
        assert result.divergence_factor > 1.0

    def test_data_dependent_branch_divergence(self):
        p = ProgramBuilder("div")
        p.label("loop")
        p.intok("x", "eof")
        p.brz("x", "zero")
        # a deliberately long taken-path
        for _ in range(10):
            p.add("y", "y", 1)
        p.br("loop")
        p.label("zero")
        p.sub("y", "y", 1)
        p.br("loop")
        p.label("eof")
        p.halt()
        program = p.assemble()
        converged = SimtExecutor(program).run([[1, 1, 1, 1]] * 2)
        diverged = SimtExecutor(program).run([[1, 1, 1, 1], [0, 0, 0, 0]])
        assert diverged.warp_issues > converged.warp_issues

    def test_warp_size_limit(self):
        with pytest.raises(FleetSimulationError):
            SimtExecutor(echo_program()).run([[1]] * 33)

    def test_lane_step_accounting(self):
        result = SimtExecutor(echo_program()).run([[1], [2]])
        assert result.lane_steps[0] == result.lane_steps[1]
        assert result.warp_issues == result.lane_steps[0]
