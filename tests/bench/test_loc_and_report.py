"""LoC counting and report formatting."""

from repro.bench import (
    PAPER_FIGURE7,
    PAPER_FIGURE8,
    count_source_lines,
    figure8_rows,
    format_figure8,
    format_figure9,
)


def test_count_skips_comments_and_docstrings():
    def sample():
        """A docstring.

        spanning lines.
        """
        x = 1  # a comment
        # a full-line comment
        return x

    assert count_source_lines(sample) == 3  # def, assign, return


def test_count_multiline_statements():
    def sample():
        value = (
            1
            + 2
        )
        return value

    assert count_source_lines(sample) == 6


def test_figure8_rows_cover_all_apps():
    rows = figure8_rows()
    assert {title for title, _, _ in rows} == set(PAPER_FIGURE8)
    for _, fleet_loc, isa_loc in rows:
        assert fleet_loc > 10
        assert isa_loc > 10


def test_format_figure8_includes_paper_values():
    text = format_figure8(figure8_rows())
    assert "JSON Parsing" in text
    assert "201" in text  # the paper's JSON LoC


def test_format_figure9():
    text = format_figure9([
        ("None", 1.0),
        ("Async. Addr. Supply", 1.9),
        ("Async. Addr. Supply & Burst Regs.", 27.5),
    ])
    assert "0.98" in text and "27.24" in text


def test_paper_constants_sanity():
    # transcription checks against the paper's Figure 7
    assert PAPER_FIGURE7["Regex"][0] == 704
    assert PAPER_FIGURE7["Smith-Waterman"][4] == 444.67
    assert PAPER_FIGURE7["Decision Tree"][5] == 0.59
