"""The `python -m repro.figures` command-line interface."""

import pytest

from repro.figures import main


def test_figure8_command(capsys):
    assert main(["figure8"]) == 0
    out = capsys.readouterr().out
    assert "JSON Parsing" in out and "Bloom Filter" in out


def test_figure9_fast_command(capsys):
    assert main(["figure9", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Burst Regs" in out
    assert "27.24" in out  # paper column present


def test_figure7_single_app(capsys):
    assert main(["figure7", "--apps", "regex", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Regex" in out
    assert "704" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["figure42"])
