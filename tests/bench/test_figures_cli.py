"""The `python -m repro.figures` command-line interface."""

import pytest

from repro.figures import main


def test_figure8_command(capsys):
    assert main(["figure8"]) == 0
    out = capsys.readouterr().out
    assert "JSON Parsing" in out and "Bloom Filter" in out


def test_figure9_fast_command(capsys):
    assert main(["figure9", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Burst Regs" in out
    assert "27.24" in out  # paper column present


def test_figure7_single_app(capsys):
    assert main(["figure7", "--apps", "regex", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "Regex" in out
    assert "704" in out


def test_figure7_explicit_design_override(capsys):
    assert main([
        "figure7", "--apps", "bloom_filter", "--fast",
        "--burst-registers", "8", "--layout-beats", "4",
        "--pu-count", "64",
    ]) == 0
    out = capsys.readouterr().out
    assert "Bloom Filter" in out
    assert "64" in out  # overridden PU count shows in the table


def test_figure7_tuned_designs(capsys):
    assert main(["figure7", "--apps", "bloom_filter", "--fast",
                 "--tuned"]) == 0
    out = capsys.readouterr().out
    assert "Bloom Filter" in out


def test_figure9_layout_override(capsys):
    assert main(["figure9", "--fast", "--layout-beats", "4"]) == 0
    assert "Burst Regs" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["figure42"])
