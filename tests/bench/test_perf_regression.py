"""The perf-regression harness: structure, exactness flags, and JSON
rendering (quick mode — CI smoke; the full run lives in benchmarks/)."""

import json

from repro.bench import format_perf, render_perf_json, run_perf_regression


def test_quick_run_structure_and_exactness():
    results = run_perf_regression(quick=True)
    assert results["quick"] is True
    names = [bench["name"] for bench in results["benchmarks"]]
    assert "unit_sim/json_parsing" in names
    assert "unit_sim/integer_coding" in names
    assert any(name.startswith("memory_sim/fig9") for name in names)
    for bench in results["benchmarks"]:
        # Exactness is deterministic and must always hold; the timing
        # floor is only asserted by the full benchmark run.
        assert bench["match"], bench["name"]
        assert bench["baseline"]["seconds"] > 0
        assert bench["fast"]["seconds"] > 0
    agg = results["aggregate"]
    assert agg["all_match"]
    assert agg["speedup"] > 0

    # Observability overhead section is present and well-formed; the
    # disabled-faster flag itself is only asserted by the full run
    # (quick-mode timings are too short to be stable).
    overhead = results["obs_overhead"]
    assert overhead["disabled_seconds"] > 0
    assert overhead["enabled_seconds"] > 0
    assert overhead["overhead_ratio"] > 0
    assert isinstance(overhead["disabled_faster"], bool)

    # Batch-engine section: exactness always holds; the 10x aggregate
    # floor is only asserted by the full benchmark run.
    batch = results["batch_engine"]
    if "cases" in batch:  # skipped when numpy is unavailable
        assert [c["name"] for c in batch["cases"]] == [
            f"batch_engine/{name}"
            for name in ("bloom_filter", "regex_match", "int_coding",
                         "smith_waterman")
        ]
        for case in batch["cases"]:
            assert case["match"], case["name"]
            assert case["backend"] in ("numpy", "cc")
            assert 0.0 <= case["occupancy"]["waste_fraction"] <= 1.0
        assert batch["aggregate"]["all_match"]

    rendered = render_perf_json(results)
    parsed = json.loads(rendered)
    assert parsed["aggregate"]["all_match"] is True

    table = format_perf(results)
    assert "unit_sim/json_parsing" in table
    assert "aggregate" in table
    if "cases" in batch:
        assert "batch_engine/bloom_filter" in table
        assert "batch aggregate" in table
