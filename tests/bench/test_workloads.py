"""Workload generators: reproducibility and the statistics the paper's
evaluation depends on."""

from repro.apps.json_parser import json_fields_reference
from repro.bench import workloads as wl


def test_rng_is_deterministic():
    assert wl.rng().random() == wl.rng().random()


class TestJsonRecords:
    def test_records_are_parseable_json(self):
        import json

        text = wl.json_records(wl.rng(), 3000)
        records = text.decode().strip().split("\n")
        assert len(records) > 5
        for record in records:
            parsed = json.loads(record)
            assert "user" in parsed and "status" in parsed

    def test_extraction_ratio_near_twenty_percent(self):
        # The paper's JSON workload reduces input by ~80%.
        text = wl.json_records(wl.rng(), 8000)
        out = json_fields_reference(wl.JSON_FIELDS, text)
        ratio = len(out) / len(text)
        assert 0.10 < ratio < 0.35

    def test_trims_to_whole_records(self):
        text = wl.json_records(wl.rng(), 2000)
        assert text.endswith(b"\n")


class TestIntegerStreams:
    def test_values_respect_range(self):
        data = bytes(wl.integer_stream(wl.rng(), 400, 10))
        for offset in range(0, len(data), 4):
            value = int.from_bytes(data[offset:offset + 4], "little")
            assert value < (1 << 10)

    def test_length_is_whole_integers(self):
        assert len(wl.integer_stream(wl.rng(), 403, 10)) % 4 == 0


class TestGbtModels:
    def test_model_indices_in_bounds(self):
        model = wl.make_gbt_model(wl.rng())
        for node in model.nodes:
            if not node.is_leaf:
                assert node.feature < model.n_features
                assert node.left < len(model.nodes)
                assert node.right < len(model.nodes)
        for root in model.roots:
            assert root < len(model.nodes)

    def test_model_fits_unit_capacity(self):
        model = wl.make_gbt_model(wl.rng())
        assert len(model.nodes) <= 4096
        assert len(model.roots) <= 32


class TestTextWorkloads:
    def test_email_text_contains_matches(self):
        from repro.apps import regex_reference

        text = wl.email_text(wl.rng(), 4000)
        assert len(regex_reference(text)) >= 5

    def test_dna_stream_has_header_and_planted_matches(self):
        from repro.apps import smith_waterman_reference

        stream = wl.dna_stream(wl.rng(), 6000)
        assert bytes(stream[:16]) == wl.SW_TARGET
        hits = smith_waterman_reference(stream, 16)
        assert hits  # the planted near-matches cross the threshold

    def test_dna_alphabet(self):
        stream = wl.dna_stream(wl.rng(), 500)
        assert set(stream[18:]) <= set(b"ACGT")


class TestCatalog:
    def test_catalog_covers_figure7(self):
        from repro.apps import PAPER_APPS
        from repro.bench.catalog import catalog

        specs = catalog()
        assert tuple(specs) == PAPER_APPS

    def test_stream_pairs_grow(self):
        from repro.bench.catalog import catalog

        for key, spec in catalog().items():
            for small, large in spec.stream_pairs(small=600, large=1800):
                assert len(large) > len(small), key

    def test_int_coding_spans_five_ranges(self):
        from repro.bench.catalog import catalog

        spec = catalog()["integer_coding"]
        assert len(spec.stream_pairs(small=320, large=640)) == 5

    def test_gpu_warps_share_headers(self):
        from repro.bench.catalog import catalog

        spec = catalog()["decision_tree"]
        (warp_small, warp_large), = spec.gpu_warp_pairs(
            lanes=3, small=400, large=800
        )
        assert len(warp_small) == 3
        # each lane gets its own model (per-stream state), all valid
        for stream in warp_small:
            assert stream[0] == 8  # n_features byte
