"""The software runtime: splitting, packing, multi-stream execution."""

import pytest

from repro.apps import json_field_unit, regex_match_unit, regex_reference
from repro.apps.json_parser import encode_field_table, json_fields_reference
from repro.bench.workloads import JSON_FIELDS, json_records, rng
from repro.lang import FleetSimulationError
from repro.system import (
    FleetRuntime,
    pack_streams,
    split_arbitrary,
    split_on_newlines,
)


class TestSplitters:
    def test_newline_split_preserves_bytes(self):
        data = b"aa\nbbb\ncccc\ndd\n"
        streams = split_on_newlines(data, 3)
        assert b"".join(streams) == data

    def test_newline_split_cuts_at_record_boundaries(self):
        data = b"one\ntwo\nthree\nfour\n"
        for stream in split_on_newlines(data, 2):
            assert stream.endswith(b"\n")

    def test_arbitrary_split_with_overlap(self):
        data = bytes(range(100))
        streams = split_arbitrary(data, 4, overlap=5)
        assert streams[0][-5:] == streams[1][:5]

    def test_single_stream_passthrough(self):
        assert split_on_newlines(b"abc", 1) == [b"abc"]

    def test_pack_alignment(self):
        buffer, offsets, lengths = pack_streams(
            [b"abc", b"defgh"], alignment=64
        )
        assert offsets == [0, 64]
        assert lengths == [3, 5]
        assert buffer[64:69] == b"defgh"


class TestRuntime:
    def test_multi_stream_json_extraction(self):
        rnd = rng(12)
        text = json_records(rnd, 3000)
        streams = split_on_newlines(text, 4)
        header = encode_field_table(JSON_FIELDS)
        runtime = FleetRuntime(json_field_unit(), header=header)
        outputs = runtime.run(streams)
        assert len(outputs) == len(streams)
        combined = runtime.run_concatenated(streams)
        # splitting at record boundaries must not change the result
        assert combined == json_fields_reference(JSON_FIELDS, text)

    def test_regex_split_positions_are_stream_local(self):
        rnd = rng(13)
        from repro.bench.workloads import email_text

        text = bytes(email_text(rnd, 1600))
        streams = split_arbitrary(text, 2)
        runtime = FleetRuntime(regex_match_unit())
        outputs = runtime.run(streams)
        for stream, hits in zip(streams, outputs):
            assert hits == regex_reference(list(stream))

    def test_empty_stream_list_rejected(self):
        runtime = FleetRuntime(json_field_unit())
        with pytest.raises(FleetSimulationError):
            runtime.run([])
