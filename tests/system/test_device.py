"""Device database arithmetic."""

from repro.system import AMAZON_F1, Device


def test_f1_is_the_vu9p():
    assert AMAZON_F1.channels == 4
    assert AMAZON_F1.frequency_hz == 125_000_000
    assert AMAZON_F1.bram36 == 2160
    assert AMAZON_F1.luts == 1_182_240


def test_usable_fractions_reserve_shell_and_controllers():
    assert AMAZON_F1.pu_luts < AMAZON_F1.luts
    # shell + headroom + controllers leave ~60% for PUs
    assert 0.5 < AMAZON_F1.pu_luts / AMAZON_F1.luts < 0.7


def test_uram_counts_toward_bram_pool_discounted():
    no_uram = Device(
        "x", luts=100, ffs=100, bram36=100, uram=0, dsp=0,
        channels=4, frequency_hz=1,
    )
    with_uram = Device(
        "y", luts=100, ffs=100, bram36=100, uram=10, dsp=0,
        channels=4, frequency_hz=1,
    )
    assert with_uram.pu_bram36 > no_uram.pu_bram36
    # discounted: 10 URAM (8 BRAM36 of bits each) count as 40
    assert with_uram.pu_bram36 - no_uram.pu_bram36 == int(40 * 0.9)
