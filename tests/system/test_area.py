"""Area estimation and device fitting."""

from repro.apps import identity_unit, int_coding_unit, regex_match_unit
from repro.compiler import compile_unit
from repro.memory import MemoryConfig
from repro.rtl import Module, ir
from repro.system import AMAZON_F1, estimate_module, fit_processing_units
from repro.system.area import MAX_PUS_TIMING, bram36_count


class TestBram36Count:
    def test_standard_modes(self):
        assert bram36_count(1024, 36) == 1
        assert bram36_count(2048, 18) == 1
        assert bram36_count(4096, 9) == 1
        assert bram36_count(32768, 1) == 1

    def test_deep_memories_cascade(self):
        assert bram36_count(8192, 8) == 2  # 9-bit mode, 4096 deep
        assert bram36_count(16384, 8) == 4

    def test_wide_memories_use_columns(self):
        assert bram36_count(1024, 112) == 4  # 4 x 28-bit columns
        assert bram36_count(1024, 72) == 2


class TestModuleEstimation:
    def test_register_ffs_counted(self):
        m = Module("m")
        r = m.reg("r", 13)
        r.next = r.q
        m.output("o", r.q)
        assert estimate_module(m).ffs == 13

    def test_small_arrays_become_lutram(self):
        m = Module("m")
        spec = m.bram("tiny", 16, 8)  # 128 bits -> LUTRAM
        spec.rd_addr = ir.Const(0, 4)
        spec.wr_en = ir.Const(0, 1)
        spec.wr_addr = ir.Const(0, 4)
        spec.wr_data = ir.Const(0, 8)
        m.output("o", spec.rd_data)
        est = estimate_module(m)
        assert est.bram36 == 0
        assert est.luts > 0

    def test_shared_nodes_counted_once(self):
        m1 = Module("shared")
        a1 = m1.input("a", 8)
        node = ir.truncate(a1 * a1, 8)
        m1.output("x", ir.truncate(node + node, 8))
        m2 = Module("dup")
        a2 = m2.input("a", 8)
        m2.output(
            "x",
            ir.truncate(
                ir.truncate(a2 * a2, 8) + ir.truncate(a2 * a2, 8), 8
            ),
        )
        assert estimate_module(m1).luts < estimate_module(m2).luts


class TestFitting:
    def test_app_ordering_matches_complexity(self):
        cfg = MemoryConfig()
        sizes = {}
        for name, unit in (
            ("regex", regex_match_unit()),
            ("identity", identity_unit()),
            ("int", int_coding_unit()),
        ):
            area = estimate_module(compile_unit(unit))
            sizes[name] = fit_processing_units(area, AMAZON_F1, cfg)
        # the tiny NFA fits the most, the coder the fewest
        assert sizes["int"] < sizes["regex"]
        assert sizes["int"] < sizes["identity"]

    def test_counts_are_hundreds_and_channel_aligned(self):
        cfg = MemoryConfig()
        area = estimate_module(compile_unit(int_coding_unit()))
        count = fit_processing_units(area, AMAZON_F1, cfg)
        assert 50 <= count <= MAX_PUS_TIMING
        assert count % AMAZON_F1.channels == 0

    def test_timing_envelope_caps_tiny_units(self):
        cfg = MemoryConfig()
        area = estimate_module(compile_unit(identity_unit()))
        assert fit_processing_units(area, AMAZON_F1, cfg) <= MAX_PUS_TIMING
