"""Full-system estimation: profiles, throughput composition, power."""

import pytest

from repro.apps import identity_unit, regex_match_unit, sink_unit
from repro.bench.workloads import email_text, rng
from repro.system import (
    DRAM_WATTS,
    evaluate_fleet_app,
    fpga_package_watts,
    perf_per_watt,
    profile_unit,
)
from repro.system.system_sim import profile_unit_marginal


class TestProfiles:
    def test_identity_profile(self):
        profile = profile_unit(identity_unit(), list(range(100)))
        assert profile.vcycles_per_token == pytest.approx(1.01, abs=0.01)
        assert profile.output_ratio == pytest.approx(1.0)

    def test_sink_profile_no_output(self):
        profile = profile_unit(sink_unit(), list(range(50)))
        assert profile.output_ratio == 0.0

    def test_marginal_profile_amortizes_header(self):
        # Smith-Waterman's header is tiny; use an artificial contrast:
        # the histogram flush makes absolute vcpt block-dependent.
        from repro.apps import block_frequencies_unit

        unit = block_frequencies_unit(block_size=10)
        small = [1] * 20
        large = [1] * 120
        marginal = profile_unit_marginal(unit, small, large)
        # steady state: 1 + 256/10 flush cycles per token
        assert marginal.vcycles_per_token == pytest.approx(
            1 + 25.6, rel=0.05
        )

    def test_marginal_requires_growth(self):
        unit = identity_unit()
        with pytest.raises(ValueError):
            profile_unit_marginal(unit, [1, 2, 3], [1, 2])


class TestEvaluation:
    def test_regex_app_reaches_memory_bound(self):
        rnd = rng(1)
        result = evaluate_fleet_app(
            "regex", regex_match_unit(), [email_text(rnd, 2500)],
            sim_cycles=10_000,
        )
        assert result.pu_count == 704
        assert result.theoretical_gbps == pytest.approx(88.0, rel=0.01)
        assert 20 < result.gbps < 30  # memory-bound near 27 GB/s
        assert result.perf_per_watt > result.perf_per_watt_dram

    def test_explicit_pu_count_honored(self):
        rnd = rng(2)
        result = evaluate_fleet_app(
            "regex", regex_match_unit(), [email_text(rnd, 2000)],
            sim_cycles=5_000, pu_count=8,
        )
        assert result.pu_count == 8
        # 8 PUs x 1 B/cycle x 125 MHz = 1 GB/s ceiling
        assert result.gbps <= result.theoretical_gbps <= 1.01


class TestPower:
    def test_package_power_scales_with_area(self):
        small = fpga_package_watts(10_000, 10_000, 10)
        large = fpga_package_watts(500_000, 500_000, 1000)
        assert large > small > 0

    def test_dram_adder(self):
        assert perf_per_watt(10, 20, False) == pytest.approx(0.5)
        assert perf_per_watt(10, 20, True) == pytest.approx(
            10 / (20 + DRAM_WATTS)
        )
