"""Multi-channel full-system runs (the F1's four independent channels)."""

from repro.apps import identity_unit
from repro.system import run_full_system


def test_results_identical_across_channel_counts(rnd):
    streams = [
        bytes(rnd.randrange(256) for _ in range(200 + 40 * i))
        for i in range(6)
    ]
    single = run_full_system(identity_unit(), streams, channels=1)
    quad = run_full_system(identity_unit(), streams, channels=4)
    assert quad.output_bytes == single.output_bytes
    assert [bytes(t) for t in quad.outputs] == list(streams)


def test_channels_reduce_makespan(rnd):
    streams = [bytes(rnd.randrange(256) for _ in range(1024))
               for _ in range(8)]
    single = run_full_system(identity_unit(), streams, channels=1)
    quad = run_full_system(identity_unit(), streams, channels=4)
    # four independent channels share the load: strictly faster
    assert quad.cycles < single.cycles


def test_more_channels_than_streams(rnd):
    streams = [b"ab", b"cde"]
    result = run_full_system(identity_unit(), streams, channels=4)
    assert result.output_bytes == [b"ab", b"cde"]
