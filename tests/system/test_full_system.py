"""End-to-end integration: real streams through DRAM, controllers, and
functional processing units in one cycle-level simulation."""

import pytest

from repro.apps import (
    identity_unit,
    json_field_unit,
    regex_match_unit,
    regex_reference,
)
from repro.apps.json_parser import encode_field_table, json_fields_reference
from repro.bench.workloads import JSON_FIELDS, email_text, json_records, rng
from repro.lang.errors import FleetSimulationError
from repro.memory import MemoryConfig
from repro.system import split_on_newlines
from repro.system.full_system import run_full_system


def test_identity_round_trips_through_dram(rnd):
    streams = [
        bytes(rnd.randrange(256) for _ in range(300 + 50 * i))
        for i in range(4)
    ]
    result = run_full_system(identity_unit(), streams)
    for stream, tokens, region in zip(
        streams, result.outputs, result.output_bytes
    ):
        assert bytes(tokens) == stream  # unit outputs
        assert region == stream  # DRAM write-back
    assert result.cycles > 0


def test_json_extraction_end_to_end():
    rnd_local = rng(41)
    text = json_records(rnd_local, 4000)
    streams = split_on_newlines(text, 4)
    header = encode_field_table(JSON_FIELDS)
    result = run_full_system(json_field_unit(), streams, header=header)
    combined = b"".join(result.output_bytes)
    assert combined == bytes(
        json_fields_reference(JSON_FIELDS, text)
    )


def test_regex_end_to_end_with_32bit_outputs():
    rnd_local = rng(42)
    streams = [bytes(email_text(rnd_local, 900)) for _ in range(3)]
    result = run_full_system(regex_match_unit(), streams)
    for stream, tokens in zip(streams, result.outputs):
        assert tokens == regex_reference(list(stream))
    # output regions hold 4-byte little-endian positions
    for tokens, region in zip(result.outputs, result.output_bytes):
        decoded = [
            int.from_bytes(region[i:i + 4], "little")
            for i in range(0, len(region), 4)
        ]
        assert decoded == tokens


def test_slow_memory_changes_timing_not_results(rnd):
    streams = [bytes(rnd.randrange(256) for _ in range(256))
               for _ in range(2)]
    fast = run_full_system(identity_unit(), streams)
    slow_config = MemoryConfig().replace(
        dram_latency=200, burst_registers=1, async_addressing=False
    )
    slow = run_full_system(identity_unit(), streams, config=slow_config)
    assert slow.output_bytes == fast.output_bytes
    assert slow.cycles > fast.cycles


def test_empty_stream_list_rejected():
    with pytest.raises(FleetSimulationError):
        run_full_system(identity_unit(), [])
