"""Area scales with the logic a unit actually contains — the property
behind Figure 7's PU counts and Figure 8's generator-program argument."""

from repro.apps import regex_match_unit, smith_waterman_unit
from repro.compiler import compile_unit
from repro.system import estimate_module


def test_regex_area_scales_with_pattern():
    small = estimate_module(compile_unit(regex_match_unit("ab")))
    large = estimate_module(
        compile_unit(regex_match_unit("[a-z]+@[a-z]+(com|org|net|edu)"))
    )
    assert large.luts > small.luts
    assert large.ffs > small.ffs


def test_smith_waterman_area_scales_with_target_length():
    m8 = estimate_module(compile_unit(smith_waterman_unit(8)))
    m16 = estimate_module(compile_unit(smith_waterman_unit(16)))
    # the row is m cells of compare-select logic: roughly linear
    assert 1.5 < m16.luts / m8.luts < 3.0


def test_runtime_checks_cost_area():
    from repro.apps import json_field_unit

    unit = json_field_unit()
    plain = estimate_module(compile_unit(unit))
    checked = estimate_module(
        compile_unit(unit, insert_runtime_checks=True)
    )
    assert checked.luts > plain.luts
    assert checked.ffs == plain.ffs + 1  # the sticky error flag


def test_forwarding_elision_saves_registers():
    from repro.apps import block_frequencies_unit

    unit = block_frequencies_unit()
    full = estimate_module(compile_unit(unit))
    elided = estimate_module(
        compile_unit(unit, elide_forwarding=("frequencies",))
    )
    assert elided.ffs < full.ffs
    assert elided.luts <= full.luts
