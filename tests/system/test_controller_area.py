"""Parametric controller cost model and binding-resource fractions."""

import pytest

from repro.memory import MemoryConfig
from repro.system import AMAZON_F1, area_fraction, estimate_controllers
from repro.system.area import (
    CONTROLLER_BASE_LUTS,
    CONTROLLER_REGISTER_LUTS,
    AreaEstimate,
    fit_processing_units,
)


def test_default_config_matches_paper_tenth():
    """At r=16, 1024-bit bursts, the four channel pairs take ~10% of the
    F1's LUTs — the paper's measured controller share."""
    pair = estimate_controllers(MemoryConfig())
    total = pair.luts * AMAZON_F1.channels
    assert total / AMAZON_F1.luts == pytest.approx(0.10, rel=0.01)


def test_luts_grow_linearly_with_registers():
    shallow = estimate_controllers(MemoryConfig().replace(burst_registers=4))
    deep = estimate_controllers(MemoryConfig().replace(burst_registers=32))
    # Pair = 2x per-controller, so slope is 2 * REGISTER_LUTS per r.
    assert deep.luts - shallow.luts == 2 * CONTROLLER_REGISTER_LUTS * 28
    assert shallow.luts == 2 * (
        CONTROLLER_BASE_LUTS + 4 * CONTROLLER_REGISTER_LUTS
    )


def test_store_moves_to_bram_for_deep_bursts():
    small = estimate_controllers(MemoryConfig())  # 16 Kb: stays in FFs
    assert small.bram36 == 0
    assert small.ffs > 2 * 16 * 1024  # control FFs + burst store
    big = estimate_controllers(
        MemoryConfig().replace(beats_per_burst=16)
    )  # 16 regs x 8 KiB bursts = 1 Mb per controller
    assert big.bram36 > 0
    assert big.ffs < small.ffs  # storage left the flip-flops


def test_fit_shrinks_when_controllers_budgeted():
    unit = AreaEstimate(luts=1_000, ffs=800, bram36=1)
    config = MemoryConfig().replace(burst_registers=32)
    default_fit = fit_processing_units(unit, AMAZON_F1, config)
    budgeted_fit = fit_processing_units(
        unit, AMAZON_F1, config,
        controller_area=estimate_controllers(config),
    )
    # r=32 controllers cost more than the fixed 10% assumption covers.
    assert budgeted_fit < default_fit
    assert budgeted_fit % AMAZON_F1.channels == 0


def test_area_fraction_takes_binding_resource():
    lut_bound = AreaEstimate(luts=500_000, ffs=0, bram36=0)
    bram_bound = AreaEstimate(luts=0, ffs=0, bram36=2_000)
    assert area_fraction(lut_bound, AMAZON_F1) == pytest.approx(
        500_000 / (AMAZON_F1.luts * AMAZON_F1.usable_fraction)
    )
    brams = (AMAZON_F1.bram36 + AMAZON_F1.uram * 4) * \
        AMAZON_F1.bram_usable_fraction
    assert area_fraction(bram_bound, AMAZON_F1) == pytest.approx(
        2_000 / brams
    )
