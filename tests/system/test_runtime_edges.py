"""Runtime edge cases: empty and single-token streams, stream counts
that don't divide the channel count, odd output token widths, and the
split/pack helpers' boundary behavior."""

import pytest

from repro.interp import UnitSimulator
from repro.lang import UnitBuilder
from repro.lang.errors import FleetSimulationError
from repro.system import (
    FleetRuntime,
    pack_streams,
    run_full_system,
    split_arbitrary,
    split_on_newlines,
)


def _flush_sum_unit():
    """Sums a byte stream, emits one 12-bit total on end-of-stream —
    exercises the cleanup cycle and a non-byte output width."""
    b = UnitBuilder("flush_sum", input_width=8, output_width=12)
    acc = b.reg("acc", width=12)
    with b.when(b.stream_finished):
        b.emit(acc)
    with b.otherwise():
        acc.set((acc + b.input).bits(11, 0))
    return b.finish()


def _echo_unit():
    b = UnitBuilder("echo", input_width=8, output_width=8)
    with b.when(b.stream_finished.logical_not()):
        b.emit(b.input)
    return b.finish()


def _expected(unit, streams):
    return [UnitSimulator(unit).run(list(s)) for s in streams]


def test_no_streams_rejected():
    unit = _echo_unit()
    with pytest.raises(FleetSimulationError):
        FleetRuntime(unit).run([])
    with pytest.raises(FleetSimulationError):
        run_full_system(unit, [])


def test_empty_stream_still_runs_cleanup_cycle():
    """A zero-byte stream has no bursts but its stream_finished virtual
    cycle still runs; flush-on-finish units must emit through the full
    system exactly as they do in the functional simulator."""
    unit = _flush_sum_unit()
    streams = [b"", b"abc", b""]
    result = run_full_system(unit, streams)
    assert result.outputs == _expected(unit, streams) == [[0], [294], [0]]


def test_single_token_streams():
    unit = _flush_sum_unit()
    streams = [b"\x01", b"\xff", b"\x00"]
    result = run_full_system(unit, streams)
    assert result.outputs == _expected(unit, streams)


def test_stream_count_not_divisible_by_channels():
    unit = _echo_unit()
    streams = [bytes([i] * (i + 1)) for i in range(5)]
    want = _expected(unit, streams)
    for channels in (2, 3, 4):
        result = run_full_system(unit, streams, channels=channels)
        # Round-robin over channels, reassembled in stream order.
        assert result.outputs == want, f"channels={channels}"


def test_more_channels_than_streams():
    unit = _echo_unit()
    streams = [b"ab", b"cd"]
    result = run_full_system(unit, streams, channels=5)
    assert result.outputs == _expected(unit, streams)


def test_odd_output_width_packs_to_whole_bytes():
    """12-bit tokens travel as 2 little-endian bytes through the output
    region; decoding the raw bytes must reproduce the token stream."""
    unit = _flush_sum_unit()
    streams = [b"abc", b"", b"\xff\xff\xff"]
    result = run_full_system(unit, streams)
    for tokens, raw in zip(result.outputs, result.output_bytes):
        assert len(raw) == 2 * len(tokens)
        decoded = [
            int.from_bytes(raw[i:i + 2], "little")
            for i in range(0, len(raw), 2)
        ]
        assert decoded == tokens


def test_event_driven_and_stepped_agree_on_edge_streams():
    unit = _flush_sum_unit()
    streams = [b"", b"x", b"hello world"]
    fast = run_full_system(unit, streams, event_driven=True)
    slow = run_full_system(unit, streams, event_driven=False)
    assert fast.outputs == slow.outputs
    assert fast.cycles == slow.cycles


def test_split_on_newlines_edges():
    assert split_on_newlines(b"", 4) == [b""]
    # No newline anywhere: nothing to cut at, one stream.
    assert split_on_newlines(b"abcdef", 3) == [b"abcdef"]
    # Fewer records than streams: every record preserved, no empties.
    data = b"a\nb\n"
    streams = split_on_newlines(data, 8)
    assert b"".join(streams) == data
    assert all(streams)
    # Every split preserves content in order.
    data = b"one\ntwo\nthree\nfour\nfive\n"
    for n in (1, 2, 3, 5, 9):
        assert b"".join(split_on_newlines(data, n)) == data


def test_split_arbitrary_edges():
    assert split_arbitrary(b"", 3) == [b""]
    data = bytes(range(100))
    for n in (1, 3, 7, 100, 101):
        streams = split_arbitrary(data, n)
        assert b"".join(streams) == data
    # Overlap duplicates the seam bytes into the previous stream.
    streams = split_arbitrary(data, 4, overlap=2)
    size = 25
    for i, stream in enumerate(streams[:-1]):
        assert stream == data[i * size:(i + 1) * size + 2]


def test_pack_streams_edges():
    buffer, offsets, lengths = pack_streams([])
    assert (buffer, offsets, lengths) == (b"", [], [])
    buffer, offsets, lengths = pack_streams([b"", b"ab", b""],
                                            alignment=16)
    assert lengths == [0, 2, 0]
    assert all(offset % 16 == 0 for offset in offsets)
    assert buffer[offsets[1]:offsets[1] + 2] == b"ab"
