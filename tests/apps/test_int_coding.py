"""Integer coding: codec laws, the unit, and round-trips."""

import pytest

from repro.apps import (
    int_coding_decode,
    int_coding_reference,
    int_coding_unit,
)
from repro.interp import UnitSimulator


def encode_ints(ints):
    data = b"".join(x.to_bytes(4, "little") for x in ints)
    return list(data)


class TestGoldenCodec:
    @pytest.mark.parametrize("bits", [3, 5, 10, 15, 20, 25, 31, 32])
    def test_round_trip_all_ranges(self, rnd_factory, bits):
        rnd = rnd_factory(bits)
        ints = [rnd.randrange(1 << bits) for _ in range(32)]
        encoded = int_coding_reference(encode_ints(ints))
        assert int_coding_decode(encoded, 8) == ints

    def test_small_values_compress_well(self):
        ints = [1, 2, 3, 0] * 4
        encoded = int_coding_reference(encode_ints(ints))
        # 4 blocks x (1 header + 1 main byte) = 8 bytes for 64 input bytes
        assert len(encoded) == 8

    def test_incompressible_values_bounded_overhead(self, rnd):
        ints = [rnd.randrange(1 << 32) for _ in range(16)]
        encoded = int_coding_reference(encode_ints(ints))
        # worst case: width 32 -> 17 bytes per 16-byte block
        assert len(encoded) <= 17 * 4

    def test_exception_block_round_trips(self):
        # three small + one huge: a classic patched-frame case
        ints = [3, 1, 2, 0xFFFFFFFF]
        encoded = int_coding_reference(encode_ints(ints))
        assert int_coding_decode(encoded, 1) == ints
        assert len(encoded) < 17  # cheaper than the raw width-32 encoding

    def test_partial_block_dropped(self):
        data = encode_ints([1, 2, 3, 4, 5])  # 1 extra int
        encoded = int_coding_reference(data)
        assert int_coding_decode(encoded, 1) == [1, 2, 3, 4]

    def test_mixed_modes_appear(self, rnd):
        # exceptions exist in both varbyte-cheaper and fixed-cheaper
        # flavors across random blocks
        modes = set()
        for seed in range(40):
            import random as _r

            r = _r.Random(seed)
            ints = [
                r.randrange(1 << r.choice((4, 28, 31))) for _ in range(4)
            ]
            encoded = int_coding_reference(encode_ints(ints))
            header = encoded[0]
            if header & 0xF:
                modes.add(encoded[1] >> 7)
        assert modes == {0, 1}


class TestUnit:
    @pytest.mark.parametrize("bits", [5, 15, 25, 32])
    def test_unit_matches_reference(self, rnd_factory, bits):
        rnd = rnd_factory(100 + bits)
        data = encode_ints([rnd.randrange(1 << bits) for _ in range(12)])
        unit = int_coding_unit()
        assert UnitSimulator(unit).run(data) == int_coding_reference(data)

    def test_unit_output_decodes(self, rnd):
        ints = [rnd.randrange(1 << 18) for _ in range(8)]
        unit = int_coding_unit()
        out = UnitSimulator(unit).run(encode_ints(ints))
        assert int_coding_decode(out, 2) == ints

    def test_compression_ratio_varies_with_range(self, rnd_factory):
        unit = int_coding_unit()
        sizes = {}
        for bits in (5, 25):
            rnd = rnd_factory(bits)
            data = encode_ints(
                [rnd.randrange(1 << bits) for _ in range(20)]
            )
            sim = UnitSimulator(unit)
            sizes[bits] = len(sim.run(data))
        assert sizes[5] < sizes[25]
