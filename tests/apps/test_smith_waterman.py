"""Smith-Waterman fuzzy matching."""

from repro.apps import smith_waterman_reference, smith_waterman_unit
from repro.apps.smith_waterman import make_stream
from repro.interp import UnitSimulator


def run(target, threshold, payload, m=None):
    m = m or len(target)
    unit = smith_waterman_unit(target_length=m)
    stream = make_stream(list(target), threshold, list(payload))
    out = UnitSimulator(unit).run(stream)
    assert out == smith_waterman_reference(stream, m)
    return out


def test_exact_match_found():
    # full match scores 2*m; threshold 2*m demands exactness
    hits = run(b"ACGT", 8, b"TTTTACGTTTT")
    assert hits == [7]  # match ends at payload index 7


def test_no_match_below_threshold():
    assert run(b"ACGT", 8, b"TTTTTTTT") == []


def test_fuzzy_match_with_one_mismatch():
    # 7 matches + 1 mismatch: score 2*7 - ... >= 10
    hits = run(b"ACGTACGT", 10, b"XXACGTACCTXX"[:12])
    assert hits  # near-match detected


def test_overlapping_matches_emit_multiple_positions():
    hits = run(b"AA", 4, b"AAAA")
    assert hits == [1, 2, 3]


def test_position_counts_payload_only():
    # header bytes must not shift reported positions
    hits = run(b"AC", 4, b"XXAC")
    assert hits == [3]


def test_threshold_is_16_bit():
    # threshold 300 can never be reached with m=4 (max score 8)
    unit = smith_waterman_unit(target_length=4)
    stream = make_stream(list(b"ACGT"), 300, list(b"ACGTACGT"))
    assert UnitSimulator(unit).run(stream) == []


def test_one_cycle_per_character(rnd):
    unit = smith_waterman_unit(target_length=8)
    payload = [rnd.choice(b"ACGT") for _ in range(50)]
    stream = make_stream(list(b"ACGTACGT"), 12, payload)
    sim = UnitSimulator(unit)
    sim.run(stream)
    assert sim.trace.total_vcycles == len(stream) + 1  # strictly serial


def test_gap_alignment_scores():
    # target ACGT vs payload ACGGT: insertion, still above low threshold
    hits = run(b"ACGT", 5, b"ACGGT")
    assert hits
