"""Identity and sink units."""

from repro.apps import identity_reference, identity_unit, sink_unit
from repro.interp import UnitSimulator


def test_identity_echoes_stream(rnd):
    tokens = [rnd.randrange(256) for _ in range(100)]
    unit = identity_unit()
    assert UnitSimulator(unit).run(tokens) == identity_reference(tokens)


def test_identity_emits_nothing_for_empty_stream():
    assert UnitSimulator(identity_unit()).run([]) == []


def test_identity_wide_tokens(rnd):
    unit = identity_unit(token_width=16)
    tokens = [rnd.randrange(1 << 16) for _ in range(20)]
    assert UnitSimulator(unit).run(tokens) == tokens


def test_sink_consumes_everything_silently(rnd):
    unit = sink_unit()
    sim = UnitSimulator(unit)
    assert sim.run([rnd.randrange(256) for _ in range(64)]) == []
    assert sim.peek_reg("consumed") == 65  # includes the cleanup cycle


def test_identity_one_cycle_per_token(rnd):
    sim = UnitSimulator(identity_unit())
    sim.run([1] * 37)
    assert sim.trace.total_vcycles == 38
