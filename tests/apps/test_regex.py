"""Regex parsing, Glushkov construction, and the NFA-circuit unit."""

import re

import pytest

from repro.apps import build_automaton, regex_match_unit, regex_reference
from repro.apps.regex import EMAIL_PATTERN, RegexSyntaxError
from repro.interp import UnitSimulator


def oracle_end_positions(pattern, text):
    """Brute force: j is a hit iff some substring ending at j fully
    matches. O(n^2) but independent of our construction."""
    return [
        j
        for j in range(len(text))
        if any(
            re.fullmatch(pattern, text[i:j + 1]) for i in range(j + 1)
        )
    ]


@pytest.mark.parametrize("pattern,text", [
    ("abc", "zabcabcz"),
    ("a+", "aaabaa"),
    ("ab*c", "ac abc abbbbc"),
    ("a(b|c)d", "abd acd aed"),
    ("[0-9]+", "a12b345"),
    ("[^a]b", "ab cb bb"),
    ("(ab)+", "ababab"),
    ("a.c", "abc axc a\nc"),
    ("colou?r", "color colour colr"),
])
def test_reference_matches_re_oracle(pattern, text):
    assert regex_reference(list(text.encode()), pattern) == (
        oracle_end_positions(pattern, text)
    )


@pytest.mark.parametrize("pattern,text", [
    ("ab*(c|d)+", "abdcc xacd abbbbd"),
    ("[a-c]+x", "abcx bx zx"),
])
def test_unit_matches_reference(pattern, text):
    unit = regex_match_unit(pattern)
    data = list(text.encode())
    assert UnitSimulator(unit).run(data) == regex_reference(data, pattern)


def test_email_pattern_on_realistic_text():
    text = (b"reach me at first.last+tag@company-name.co.uk today, "
            b"not at bad@@x or @nothing")
    unit = regex_match_unit(EMAIL_PATTERN)
    out = UnitSimulator(unit).run(list(text))
    assert out == regex_reference(list(text), EMAIL_PATTERN)
    assert out  # the real address matched


class TestParser:
    def test_nullable_patterns_rejected(self):
        for pattern in ("a*", "a?", "(a|b)*", ""):
            with pytest.raises(RegexSyntaxError):
                build_automaton(pattern)

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(RegexSyntaxError):
            build_automaton("(ab")

    def test_bad_range_rejected(self):
        with pytest.raises(RegexSyntaxError):
            build_automaton("[z-a]")

    def test_escaped_metachars(self):
        auto = build_automaton(r"\.\*")
        assert auto.size == 2

    def test_position_count_is_character_count(self):
        auto = build_automaton("a(b|c)d*e")
        assert auto.size == 5

    def test_char_class_negation(self):
        auto = build_automaton("[^abc]")
        assert ord("a") not in auto.classes[0]
        assert ord("z") in auto.classes[0]


def test_state_register_count_matches_positions():
    pattern = "a(b|c)+d"
    unit = regex_match_unit(pattern)
    auto = build_automaton(pattern)
    state_regs = [r for r in unit.regs if r.name.startswith("state_")]
    assert len(state_regs) == auto.size
