"""Bloom filter construction."""

from repro.apps import bloom_contains, bloom_filter_unit, bloom_reference
from repro.interp import UnitSimulator

CFG = dict(block_size=8, num_hashes=4, section_bits=256)


def items_to_bytes(items):
    return [b for item in items for b in item.to_bytes(4, "little")]


def test_unit_matches_reference(rnd):
    data = [rnd.randrange(256) for _ in range(8 * 4 * 3)]
    unit = bloom_filter_unit(**CFG)
    assert UnitSimulator(unit).run(data) == bloom_reference(data, **CFG)


def test_no_false_negatives(rnd):
    items = [rnd.randrange(1 << 32) for _ in range(8)]
    unit = bloom_filter_unit(**CFG)
    out = UnitSimulator(unit).run(items_to_bytes(items))
    filter_bytes = out[: 4 * 32]
    for item in items:
        assert bloom_contains(filter_bytes, item, 4, 256)


def test_filters_reset_between_blocks(rnd):
    items = [rnd.randrange(1 << 32) for _ in range(16)]
    unit = bloom_filter_unit(**CFG)
    out = UnitSimulator(unit).run(items_to_bytes(items))
    first, second = out[:128], out[128:]
    # second block's filter contains only the second block's items
    for item in items[:8]:
        if not bloom_contains(second, item, 4, 256):
            break
    else:
        # all first-block items "present" in block 2 would mean the
        # filter was never cleared (or an astronomical FP coincidence)
        raise AssertionError("filter not cleared between blocks")


def test_partial_block_not_emitted(rnd):
    unit = bloom_filter_unit(**CFG)
    out = UnitSimulator(unit).run(items_to_bytes([1, 2, 3]))
    assert out == []


def test_output_size_per_block():
    unit = bloom_filter_unit(**CFG)
    out = UnitSimulator(unit).run(items_to_bytes(list(range(8))))
    assert len(out) == CFG["num_hashes"] * CFG["section_bits"] // 8


def test_duplicate_items_idempotent():
    unit = bloom_filter_unit(**CFG)
    once = UnitSimulator(unit).run(items_to_bytes([7] * 8))
    unit2 = bloom_filter_unit(**CFG)
    twice = UnitSimulator(unit2).run(items_to_bytes([7, 7, 7, 7] * 2))
    assert once == twice


def test_false_positive_rate_reasonable(rnd):
    # 8 items, 4 hashes, 256-bit sections: FP rate should be small.
    items = [rnd.randrange(1 << 32) for _ in range(8)]
    unit = bloom_filter_unit(**CFG)
    out = UnitSimulator(unit).run(items_to_bytes(items))
    filter_bytes = out[: 4 * 32]
    probes = [rnd.randrange(1 << 32) for _ in range(300)]
    false_positives = sum(
        1
        for p in probes
        if p not in items and bloom_contains(filter_bytes, p, 4, 256)
    )
    assert false_positives / len(probes) < 0.15
