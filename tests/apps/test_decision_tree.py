"""Gradient-boosted decision tree evaluation."""

from repro.apps import (
    GbtModel,
    TreeNode,
    decision_tree_reference,
    decision_tree_unit,
    encode_points,
)
from repro.interp import UnitSimulator

UNIT_CFG = dict(max_features=8, max_trees=4, max_nodes=32)


def simple_model():
    """One stump: feature0 < 100 -> 10 else 20."""
    nodes = [
        TreeNode(is_leaf=True, value=10),
        TreeNode(is_leaf=True, value=20),
        TreeNode(is_leaf=False, feature=0, threshold=100, left=0, right=1),
    ]
    return GbtModel(2, [2], nodes)


def run(model, points):
    unit = decision_tree_unit(**UNIT_CFG)
    stream = list(model.encode_header() + encode_points(points))
    out = UnitSimulator(unit).run(stream)
    assert out == decision_tree_reference(model, points)
    return out


def test_stump_left_right():
    model = simple_model()
    out = run(model, [[50, 0], [150, 0]])
    assert out == [10, 0, 0, 0, 20, 0, 0, 0]


def test_threshold_boundary_goes_right():
    # traversal rule: left iff feature < threshold (strict)
    model = simple_model()
    assert model.predict([100, 0]) == 20
    run(model, [[100, 0], [99, 0]])


def test_ensemble_sums_leaf_values():
    nodes = [
        TreeNode(is_leaf=True, value=5),
        TreeNode(is_leaf=True, value=7),
    ]
    model = GbtModel(1, [0, 1], nodes)  # two single-leaf trees
    assert model.predict([0]) == 12
    run(model, [[123]])


def test_accumulator_wraps_32_bits():
    nodes = [TreeNode(is_leaf=True, value=0xFFFFFFFF)]
    model = GbtModel(1, [0, 0], nodes)  # sum = 2*(2^32-1) wraps
    expected = (2 * 0xFFFFFFFF) & 0xFFFFFFFF
    assert model.predict([0]) == expected
    out = run(model, [[1]])
    assert int.from_bytes(bytes(out), "little") == expected


def test_deep_tree_traversal(rnd):
    # depth-4 complete tree on 3 features
    nodes = []

    def build(depth):
        if depth == 0:
            nodes.append(TreeNode(is_leaf=True,
                                  value=rnd.randrange(1000)))
            return len(nodes) - 1
        left = build(depth - 1)
        right = build(depth - 1)
        nodes.append(TreeNode(is_leaf=False, feature=rnd.randrange(3),
                              threshold=rnd.randrange(1 << 16),
                              left=left, right=right))
        return len(nodes) - 1

    root = build(4)
    model = GbtModel(3, [root], nodes)
    points = [[rnd.randrange(1 << 17) for _ in range(3)]
              for _ in range(5)]
    run(model, points)


def test_bram_bound_cycle_cost():
    """Two virtual cycles per visited node (the paper's explanation for
    the decision tree being Fleet's slowest app)."""
    model = simple_model()
    unit = decision_tree_unit(**UNIT_CFG)
    stream = list(model.encode_header() + encode_points([[50, 0]]))
    sim = UnitSimulator(unit)
    sim.run(stream)
    # loading: 1 vcycle/byte; eval: root fetch(1) + 2 nodes x 2 + emit 4
    eval_cycles = 1 + 2 * 2 + 4
    assert sim.trace.total_vcycles == len(stream) + eval_cycles + 1
