"""JSON field extraction: table building, the unit, and the golden model."""

import pytest

from repro.apps import json_field_unit, json_fields_reference
from repro.apps.json_parser import (
    TERMINAL_BIT,
    build_field_table,
    make_stream,
)
from repro.interp import UnitSimulator


def run(fields, text, **kwargs):
    unit = json_field_unit(**kwargs)
    out = UnitSimulator(unit).run(make_stream(fields, text))
    ref = json_fields_reference(fields, text)
    assert out == ref
    return bytes(out)


class TestFieldTable:
    def test_shared_prefixes_share_states(self):
        entries = build_field_table(["ab", "ac"])
        # a, then b and c: 3 edges
        assert len(entries) == 3

    def test_terminal_bits_set_on_last_edge(self):
        entries = dict(build_field_table(["ab"]))
        values = sorted(entries.values())
        assert sum(1 for v in values if v & TERMINAL_BIT) == 1

    def test_state_overflow_rejected(self):
        with pytest.raises(ValueError, match="trie states"):
            build_field_table(["abcdefghij"], max_states=5)

    def test_empty_field_rejected(self):
        with pytest.raises(ValueError):
            build_field_table([""])


class TestExtraction:
    def test_simple_string_value(self):
        assert run(["name"], b'{"name":"alice"}') == b"alice\n"

    def test_number_value(self):
        assert run(["n"], b'{"n":42,"m":1}') == b"42\n"

    def test_nested_path(self):
        assert run(["a.b"], b'{"a":{"b":"deep"}}') == b"deep\n"

    def test_deeply_nested_path(self):
        assert run(["a.b.c"], b'{"a":{"b":{"c":7}}}') == b"7\n"

    def test_sibling_fields(self):
        assert run(["a.b", "a.c"], b'{"a":{"c":2,"b":1}}') == b"2\n1\n"

    def test_unmatched_keys_ignored(self):
        assert run(["x"], b'{"a":1,"b":"two"}') == b""

    def test_prefix_key_does_not_match(self):
        # "ab" is a target; key "a" must not match.
        assert run(["ab"], b'{"a":1,"ab":2}') == b"2\n"

    def test_array_value_emitted_with_brackets(self):
        assert run(["a"], b'{"a":[1,[2],"x"]}') == b'[1,[2],"x"]\n'

    def test_object_value_descends_not_emitted(self):
        assert run(["a"], b'{"a":{"inner":1}}') == b""

    def test_escapes_kept_raw(self):
        assert run(["s"], b'{"s":"x\\"y"}') == b'x\\"y\n'

    def test_booleans_and_null(self):
        assert (
            run(["t", "u"], b'{"t":true,"u":null}') == b"true\nnull\n"
        )

    def test_multiple_records(self):
        text = b'{"k":1}\n{"k":2}\n{"j":0}\n{"k":3}'
        assert run(["k"], text) == b"1\n2\n3\n"

    def test_same_key_in_nested_context_not_matched(self):
        # "b" alone must not match the nested a.b.
        assert run(["b"], b'{"a":{"b":1},"b":2}') == b"2\n"

    def test_whitespace_tolerated(self):
        assert run(["k"], b'{ "k" : 5 , "j" : 1 }') == b"5\n"

    def test_matched_value_inside_unmatched_object_skipped(self):
        assert run(["a.b"], b'{"z":{"b":9},"a":{"b":1}}') == b"1\n"

    def test_empty_object(self):
        assert run(["k"], b"{}") == b""

    def test_strings_with_braces_do_not_confuse_nesting(self):
        assert run(["k"], b'{"j":"}{","k":1}') == b"1\n"

    def test_empty_field_table_extracts_nothing(self):
        unit = json_field_unit()
        stream = make_stream([], b'{"k":1}')
        assert UnitSimulator(unit).run(stream) == []


def test_reference_and_unit_agree_on_generated_records(rnd):
    from repro.bench.workloads import JSON_FIELDS, json_records

    text = json_records(rnd, 2500)
    run(list(JSON_FIELDS), text)
