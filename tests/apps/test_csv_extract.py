"""CSV column extraction, oracle-checked against Python's csv module."""

import csv
import io
import random

import pytest

from repro.apps.csv_extract import (
    csv_extract_reference,
    csv_extract_unit,
    decode_fields,
)
from repro.compiler import UnitTestbench
from repro.interp import UnitSimulator
from repro.lang import prove_program


def csv_oracle(columns, text):
    """Selected fields per the csv module (rows must be '\\n'-terminated)."""
    reader = csv.reader(io.StringIO(text.decode()))
    fields = []
    for row in reader:
        for index in sorted(set(columns)):
            if index < len(row):
                fields.append(row[index].encode())
    return fields


def run(columns, text):
    unit = csv_extract_unit(columns)
    out = UnitSimulator(unit).run(list(text))
    assert out == csv_extract_reference(columns, text)
    return decode_fields(out)


class TestExtraction:
    def test_plain_columns(self):
        fields = run((0, 2), b"a,b,c\nd,e,f\n")
        assert fields == [b"a", b"c", b"d", b"f"]

    def test_quoted_field_with_comma(self):
        fields = run((1,), b'x,"a,b",z\n')
        assert fields == [b"a,b"]

    def test_doubled_quote_escape(self):
        fields = run((0,), b'"say ""hi""",rest\n')
        assert fields == [b'say "hi"']

    def test_quoted_newline_inside_field(self):
        fields = run((1,), b'a,"two\nlines",c\n')
        assert fields == [b"two\nlines"]

    def test_empty_fields(self):
        fields = run((0, 1, 2), b",,\n")
        assert fields == [b"", b"", b""]

    def test_quote_mid_field_is_literal(self):
        # csv semantics: quotes only matter at field start
        fields = run((0,), b'ab"cd,e\n')
        assert fields == [b'ab"cd']

    def test_missing_columns_skipped(self):
        fields = run((5,), b"a,b\n")
        assert fields == []

    def test_matches_csv_module_oracle(self):
        rnd = random.Random(17)
        cells = ["plain", 'q"uote', "with,comma", "", "multi\nline", "v1"]
        rows = []
        for _ in range(30):
            row = [rnd.choice(cells) for _ in range(rnd.randrange(1, 5))]
            rows.append(row)
        buffer = io.StringIO()
        csv.writer(buffer, lineterminator="\n").writerows(rows)
        text = buffer.getvalue().encode()
        columns = (0, 2)
        fields = run(columns, text)
        assert fields == csv_oracle(columns, text)

    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            csv_extract_unit(())
        with pytest.raises(ValueError):
            csv_extract_unit((300,))


class TestUnitProperties:
    def test_one_cycle_per_character(self):
        text = b"a,b,c\n1,2,3\n"
        sim = UnitSimulator(csv_extract_unit((1,)))
        sim.run(list(text))
        assert sim.trace.total_vcycles == len(text) + 1

    def test_no_brams_needed(self):
        unit = csv_extract_unit((0, 3))
        assert not unit.brams

    def test_statically_proven(self):
        assert prove_program(csv_extract_unit((0, 2))).ok

    def test_rtl_crosscheck(self):
        text = b'id,"name, full",age\n1,"Ada ""L""",36\n'
        unit = csv_extract_unit((1, 2))
        expected = UnitSimulator(unit).run(list(text))
        outputs, _ = UnitTestbench(unit).run(list(text))
        assert outputs == expected
