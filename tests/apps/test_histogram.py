"""The paper's Figure 3 running example."""

from repro.apps import block_frequencies_reference, block_frequencies_unit
from repro.interp import UnitSimulator


def test_single_block_counts(rnd):
    unit = block_frequencies_unit(block_size=10)
    tokens = [rnd.randrange(256) for _ in range(10)]
    out = UnitSimulator(unit).run(tokens)
    assert len(out) == 256
    for value in range(256):
        assert out[value] == tokens.count(value)


def test_block_boundaries_reset_counts(rnd):
    unit = block_frequencies_unit(block_size=4)
    tokens = [1, 1, 2, 3, 7, 7, 7, 7]
    out = UnitSimulator(unit).run(tokens)
    first, second = out[:256], out[256:]
    assert first[1] == 2 and first[2] == 1 and first[3] == 1
    assert second[7] == 4 and second[1] == 0


def test_partial_final_block_not_emitted():
    unit = block_frequencies_unit(block_size=4)
    out = UnitSimulator(unit).run([1, 2, 3])  # under one block
    assert out == []


def test_exact_multiple_flushes_final_block():
    unit = block_frequencies_unit(block_size=4)
    out = UnitSimulator(unit).run([5, 5, 5, 5])
    assert len(out) == 256
    assert out[5] == 4


def test_counts_wrap_at_width():
    unit = block_frequencies_unit(block_size=300, count_width=8)
    tokens = [9] * 300
    out = UnitSimulator(unit).run(tokens)
    assert out[9] == 300 % 256


def test_reference_matches_unit(rnd):
    unit = block_frequencies_unit(block_size=9)
    tokens = [rnd.randrange(256) for _ in range(95)]
    assert UnitSimulator(unit).run(tokens) == block_frequencies_reference(
        tokens, 9
    )


def test_vcycle_cost_structure(rnd):
    # Per completed block: 256 flush vcycles + one per token.
    unit = block_frequencies_unit(block_size=10)
    sim = UnitSimulator(unit)
    sim.run([rnd.randrange(256) for _ in range(30)])
    assert sim.trace.total_vcycles == 30 + 3 * 256 + 1
