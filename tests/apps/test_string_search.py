"""Multi-pattern string search (Aho-Corasick DFA unit)."""

import random

import pytest

from repro.apps.string_search import (
    AhoCorasick,
    make_stream,
    string_search_reference,
    string_search_unit,
)
from repro.compiler import UnitTestbench
from repro.interp import UnitSimulator
from repro.lang import prove_program


def naive_end_positions(patterns, text):
    """Brute-force oracle, independent of the automaton."""
    text = bytes(text)
    return sorted({
        i + len(p) - 1
        for p in map(bytes, patterns)
        for i in range(len(text) - len(p) + 1)
        if text[i:i + len(p)] == p
    })


def run(patterns, text):
    automaton = AhoCorasick(patterns)
    unit = string_search_unit()
    out = UnitSimulator(unit).run(make_stream(automaton, text))
    assert out == automaton.scan(text)
    assert out == naive_end_positions(patterns, text)
    return automaton, out


class TestAutomaton:
    def test_simple_match(self):
        _, hits = run([b"abc"], b"xxabcxxabc")
        assert hits == [4, 9]

    def test_overlapping_patterns(self):
        # classic AC example: he / she / his / hers
        _, hits = run([b"he", b"she", b"his", b"hers"], b"ushers")
        assert hits == [3, 5]  # "she"/"he" end at 3, "hers" at 5

    def test_pattern_inside_pattern(self):
        _, hits = run([b"ab", b"abab"], b"ababab")
        assert hits == [1, 3, 5]

    def test_failure_links_across_patterns(self):
        _, hits = run([b"aab", b"ab"], b"aaab")
        assert hits == [3]

    def test_resolve_identifies_patterns(self):
        automaton, hits = run([b"he", b"she", b"hers"], b"ushers")
        assert automaton.resolve(b"ushers", 3) == [0, 1]  # he, she
        assert automaton.resolve(b"ushers", 5) == [2]  # hers

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick([b""])

    def test_state_budget_enforced(self):
        with pytest.raises(ValueError, match="states"):
            AhoCorasick([bytes(range(100))], max_states=16)

    def test_randomized_against_oracle(self):
        rnd = random.Random(31)
        patterns = [
            bytes(rnd.choice(b"ab") for _ in range(rnd.randrange(1, 5)))
            for _ in range(4)
        ]
        text = bytes(rnd.choice(b"ab") for _ in range(300))
        reference = string_search_reference(patterns, text)
        assert reference == naive_end_positions(patterns, text)


class TestUnit:
    def test_one_cycle_per_character(self):
        automaton = AhoCorasick([b"needle"])
        text = b"a haystack with a needle in it"
        stream = make_stream(automaton, text)
        sim = UnitSimulator(string_search_unit())
        sim.run(stream)
        assert sim.trace.total_vcycles == len(stream) + 1

    def test_rtl_crosscheck(self):
        automaton = AhoCorasick([b"he", b"she", b"hers"])
        stream = make_stream(automaton, b"she sells seashells; ushers")
        unit = string_search_unit()
        expected = UnitSimulator(unit).run(stream)
        outputs, _ = UnitTestbench(unit).run(stream)
        assert outputs == expected
        assert expected  # matches exist

    def test_statically_proven(self):
        assert prove_program(string_search_unit()).ok
