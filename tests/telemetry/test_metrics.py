"""Unit tests for the process-wide metrics registry
(:mod:`repro.telemetry.metrics`): counters, gauges, log-bucketed
histograms, snapshot/delta semantics, enablement, and the hypothesis
property that merged histograms are indistinguishable from one that
recorded every observation itself.

Every test records into a private :class:`MetricsRegistry` where it
can, and wraps any use of the module-level constructors in
``enabled_scope`` + ``reset`` so nothing leaks into other tests.
"""

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry import metrics
from repro.telemetry.metrics import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    delta,
    enabled_scope,
    histogram_percentile,
    merge_histogram_samples,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


def _only_sample(snap, name):
    samples = snap[name]["samples"]
    assert len(samples) == 1
    return samples[0]


# -- enablement ---------------------------------------------------------------

def test_disabled_records_nothing(registry):
    with enabled_scope(False):
        counter = registry.counter("t_c_total", "help")
        counter.inc()
        registry.gauge("t_g", "help").set(5)
        registry.histogram("t_h", "help").observe(1.0)
        snap = registry.snapshot()
    # No child is even created: zero samples, zero allocation.
    assert all(not fam["samples"] for fam in snap.values())


def test_enabled_scope_restores_previous_force():
    metrics.enable()
    try:
        with enabled_scope(False):
            assert not metrics.enabled()
        assert metrics.enabled()
    finally:
        metrics.use_env()


def test_fleet_metrics_env_flag(monkeypatch):
    metrics.use_env()
    monkeypatch.setenv("FLEET_METRICS", "1")
    assert metrics.enabled()
    monkeypatch.setenv("FLEET_METRICS", "0")
    assert not metrics.enabled()
    monkeypatch.delenv("FLEET_METRICS")
    assert not metrics.enabled()


def test_fleet_metrics_env_invalid_raises(monkeypatch):
    from repro.envcfg import FleetConfigError

    metrics.use_env()
    monkeypatch.setenv("FLEET_METRICS", "maybe")
    with pytest.raises(FleetConfigError):
        metrics.enabled()
    monkeypatch.delenv("FLEET_METRICS")


# -- counters / gauges --------------------------------------------------------

def test_counter_inc_and_labels(registry):
    with enabled_scope():
        counter = registry.counter("t_jobs_total", "help", ("tenant",))
        counter.inc(tenant="a")
        counter.inc(2, tenant="a")
        counter.inc(tenant="b")
        snap = registry.snapshot()
    samples = {
        s["labels"]["tenant"]: s["value"]
        for s in snap["t_jobs_total"]["samples"]
    }
    assert samples == {"a": 3, "b": 1}


def test_gauge_set_and_add(registry):
    with enabled_scope():
        gauge = registry.gauge("t_depth", "help")
        gauge.set(7)
        gauge.add(-2)
        snap = registry.snapshot()
    assert _only_sample(snap, "t_depth")["value"] == 5


def test_reregistration_same_family(registry):
    first = registry.counter("t_same_total", "help", ("x",))
    again = registry.counter("t_same_total", "other help", ("x",))
    assert first is again


def test_reregistration_mismatch_raises(registry):
    registry.counter("t_kind_total", "help")
    with pytest.raises(ValueError):
        registry.gauge("t_kind_total", "help")
    registry.counter("t_labels_total", "help", ("a",))
    with pytest.raises(ValueError):
        registry.counter("t_labels_total", "help", ("b",))


def test_reset_clears_values_but_keeps_families(registry):
    with enabled_scope():
        counter = registry.counter("t_reset_total", "help")
        counter.inc(5)
        registry.reset()
        assert not registry.snapshot()["t_reset_total"]["samples"]
        # The held reference must keep recording into the registry —
        # this is the stale-cached-child regression test.
        counter.inc(2)
        snap = registry.snapshot()
    assert _only_sample(snap, "t_reset_total")["value"] == 2


def test_counter_thread_safety(registry):
    with enabled_scope():
        counter = registry.counter("t_race_total", "help")

        def spin():
            for _ in range(1_000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = registry.snapshot()
    assert _only_sample(snap, "t_race_total")["value"] == 4_000


# -- histograms ---------------------------------------------------------------

def test_histogram_observe_and_buckets(registry):
    with enabled_scope():
        hist = registry.histogram("t_lat", "help")
        hist.observe(0.0)
        hist.observe(3.0)   # lands in the le=4 bucket
        hist.observe(4.0)   # exact bound lands in its own bucket
        hist.observe(2.0 ** 40)  # beyond the top bound: overflow
        snap = registry.snapshot()
    sample = _only_sample(snap, "t_lat")
    assert sample["count"] == 4
    assert sample["sum"] == 0.0 + 3.0 + 4.0 + 2.0 ** 40
    cumulative = dict(
        (le, count) for le, count in sample["buckets"]
    )
    assert cumulative[0.0] == 1
    assert cumulative[2.0] == 1
    assert cumulative[4.0] == 3
    assert cumulative["+Inf"] == 4
    # Cumulative counts never decrease.
    counts = [count for _le, count in sample["buckets"]]
    assert counts == sorted(counts)


def test_observe_many_matches_observe(registry):
    values = [0.5, 1.0, 17.0, 300.0, 2.0 ** 35]
    with enabled_scope():
        one = registry.histogram("t_one", "help")
        many = registry.histogram("t_many", "help")
        for value in values:
            one.observe(value)
        many.observe_many(values)
        snap = registry.snapshot()
    a = _only_sample(snap, "t_one")
    b = _only_sample(snap, "t_many")
    assert (a["count"], a["sum"], a["buckets"]) == (
        b["count"], b["sum"], b["buckets"]
    )


def test_histogram_percentile_empty_and_basic(registry):
    with enabled_scope():
        hist = registry.histogram("t_pct", "help")
        sample = {"count": 0, "buckets": []}
        assert histogram_percentile(sample, 99) == 0.0
        hist.observe_many([1.0] * 99 + [1000.0])
        sample = _only_sample(registry.snapshot(), "t_pct")
    assert histogram_percentile(sample, 50) == 1.0
    # p100 crosses into the bucket holding the 1000.0 outlier.
    assert histogram_percentile(sample, 100) == 1024.0


# -- merge property -----------------------------------------------------------

_VALUES = st.lists(
    st.floats(
        min_value=0.0, max_value=2.0 ** 34,
        allow_nan=False, allow_infinity=False,
    ),
    max_size=50,
)


@given(shards=st.lists(_VALUES, min_size=1, max_size=5))
def test_merged_histogram_equals_unmerged(shards):
    """Bucket-wise merging N per-shard histograms is indistinguishable
    from one histogram that observed every value itself — the roll-up
    primitive the dashboard and cross-device aggregation rely on."""
    registry = MetricsRegistry()
    with enabled_scope():
        whole = registry.histogram("t_whole", "help")
        sharded = registry.histogram("t_shard", "help", ("shard",))
        for index, values in enumerate(shards):
            whole.observe_many(values)
            sharded.observe_many(values, shard=str(index))
        snap = registry.snapshot()
    merged = merge_histogram_samples(
        snap["t_shard"]["samples"]
    )
    if not snap["t_whole"]["samples"]:
        # Every shard was empty: observe_many([]) records nothing.
        assert merged["count"] == 0
        return
    expected = _only_sample(snap, "t_whole")
    assert merged["count"] == expected["count"]
    assert merged["buckets"] == expected["buckets"]
    assert merged["sum"] == pytest.approx(expected["sum"])
    for pct in (50, 90, 99, 100):
        assert histogram_percentile(merged, pct) == (
            histogram_percentile(expected, pct)
        )


# -- snapshot / delta ---------------------------------------------------------

def test_delta_counters_and_gauges(registry):
    with enabled_scope():
        counter = registry.counter("t_d_total", "help")
        gauge = registry.gauge("t_d_depth", "help")
        counter.inc(3)
        gauge.set(10)
        before = registry.snapshot()
        counter.inc(4)
        gauge.set(2)
        after = registry.snapshot()
    diff = delta(after, before)
    assert _only_sample(diff, "t_d_total")["value"] == 4
    # Gauges keep the current reading, not a difference.
    assert _only_sample(diff, "t_d_depth")["value"] == 2


def test_delta_histogram_and_new_series(registry):
    with enabled_scope():
        hist = registry.histogram("t_d_lat", "help", ("app",))
        hist.observe(1.0, app="a")
        before = registry.snapshot()
        hist.observe(1.0, app="a")
        hist.observe(2.0, app="b")  # new series after `before`
        after = registry.snapshot()
    diff = delta(after, before)
    by_app = {
        s["labels"]["app"]: s for s in diff["t_d_lat"]["samples"]
    }
    assert by_app["a"]["count"] == 1
    assert by_app["b"]["count"] == 1  # new series keeps full value
    assert BUCKET_BOUNDS[0] == 0.0  # shared bounds stay anchored
