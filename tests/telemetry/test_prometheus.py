"""Prometheus text-exposition tests: rendering a snapshot, the strict
validator, and round-trip of the serve demo's live registry."""

import pytest

from repro.telemetry import render_prometheus, validate_prometheus
from repro.telemetry.metrics import MetricsRegistry, enabled_scope


@pytest.fixture
def registry():
    return MetricsRegistry()


def _page(registry):
    return render_prometheus(registry.snapshot())


def test_render_counter_gauge(registry):
    with enabled_scope():
        registry.counter("t_reqs_total", "requests", ("code",)).inc(
            3, code="200"
        )
        registry.gauge("t_depth", "queue depth").set(7)
    page = _page(registry)
    assert "# HELP t_reqs_total requests" in page
    assert "# TYPE t_reqs_total counter" in page
    assert 't_reqs_total{code="200"} 3' in page
    assert "t_depth 7" in page
    validate_prometheus(page)


def test_render_histogram(registry):
    with enabled_scope():
        registry.histogram("t_lat", "latency").observe_many(
            [0.5, 3.0, 100.0]
        )
    page = _page(registry)
    assert 't_lat_bucket{le="+Inf"} 3' in page
    assert "t_lat_count 3" in page
    assert "t_lat_sum 103.5" in page
    validate_prometheus(page)


def test_label_escaping(registry):
    with enabled_scope():
        registry.counter("t_esc_total", "h", ("path",)).inc(
            path='a"b\\c\nd'
        )
    page = _page(registry)
    assert r'path="a\"b\\c\nd"' in page
    validate_prometheus(page)


def test_invalid_metric_name_raises():
    snapshot = {
        "bad-name": {
            "type": "counter", "help": "h", "labelnames": [],
            "samples": [{"labels": {}, "value": 1}],
        }
    }
    with pytest.raises(ValueError):
        render_prometheus(snapshot)


def test_validator_rejects_missing_type():
    with pytest.raises(AssertionError):
        validate_prometheus("t_orphan_total 3\n")


def test_validator_rejects_negative_counter():
    page = (
        "# HELP t_neg_total h\n"
        "# TYPE t_neg_total counter\n"
        "t_neg_total -1\n"
    )
    with pytest.raises(AssertionError):
        validate_prometheus(page)


def test_validator_rejects_non_cumulative_histogram():
    page = (
        "# HELP t_h h\n"
        "# TYPE t_h histogram\n"
        't_h_bucket{le="1"} 5\n'
        't_h_bucket{le="2"} 3\n'
        't_h_bucket{le="+Inf"} 5\n'
        "t_h_sum 1\n"
        "t_h_count 5\n"
    )
    with pytest.raises(AssertionError):
        validate_prometheus(page)


def test_validator_rejects_empty_page():
    with pytest.raises(AssertionError):
        validate_prometheus("\n")


def test_serve_demo_page_validates():
    """The live registry after a real serve run renders a page the
    strict validator accepts — the same check CI runs."""
    from repro.serve.__main__ import run_demo
    from repro.telemetry import metrics

    with enabled_scope():
        metrics.reset()
        _report, server = run_demo(jobs=6, seed=7)
        server.stop()
        page = render_prometheus(metrics.snapshot())
        metrics.reset()
    validate_prometheus(page)
    assert "fleet_serve_jobs_submitted_total" in page
    assert "fleet_serve_stream_vcycles_bucket" in page
