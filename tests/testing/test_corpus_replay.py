"""Replay every corpus entry: seed programs and shrunk fuzzer repros
are permanent regression tests — the bugs they pinned must stay fixed."""

import os

import pytest

from repro.testing import corpus

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "corpus")

ENTRIES = corpus.load_dir(CORPUS_DIR)


def test_corpus_is_populated():
    assert len(ENTRIES) >= 10, "seed corpus shrank below its floor"


@pytest.mark.parametrize(
    "name,entry", ENTRIES, ids=[name for name, _ in ENTRIES]
)
def test_replay(name, entry):
    corpus.replay(entry, rtl=True, verilog=True)


def test_required_scenarios_present():
    descriptions = " ".join(e["description"] for _, e in ENTRIES).lower()
    for scenario in ("forward", "while", "mutually exclusive", "wide"):
        assert scenario in descriptions, (
            f"seed corpus lost its {scenario!r} scenario"
        )


def test_save_and_reload_roundtrip(tmp_path):
    name, entry = ENTRIES[0]
    path = corpus.save_repro(
        str(tmp_path), seed="rt:1", stage=None,
        spec=entry["spec"], streams=entry["streams"],
        description=entry["description"],
    )
    assert corpus.load(path)["spec"] == entry["spec"]
    with pytest.raises(ValueError):
        bad = tmp_path / "bad.json"
        bad.write_text('{"description": "no spec"}')
        corpus.load(str(bad))
