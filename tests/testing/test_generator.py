"""The typed program generator: determinism, well-formedness, coverage."""

import random

from repro.interp.simulator import UnitSimulator
from repro.testing import generator as gen_mod
from repro.testing import spec as spec_mod

N_PROGRAMS = 80


def _rng(i):
    return random.Random(f"gen-test:{i}")


def test_deterministic_from_seed():
    for i in range(10):
        a_spec = gen_mod.generate_spec(_rng(i))
        b_spec = gen_mod.generate_spec(_rng(i))
        assert a_spec == b_spec
        rng_a, rng_b = _rng(i), _rng(i)
        gen_mod.generate_spec(rng_a)
        gen_mod.generate_spec(rng_b)
        assert (gen_mod.generate_streams(rng_a, a_spec)
                == gen_mod.generate_streams(rng_b, b_spec))


def test_every_program_builds_and_interprets_cleanly():
    """Well-formed by construction: the oracle never raises a restriction
    error on a generated program, on any generated stream."""
    for i in range(N_PROGRAMS):
        rng = _rng(i)
        spec = gen_mod.generate_spec(rng)
        unit = spec_mod.build_unit(spec)  # builder + static analysis
        for stream in gen_mod.generate_streams(rng, spec):
            UnitSimulator(unit, engine="interp").run(stream)


def test_every_program_emits():
    for i in range(N_PROGRAMS):
        spec = gen_mod.generate_spec(_rng(i))
        assert any(
            s[0] == "emit"
            for s in spec_mod.walk_statements(spec["body"])
        )


def test_feature_distribution_covers_language():
    """The generator must exercise all the major language features across
    a modest budget — a collapsed distribution would gut the fuzzer."""
    seen = set()
    for i in range(N_PROGRAMS):
        seen |= spec_mod.features(gen_mod.generate_spec(_rng(i)))
    for tag in ("while", "if", "bram-read", "bram-write", "vreg-read",
                "vreg-write", "multi-emit", "stream-finished", "mul",
                "wide"):
        assert tag in seen, f"generator never produced {tag!r}"


def test_stream_edge_cases_appear():
    lengths = set()
    for i in range(N_PROGRAMS):
        rng = _rng(i)
        spec = gen_mod.generate_spec(rng)
        for stream in gen_mod.generate_streams(rng, spec):
            lengths.add(min(len(stream), 2))
    assert lengths == {0, 1, 2}, "want empty, single-token, longer streams"


def test_config_bounds_respected():
    config = gen_mod.GenConfig(max_streams=2, max_stream_len=5)
    for i in range(20):
        rng = _rng(i)
        spec = gen_mod.generate_spec(rng, config)
        streams = gen_mod.generate_streams(rng, spec, config)
        assert 1 <= len(streams) <= 2
        top = (1 << spec["input_width"]) - 1
        for stream in streams:
            assert len(stream) <= 5
            assert all(0 <= t <= top for t in stream)
