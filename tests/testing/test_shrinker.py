"""The shrinker: minimal repros from an injected, documented compiler bug.

The injected bug (also the issue's acceptance scenario): the compiled
engine renders subtraction as ``((lhs - rhs) & mask)`` — the only
``" - "`` in its generated source — so rewriting ``" - "`` to ``" + "``
via the ``source_transform`` hook miscompiles every subtraction. The
fuzzer must catch the disagreement and the shrinker must reduce it to a
handful of statements.
"""

import pytest

from repro.testing import spec as spec_mod
from repro.testing.engine import ConformanceEngine
from repro.testing.shrinker import Shrinker, shrink

def _sub_to_add(src):
    return src.replace(" - ", " + ")


def test_injected_bug_caught_and_shrunk_to_tiny_repro():
    engine = ConformanceEngine(
        seed="shrink-test", max_programs=60, max_failures=1,
        source_transform=_sub_to_add,
    )
    report = engine.run()
    assert report.failures, "fuzzer missed the injected miscompile"
    failure = report.failures[0]
    assert failure.stage == "compiled"
    # Acceptance bound from the issue: a minimal statement-level repro.
    assert spec_mod.count_statements(failure.shrunk_spec) <= 6
    # The minimal repro must still contain a subtraction — the only
    # operator the injected bug touches.
    assert any(
        e[0] == "bin" and e[1] == "sub"
        for s in spec_mod.walk_statements(failure.shrunk_spec["body"])
        for root in spec_mod.statement_exprs(s)
        for e in spec_mod.walk_exprs(root)
    )


def test_shrunk_repro_still_fails_and_is_smaller():
    spec = {
        "name": "bulk", "input_width": 8, "output_width": 8,
        "regs": [["a", 8, 5], ["dead", 4, 0]], "vregs": [],
        "brams": [["m", 4, 8]],
        "body": [
            ["bw", "m", ["const", 1, 2], ["input"]],
            ["set", "a", ["bin", "add", ["reg", "a"], ["const", 1, 1]]],
            ["emit", ["bin", "sub", ["reg", "a"], ["input"]]],
        ],
    }
    streams = [[1, 2, 3, 4], [9, 9]]
    small, small_streams, stage, attempts = shrink(
        spec, streams, rtl=False, verilog=False,
        source_transform=_sub_to_add,
    )
    assert stage == "compiled"
    assert attempts > 0
    assert spec_mod.count_statements(small) < spec_mod.count_statements(spec)
    assert sum(map(len, small_streams)) <= sum(map(len, streams))
    # Unused declarations are stripped once nothing references them.
    assert all(d[0] in spec_mod.used_names(small)
               for d in small["regs"] + small["brams"])
    # The reduced pair must reproduce the same-stage failure on its own.
    shrinker = Shrinker(small, small_streams, rtl=False, verilog=False,
                        source_transform=_sub_to_add)
    assert shrinker.stage == "compiled"


def test_shrinker_refuses_passing_input():
    spec = {
        "name": "fine", "input_width": 8, "output_width": 8,
        "regs": [], "vregs": [], "brams": [],
        "body": [["emit", ["input"]]],
    }
    with pytest.raises(ValueError):
        Shrinker(spec, [[1, 2]], rtl=False, verilog=False)


def test_invalid_reductions_are_discarded():
    """A reduction that makes the program ill-formed (e.g. deleting the
    loop counter increment, making the while diverge) must be rejected,
    not adopted or crashed on."""
    spec = {
        "name": "loopy", "input_width": 4, "output_width": 8,
        "regs": [["lc", 3, 0]], "vregs": [], "brams": [],
        "body": [
            ["while", ["bin", "lt", ["reg", "lc"], ["const", 3, 2]], [
                ["set", "lc",
                 ["bin", "add", ["reg", "lc"], ["const", 1, 1]]],
            ]],
            ["set", "lc", ["const", 0, 1]],
            ["emit", ["bin", "sub", ["const", 9, 4], ["input"]]],
        ],
    }
    small, small_streams, stage, _ = shrink(
        spec, [[1, 2, 3]], rtl=False, verilog=False,
        source_transform=_sub_to_add,
    )
    assert stage == "compiled"
    # The emit carrying the subtraction must survive.
    assert any(s[0] == "emit"
               for s in spec_mod.walk_statements(small["body"]))
