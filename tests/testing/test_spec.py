"""The serializable spec layer: building, width inference, walkers."""

import pytest

from repro.interp.simulator import UnitSimulator
from repro.lang.errors import FleetSyntaxError
from repro.testing import spec as spec_mod

ADDER = {
    "name": "adder",
    "input_width": 8,
    "output_width": 9,
    "regs": [["acc", 9, 0]],
    "vregs": [],
    "brams": [],
    "body": [
        ["set", "acc", ["bin", "add", ["input"], ["const", 1, 1]]],
        ["emit", ["reg", "acc"]],
    ],
}


def test_build_and_run():
    unit = spec_mod.build_unit(ADDER)
    assert unit.input_width == 8
    assert unit.output_width == 9
    outputs = UnitSimulator(unit, engine="interp").run([5, 10])
    assert outputs == [0, 6, 11]


def test_build_control_structure():
    spec = {
        "name": "ctl", "input_width": 4, "output_width": 4,
        "regs": [["lc", 3, 0]], "vregs": [], "brams": [],
        "body": [
            ["while", ["bin", "lt", ["reg", "lc"], ["const", 2, 2]], [
                ["set", "lc",
                 ["bin", "add", ["reg", "lc"], ["const", 1, 1]]],
                ["emit", ["reg", "lc"]],
            ]],
            ["if", [
                [["sf"], [["set", "lc", ["const", 0, 1]]]],
                [None, [["set", "lc", ["const", 0, 1]]]],
            ]],
        ],
    }
    outputs = UnitSimulator(spec_mod.build_unit(spec),
                            engine="interp").run([0, 0])
    assert outputs == [0, 1, 0, 1, 0, 1]


def test_unknown_tags_rejected():
    with pytest.raises(FleetSyntaxError):
        spec_mod.build_unit({**ADDER, "body": [["frob", 1]]})
    with pytest.raises(FleetSyntaxError):
        spec_mod.build_unit({**ADDER, "body": [["emit", ["nope"]]]})


def test_if_spec_requires_leading_condition():
    with pytest.raises(FleetSyntaxError):
        spec_mod.build_unit(
            {**ADDER, "body": [["if", [[None, [["emit", ["input"]]]]]]]}
        )


def test_expr_width_matches_ast():
    spec = {
        "name": "w", "input_width": 8, "output_width": 8,
        "regs": [["r", 12, 0]], "vregs": [], "brams": [],
        "body": [],
    }
    cases = [
        (["const", 3, 2], 2),
        (["input"], 8),
        (["sf"], 1),
        (["reg", "r"], 12),
        (["bin", "add", ["input"], ["reg", "r"]], 13),
        (["bin", "mul", ["input"], ["reg", "r"]], 20),
        (["bin", "eq", ["input"], ["input"]], 1),
        (["mux", ["sf"], ["input"], ["reg", "r"]], 12),
        (["slice", 6, 2, ["input"]], 5),
        (["cat", [["input"], ["sf"], ["reg", "r"]]], 21),
        (["un", "orr", ["reg", "r"]], 1),
        (["un", "not", ["reg", "r"]], 12),
    ]
    for expr, want in cases:
        assert spec_mod.expr_width(expr, spec) == want, expr


def test_walkers_and_counts():
    spec = {
        "name": "walk", "input_width": 4, "output_width": 4,
        "regs": [["lc", 3, 0], ["dead", 2, 0]], "vregs": [],
        "brams": [["m", 4, 4]],
        "body": [
            ["while", ["bin", "lt", ["reg", "lc"], ["const", 1, 1]], [
                ["set", "lc",
                 ["bin", "add", ["reg", "lc"], ["const", 1, 1]]],
                ["bw", "m", ["const", 0, 2], ["input"]],
            ]],
            ["emit", ["bram", "m", ["const", 0, 2]]],
        ],
    }
    assert spec_mod.count_statements(spec) == 4
    assert spec_mod.used_names(spec) == {"lc", "m"}
    tags = spec_mod.features(spec)
    assert "while" in tags
    assert "bram-write" in tags
    assert "bram-read" in tags
    assert "multi-emit" not in tags
