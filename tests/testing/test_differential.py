"""The differential runner: agreement on a small budget, and detection
of deliberately wrong models via source-transform fault injection."""

import pytest

from repro.testing import differential
from repro.testing.engine import ConformanceEngine

IDENTITY = {
    "name": "ident", "input_width": 8, "output_width": 8,
    "regs": [], "vregs": [], "brams": [],
    "body": [["emit", ["input"]]],
}


def test_check_program_returns_oracle_outputs():
    # The unconditional emit also fires on the stream_finished cleanup
    # cycle, where the input token reads as zero in every model.
    outputs = differential.check_program(
        IDENTITY, [[1, 2, 3], []], rtl=True, verilog=True
    )
    assert outputs == [[1, 2, 3, 0], [0]]


def test_small_fuzz_budget_all_models_agree():
    """Tier-1 smoke fuzz: a slice of the nightly run, full model set."""
    report = ConformanceEngine(seed="pytest", max_programs=40).run()
    assert report.ok, report.summary()
    assert report.programs == 40


def test_injected_compiled_bug_is_detected():
    # The compiled engine renders subtraction as "(lhs - rhs) & mask";
    # turning the subtraction into addition is an arithmetic miscompile
    # the differential runner must catch.
    spec = {
        "name": "sub", "input_width": 8, "output_width": 8,
        "regs": [], "vregs": [], "brams": [],
        "body": [["emit", ["bin", "sub", ["const", 10, 4], ["input"]]]],
    }
    with pytest.raises(differential.Mismatch) as info:
        differential.check_program(
            spec, [[3]], rtl=False, verilog=False,
            source_transform=lambda src: src.replace(" - ", " + "),
        )
    assert info.value.stage == "compiled"


def test_mismatch_reports_state_divergence():
    # Same outputs, different final register state must still fail.
    spec = {
        "name": "state", "input_width": 8, "output_width": 8,
        "regs": [["r", 8, 0]], "vregs": [], "brams": [],
        "body": [
            ["set", "r", ["bin", "sub", ["reg", "r"], ["input"]]],
            ["emit", ["input"]],
        ],
    }
    with pytest.raises(differential.Mismatch) as info:
        differential.check_program(
            spec, [[1]], rtl=False, verilog=False,
            source_transform=lambda src: src.replace(" - ", " + "),
        )
    assert "register state" in info.value.detail


def test_rtl_model_runs_under_stalls():
    # Index 1 and 2 pick stalled handshake patterns from the rotation.
    spec = {
        "name": "acc", "input_width": 8, "output_width": 10,
        "regs": [["acc", 10, 0]], "vregs": [], "brams": [],
        "body": [
            ["set", "acc", ["bin", "add", ["reg", "acc"], ["input"]]],
            ["emit", ["reg", "acc"]],
        ],
    }
    streams = [[1, 2, 3], [4, 5], [6]]
    outputs = differential.check_program(spec, streams, rtl=True,
                                         verilog=False)
    assert len(outputs) == 3


def test_batch_engine_axis_agrees():
    pytest.importorskip("numpy")
    spec = {
        "name": "acc", "input_width": 8, "output_width": 10,
        "regs": [["acc", 10, 0]], "vregs": [], "brams": [],
        "body": [
            ["set", "acc", ["bin", "add", ["reg", "acc"], ["input"]]],
            ["emit", ["reg", "acc"]],
        ],
    }
    # Ragged streams incl. an empty one; check_batch also appends an
    # extra empty lane and a batch-of-1 re-run internally.
    differential.check_program(
        spec, [[1, 2, 3], [], [9]], rtl=False, verilog=False,
        engines=("interp", "compiled", "batch"),
    )


def test_batch_engine_axis_detects_injected_bug():
    pytest.importorskip("numpy")
    spec = {
        "name": "sub", "input_width": 8, "output_width": 8,
        "regs": [], "vregs": [], "brams": [],
        "body": [["emit", ["bin", "sub", ["const", 10, 4], ["input"]]]],
    }
    # The planted miscompile lives in the *compiled* engine, so the
    # batch stage (which compares against a clean compiled reference)
    # must not mask it: the run still fails at the compiled stage.
    with pytest.raises(differential.Mismatch) as info:
        differential.check_program(
            spec, [[3]], rtl=False, verilog=False,
            engines=("interp", "compiled", "batch"),
            source_transform=lambda src: src.replace(" - ", " + "),
        )
    assert info.value.stage == "compiled"


def test_small_fuzz_budget_with_batch_axis():
    pytest.importorskip("numpy")
    report = ConformanceEngine(
        seed="pytest-batch", max_programs=15, rtl=False, verilog=False,
        engines=("interp", "compiled", "batch"),
    ).run()
    assert report.ok, report.summary()


# ---------------------------------------------------------------------------
# Certified-specialized and native cc axes
# ---------------------------------------------------------------------------

SUB_SPEC = {
    "name": "sub", "input_width": 8, "output_width": 8,
    "regs": [], "vregs": [], "brams": [],
    "body": [["emit", ["bin", "sub", ["const", 10, 4], ["input"]]]],
}


def test_specialized_and_cc_axes_agree():
    spec = {
        "name": "acc", "input_width": 8, "output_width": 10,
        "regs": [["acc", 10, 0]], "vregs": [], "brams": [],
        "body": [
            ["set", "acc", ["bin", "add", ["reg", "acc"], ["input"]]],
            ["emit", ["reg", "acc"]],
        ],
    }
    differential.check_program(
        spec, [[1, 2, 3], [], [9]], rtl=False, verilog=False,
        engines=("interp", "compiled", "compiled-certified", "cc"),
    )


def test_specializing_axes_skip_uncertified_programs():
    from repro.lang import UnitBuilder

    b = UnitBuilder("conflict", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    m[0] = 1
    m[1] = 2  # definite two-writes conflict: never certifies
    program = b.finish()
    # Both stages are silent no-ops — uncertified programs have no
    # specialized or native engine by design.
    differential.check_specialized(program, [[1]])
    differential.check_cc(program, [[1]])


def test_specialized_axis_detects_injected_bug(monkeypatch):
    from repro.lang.errors import (
        FleetLoopLimitError,
        FleetSimulationError,
    )
    from repro.testing.differential import CompiledUnit, _NW

    real = differential.compile_program

    def faulty(program, certificate=None):
        unit = real(program, certificate=certificate)
        if certificate is None:
            return unit  # leave the guarded reference clean
        source = unit.source.replace(" - ", " + ")
        namespace = {
            "_NW": _NW,
            "_SimError": FleetSimulationError,
            "_LoopError": FleetLoopLimitError,
        }
        exec(compile(source, "<fleet-injected>", "exec"), namespace)
        return CompiledUnit(
            program, namespace["run_token"], namespace["run_stream"],
            source,
        )

    monkeypatch.setattr(differential, "compile_program", faulty)
    program = differential.spec_mod.build_unit(SUB_SPEC)
    with pytest.raises(differential.Mismatch) as info:
        differential.check_specialized(program, [[3]])
    assert info.value.stage == "compiled-certified"


def test_cc_axis_detects_injected_bug(monkeypatch):
    import repro.interp.cc as cc_mod

    if not cc_mod.cc_available():
        pytest.skip("no C toolchain (or FLEET_NATIVE=off)")
    from repro.lint import certificate_for

    # Swap in a kernel built for a subtly different program (11 - x
    # instead of 10 - x): a fresh, valid build whose outputs are wrong.
    altered = dict(SUB_SPEC, name="sub-alt", body=[
        ["emit", ["bin", "sub", ["const", 11, 4], ["input"]]],
    ])
    other = differential.spec_mod.build_unit(altered)
    wrong_unit = cc_mod.compile_cc(
        other, certificate=certificate_for(other)
    )
    monkeypatch.setattr(
        cc_mod, "compile_cc",
        lambda program, certificate=None: wrong_unit,
    )
    program = differential.spec_mod.build_unit(SUB_SPEC)
    with pytest.raises(differential.Mismatch) as info:
        differential.check_cc(program, [[3]])
    assert info.value.stage == "cc"


def test_small_fuzz_budget_with_all_axes():
    pytest.importorskip("numpy")
    report = ConformanceEngine(
        seed="pytest-axes", max_programs=15, rtl=False, verilog=False,
        engines=("interp", "compiled", "compiled-certified", "batch",
                 "cc"),
    ).run()
    assert report.ok, report.summary()
