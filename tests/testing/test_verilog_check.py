"""The structural Verilog checker: accepts real emissions, rejects the
bug classes it exists to catch."""

import pytest

from repro.apps import block_frequencies_unit, identity_unit
from repro.compiler import compile_unit
from repro.rtl import emit_verilog
from repro.testing import verilog_check


def _good_text():
    return emit_verilog(compile_unit(identity_unit()))


def test_accepts_real_units():
    for factory in (identity_unit, block_frequencies_unit):
        program = factory()
        text = verilog_check.check_program(program)
        assert text.startswith("module fleet_")


def test_port_widths_cross_checked():
    program = identity_unit()
    text = emit_verilog(compile_unit(program))
    verilog_check.check_text(text, input_width=8, output_width=8)
    with pytest.raises(verilog_check.VerilogCheckError,
                       match="input_token"):
        verilog_check.check_text(text, input_width=16)


def test_rejects_undeclared_identifier():
    text = _good_text().replace("output_token = i", "output_token = phantom")
    with pytest.raises(verilog_check.VerilogCheckError, match="phantom"):
        verilog_check.check_text(text)


def test_rejects_overflowing_literal():
    text = _good_text().replace("1'd1", "1'd2", 1)
    with pytest.raises(verilog_check.VerilogCheckError,
                       match="does not fit"):
        verilog_check.check_text(text)


def test_rejects_unbalanced_blocks():
    text = _good_text().replace("always @(posedge clock) begin",
                                "always @(posedge clock) begin\n  begin")
    with pytest.raises(verilog_check.VerilogCheckError,
                       match="unbalanced"):
        verilog_check.check_text(text)


def test_rejects_missing_ports():
    text = _good_text().replace("  input input_finished,\n", "")
    with pytest.raises(verilog_check.VerilogCheckError,
                       match="port list"):
        verilog_check.check_text(text)


def test_rejects_truncated_module():
    with pytest.raises(verilog_check.VerilogCheckError):
        verilog_check.check_text("module m (\n  input clock\n);")
