"""The engine loop, budgets, reporting, CLI, and repro persistence."""

import json

from repro.testing import __main__ as cli
from repro.testing import spec as spec_mod
from repro.testing.engine import ConformanceEngine


def _sub_to_add(src):
    return src.replace(" - ", " + ")


def test_run_is_deterministic():
    first = ConformanceEngine(seed="det", max_programs=15).run()
    second = ConformanceEngine(seed="det", max_programs=15).run()
    assert first.ok and second.ok
    assert first.feature_counts == second.feature_counts
    assert (first.streams, first.tokens) == (second.streams, second.tokens)


def test_program_budget_respected():
    report = ConformanceEngine(seed=7, max_programs=9).run()
    assert report.programs == 9


def test_time_budget_stops_early():
    report = ConformanceEngine(seed=7, max_programs=10_000,
                               max_seconds=0.3).run()
    assert report.programs < 10_000
    assert report.ok, report.summary()


def test_failure_limit_and_corpus_persistence(tmp_path):
    corpus_dir = tmp_path / "corpus"
    engine = ConformanceEngine(
        seed="persist", max_programs=200, max_failures=1,
        source_transform=_sub_to_add, corpus_dir=str(corpus_dir),
    )
    report = engine.run()
    assert len(report.failures) == 1
    failure = report.failures[0]
    assert failure.corpus_path is not None
    entry = json.loads(
        open(failure.corpus_path, encoding="utf-8").read()
    )
    assert entry["spec"] == failure.shrunk_spec
    assert entry["streams"] == failure.shrunk_streams
    assert entry["stage"] == "compiled"
    assert "FAIL" in report.summary()


def test_run_one_replays_reported_index():
    engine = ConformanceEngine(seed="persist", max_programs=200,
                               source_transform=_sub_to_add,
                               shrink_failures=False)
    report = engine.run()
    index = report.failures[0].index
    failure = engine.run_one(index)
    assert failure is not None
    assert failure.stage == report.failures[0].stage


def test_cli_success_exit_code(capsys):
    status = cli.main(["--seed", "cli", "--max-programs", "5", "--quiet"])
    captured = capsys.readouterr()
    assert status == 0
    assert "all models agree" in captured.out


def test_cli_only_mode(capsys):
    status = cli.main(["--seed", "cli", "--only", "3", "--quiet"])
    captured = capsys.readouterr()
    assert status == 0
    payload = json.loads(captured.out[: captured.out.rindex("}") + 1])
    assert spec_mod.count_statements(payload["spec"]) >= 1


def test_cli_flags_disable_models():
    status = cli.main(["--seed", "cli", "--max-programs", "5",
                       "--no-rtl", "--no-verilog", "--quiet"])
    assert status == 0
