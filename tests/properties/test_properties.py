"""Property-based tests (hypothesis) on the core invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import (
    block_frequencies_reference,
    block_frequencies_unit,
    bloom_contains,
    bloom_filter_unit,
    identity_unit,
    int_coding_decode,
    int_coding_reference,
    regex_reference,
)
from repro.compiler import UnitTestbench
from repro.interp import UnitSimulator, bytes_from_tokens, tokens_from_bytes
from repro.lang.types import mask, truncate
from repro.ops import BINOPS, eval_binop

slow = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Arithmetic laws
# ---------------------------------------------------------------------------


@given(
    st.sampled_from(sorted(BINOPS)),
    st.integers(min_value=1, max_value=48),
    st.integers(min_value=1, max_value=48),
    st.integers(min_value=0),
    st.integers(min_value=0),
)
def test_binop_results_fit_inferred_width(op, wl, wr, a, b):
    if op == "shl" and wr > 6:
        wr = 6  # wider dynamic shifts exceed MAX_WIDTH by design
    a, b = a & mask(wl), b & mask(wr)
    result = eval_binop(op, a, b, wl, wr)
    width = BINOPS[op][0](wl, wr)
    assert 0 <= result <= mask(width)


@given(st.integers(), st.integers(min_value=1, max_value=64))
def test_truncate_idempotent(value, width):
    once = truncate(value, width)
    assert truncate(once, width) == once
    assert 0 <= once <= mask(width)


@given(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
)
def test_add_sub_inverse_mod_width(a, b):
    total = eval_binop("add", a, b, 32, 32)
    back = truncate(eval_binop("sub", total, b, 33, 32), 32)
    assert back == a


# ---------------------------------------------------------------------------
# Token packing round trips
# ---------------------------------------------------------------------------


@given(st.binary(max_size=64), st.sampled_from([1, 2, 4, 8, 16, 32]))
def test_token_packing_round_trip(data, width):
    if (len(data) * 8) % width:
        data = data[: len(data) - len(data) % max(1, width // 8)]
        if (len(data) * 8) % width:
            return
    tokens = tokens_from_bytes(data, width)
    assert bytes_from_tokens(tokens, width) == data


# ---------------------------------------------------------------------------
# Interpreter vs compiled RTL on randomized streams
# ---------------------------------------------------------------------------


@slow
@given(st.lists(st.integers(min_value=0, max_value=255), max_size=60))
def test_identity_rtl_equivalence(tokens):
    unit = identity_unit()
    expected = UnitSimulator(unit).run(tokens)
    outputs, _ = UnitTestbench(unit).run(tokens)
    assert outputs == expected == tokens


@slow
@given(
    st.lists(st.integers(min_value=0, max_value=255), min_size=1,
             max_size=40),
    st.integers(min_value=2, max_value=9),
)
def test_histogram_interp_matches_reference(tokens, block):
    unit = block_frequencies_unit(block_size=block)
    assert UnitSimulator(unit).run(tokens) == (
        block_frequencies_reference(tokens, block)
    )


# ---------------------------------------------------------------------------
# Codec and filter laws
# ---------------------------------------------------------------------------


@slow
@given(st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                min_size=4, max_size=16))
def test_int_coding_round_trip(ints):
    ints = ints[: len(ints) - len(ints) % 4]
    if not ints:
        return
    data = [b for x in ints for b in x.to_bytes(4, "little")]
    encoded = int_coding_reference(data)
    assert int_coding_decode(encoded, len(ints) // 4) == ints


@slow
@given(st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                min_size=4, max_size=4))
def test_bloom_no_false_negatives(items):
    data = [b for x in items for b in x.to_bytes(4, "little")]
    unit = bloom_filter_unit(block_size=4, num_hashes=3, section_bits=128)
    out = UnitSimulator(unit).run(data)
    for item in items:
        assert bloom_contains(out, item, 3, 128)


# ---------------------------------------------------------------------------
# Regex against the re oracle
# ---------------------------------------------------------------------------


@slow
@given(st.text(alphabet="abcx", max_size=40))
def test_regex_reference_against_re(text):
    import re

    pattern = "a(b|c)+"
    hits = regex_reference(list(text.encode()), pattern)
    oracle = [
        j
        for j in range(len(text))
        if any(re.fullmatch(pattern, text[i:j + 1])
               for i in range(j + 1))
    ]
    assert hits == oracle
