"""Property tests across the three executable models (functional
simulator, compiled RTL, ISA baselines) and the memory system."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import identity_unit, regex_match_unit, regex_reference
from repro.baselines.apps.regex_isa import regex_program
from repro.interp import UnitSimulator
from repro.isa import ScalarExecutor, SimtExecutor
from repro.memory import EchoPu, ChannelSystem, MemoryConfig
from repro.system import run_full_system

slow = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_REGEX_PROGRAM = regex_program("a(b|c)+d")
_REGEX_UNIT = regex_match_unit("a(b|c)+d")


@slow
@given(st.lists(
    st.lists(st.sampled_from(list(b"abcdx")), max_size=30),
    min_size=1, max_size=8,
))
def test_simt_lanes_equal_scalar_runs(streams):
    warp = SimtExecutor(_REGEX_PROGRAM).run(streams)
    for stream, lane_output in zip(streams, warp.outputs):
        scalar = ScalarExecutor(_REGEX_PROGRAM).run(stream)
        assert lane_output == scalar.outputs


@slow
@given(st.lists(st.sampled_from(list(b"abcdx")), max_size=40))
def test_unit_equals_isa_equals_golden(stream):
    golden = regex_reference(stream, "a(b|c)+d")
    assert UnitSimulator(_REGEX_UNIT).run(stream) == golden
    assert ScalarExecutor(_REGEX_PROGRAM).run(stream).outputs == golden


@slow
@given(
    st.lists(st.binary(min_size=1, max_size=400), min_size=1, max_size=4),
    st.integers(min_value=0, max_value=2 ** 31),
)
def test_memory_system_conserves_bytes(streams, seed):
    """Every byte of every stream is delivered exactly once, in order,
    and echoed back intact — under a randomly perturbed configuration."""
    rnd = random.Random(seed)
    config = MemoryConfig().replace(
        burst_registers=rnd.choice((1, 2, 16)),
        async_addressing=rnd.random() < 0.8,
        dram_latency=rnd.choice((5, 30, 90)),
        beats_per_burst=rnd.choice((1, 2, 4)),
    )
    data = bytearray()
    bases, out_bases = [], []
    for stream in streams:
        bases.append(len(data))
        data += stream
    for stream in streams:
        out_bases.append(len(data))
        data += b"\0" * (len(stream) + 64)
    pus = [EchoPu(len(stream)) for stream in streams]
    system = ChannelSystem(config, pus, data=data, stream_bases=bases,
                           out_bases=out_bases)
    system.run(max_cycles=300_000)
    assert system.drained()
    for stream, pu, base in zip(streams, pus, out_bases):
        assert bytes(pu.received) == stream
        assert bytes(data[base:base + len(stream)]) == stream


@slow
@given(st.lists(st.binary(min_size=1, max_size=200), min_size=1,
                max_size=3))
def test_full_system_equals_direct_simulation(streams):
    result = run_full_system(identity_unit(), streams)
    for stream, region in zip(streams, result.output_bytes):
        assert region == stream
