"""Property-based tests (hypothesis) for the observability layer.

The two load-bearing invariants, over random memory configurations and
processing-unit mixes:

* every channel cycle lands in exactly one attribution category, so the
  categories sum to the total cycle count;
* the stepped and event-driven engines produce bit-identical
  observations (attribution, histograms, per-PU stats) — skipped windows
  are attributed exactly as stepping would have;

plus non-perturbation: attaching an observation never changes what the
simulation computes.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.memory import EchoPu, MemoryConfig, RatePu, SinkPu, \
    simulate_channels
from repro.obs import Observation

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Random memory-controller configurations spanning every ablation the
#: classifier distinguishes (register counts, addressing modes, refresh
#: duty cycles, turnaround penalties, DRAM latencies).
configs = st.fixed_dictionaries({
    "burst_registers": st.sampled_from([1, 2, 4, 16]),
    "async_addressing": st.booleans(),
    "input_blocking": st.booleans(),
    "refresh_interval": st.sampled_from([64, 128, 200]),
    "refresh_cycles": st.sampled_from([0, 4, 8]),
    "turnaround_cycles": st.sampled_from([0, 2, 6]),
    "dram_latency": st.sampled_from([5, 30]),
    "beats_per_burst": st.sampled_from([1, 2, 4]),
})

#: PU behavior mixes: instant sinks, echoing units (exercises the write
#: path), and compute-bound units slower than their drain.
pu_kinds = st.lists(
    st.sampled_from(["sink", "echo", "rate_fast", "rate_slow"]),
    min_size=1, max_size=6,
)


def _make_pus(kinds, stream_bytes):
    pus = []
    for kind in kinds:
        if kind == "sink":
            pus.append(SinkPu(stream_bytes))
        elif kind == "echo":
            pus.append(EchoPu(stream_bytes))
        elif kind == "rate_fast":
            pus.append(RatePu(stream_bytes, vcycles_per_token=1,
                              token_bytes=4, output_ratio=0.5))
        else:
            pus.append(RatePu(stream_bytes, vcycles_per_token=3,
                              token_bytes=4))
    return pus


def _observed(config, kinds, stream_bytes, cycles, event_driven):
    obs = Observation()
    stats = simulate_channels(
        config, lambda i: _make_pus(kinds, stream_bytes),
        channels=1, fixed_cycles=cycles, event_driven=event_driven,
        obs=obs,
    )
    return stats, obs.channels[0]


@slow
@given(
    configs,
    pu_kinds,
    st.sampled_from([512, 1 << 12]),
    st.sampled_from([700, 1_500]),
)
def test_attribution_sums_and_engines_agree(cfg, kinds, stream_bytes,
                                            cycles):
    config = MemoryConfig().replace(**cfg)
    fast_stats, fast = _observed(config, kinds, stream_bytes, cycles, True)
    slow_stats, slow_ = _observed(config, kinds, stream_bytes, cycles,
                                  False)

    # Conservation: every cycle classified exactly once, in both engines.
    assert sum(fast.attribution.cycles.values()) == fast_stats.cycles
    assert sum(slow_.attribution.cycles.values()) == slow_stats.cycles
    assert fast.reg_occupancy.total == fast_stats.cycles

    # The engines simulate the same machine...
    assert fast_stats.cycles == slow_stats.cycles
    assert fast_stats.bytes_in == slow_stats.bytes_in
    assert fast_stats.bytes_out == slow_stats.bytes_out
    # ...and observe it identically, category by category.
    assert fast.attribution == slow_.attribution
    assert fast.reg_occupancy == slow_.reg_occupancy
    assert fast.addr_lead == slow_.addr_lead
    assert fast.read_bursts.value == slow_.read_bursts.value
    assert fast.write_bursts.value == slow_.write_bursts.value
    assert fast.pu_stats == slow_.pu_stats


@slow
@given(configs, pu_kinds)
def test_observation_does_not_perturb_simulation(cfg, kinds):
    config = MemoryConfig().replace(**cfg)
    observed = simulate_channels(
        config, lambda i: _make_pus(kinds, 1 << 11),
        channels=1, fixed_cycles=900, obs=Observation(),
    )
    bare = simulate_channels(
        config, lambda i: _make_pus(kinds, 1 << 11),
        channels=1, fixed_cycles=900,
    )
    assert (observed.cycles, observed.bytes_in, observed.bytes_out) == \
        (bare.cycles, bare.bytes_in, bare.bytes_out)


@slow
@given(configs, pu_kinds)
def test_run_to_completion_attribution_sums(cfg, kinds):
    # The run() path (drain-until-done) must conserve cycles too — it
    # finalizes through the same helper as run_for().
    config = MemoryConfig().replace(**cfg)
    obs = Observation()
    stats = simulate_channels(
        config, lambda i: _make_pus(kinds, 768),
        channels=1, max_cycles=50_000, obs=obs,
    )
    chan = obs.channels[0]
    assert sum(chan.attribution.cycles.values()) == stats.cycles
    assert chan.reg_occupancy.total == stats.cycles
    assert sum(s.bytes_in for s in chan.pu_stats) == stats.bytes_in
