"""Soundness properties of the interval abstract domain.

The invariant: for any concrete operand values and any intervals
containing them, the concrete result of :func:`repro.ops.eval_binop` /
:func:`repro.ops.eval_unop` lies inside the abstract result interval.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ops
from repro.lang.types import mask
from repro.lint import domain

BINOPS = sorted(ops.BINOPS)
UNOPS = sorted(ops.UNOPS)

quick = settings(max_examples=200, deadline=None)


@st.composite
def widened_value(draw, width):
    """A concrete value within ``width`` bits plus an interval
    containing it."""
    value = draw(st.integers(0, mask(width)))
    lo = draw(st.integers(0, value))
    hi = draw(st.integers(value, mask(width)))
    return value, domain.Interval(lo, hi)


@st.composite
def binop_case(draw):
    op = draw(st.sampled_from(BINOPS))
    wl = draw(st.integers(1, 8))
    wr = draw(st.integers(1, 8))
    a, ia = draw(widened_value(wl))
    b, ib = draw(widened_value(wr))
    return op, wl, wr, a, ia, b, ib


@quick
@given(binop_case())
def test_binop_interval_contains_concrete_result(case):
    op, wl, wr, a, ia, b, ib = case
    result = ops.eval_binop(op, a, b, wl, wr)
    interval = domain.binop_interval(op, ia, ib, wl, wr)
    assert interval.contains(result), (
        f"{op}: {a} op {b} = {result} not in {interval} "
        f"(operands {ia}, {ib})"
    )


@quick
@given(st.sampled_from(UNOPS), st.integers(1, 10).flatmap(
    lambda w: st.tuples(st.just(w), widened_value(w))))
def test_unop_interval_contains_concrete_result(op, case):
    w, (a, ia) = case
    result = ops.eval_unop(op, a, w)
    interval = domain.unop_interval(op, ia, w)
    assert interval.contains(result), (
        f"{op}: {op}({a}) = {result} not in {interval} (operand {ia})"
    )


@quick
@given(st.integers(1, 10).flatmap(
    lambda w: st.tuples(st.just(w), widened_value(w),
                        st.integers(0, w - 1), st.integers(0, w - 1))))
def test_slice_interval_contains_concrete_result(case):
    w, (value, interval), b1, b2 = case
    lo, hi = min(b1, b2), max(b1, b2)
    width = hi - lo + 1
    concrete = (value >> lo) & mask(width)
    abstract = domain.slice_interval(interval, hi, lo, width)
    assert abstract.contains(concrete)


@quick
@given(st.lists(
    st.integers(1, 6).flatmap(
        lambda w: st.tuples(st.just(w), widened_value(w))),
    min_size=1, max_size=4,
))
def test_concat_interval_contains_concrete_result(parts):
    concrete = 0
    abstract_parts = []
    for w, (value, interval) in parts:
        concrete = (concrete << w) | value
        abstract_parts.append((interval, w))
    assert domain.concat_interval(abstract_parts).contains(concrete)


@quick
@given(st.integers(1, 12).flatmap(
    lambda w: st.tuples(widened_value(12), st.just(w))))
def test_truncate_interval_contains_masked_value(case):
    (value, interval), width = case
    truncated = domain.truncate_interval(interval, width)
    assert truncated.contains(value & mask(width))


@quick
@given(binop_case())
def test_decided_comparisons_agree_with_concrete(case):
    op, wl, wr, a, ia, b, ib = case
    if op not in ("eq", "ne", "lt", "le", "gt", "ge"):
        return
    decided = domain.decide_cmp(op, ia, ib)
    if decided is not None:
        assert decided == ops.eval_binop(op, a, b, wl, wr)


@quick
@given(widened_value(8), widened_value(8))
def test_join_and_meet_membership(case_a, case_b):
    a, ia = case_a
    b, ib = case_b
    joined = domain.join(ia, ib)
    assert joined.contains(a) and joined.contains(b)
    met = domain.meet(ia, ib)
    if ia.contains(b) and ib.contains(b):
        assert met is not None and met.contains(b)
    if met is None:
        # Empty intersection: no value can be in both.
        assert ia.hi < ib.lo or ib.hi < ia.lo


def test_interval_basics():
    assert domain.top(3) == domain.Interval(0, 7)
    assert domain.const(5).is_const
    assert repr(domain.const(5)) == "[5]"
    assert repr(domain.Interval(1, 2)) == "[1, 2]"
