"""Soundness properties of the interval abstract domain.

The invariant: for any concrete operand values and any intervals
containing them, the concrete result of :func:`repro.ops.eval_binop` /
:func:`repro.ops.eval_unop` lies inside the abstract result interval.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ops
from repro.interp import make_simulator
from repro.lang import types
from repro.lang.types import mask
from repro.lint import build_cost, domain
from repro.lint.engine import Analysis
from repro.testing import spec as spec_mod

BINOPS = sorted(ops.BINOPS)
UNOPS = sorted(ops.UNOPS)

quick = settings(max_examples=200, deadline=None)


@st.composite
def widened_value(draw, width):
    """A concrete value within ``width`` bits plus an interval
    containing it."""
    value = draw(st.integers(0, mask(width)))
    lo = draw(st.integers(0, value))
    hi = draw(st.integers(value, mask(width)))
    return value, domain.Interval(lo, hi)


@st.composite
def binop_case(draw):
    op = draw(st.sampled_from(BINOPS))
    wl = draw(st.integers(1, 8))
    wr = draw(st.integers(1, 8))
    a, ia = draw(widened_value(wl))
    b, ib = draw(widened_value(wr))
    return op, wl, wr, a, ia, b, ib


@quick
@given(binop_case())
def test_binop_interval_contains_concrete_result(case):
    op, wl, wr, a, ia, b, ib = case
    result = ops.eval_binop(op, a, b, wl, wr)
    interval = domain.binop_interval(op, ia, ib, wl, wr)
    assert interval.contains(result), (
        f"{op}: {a} op {b} = {result} not in {interval} "
        f"(operands {ia}, {ib})"
    )


@quick
@given(st.sampled_from(UNOPS), st.integers(1, 10).flatmap(
    lambda w: st.tuples(st.just(w), widened_value(w))))
def test_unop_interval_contains_concrete_result(op, case):
    w, (a, ia) = case
    result = ops.eval_unop(op, a, w)
    interval = domain.unop_interval(op, ia, w)
    assert interval.contains(result), (
        f"{op}: {op}({a}) = {result} not in {interval} (operand {ia})"
    )


@quick
@given(st.integers(1, 10).flatmap(
    lambda w: st.tuples(st.just(w), widened_value(w),
                        st.integers(0, w - 1), st.integers(0, w - 1))))
def test_slice_interval_contains_concrete_result(case):
    w, (value, interval), b1, b2 = case
    lo, hi = min(b1, b2), max(b1, b2)
    width = hi - lo + 1
    concrete = (value >> lo) & mask(width)
    abstract = domain.slice_interval(interval, hi, lo, width)
    assert abstract.contains(concrete)


@quick
@given(st.lists(
    st.integers(1, 6).flatmap(
        lambda w: st.tuples(st.just(w), widened_value(w))),
    min_size=1, max_size=4,
))
def test_concat_interval_contains_concrete_result(parts):
    concrete = 0
    abstract_parts = []
    for w, (value, interval) in parts:
        concrete = (concrete << w) | value
        abstract_parts.append((interval, w))
    assert domain.concat_interval(abstract_parts).contains(concrete)


@quick
@given(st.integers(1, 12).flatmap(
    lambda w: st.tuples(widened_value(12), st.just(w))))
def test_truncate_interval_contains_masked_value(case):
    (value, interval), width = case
    truncated = domain.truncate_interval(interval, width)
    assert truncated.contains(value & mask(width))


@quick
@given(binop_case())
def test_decided_comparisons_agree_with_concrete(case):
    op, wl, wr, a, ia, b, ib = case
    if op not in ("eq", "ne", "lt", "le", "gt", "ge"):
        return
    decided = domain.decide_cmp(op, ia, ib)
    if decided is not None:
        assert decided == ops.eval_binop(op, a, b, wl, wr)


@quick
@given(widened_value(8), widened_value(8))
def test_join_and_meet_membership(case_a, case_b):
    a, ia = case_a
    b, ib = case_b
    joined = domain.join(ia, ib)
    assert joined.contains(a) and joined.contains(b)
    met = domain.meet(ia, ib)
    if ia.contains(b) and ib.contains(b):
        assert met is not None and met.contains(b)
    if met is None:
        # Empty intersection: no value can be in both.
        assert ia.hi < ib.lo or ib.hi < ia.lo


def test_interval_basics():
    assert domain.top(3) == domain.Interval(0, 7)
    assert domain.const(5).is_const
    assert repr(domain.const(5)) == "[5]"
    assert repr(domain.Interval(1, 2)) == "[1, 2]"


# ---------------------------------------------------------------------------
# Widening edge cases: one-point intervals at the maximum width, and the
# wrap boundary just below 2^w where truncation must widen to top.


def test_one_point_interval_at_max_width():
    """A constant interval at MAX_WIDTH stays exact through every
    transfer function that claims exactness — no overflow, no silent
    widening."""
    w = types.MAX_WIDTH
    full = mask(w)
    point = domain.const(full)
    assert point.is_const and point.contains(full)
    # add is exact in w+1 bits: [2^w - 1] + [2^w - 1] = [2^(w+1) - 2].
    summed = domain.binop_interval("add", point, point, w, w)
    assert summed == domain.const(2 * full)
    # Truncating the one-point interval back to w bits cannot keep it
    # (2^(w+1) - 2 > mask(w)), so it must widen to the full range —
    # never to a wrapped point.
    assert domain.truncate_interval(summed, w) == domain.top(w)
    # A one-point interval that already fits survives truncation.
    assert domain.truncate_interval(point, w) is point
    # not is exact and anti-monotone even at the extreme point.
    assert domain.unop_interval("not", point, w) == domain.const(0)
    # Comparisons against top decide only where they must.
    assert domain.decide_cmp("le", point, domain.top(w)) is None
    assert domain.decide_cmp("ge", point, domain.top(w)) == 1


@quick
@given(st.integers(1, 16))
def test_truncate_wraps_to_top_never_to_wrapped_interval(w):
    """Intervals straddling 2^w widen to the *full* range on
    truncation: a wrapped interval like [0, 0] u [2^w - 1] is not
    expressible, and returning either half would be unsound."""
    boundary = domain.Interval(mask(w), mask(w) + 1)
    truncated = domain.truncate_interval(boundary, w)
    assert truncated == domain.top(w)
    # Both concrete residues of the straddling interval are covered.
    assert truncated.contains(mask(w))          # 2^w - 1 & mask
    assert truncated.contains(0)                # 2^w & mask


@quick
@given(st.integers(1, 12).flatmap(
    lambda w: st.tuples(st.just(w), widened_value(w), widened_value(w))))
def test_sub_tops_exactly_when_borrow_possible(case):
    """Subtraction wraps modulo the result width; the abstract domain
    must stay exact when no borrow is possible and go to top (of the
    *result* width, w+1) the moment one is."""
    w, (a, ia), (b, ib) = case
    result = domain.binop_interval("sub", ia, ib, w, w)
    if ia.lo >= ib.hi:
        assert result == domain.Interval(ia.lo - ib.hi, ia.hi - ib.lo)
        assert result.contains(a - b)
    else:
        assert result == domain.top(w + 1)
        # The wrapped concrete result still lands inside.
        assert result.contains((a - b) & mask(w + 1))


# ---------------------------------------------------------------------------
# Ranking monotonicity: the cost analysis's ranking-function trip bound
# is a true upper bound on the scalar interpreter's observed per-token
# cost, for a hypothesis-drawn family of data-dependent counter loops —
# and widening the counter enlarges the bound monotonically.


def _counter_loop_spec(width, emit_in_loop):
    """``while lc < input: lc += 1 [; emit lc]`` then reset — the
    canonical data-dependent trip count (up to mask(width) trips)."""
    body = [["set", "lc",
             ["bin", "add", ["reg", "lc"], ["const", 1, 1]]]]
    if emit_in_loop:
        body.append(["emit", ["reg", "lc"]])
    return {
        "name": f"rank_w{width}",
        "input_width": width,
        "output_width": width + 1,
        "regs": [["lc", width, 0]],
        "vregs": [],
        "brams": [],
        "body": [
            ["while",
             ["bin", "lt", ["reg", "lc"], ["input"]],
             body],
            ["set", "lc", ["const", 0, 1]],
        ],
    }


@settings(max_examples=30, deadline=None)
@given(
    st.integers(2, 6),
    st.booleans(),
    st.lists(st.integers(0, 63), min_size=1, max_size=8),
)
def test_ranking_bound_upper_bounds_scalar_interpreter(
        width, emit_in_loop, raw_tokens):
    spec = _counter_loop_spec(width, emit_in_loop)
    program = spec_mod.build_unit(spec)
    cost = build_cost(Analysis(program))
    # The ranking function (lc strictly increases toward input) must be
    # found: the loop has a certified trip bound of at most mask(width).
    assert cost.terminates, cost.render()
    assert cost.token.vcycles[1] == mask(width) + 1

    sim = make_simulator(program, engine="interp")
    tokens = [t & mask(width) for t in raw_tokens]
    sim.run(tokens)
    trace = sim.trace
    n = len(trace.vcycles_per_token)
    for i in range(n):
        cleanup = trace._cleanup_recorded and i == n - 1
        assert cost.check_token(
            trace.vcycles_per_token[i], trace.emits_per_token[i],
            cleanup=cleanup,
        ) == [], (
            f"token {i} of {tokens}: observed "
            f"({trace.vcycles_per_token[i]}, {trace.emits_per_token[i]}) "
            f"outside {cost.render()}"
        )
        # The exact trip count is input + 1 vcycles (the final test of
        # the exhausted condition shares the last body cycle's slot), so
        # the certified hi is tight at the max token.
        if not cleanup:
            assert trace.vcycles_per_token[i] <= mask(width) + 1


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 5), st.booleans())
def test_ranking_bound_monotone_in_counter_width(width, emit_in_loop):
    """Widening the counter register enlarges the ranking range, so the
    certified trip bound must grow monotonically — never collapse."""
    narrow = build_cost(Analysis(spec_mod.build_unit(
        _counter_loop_spec(width, emit_in_loop))))
    wide = build_cost(Analysis(spec_mod.build_unit(
        _counter_loop_spec(width + 1, emit_in_loop))))
    assert narrow.terminates and wide.terminates
    assert wide.token.vcycles[1] > narrow.token.vcycles[1]
    assert wide.token.vcycles[0] >= narrow.token.vcycles[0]
