"""Lint pass pipeline: golden app snapshots and one negative program
per pass."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lang.errors import FleetError
from repro.lint import FINDING_CLASSES, certify_program, lint_program
from repro.lint.selftest import CASES
from repro.lint.units import APP_UNIT_BUILDERS, build_app_unit
from repro.testing import generator
from repro.testing import spec as spec_mod

#: Golden per-rule finding counts for every application unit at its
#: golden-test parameters. All units are clean (no errors, certified);
#: regex_match carries exactly one genuine warning — the accepting NFA
#: position's state register is written but never read (`hit` uses the
#: next-state wires instead) — and decision_tree one genuine
#: nontermination risk: its BRAM-pointer walk has no depth counter, so
#: an adversarial (cyclic) tree image loops until the vcycle limit.
EXPECTED_FINDINGS = {
    name: {} for name in APP_UNIT_BUILDERS
}
EXPECTED_FINDINGS["regex_match"] = {"lint/dead-assignment": 1}
EXPECTED_FINDINGS["decision_tree"] = {"lint/nontermination-risk": 1}


@pytest.mark.parametrize("name", sorted(APP_UNIT_BUILDERS))
def test_app_units_lint_clean_and_certify(name):
    program = build_app_unit(name)
    report = lint_program(program)
    assert report.by_rule() == EXPECTED_FINDINGS[name]
    assert report.clean
    certificate = certify_program(program, report)
    assert certificate.ok, certificate.reasons
    assert certificate.covers(program)


@pytest.mark.parametrize(
    "name,build,expected,certifies", CASES,
    ids=[case[0] for case in CASES])
def test_negative_program_per_pass(name, build, expected, certifies):
    program = build()
    report = lint_program(program)
    for rule, severity in expected.items():
        hits = [f for f in report.findings if f.rule == rule]
        assert hits, f"{name}: {rule} did not fire"
        assert any(f.severity == severity for f in hits)
        assert all(isinstance(f, FINDING_CLASSES[rule]) for f in hits)
    assert certify_program(program, report).ok == certifies


def test_report_shapes():
    program = build_app_unit("regex_match")
    report = lint_program(program)
    payload = report.to_json()
    assert payload["program"] == "regex_match"
    assert payload["clean"] and payload["proof_ok"]
    assert payload["counts"] == {"info": 0, "warning": 1, "error": 0}
    (finding,) = payload["findings"]
    assert finding["rule"] == "lint/dead-assignment"
    assert finding["resource"] == "state_3"
    assert finding["location"].startswith("body[")
    # Severity floor filters the rendered findings.
    assert len(report.filtered("info")) == 1
    assert len(report.filtered("error")) == 0
    assert "dead" in report.render("warning")
    assert "lint/dead-assignment" not in report.render("error")


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000))
def test_lint_never_crashes_on_generated_programs(seed):
    """The lint pipeline must total-function over everything the
    conformance fuzzer can produce."""
    rng = random.Random(seed)
    spec = generator.generate_spec(rng, name=f"fuzz_{seed}")
    try:
        program = spec_mod.build_unit(spec)
    except FleetError:
        return  # generator bug guard; not lint's problem
    report = lint_program(program)
    certificate = certify_program(program, report)
    assert certificate.covers(program)
    for finding in report.findings:
        assert finding.rule in FINDING_CLASSES
        assert finding.to_json()["severity"] in ("info", "warning", "error")
