"""The ``python -m repro.lint`` CLI: output formats, selftest, and the
corpus/fuzz soundness mode."""

import json

import pytest

from repro.lint.__main__ import main
from repro.lint.findings import FINDING_CLASSES
from repro.lint.sarif import SARIF_VERSION
from repro.lint.soundness import check_corpus, check_fuzz

CORPUS_DIR = "tests/corpus"


def test_selftest_passes(capsys):
    assert main(["--selftest"]) == 0
    out = capsys.readouterr().out
    assert "0 failure(s)" in out


def test_app_lint_writes_json_and_sarif(tmp_path, capsys):
    json_path = tmp_path / "lint.json"
    sarif_path = tmp_path / "lint.sarif"
    status = main([
        "--app", "regex_match", "--app", "identity",
        "--json", str(json_path), "--sarif", str(sarif_path),
        "--severity", "warning",
    ])
    assert status == 0
    out = capsys.readouterr().out
    assert "regex_match" in out and "certificate" in out

    payload = json.loads(json_path.read_text())
    assert [entry["program"] for entry in payload] == [
        "regex_match", "identity"]
    for entry in payload:
        assert entry["clean"] is True
        assert entry["certificate"]["certified"] is True
        assert len(entry["certificate"]["fingerprint"]) == 64

    sarif = json.loads(sarif_path.read_text())
    assert sarif["version"] == SARIF_VERSION
    (run,) = sarif["runs"]
    rules = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert rules == set(FINDING_CLASSES)
    (result,) = run["results"]
    assert result["ruleId"] == "lint/dead-assignment"
    assert result["level"] == "warning"
    location = result["locations"][0]["logicalLocations"][0]
    assert location["fullyQualifiedName"].startswith("regex_match::")


def test_cost_flag_prints_loop_bounds(capsys):
    status = main(["--cost", "--app", "bloom_filter"])
    assert status == 0
    out = capsys.readouterr().out
    assert "vcycles/token [1, 513]" in out
    assert "<= 512 trips/token" in out
    assert "ring emit_idx mod 2^9" in out


def test_nontermination_gate(capsys):
    # decision_tree's unbounded BRAM walk fails the gate unless its
    # reviewed verdict is on the allowlist.
    assert main(["--cost", "--app", "decision_tree",
                 "--fail-on-nontermination"]) == 1
    out = capsys.readouterr().out
    assert "not on the --allow-unbounded list" in out
    assert main(["--cost", "--app", "decision_tree",
                 "--fail-on-nontermination",
                 "--allow-unbounded", "decision_tree"]) == 0


def test_error_findings_set_exit_status(tmp_path, capsys):
    # A spec whose address provably overflows a non-power-of-two BRAM.
    spec = {
        "name": "cli_oob",
        "input_width": 8,
        "output_width": 8,
        "brams": [["m", 5, 8]],
        "body": [["emit", ["bram", "m", ["const", 6, 3]]]],
    }
    path = tmp_path / "oob.json"
    path.write_text(json.dumps(spec))
    assert main(["--spec", str(path)]) == 1
    out = capsys.readouterr().out
    assert "out-of-bounds-address" in out
    assert "NOT certified" in out


def test_unknown_app_exits(capsys):
    with pytest.raises(SystemExit):
        main(["--app", "not_a_unit"])


def test_no_targets_is_an_error(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_corpus_soundness():
    result = check_corpus(CORPUS_DIR)
    assert result.ok, result.render()
    assert result.checked >= 10
    assert not result.skipped, result.render()


def test_fuzz_soundness():
    result = check_fuzz(15, seed=7)
    assert result.ok, result.render()
    assert result.checked == 15


def test_soundness_cli_mode(capsys):
    assert main(["--corpus", CORPUS_DIR, "--fuzz", "5", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "program(s) checked" in out
    assert "no certified program raised a restriction error" in out
