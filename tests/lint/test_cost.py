"""Cost & termination analysis: golden bounds for every app unit,
serialization round-trips, bound checking, and measured-run soundness."""

import random

import pytest

from repro.interp import make_simulator
from repro.lint import build_cost, certify_program
from repro.lint.cost import CostFacts
from repro.lint.engine import Analysis
from repro.lint.units import APP_UNIT_BUILDERS, build_app_unit

#: Golden certified per-token cost intervals for every application unit
#: at its golden-test parameters: (token vcycles, token emits,
#: cleanup vcycles, cleanup emits), each a (lo, hi) pair with hi=None
#: meaning no finite bound. decision_tree is *genuinely* unbounded — its
#: BRAM-pointer walk has no depth counter, so an adversarial cyclic tree
#: image never terminates; the correct verdict is a NonterminationRisk
#: warning, not a bound.
GOLDEN_COST = {
    "block_frequencies": ((1, 257), (0, 256), (1, 257), (0, 256)),
    "bloom_filter": ((1, 513), (0, 2048), (1, 513), (0, 2048)),
    "csv_extract": ((1, 1), (0, 10), (1, 1), (0, 0)),
    "decision_tree": ((1, None), (0, None), (1, None), (0, None)),
    "identity": ((1, 1), (1, 1), (1, 1), (0, 0)),
    "int_coding": ((1, 145), (0, 1008), (1, 145), (0, 1008)),
    "json_field": ((1, 1), (0, 9), (1, 1), (0, 0)),
    "regex_match": ((1, 1), (0, 1), (1, 1), (0, 0)),
    "sink": ((1, 1), (0, 0), (1, 1), (0, 0)),
    "smith_waterman": ((1, 1), (0, 1), (1, 1), (0, 0)),
    "string_search": ((1, 1), (0, 1), (1, 1), (0, 0)),
}

#: Units whose unbounded verdict is reviewed and accepted (the CI
#: `lint --cost --all-apps` gate allows exactly these).
NONTERMINATION_ALLOWLIST = frozenset({"decision_tree"})


def cost_for(name):
    return build_cost(Analysis(build_app_unit(name)))


def test_golden_table_covers_all_units():
    assert sorted(GOLDEN_COST) == sorted(APP_UNIT_BUILDERS)


@pytest.mark.parametrize("name", sorted(APP_UNIT_BUILDERS))
def test_golden_cost_bounds(name):
    cost = cost_for(name)
    assert (cost.token.vcycles, cost.token.emits,
            cost.cleanup.vcycles, cost.cleanup.emits) == GOLDEN_COST[name]


@pytest.mark.parametrize("name", sorted(APP_UNIT_BUILDERS))
def test_termination_verdicts(name):
    cost = cost_for(name)
    if name in NONTERMINATION_ALLOWLIST:
        assert not cost.terminates
        assert cost.unbounded_loops
    else:
        assert cost.terminates
        assert not cost.unbounded_loops


@pytest.mark.parametrize("name", sorted(APP_UNIT_BUILDERS))
def test_certificates_carry_cost(name):
    certificate = certify_program(build_app_unit(name))
    assert certificate.cost is not None
    assert certificate.cost.token.vcycles == GOLDEN_COST[name][0]
    # The cost facts survive into the JSON payload and the render.
    payload = certificate.to_json()
    assert payload["cost"]["token"]["vcycles"] == \
        list(GOLDEN_COST[name][0])
    assert "vcycles/token" in certificate.render()


@pytest.mark.parametrize("name", sorted(APP_UNIT_BUILDERS))
def test_cost_json_round_trip(name):
    cost = cost_for(name)
    clone = CostFacts.from_json(cost.to_json())
    assert clone.token.vcycles == cost.token.vcycles
    assert clone.token.emits == cost.token.emits
    assert clone.cleanup.vcycles == cost.cleanup.vcycles
    assert clone.cleanup.emits == cost.cleanup.emits
    assert clone.terminates == cost.terminates
    assert ([l.location for l in clone.unbounded_loops]
            == [l.location for l in cost.unbounded_loops])


def test_stream_polynomial():
    cost = cost_for("block_frequencies")
    lo, hi = cost.stream_vcycles(100)
    # lo*n + c_lo / hi*n + c_hi against the golden per-token interval.
    assert lo == 1 * 100 + 1
    assert hi == 257 * 100 + 257
    lo, hi = cost.stream_emits(100)
    assert lo == 0
    assert hi == 256 * 100 + 256


def test_stream_polynomial_unbounded():
    cost = cost_for("decision_tree")
    assert cost.stream_vcycles(10)[1] is None
    assert cost.stream_emits(10)[1] is None
    # Lower bounds survive: at least one vcycle per token plus cleanup.
    assert cost.stream_vcycles(10)[0] == 11


def test_check_token_flags_violations():
    cost = cost_for("identity")  # exact (1, 1) vcycles and emits
    assert cost.check_token(1, 1) == []
    assert any("vcycles" in v for v in cost.check_token(2, 1))
    assert any("emits" in v for v in cost.check_token(1, 0))
    # Cleanup phase has its own interval (identity emits nothing there).
    assert cost.check_token(1, 0, cleanup=True) == []
    assert any("emits" in v for v in cost.check_token(1, 1, cleanup=True))


def test_check_token_skips_upper_when_unbounded():
    cost = cost_for("decision_tree")
    # No finite upper bound: arbitrarily expensive tokens are in bounds,
    # but the certified lower bound still applies.
    assert cost.check_token(10_000, 500) == []
    assert any("vcycles" in v for v in cost.check_token(0, 0))


@pytest.mark.parametrize("name", sorted(set(APP_UNIT_BUILDERS)
                                        - NONTERMINATION_ALLOWLIST))
def test_measured_runs_inside_certified_interval(name):
    """Every measured (vcycles, emits) record of real interpreter runs
    on random input lands inside the certified interval — the
    cost-soundness property the differential fuzzer checks on generated
    programs, replayed here on the app catalog."""
    program = build_app_unit(name)
    cost = build_cost(Analysis(program))
    rng = random.Random(1234)
    width = program.input_width
    for _trial in range(5):
        sim = make_simulator(program, engine="interp")
        tokens = [rng.randrange(1 << width)
                  for _ in range(rng.randrange(0, 24))]
        sim.run(tokens)
        trace = sim.trace
        n = len(trace.vcycles_per_token)
        for i in range(n):
            cleanup = trace._cleanup_recorded and i == n - 1
            assert cost.check_token(
                trace.vcycles_per_token[i], trace.emits_per_token[i],
                cleanup=cleanup,
            ) == []
