"""Restriction certificates: fingerprint binding, simulator wiring, and
checks-off differential equivalence."""

import pytest

from repro.interp import UnitSimulator, make_simulator
from repro.lang.errors import (
    FleetEmitConflictError,
    FleetRestrictionError,
    FleetSimulationError,
)
from repro.lint import certificate_for, certify_program, program_fingerprint
from repro.lint.selftest import _unproven_conflict
from repro.lint.units import build_app_unit


def test_fingerprint_is_reproducible_and_distinguishes_programs():
    a1 = program_fingerprint(build_app_unit("regex_match"))
    a2 = program_fingerprint(build_app_unit("regex_match"))
    b = program_fingerprint(build_app_unit("string_search"))
    assert a1 == a2
    assert a1 != b
    assert len(a1) == 64 and int(a1, 16) >= 0


def test_certificate_covers_only_its_own_program():
    regex = build_app_unit("regex_match")
    other = build_app_unit("string_search")
    certificate = certificate_for(regex)
    assert certificate.ok
    assert certificate.covers(regex)
    assert not certificate.covers(other)


def test_certificate_for_is_cached():
    program = build_app_unit("identity")
    assert certificate_for(program) is certificate_for(program)


def test_simulator_rejects_foreign_certificate():
    regex = build_app_unit("regex_match")
    other_cert = certificate_for(build_app_unit("string_search"))
    with pytest.raises(FleetSimulationError, match="does not cover"):
        UnitSimulator(regex, certificate=other_cert)


def test_certified_run_is_byte_identical_with_checks_off(rnd):
    for name, alphabet in (("regex_match", b"abcdx"),
                           ("string_search", b"abrakadabra"),
                           ("identity", bytes(range(256)))):
        program = build_app_unit(name)
        certificate = certificate_for(program)
        assert certificate.ok
        for _ in range(5):
            stream = bytes(rnd.choice(alphabet)
                           for _ in range(rnd.randrange(0, 60)))
            checked = UnitSimulator(program, engine="interp")
            want = list(checked.run(stream))
            certified = UnitSimulator(program, engine="interp",
                                      certificate=certificate)
            assert not certified.check_restrictions
            got = list(certified.run(stream))
            assert got == want


def test_failed_certificate_keeps_dynamic_checks_on():
    program = _unproven_conflict()
    certificate = certificate_for(program)
    assert not certificate.ok
    sim = UnitSimulator(program, engine="interp", certificate=certificate)
    assert sim.check_restrictions
    # Input 0b11 satisfies both emit guards: the dynamic check must
    # still fire despite a certificate being presented.
    with pytest.raises(FleetEmitConflictError):
        list(sim.run(bytes([0b11])))
    # And input 0b01 takes only the first arm: no error.
    ok = UnitSimulator(program, engine="interp", certificate=certificate)
    assert list(ok.run(bytes([0b01]))) == [1]


def test_make_simulator_accepts_certificate():
    program = build_app_unit("identity")
    certificate = certificate_for(program)
    sim = make_simulator(program, engine="interp",
                         certificate=certificate)
    assert list(sim.run(b"\x07\x20")) == [0x07, 0x20]


def test_certify_program_reasons_name_the_failures():
    program = _unproven_conflict()
    certificate = certify_program(program)
    assert not certificate.ok
    assert any("unproven conflict" in reason
               for reason in certificate.reasons)
    assert "NOT certified" in certificate.render()
    payload = certificate.to_json()
    assert payload["certified"] is False
    assert payload["fingerprint"] == program_fingerprint(program)


def test_restriction_error_hierarchy_matches_certificate_claim():
    # The certificate only claims FleetRestrictionError cannot fire;
    # the emit-conflict class used above must be in that family.
    assert issubclass(FleetEmitConflictError, FleetRestrictionError)
