"""SARIF 2.1.0 export: schema validation and region/metadata contracts.

The official schema is at :data:`repro.lint.sarif.SARIF_SCHEMA`; CI has
no network, so :data:`SARIF_SUBSET_SCHEMA` embeds the subset of its
constraints that covers every property we emit — required fields,
``version`` const, level enums, and the integer floors the spec puts on
text regions (SARIF 2.1.0 sections 3.13, 3.19, 3.27, 3.30, 3.49).
Anything the subset cannot express is asserted directly.
"""

import jsonschema
import pytest

from repro.lint import lint_program, reports_to_sarif
from repro.lint.findings import FINDING_CLASSES, LintFinding
from repro.lint.sarif import SARIF_SCHEMA, SARIF_VERSION
from repro.lint.selftest import CASES
from repro.lint.units import APP_UNIT_BUILDERS, build_app_unit

_LEVEL_ENUM = ["none", "note", "warning", "error"]

_MESSAGE = {
    "type": "object",
    "required": ["text"],
    "properties": {"text": {"type": "string", "minLength": 1}},
}

_REGION = {
    "type": "object",
    "properties": {
        "startLine": {"type": "integer", "minimum": 1},
        "startColumn": {"type": "integer", "minimum": 1},
        "endLine": {"type": "integer", "minimum": 1},
        "endColumn": {"type": "integer", "minimum": 1},
        "snippet": {
            "type": "object",
            "properties": {"text": {"type": "string"}},
        },
    },
}

_RULE = {
    "type": "object",
    "required": ["id"],
    "properties": {
        "id": {"type": "string", "minLength": 1},
        "name": {"type": "string", "pattern": r"^[A-Za-z0-9]+$"},
        "shortDescription": _MESSAGE,
        "fullDescription": _MESSAGE,
        "helpUri": {"type": "string", "format": "uri"},
        "defaultConfiguration": {
            "type": "object",
            "properties": {"level": {"enum": _LEVEL_ENUM}},
        },
    },
}

_LOCATION = {
    "type": "object",
    "properties": {
        "physicalLocation": {
            "type": "object",
            "properties": {
                "artifactLocation": {
                    "type": "object",
                    "properties": {
                        "uri": {"type": "string", "minLength": 1},
                    },
                },
                "region": _REGION,
            },
        },
        "logicalLocations": {
            "type": "array",
            "items": {
                "type": "object",
                "properties": {
                    "name": {"type": "string"},
                    "fullyQualifiedName": {"type": "string"},
                    "kind": {"type": "string"},
                },
            },
        },
    },
}

_RESULT = {
    "type": "object",
    "required": ["message"],
    "properties": {
        "ruleId": {"type": "string", "minLength": 1},
        "level": {"enum": _LEVEL_ENUM},
        "message": _MESSAGE,
        "locations": {"type": "array", "items": _LOCATION},
        "properties": {"type": "object"},
    },
}

SARIF_SUBSET_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {
                                        "type": "string",
                                        "format": "uri",
                                    },
                                    "rules": {
                                        "type": "array",
                                        "items": _RULE,
                                    },
                                },
                            }
                        },
                    },
                    "results": {"type": "array", "items": _RESULT},
                },
            },
        },
    },
}


def _all_reports():
    """Lint reports for every app unit plus every selftest negative
    program — together these fire most rules, including regions deep in
    nested statements."""
    reports = [
        lint_program(build_app_unit(name))
        for name in sorted(APP_UNIT_BUILDERS)
    ]
    reports.extend(lint_program(build()) for _, build, _, _ in CASES)
    return reports


@pytest.fixture(scope="module")
def sarif():
    return reports_to_sarif(_all_reports())


def test_sarif_validates_against_schema_subset(sarif):
    jsonschema.validate(
        sarif, SARIF_SUBSET_SCHEMA,
        format_checker=jsonschema.FormatChecker(),
    )


def test_rule_metadata_is_complete(sarif):
    (run,) = sarif["runs"]
    rules = run["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == sorted(FINDING_CLASSES)
    for rule in rules:
        cls = FINDING_CLASSES[rule["id"]]
        assert rule["name"] == cls.__name__
        assert rule["shortDescription"]["text"]
        assert rule["fullDescription"]["text"]
        assert rule["helpUri"].startswith("https://")
        assert "#" in rule["helpUri"]
        assert rule["defaultConfiguration"]["level"] in _LEVEL_ENUM
    assert len({r["helpUri"] for r in rules}) == len(rules)


def test_results_reference_declared_rules_only(sarif):
    (run,) = sarif["runs"]
    declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    seen = {result["ruleId"] for result in run["results"]}
    assert run["results"], "expected findings from app units and CASES"
    assert seen <= declared
    # The export exercises both severities' level mapping.
    assert {"lint/dead-assignment", "lint/nontermination-risk"} <= seen


def test_every_result_has_physical_region_with_end_column(sarif):
    (run,) = sarif["runs"]
    for result in run["results"]:
        (location,) = result["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"].startswith(
            "fleet-unit:///"
        )
        region = physical["region"]
        assert region["startLine"] >= 1
        assert region["endLine"] == region["startLine"]
        assert region["startColumn"] == 1
        assert region["endColumn"] > region["startColumn"]
        (logical,) = location["logicalLocations"]
        assert region["snippet"]["text"] == logical["name"]
        assert region["endColumn"] == 1 + len(logical["name"])
        assert logical["fullyQualifiedName"].endswith(
            "::" + logical["name"]
        )


def test_region_line_tracks_top_level_statement_index():
    from repro.lint.sarif import _region

    assert _region("body[0]")["startLine"] == 1
    assert _region("body[7].arm[1].body[2]")["startLine"] == 8
    assert _region("body[12].body[0]")["endColumn"] == 1 + len(
        "body[12].body[0]"
    )
    assert _region("<program>")["startLine"] == 1


def test_schema_subset_rejects_malformed_logs(sarif):
    import copy

    bad_version = copy.deepcopy(sarif)
    bad_version["version"] = "2.0.0"
    with pytest.raises(jsonschema.ValidationError):
        jsonschema.validate(bad_version, SARIF_SUBSET_SCHEMA)

    bad_region = copy.deepcopy(sarif)
    result = bad_region["runs"][0]["results"][0]
    region = result["locations"][0]["physicalLocation"]["region"]
    region["startColumn"] = 0
    with pytest.raises(jsonschema.ValidationError):
        jsonschema.validate(bad_region, SARIF_SUBSET_SCHEMA)


def test_schema_url_pins_sarif_2_1_0():
    assert SARIF_VERSION == "2.1.0"
    assert "sarif-schema-2.1.0.json" in SARIF_SCHEMA


def test_finding_without_location_gets_program_region():
    finding = LintFinding("synthetic", resource=None, location=None)
    from repro.lint.sarif import _result

    result = _result("unit_x", finding)
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 1
    assert region["snippet"]["text"] == "<program>"
