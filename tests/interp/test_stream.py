"""Token packing helpers."""

import pytest

from repro.interp import (
    bytes_from_tokens,
    tokens_from_bytes,
    tokens_to_words,
    words_to_tokens,
)
from repro.lang import FleetSimulationError


def test_byte_tokens_round_trip():
    data = bytes(range(32))
    tokens = tokens_from_bytes(data, 8)
    assert tokens == list(range(32))
    assert bytes_from_tokens(tokens, 8) == data


def test_four_bit_tokens():
    tokens = tokens_from_bytes(b"\xAB", 4)
    assert tokens == [0xB, 0xA]  # little-endian bit order
    assert bytes_from_tokens(tokens, 4) == b"\xAB"


def test_sixteen_bit_tokens():
    tokens = tokens_from_bytes(b"\x34\x12\x78\x56", 16)
    assert tokens == [0x1234, 0x5678]


def test_partial_token_rejected():
    with pytest.raises(FleetSimulationError):
        tokens_from_bytes(b"\x01", 16)


def test_oversized_token_rejected_on_pack():
    with pytest.raises(FleetSimulationError):
        bytes_from_tokens([256], 8)


def test_words_round_trip():
    values = [0xDEADBEEF, 0x12345678]
    tokens = words_to_tokens(values, value_width=32, token_width=8)
    assert tokens[:4] == [0xEF, 0xBE, 0xAD, 0xDE]
    assert tokens_to_words(tokens, value_width=32, token_width=8) == values


def test_words_reject_misaligned():
    with pytest.raises(FleetSimulationError):
        words_to_tokens([1], value_width=12, token_width=8)
    with pytest.raises(FleetSimulationError):
        tokens_to_words([1, 2, 3], value_width=16, token_width=8)


def test_words_reject_unfittable_value():
    with pytest.raises(FleetSimulationError):
        words_to_tokens([1 << 32], value_width=32, token_width=8)
