"""The compiled-to-Python unit engine must be indistinguishable from the
interpreter: identical output tokens, identical per-token virtual-cycle
and emit traces, identical final architectural state — on every shipped
application and on randomized programs."""

import random

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.apps import (
    block_frequencies_unit,
    identity_unit,
    sink_unit,
)
from repro.bench import catalog
from repro.interp import (
    UnitSimulator,
    fast_engine_for,
    make_simulator,
)
from repro.lang import FleetError, UnitBuilder

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _state(sim, unit):
    regs = {decl.name: sim.peek_reg(decl.name) for decl in unit.regs}
    brams = {decl.name: sim.peek_bram(decl.name) for decl in unit.brams}
    return regs, brams


def _differential(unit, stream, *, check_restrictions=True):
    interp = make_simulator(
        unit, engine="interp", check_restrictions=check_restrictions
    )
    compiled = make_simulator(
        unit, engine="compiled", check_restrictions=check_restrictions
    )
    assert interp.run(stream) == compiled.run(stream)
    assert interp.trace.vcycles_per_token == \
        compiled.trace.vcycles_per_token
    assert interp.trace.emits_per_token == compiled.trace.emits_per_token
    assert _state(interp, unit) == _state(compiled, unit)


@pytest.mark.parametrize("key", sorted(catalog()))
def test_catalog_apps_trace_exact(key):
    spec = catalog()[key]
    unit = (spec.profile_unit or spec.unit)()
    small, large = spec.stream_pairs(small=300, large=900)[0]
    _differential(unit, small)
    _differential(unit, large)


@pytest.mark.parametrize("make", [identity_unit, sink_unit,
                                  block_frequencies_unit])
def test_simple_units_trace_exact(make):
    unit = make()
    stream = [(i * 37 + 11) % 256 for i in range(400)]
    _differential(unit, stream)


def test_auto_engine_selects_compiled_for_shipped_apps():
    for key, spec in catalog().items():
        unit = (spec.profile_unit or spec.unit)()
        assert fast_engine_for(unit) is not None, key
        sim = UnitSimulator(unit)
        sim.run([1, 2, 3])
        assert sim.last_run_engine == "compiled", key


def test_fleet_engine_env_forces_interpreter(monkeypatch):
    monkeypatch.setenv("FLEET_ENGINE", "interp")
    unit = identity_unit()
    assert fast_engine_for(unit) is None
    sim = UnitSimulator(unit)
    sim.run([1, 2, 3])
    assert sim.last_run_engine == "interp"


def test_incremental_api_stays_on_interpreter():
    # process_token starts the stream, so a later run() may not switch
    # engines mid-stream.
    unit = identity_unit()
    sim = UnitSimulator(unit)
    assert sim.process_token(7) == [7]
    sim.finish_stream()
    assert sim.outputs == [7]
    assert sim.last_run_engine is None  # run() was never used


# -- randomized differential ------------------------------------------------

def _random_expr(rnd, b, regs, vreg, bram, depth):
    if depth <= 0:
        leaf = rnd.randrange(5)
        if leaf == 0:
            return b.input
        if leaf == 1:
            return rnd.choice(regs)
        if leaf == 2:
            return b.const(rnd.randrange(256), 8)
        if leaf == 3:
            return vreg[rnd.randrange(4)]
        return bram[rnd.choice(regs)]
    op = rnd.randrange(10)
    lhs = _random_expr(rnd, b, regs, vreg, bram, depth - 1)
    if op == 8:
        return b.mux(
            _random_cond(rnd, b, regs, vreg, bram),
            lhs,
            _random_expr(rnd, b, regs, vreg, bram, depth - 1),
        )
    if op == 9:
        return ~lhs
    rhs = _random_expr(rnd, b, regs, vreg, bram, depth - 1)
    if op == 0:
        return lhs + rhs
    if op == 1:
        return lhs - rhs
    if op == 2:
        return lhs * rhs
    if op == 3:
        return lhs & rhs
    if op == 4:
        return lhs | rhs
    if op == 5:
        return lhs ^ rhs
    if op == 6:
        return lhs == rhs
    return lhs < rhs


def _random_cond(rnd, b, regs, vreg, bram):
    """A 1-bit expression (conditions must be single-bit)."""
    value = _random_expr(rnd, b, regs, vreg, bram, 1)
    kind = rnd.randrange(4)
    if kind == 0:
        return value == _random_expr(rnd, b, regs, vreg, bram, 0)
    if kind == 1:
        return value < _random_expr(rnd, b, regs, vreg, bram, 0)
    if kind == 2:
        return value.any()
    return value.bit(rnd.randrange(value.width))


def _random_statement(rnd, b, regs, vreg, bram, allow_blocks=True):
    kind = rnd.randrange(7 if allow_blocks else 5)
    if kind == 0:
        rnd.choice(regs).set(_random_expr(rnd, b, regs, vreg, bram, 2))
    elif kind == 1:
        vreg[_random_expr(rnd, b, regs, vreg, bram, 0)] = _random_expr(
            rnd, b, regs, vreg, bram, 2
        )
    elif kind == 2:
        bram[rnd.choice(regs)] = _random_expr(rnd, b, regs, vreg, bram, 2)
    elif kind in (3, 4):
        b.emit(_random_expr(rnd, b, regs, vreg, bram, 2))
    elif kind == 5:
        with b.when(_random_cond(rnd, b, regs, vreg, bram)):
            for _ in range(rnd.randrange(1, 3)):
                _random_statement(rnd, b, regs, vreg, bram,
                                  allow_blocks=False)
    else:
        # One bounded while: only the counter controls the condition, so
        # the loop always terminates within 2**4 virtual cycles.
        ctr = b.reg(f"ctr{rnd.randrange(10**6)}", width=5, init=0)
        with b.while_(ctr < rnd.randrange(2, 9)):
            ctr.set(ctr + 1)
            _random_statement(rnd, b, regs, vreg, bram, allow_blocks=False)
        ctr.set(0)


def build_random_unit(seed):
    rnd = random.Random(seed)
    b = UnitBuilder(f"fuzz_{seed & 0xffff}", input_width=8, output_width=8)
    regs = [
        b.reg(f"r{i}", width=rnd.choice((4, 8, 13)), init=rnd.randrange(8))
        for i in range(3)
    ]
    vreg = b.vreg("v", elements=4, width=8)
    bram = b.bram("m", elements=16, width=8)
    for _ in range(rnd.randrange(2, 6)):
        _random_statement(rnd, b, regs, vreg, bram)
    return b.finish()


@slow
@given(
    st.integers(min_value=0, max_value=2 ** 32),
    st.lists(st.integers(min_value=0, max_value=255), max_size=40),
)
def test_random_programs_trace_exact(seed, stream):
    """Restriction checks off: the interpreter's permissive semantics
    (last write wins, one emit slot) are the compiled engine's contract
    even for programs the static prover would reject."""
    try:
        unit = build_random_unit(seed)
    except FleetError:
        # The generator occasionally produces statically rejected
        # programs (e.g. dependent BRAM reads); those never reach either
        # engine, so there is nothing to compare.
        assume(False)
    _differential(unit, stream, check_restrictions=False)
