"""Dynamic restriction checks — the paper's software-simulator role."""

import pytest

from repro.interp import UnitSimulator
from repro.lang import FleetRestrictionError, UnitBuilder


def test_two_reads_different_addresses_rejected():
    b = UnitBuilder("r2", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    x = b.reg("x", width=8)
    x.set((m[0] + m[1]).bits(7, 0))
    unit = b.finish()
    with pytest.raises(FleetRestrictionError, match="two addresses"):
        UnitSimulator(unit).process_token(0)


def test_two_reads_same_address_allowed():
    b = UnitBuilder("r1", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    x = b.reg("x", width=8)
    x.set((m[3] + m[3]).bits(7, 0))
    unit = b.finish()
    UnitSimulator(unit).process_token(0)  # one port suffices


def test_mutually_exclusive_reads_allowed():
    b = UnitBuilder("rx", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    with b.when(b.input == 0):
        b.emit(m[0])
    with b.otherwise():
        b.emit(m[1])
    unit = b.finish()
    sim = UnitSimulator(unit)
    sim.process_token(0)
    sim.process_token(5)  # both paths fine, one at a time


def test_two_writes_rejected():
    b = UnitBuilder("w2", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    m[0] = 1
    m[1] = 2
    unit = b.finish()
    with pytest.raises(FleetRestrictionError, match="written twice"):
        UnitSimulator(unit).process_token(0)


def test_read_plus_write_same_cycle_allowed():
    b = UnitBuilder("rw", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    m[0] = m[1] + 1
    unit = b.finish()
    UnitSimulator(unit).process_token(0)


def test_two_emits_rejected():
    b = UnitBuilder("e2", input_width=8, output_width=8)
    b.emit(1)
    b.emit(2)
    unit = b.finish()
    with pytest.raises(FleetRestrictionError, match="more than one emit"):
        UnitSimulator(unit).process_token(0)


def test_exclusive_emits_allowed():
    b = UnitBuilder("ex", input_width=8, output_width=8)
    with b.when(b.input == 0):
        b.emit(1)
    with b.otherwise():
        b.emit(2)
    unit = b.finish()
    # Final 1 = the cleanup virtual cycle's dummy 0 token.
    assert UnitSimulator(unit).run([0, 5]) == [1, 2, 1]


def test_double_register_assignment_rejected():
    b = UnitBuilder("a2", input_width=8, output_width=8)
    r = b.reg("r", width=8)
    r.set(1)
    r.set(2)
    unit = b.finish()
    with pytest.raises(FleetRestrictionError, match="assigned twice"):
        UnitSimulator(unit).process_token(0)


def test_vreg_same_index_double_write_rejected():
    b = UnitBuilder("v2", input_width=8, output_width=8)
    v = b.vreg("v", elements=4, width=8)
    v[1] = 1
    v[b.input.bits(1, 0)] = 2
    unit = b.finish()
    with pytest.raises(FleetRestrictionError):
        UnitSimulator(unit).process_token(1)
    # ...but distinct dynamic indices are fine.
    sim = UnitSimulator(unit)
    sim.reset()
    sim.process_token(2)


def test_checks_can_be_disabled():
    b = UnitBuilder("off", input_width=8, output_width=8)
    r = b.reg("r", width=8)
    r.set(1)
    r.set(2)
    unit = b.finish()
    sim = UnitSimulator(unit, check_restrictions=False)
    sim.process_token(0)  # last assignment wins, no error
    assert sim.peek_reg("r") == 2


def test_loop_cycle_restrictions_apply_per_vcycle():
    # One read per loop vcycle is fine even though the loop performs many
    # reads over its lifetime (the histogram pattern).
    b = UnitBuilder("loop", input_width=8, output_width=8)
    m = b.bram("m", elements=4, width=8)
    idx = b.reg("idx", width=3, init=0)
    run = b.reg("run", width=1, init=1)
    with b.while_(run == 1):
        b.emit(m[idx.bits(1, 0)])
        idx.set(idx + 1)
        with b.when(idx == 3):
            run.set(0)
    unit = b.finish()
    out = UnitSimulator(unit).run([0])
    assert out == [0, 0, 0, 0]
