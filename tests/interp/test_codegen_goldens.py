"""Golden snapshots of the certified-specialized codegen.

One specialized-Python golden (``<app>.py.txt``) and — where the
machine-word gate admits the app — one C golden (``<app>.c.txt``) per
application unit under ``tests/interp/goldens/codegen/``. Any change to
the specialization pipeline (mask elision, const folding, dead-arm
pruning, phase splitting, the C surface) shows up as a reviewable
source diff::

    PYTHONPATH=src python -m pytest tests/interp/test_codegen_goldens.py \
        --update-goldens

Source generation is pure Python, so the C goldens need no toolchain.
"""

import os

import pytest

from repro.apps import (
    block_frequencies_unit,
    bloom_filter_unit,
    csv_extract_unit,
    decision_tree_unit,
    identity_unit,
    int_coding_unit,
    json_field_unit,
    regex_match_unit,
    sink_unit,
    smith_waterman_unit,
    string_search_unit,
)
from repro.interp import cc_support, compile_program
from repro.interp.cc import _UnitCCodegen
from repro.lint import certificate_for

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens", "codegen")

# Reduced parameters: deterministic, and small enough that a golden diff
# is reviewable by eye (mirrors tests/rtl/test_goldens.py).
APP_UNITS = [
    ("identity", identity_unit),
    ("sink", sink_unit),
    ("block_frequencies", block_frequencies_unit),
    ("csv_extract", csv_extract_unit),
    ("int_coding", int_coding_unit),
    ("bloom_filter", lambda: bloom_filter_unit(
        block_size=16, num_hashes=4, section_bits=256)),
    ("decision_tree", lambda: decision_tree_unit(
        max_features=8, max_trees=4, max_nodes=64)),
    ("json_field", lambda: json_field_unit(max_states=8, max_depth=8)),
    ("regex_match", lambda: regex_match_unit("a(b|c)+d")),
    ("smith_waterman", lambda: smith_waterman_unit(target_length=4)),
    ("string_search", lambda: string_search_unit(max_states=16)),
]


def _check(text, path, update_goldens, what):
    if update_goldens:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        pytest.skip(f"golden rewritten: {path}")
    assert os.path.exists(path), (
        f"missing golden {path}; run pytest with --update-goldens"
    )
    with open(path, "r", encoding="utf-8") as handle:
        golden = handle.read()
    assert text == golden, (
        f"{what} differs from its golden snapshot; if the change is "
        "intentional, regenerate with --update-goldens and review the "
        "diff"
    )


@pytest.mark.parametrize("name,factory", APP_UNITS,
                         ids=[n for n, _ in APP_UNITS])
def test_golden_specialized_python(name, factory, update_goldens):
    program = factory()
    certificate = certificate_for(program)
    assert certificate.ok and certificate.facts is not None, (
        f"app unit {name!r} lost its clean restriction certificate"
    )
    unit = compile_program(program, certificate=certificate)
    assert unit.specialized
    _check(unit.source, os.path.join(GOLDEN_DIR, f"{name}.py.txt"),
           update_goldens, f"specialized Python for {name!r}")


@pytest.mark.parametrize("name,factory", APP_UNITS,
                         ids=[n for n, _ in APP_UNITS])
def test_golden_c_source(name, factory, update_goldens):
    program = factory()
    supported, reason = cc_support(program)
    if not supported:
        pytest.skip(f"cc unsupported for {name!r}: {reason}")
    certificate = certificate_for(program)
    assert certificate.ok and certificate.facts is not None
    source = _UnitCCodegen(program, facts=certificate.facts).generate()
    _check(source, os.path.join(GOLDEN_DIR, f"{name}.c.txt"),
           update_goldens, f"C kernel source for {name!r}")


def test_goldens_directory_has_no_strays():
    expected = set()
    for name, factory in APP_UNITS:
        expected.add(f"{name}.py.txt")
        if cc_support(factory())[0]:
            expected.add(f"{name}.c.txt")
    present = {
        entry for entry in os.listdir(GOLDEN_DIR)
        if not entry.startswith(".")
    }
    assert present == expected, (
        f"stray or missing goldens: {sorted(present ^ expected)}"
    )
