"""The native C engine (``FLEET_ENGINE=cc``).

Certified-only: the C kernel is generated from the same specialized IR
as the certified compiled-Python lowering, so every test here is a
byte-identity claim against that engine and the interpreter oracle —
outputs, virtual-cycle and emit traces, final register/BRAM state, and
the exact error behavior on faults. Toolchain-dependent tests skip
cleanly when no C compiler is available (or ``FLEET_NATIVE=off``).
"""

import random

import pytest

from repro.apps import (
    bloom_filter_unit,
    decision_tree_unit,
    int_coding_unit,
    json_field_unit,
)
from repro.interp import (
    CcSimulator,
    CompiledSimulator,
    UnitSimulator,
    cc_available,
    cc_engine_for,
    cc_support,
    compile_cc,
    try_compile_cc,
)
from repro.lang import FleetConfigError, UnitBuilder
from repro.lang.errors import FleetSimulationError
from repro.lint import certificate_for

needs_cc = pytest.mark.skipif(
    not cc_available(), reason="no C toolchain (or FLEET_NATIVE=off)"
)


def _signature(sim):
    return (
        tuple(sim.outputs),
        tuple(sim.trace.vcycles_per_token),
        tuple(sim.trace.emits_per_token),
        tuple(sim.peek_reg(r.name) for r in sim.program.regs),
        tuple(tuple(sim.peek_bram(b.name)) for b in sim.program.brams),
    )


def _stream(n, width=256, seed=11):
    rng = random.Random(seed)
    return [rng.randrange(width) for _ in range(n)]


# ---------------------------------------------------------------------------
# Support and gating (no toolchain required)
# ---------------------------------------------------------------------------


def test_cc_support_accepts_machine_word_apps():
    for build in (int_coding_unit, bloom_filter_unit, json_field_unit):
        ok, reason = cc_support(build())
        assert ok, reason


def test_cc_support_rejects_wide_expressions():
    # Decision tree concatenates past the 64-bit machine word.
    ok, reason = cc_support(decision_tree_unit())
    assert not ok
    assert "64" in reason


def test_cc_requires_a_certificate():
    b = UnitBuilder("uncert", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    m[0] = 1
    m[1] = 2  # definite conflict: never certifies
    program = b.finish()
    certificate = certificate_for(program)
    assert not certificate.ok
    with pytest.raises(FleetSimulationError, match="refusing native"):
        compile_cc(program, certificate=certificate)
    assert cc_engine_for(program) is None


def test_stale_certificate_refuses_native_build():
    from repro.lang.ast import BramWrite, Const

    b = UnitBuilder("cc-stale", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    m[0] = b.input
    b.emit(b.input)
    program = b.finish()
    certificate = certificate_for(program)
    assert certificate.ok
    program.body = tuple(program.body) + (
        BramWrite(program.brams[0], Const(1, 3), Const(2, 8)),
    )
    assert not certificate.covers(program)
    with pytest.raises(FleetSimulationError, match="refusing native"):
        compile_cc(program, certificate=certificate)


def test_fleet_native_off_disables_the_engine(monkeypatch):
    monkeypatch.setenv("FLEET_NATIVE", "off")
    assert not cc_available()
    assert cc_engine_for(int_coding_unit()) is None


@needs_cc
def test_fleet_native_off_wins_over_a_warm_cache(monkeypatch):
    # Build (and cache) the native unit first, then flip the lever:
    # the cached unit must not be handed out.
    program = int_coding_unit()
    assert cc_engine_for(program) is not None
    monkeypatch.setenv("FLEET_NATIVE", "off")
    assert cc_engine_for(program) is None
    monkeypatch.delenv("FLEET_NATIVE")
    assert cc_engine_for(program) is not None


def test_fleet_native_typo_fails_loudly(monkeypatch):
    monkeypatch.setenv("FLEET_NATIVE", "offf")
    with pytest.raises(FleetConfigError, match="FLEET_NATIVE"):
        cc_available()


# ---------------------------------------------------------------------------
# Byte identity (toolchain required)
# ---------------------------------------------------------------------------


@needs_cc
def test_cc_matches_oracle_on_apps():
    for build in (int_coding_unit, bloom_filter_unit, json_field_unit):
        program = build()
        stream = _stream(400)
        oracle = UnitSimulator(program)
        oracle.run(stream)
        native = CcSimulator(program)
        native.run(stream)
        assert _signature(native) == _signature(oracle)
        assert native.engine == "cc"


@needs_cc
def test_cc_incremental_api_matches_run():
    program = int_coding_unit()
    stream = _stream(120, seed=3)
    whole = CcSimulator(program)
    whole.run(stream)
    incremental = CcSimulator(program)
    for token in stream:
        incremental.process_token(token)
    incremental.finish_stream()
    assert _signature(incremental) == _signature(whole)


@needs_cc
def test_cc_reset_reuses_the_kernel():
    program = bloom_filter_unit()
    sim = CcSimulator(program)
    stream = _stream(64, seed=5)
    sim.run(stream)
    first = _signature(sim)
    sim.reset()
    sim.run(stream)
    assert _signature(sim) == first


@needs_cc
def test_cc_source_is_c_and_cached_on_program():
    program = int_coding_unit()
    unit = try_compile_cc(program)
    assert unit is not None
    assert try_compile_cc(program) is unit  # program-object cache
    assert "#include <stdint.h>" in unit.source
    assert "fleet_tokens" in unit.source and "fleet_finish" in unit.source


# ---------------------------------------------------------------------------
# Error parity with the compiled engine (toolchain required)
# ---------------------------------------------------------------------------


@needs_cc
def test_cc_token_validation_message_is_exact():
    program = int_coding_unit()
    for bad in (-1, 256, 1.5, "x"):
        native, compiled = CcSimulator(program), CompiledSimulator(program)
        with pytest.raises(FleetSimulationError) as n_info:
            native.run([bad])
        with pytest.raises(FleetSimulationError) as c_info:
            compiled.run([bad])
        assert str(n_info.value) == str(c_info.value)


@needs_cc
def test_cc_loop_limit_fault_parity():
    program = int_coding_unit()
    stream = _stream(40, seed=9)
    compiled = CompiledSimulator(program, max_vcycles_per_token=2)
    native = CcSimulator(program, max_vcycles_per_token=2)
    with pytest.raises(FleetSimulationError) as c_info:
        compiled.run(stream)
    with pytest.raises(FleetSimulationError) as n_info:
        native.run(stream)
    assert str(n_info.value) == str(c_info.value)
    # Partial outputs, traces, and state agree at the fault point.
    assert _signature(native) == _signature(compiled)


@needs_cc
def test_cc_finished_stream_guards():
    program = int_coding_unit()
    sim = CcSimulator(program)
    sim.run(_stream(8))
    with pytest.raises(FleetSimulationError, match="already finished"):
        sim.process_token(0)
    with pytest.raises(FleetSimulationError, match="already finished"):
        sim.finish_stream()
