"""Stream trace accounting (the performance simulator's input)."""

from repro.interp import StreamTrace, UnitSimulator
from repro.apps import block_frequencies_unit, identity_unit


def test_empty_trace():
    trace = StreamTrace()
    assert trace.tokens_in == 0
    assert trace.mean_vcycles_per_token == 0.0


def test_cleanup_token_excluded_from_tokens_in():
    sim = UnitSimulator(identity_unit())
    sim.run([1, 2, 3])
    assert sim.trace.tokens_in == 3
    assert len(sim.trace.vcycles_per_token) == 4  # + cleanup

    # mean divides by real tokens only
    assert sim.trace.mean_vcycles_per_token == 4 / 3


def test_emits_tracked_per_token():
    sim = UnitSimulator(block_frequencies_unit(block_size=2))
    sim.run([1, 2, 3, 4])
    # blocks complete on tokens 3 and during cleanup
    assert sim.trace.tokens_out == 512
    flush_tokens = [e for e in sim.trace.emits_per_token if e]
    assert flush_tokens == [256, 256]


def test_total_vcycles_consistent():
    sim = UnitSimulator(block_frequencies_unit(block_size=2))
    sim.run([1, 2, 3, 4])
    assert sim.trace.total_vcycles == sum(sim.trace.vcycles_per_token)
