"""Stream trace accounting (the performance simulator's input)."""

from repro.interp import StreamTrace, UnitSimulator
from repro.apps import block_frequencies_unit, identity_unit


def test_empty_trace():
    trace = StreamTrace()
    assert trace.tokens_in == 0
    assert trace.mean_vcycles_per_token == 0.0


def test_cleanup_token_excluded_from_tokens_in():
    sim = UnitSimulator(identity_unit())
    sim.run([1, 2, 3])
    assert sim.trace.tokens_in == 3
    assert len(sim.trace.vcycles_per_token) == 4  # + cleanup

    # mean divides by real tokens only
    assert sim.trace.mean_vcycles_per_token == 4 / 3


def test_emits_tracked_per_token():
    sim = UnitSimulator(block_frequencies_unit(block_size=2))
    sim.run([1, 2, 3, 4])
    # blocks complete on tokens 3 and during cleanup
    assert sim.trace.tokens_out == 512
    flush_tokens = [e for e in sim.trace.emits_per_token if e]
    assert flush_tokens == [256, 256]


def test_total_vcycles_consistent():
    sim = UnitSimulator(block_frequencies_unit(block_size=2))
    sim.run([1, 2, 3, 4])
    assert sim.trace.total_vcycles == sum(sim.trace.vcycles_per_token)


def test_cleanup_and_payload_vcycles_split_the_total():
    sim = UnitSimulator(identity_unit())
    sim.run([1, 2, 3])
    trace = sim.trace
    assert trace.cleanup_vcycles == trace.vcycles_per_token[-1]
    assert trace.payload_vcycles == trace.total_vcycles - \
        trace.cleanup_vcycles
    assert trace.payload_vcycles == sum(trace.vcycles_per_token[:-1])

    # Before any cleanup has run, the split is trivial.
    fresh = StreamTrace()
    fresh.record_token(2, 0, stream_finished=False)
    assert fresh.cleanup_vcycles == 0
    assert fresh.payload_vcycles == 2


def test_empty_stream_mean_is_zero_not_an_error():
    sim = UnitSimulator(identity_unit())
    sim.run([])
    trace = sim.trace
    assert trace.tokens_in == 0
    # The cleanup cycle still ran and stays visible...
    assert trace.cleanup_vcycles >= 1
    assert trace.payload_vcycles == 0
    # ...but the per-token mean is defined as 0.0, never a division
    # error (header-only streams reach this path via profile_unit).
    assert trace.mean_vcycles_per_token == 0.0


def test_profile_unit_on_empty_stream():
    from repro.system import profile_unit

    profile = profile_unit(identity_unit(), b"")
    assert profile.vcycles_per_token == 0.0
    assert profile.output_ratio == 0.0
    assert profile.tokens_in == 0
