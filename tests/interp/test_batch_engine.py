"""The SIMD batch engine must be indistinguishable from N independent
compiled-engine runs: identical output tokens, identical per-token
virtual-cycle and emit traces, identical final architectural state —
across ragged batches, empty streams, batch-of-1, and both the NumPy and
native-kernel backends."""

import random

import pytest

from repro.apps import (
    block_frequencies_unit,
    bloom_filter_unit,
    identity_unit,
    int_coding_unit,
    regex_match_unit,
    smith_waterman_unit,
)
from repro.interp import (
    BatchStreamSimulator,
    CompiledSimulator,
    batch_engine_for,
    batch_support,
    cc_available,
    compile_batch,
    env_engine,
    make_simulator,
    numpy_available,
    run_batch_streams,
)
from repro.lang import FleetConfigError, UnitBuilder

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy unavailable"
)

APPS = {
    "identity": (identity_unit, lambda rng: rng.randrange(256)),
    "block_frequencies": (block_frequencies_unit,
                          lambda rng: rng.randrange(256)),
    "bloom_filter": (bloom_filter_unit, lambda rng: rng.randrange(256)),
    "int_coding": (int_coding_unit, lambda rng: rng.randrange(256)),
    "regex_match": (regex_match_unit,
                    lambda rng: rng.choice(b"ab.@x \nuser@host.com")),
    "smith_waterman": (smith_waterman_unit, lambda rng: rng.randrange(4)),
}


def _ragged_streams(sample, *, lanes=7, tokens=60, seed=0):
    rng = random.Random(seed)
    streams = [
        [sample(rng) for _ in range(rng.randrange(tokens))]
        for _ in range(lanes)
    ]
    streams[1] = []  # always cover an empty lane
    return streams


def _reference(program, stream):
    sim = CompiledSimulator(program, unit=None)
    outputs = sim.run(stream)
    regs = {r.name: sim.peek_reg(r.name) for r in program.regs}
    brams = {b.name: sim.peek_bram(b.name) for b in program.brams}
    return (outputs, sim.trace.vcycles_per_token,
            sim.trace.emits_per_token, regs, brams)


def _check_batch(program, streams, unit=None):
    result = run_batch_streams(program, streams, unit=unit)
    for lane, stream in enumerate(streams):
        outputs, vcycles, emits, regs, brams = _reference(program, stream)
        assert result.outputs[lane] == outputs, lane
        assert result.traces[lane].vcycles_per_token == vcycles, lane
        assert result.traces[lane].emits_per_token == emits, lane
        assert result.reg_state(lane) == regs, lane
        for name, contents in brams.items():
            assert result.peek_bram(lane, name) == contents, (lane, name)
    return result


@requires_numpy
@pytest.mark.parametrize("key", sorted(APPS))
def test_apps_ragged_batch_trace_exact(key):
    make, sample = APPS[key]
    program = make()
    _check_batch(program, _ragged_streams(sample, seed=hash(key) & 0xFF))


@requires_numpy
@pytest.mark.parametrize("key", ["block_frequencies", "int_coding"])
def test_batch_of_one_matches_compiled(key):
    make, sample = APPS[key]
    program = make()
    rng = random.Random(3)
    _check_batch(program, [[sample(rng) for _ in range(120)]])


@requires_numpy
def test_all_empty_batch():
    program = block_frequencies_unit()
    result = _check_batch(program, [[], [], []])
    assert result.stats.lanes == 3
    # Every lane still runs its cleanup cycle.
    assert all(t.vcycles_per_token == [1] for t in result.traces)


@requires_numpy
@pytest.mark.parametrize(
    "backend",
    ["numpy"] + (["cc"] if cc_available() else []),
)
def test_backends_agree(backend):
    program = bloom_filter_unit()
    unit = compile_batch(program, backend=backend)
    assert (unit.cc is not None) == (backend == "cc")
    _check_batch(program, _ragged_streams(APPS["bloom_filter"][1]),
                 unit=unit)


@requires_numpy
def test_batch_stats_occupancy():
    program = identity_unit()
    result = run_batch_streams(program, [[1, 2, 3], [7], []])
    stats = result.stats
    # identity: 1 vcycle per token + 1 cleanup cycle per lane.
    assert stats.lane_vcycles == [4, 2, 1]
    assert stats.lanes == 3 and stats.cycles == 4
    assert stats.busy_lane_cycles == 7
    assert stats.active_lanes_at(1) == 3
    assert stats.active_lanes_at(4) == 1
    assert stats.waste_fraction == pytest.approx(1 - 7 / 12)
    d = stats.as_dict()
    assert d["lanes"] == 3 and d["busy_lane_cycles"] == 7


@requires_numpy
def test_batch_stream_simulator_is_drop_in():
    program = block_frequencies_unit()
    stream = [(i * 31) % 256 for i in range(300)]
    batch = make_simulator(program, engine="batch")
    assert isinstance(batch, BatchStreamSimulator)
    compiled = make_simulator(program, engine="compiled")
    assert batch.run(stream) == compiled.run(stream)
    assert batch.trace.vcycles_per_token == \
        compiled.trace.vcycles_per_token
    for reg in program.regs:
        assert batch.peek_reg(reg.name) == compiled.peek_reg(reg.name)


def test_fleet_engine_typo_raises(monkeypatch):
    monkeypatch.setenv("FLEET_ENGINE", "bacth")
    with pytest.raises(FleetConfigError, match="FLEET_ENGINE"):
        env_engine()


def test_fleet_batch_backend_typo_raises(monkeypatch):
    from repro.interp.batch import batch_backend_env

    monkeypatch.setenv("FLEET_BATCH_BACKEND", "native")
    with pytest.raises(FleetConfigError, match="FLEET_BATCH_BACKEND"):
        batch_backend_env()


@requires_numpy
def test_fleet_engine_batch_upgrades_auto(monkeypatch):
    monkeypatch.setenv("FLEET_ENGINE", "batch")
    program = identity_unit()
    sim = make_simulator(program, engine="auto")
    assert isinstance(sim, BatchStreamSimulator)
    assert sim.run([5, 6, 7]) == [5, 6, 7]


def test_unsupported_program_falls_back():
    # A 100-element BRAM fails the power-of-two state-shape gate shared
    # with the compiled engine's totality condition.
    b = UnitBuilder("odd_bram", input_width=8, output_width=8)
    table = b.bram("table", elements=100, width=8)
    b.emit(b.input)
    table[b.input & 63] = b.input
    program = b.finish()
    ok, reason = batch_support(program)
    assert not ok and reason
    assert batch_engine_for(program) is None
    with pytest.raises(Exception):
        compile_batch(program)


@requires_numpy
def test_loop_limit_message_matches_compiled():
    b = UnitBuilder("spin", input_width=8, output_width=8)
    r = b.reg("r", width=8, init=0)
    with b.while_(r < 200):
        r.set(r & 0)  # r stays 0: never terminates
    program = b.finish()
    with pytest.raises(Exception) as batch_err:
        run_batch_streams(program, [[1]], max_vcycles_per_token=50)
    with pytest.raises(Exception) as compiled_err:
        CompiledSimulator(program, max_vcycles_per_token=50).run([1])
    assert str(batch_err.value) == str(compiled_err.value)


@requires_numpy
def test_predicted_occupancy_identity_is_exact():
    # identity certifies exactly 1 vcycle/token + 1 cleanup cycle, so
    # the static prediction pins every lane's total exactly.
    program = identity_unit()
    result = run_batch_streams(program, [[1, 2, 3], [7], []])
    predicted = result.predicted_stats
    assert predicted is not None
    assert predicted.lane_bounds == [(4, 4), (2, 2), (1, 1)]
    assert (predicted.cycles_lo, predicted.cycles_hi) == (4, 4)
    assert predicted.check(result.stats) == []
    report = result.occupancy_report()
    assert report["sound"] is True
    assert report["actual_cycles"] == 4
    assert report["predicted_cycles"] == [4, 4]
    # Worst-case waste bound dominates the measured waste.
    assert result.stats.waste_fraction <= report["predicted_waste_bound"]


@requires_numpy
def test_predicted_occupancy_bounds_data_dependent_app():
    # block_frequencies' flush loop makes per-token cost data-dependent:
    # the prediction is an interval, and the measured run lands in it.
    make, sample = APPS["block_frequencies"]
    program = make()
    result = run_batch_streams(
        program, _ragged_streams(sample, lanes=5, seed=11)
    )
    predicted = result.predicted_stats
    assert predicted is not None
    assert predicted.check(result.stats) == []
    assert result.occupancy_report()["sound"] is True
    for (lo, hi), measured in zip(
            predicted.lane_bounds, result.stats.lane_vcycles):
        assert lo <= measured <= hi


@requires_numpy
def test_predicted_occupancy_check_flags_violations():
    from repro.interp import BatchStats, predict_batch_stats

    program = identity_unit()
    predicted = predict_batch_stats(program, [3, 1, 0])
    # A fabricated measurement outside the certified interval trips it.
    violations = predicted.check(BatchStats([9, 2, 1]))
    assert violations and "lane 0" in violations[0]


@requires_numpy
def test_predicted_waste_bound_unbounded_app_is_none():
    from repro.apps import decision_tree_unit
    from repro.interp import predict_batch_stats

    predicted = predict_batch_stats(
        decision_tree_unit(max_features=8, max_trees=4, max_nodes=64),
        [4, 2],
    )
    assert predicted is not None
    assert predicted.cycles_hi is None
    assert predicted.waste_bound is None
    # Lower bounds survive; no finite upper to violate.
    assert predicted.lane_bounds[0][0] >= 1
