"""Virtual-cycle semantics of the functional simulator."""

import pytest

from repro.interp import UnitSimulator
from repro.lang import FleetSimulationError, UnitBuilder


def make_counter_unit():
    """Emits a running count of tokens seen, one output per token."""
    b = UnitBuilder("counter", input_width=8, output_width=8)
    count = b.reg("count", width=8, init=0)
    with b.when(b.not_(b.stream_finished)):
        count.set(count + 1)
        b.emit(count + 1)
    return b.finish()


class TestBasicSemantics:
    def test_concurrent_reads_see_start_of_cycle_state(self):
        # swap two registers every token: concurrent semantics make this
        # a true swap, not a copy.
        b = UnitBuilder("swap", input_width=8, output_width=8)
        x = b.reg("x", width=8, init=1)
        y = b.reg("y", width=8, init=2)
        x.set(y)
        y.set(x)
        unit = b.finish()
        sim = UnitSimulator(unit)
        sim.process_token(0)
        assert sim.peek_reg("x") == 2
        assert sim.peek_reg("y") == 1
        sim.process_token(0)
        assert sim.peek_reg("x") == 1

    def test_counter_emits_cumulative_counts(self):
        sim = UnitSimulator(make_counter_unit())
        assert sim.run([9, 9, 9]) == [1, 2, 3]

    def test_register_truncation_on_assign(self):
        b = UnitBuilder("wrap", input_width=8, output_width=8)
        r = b.reg("r", width=4, init=15)
        r.set(r + 1)
        unit = b.finish()
        sim = UnitSimulator(unit)
        sim.process_token(0)
        assert sim.peek_reg("r") == 0

    def test_stream_finished_flag(self):
        b = UnitBuilder("fin", input_width=8, output_width=8)
        with b.when(b.stream_finished):
            b.emit(0xAA)
        unit = b.finish()
        sim = UnitSimulator(unit)
        assert sim.run([1, 2, 3]) == [0xAA]

    def test_finish_twice_rejected(self):
        sim = UnitSimulator(make_counter_unit())
        sim.finish_stream()
        with pytest.raises(FleetSimulationError):
            sim.finish_stream()

    def test_token_after_finish_rejected(self):
        sim = UnitSimulator(make_counter_unit())
        sim.finish_stream()
        with pytest.raises(FleetSimulationError):
            sim.process_token(1)

    def test_oversized_token_rejected(self):
        sim = UnitSimulator(make_counter_unit())
        with pytest.raises(FleetSimulationError):
            sim.process_token(256)

    def test_reset_restores_initial_state(self):
        sim = UnitSimulator(make_counter_unit())
        sim.run([1, 2])
        sim.reset()
        assert sim.peek_reg("count") == 0
        assert sim.run([5]) == [1]


class TestIfSemantics:
    def test_elif_arms_are_exclusive(self):
        b = UnitBuilder("arms", input_width=8, output_width=8)
        with b.when(b.input < 10):
            b.emit(1)
        with b.elif_(b.input < 20):
            b.emit(2)
        with b.otherwise():
            b.emit(3)
        unit = b.finish()
        sim = UnitSimulator(unit)
        # The cleanup virtual cycle processes a dummy 0 token (first arm),
        # exactly like the paper's stream_finished execution.
        assert sim.run([5, 15, 25]) == [1, 2, 3, 1]

    def test_untaken_arm_side_effects_skipped(self):
        b = UnitBuilder("skip", input_width=8, output_width=8)
        r = b.reg("r", width=8, init=0)
        with b.when(b.input == 1):
            r.set(100)
        with b.otherwise():
            r.set(200)
        unit = b.finish()
        sim = UnitSimulator(unit)
        sim.process_token(1)
        assert sim.peek_reg("r") == 100


class TestWhileSemantics:
    def make_burst_unit(self):
        """For each token t, emits t copies of 0xFF via a while loop."""
        b = UnitBuilder("burst", input_width=8, output_width=8)
        n = b.reg("n", width=8, init=0)
        with b.while_(n != 0):
            b.emit(0xFF)
            n.set(n - 1)
        with b.when(b.not_(b.stream_finished)):
            n.set(b.input)
        return b.finish()

    def test_loop_runs_before_next_token(self):
        sim = UnitSimulator(self.make_burst_unit())
        out = sim.run([2, 0, 3])
        assert out == [0xFF] * 5

    def test_loop_vcycle_accounting(self):
        sim = UnitSimulator(self.make_burst_unit())
        sim.run([2])
        # token 1: 1 vcycle (sets n=2); cleanup: 2 loop + 1 final.
        assert sim.trace.vcycles_per_token == [1, 3]

    def test_statements_outside_loop_wait_for_while_done(self):
        b = UnitBuilder("gate", input_width=8, output_width=8)
        n = b.reg("n", width=4, init=3)
        marker = b.reg("marker", width=8, init=0)
        with b.while_(n != 0):
            n.set(n - 1)
        marker.set(marker + 1)  # must fire once per token, not per vcycle
        unit = b.finish()
        sim = UnitSimulator(unit)
        sim.process_token(0)
        assert sim.peek_reg("marker") == 1

    def test_runaway_loop_detected(self):
        b = UnitBuilder("hang", input_width=8, output_width=8)
        n = b.reg("n", width=4, init=1)
        with b.while_(n == 1):
            n.set(1)
        unit = b.finish()
        sim = UnitSimulator(unit, max_vcycles_per_token=1000)
        with pytest.raises(FleetSimulationError, match="terminate"):
            sim.process_token(0)


class TestBramSemantics:
    def test_bram_zero_initialized(self):
        b = UnitBuilder("z", input_width=8, output_width=8)
        m = b.bram("m", elements=4, width=8)
        b.emit(m[0])
        unit = b.finish()
        assert UnitSimulator(unit).run([1]) == [0, 0]

    def test_write_visible_next_cycle(self):
        b = UnitBuilder("rw", input_width=8, output_width=8)
        m = b.bram("m", elements=4, width=8)
        b.emit(m[0])
        m[0] = b.input
        unit = b.finish()
        sim = UnitSimulator(unit)
        # Emits the value stored by the *previous* token.
        assert sim.run([7, 9]) == [0, 7, 9]

    def test_out_of_range_address_raises(self):
        b = UnitBuilder("oob", input_width=8, output_width=8)
        m = b.bram("m", elements=5, width=8)
        b.emit(m[b.input.bits(2, 0)])
        unit = b.finish()
        sim = UnitSimulator(unit)
        with pytest.raises(FleetSimulationError, match="out of range"):
            sim.process_token(7)


class TestVectorRegisters:
    def test_random_access_read_write(self):
        b = UnitBuilder("vr", input_width=8, output_width=8)
        v = b.vreg("v", elements=4, width=8)
        b.emit(v[b.input.bits(1, 0)])
        v[b.input.bits(1, 0)] = b.input
        unit = b.finish()
        sim = UnitSimulator(unit)
        # Reads see start-of-cycle state; writes land afterwards.
        assert sim.run([1, 1, 2]) == [0, 1, 0, 0]

    def test_parallel_writes_to_distinct_indices(self):
        b = UnitBuilder("vr2", input_width=8, output_width=8)
        v = b.vreg("v", elements=4, width=8)
        v[0] = 1
        v[1] = 2
        unit = b.finish()
        sim = UnitSimulator(unit)
        sim.process_token(0)  # both writes in one virtual cycle
        assert sim.outputs == []
