"""Every dynamic restriction violation raises its dedicated typed
exception (satellite of the conformance-engine work: the fuzzer
classifies oracle failures by type, never by message text)."""

import pytest

from repro.interp import UnitSimulator
from repro.interp.compile import CompiledSimulator
from repro.lang import UnitBuilder, ast
from repro.lang.errors import (
    FleetAddressError,
    FleetAssignConflictError,
    FleetDependentReadError,
    FleetEmitConflictError,
    FleetLoopLimitError,
    FleetReadPortError,
    FleetRestrictionError,
    FleetSimulationError,
    FleetWritePortError,
)


def test_read_port_error():
    b = UnitBuilder("rp", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    x = b.reg("x", width=9)
    x.set(m[0] + m[1])
    with pytest.raises(FleetReadPortError):
        UnitSimulator(b.finish()).process_token(0)


def test_write_port_error():
    b = UnitBuilder("wp", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    m[0] = 1
    m[1] = 2
    with pytest.raises(FleetWritePortError):
        UnitSimulator(b.finish()).process_token(0)


def test_emit_conflict_error():
    b = UnitBuilder("ec", input_width=8, output_width=8)
    b.emit(b.input)
    b.emit(b.input)
    with pytest.raises(FleetEmitConflictError):
        UnitSimulator(b.finish()).process_token(0)


def test_reg_assign_conflict_error():
    b = UnitBuilder("rac", input_width=8, output_width=8)
    x = b.reg("x", width=8)
    x.set(1)
    x.set(2)
    with pytest.raises(FleetAssignConflictError):
        UnitSimulator(b.finish()).process_token(0)


def test_vreg_assign_conflict_error():
    b = UnitBuilder("vac", input_width=8, output_width=8)
    v = b.vreg("v", elements=4, width=8)
    v[0] = 1
    v[0] = 2
    with pytest.raises(FleetAssignConflictError):
        UnitSimulator(b.finish()).process_token(0)


def test_dependent_read_error_static():
    b = UnitBuilder("dr", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    b.emit(m[m[0]])
    with pytest.raises(FleetDependentReadError):
        b.finish()


def test_dependent_read_error_dynamic():
    # Bypass the builder (and its static validation) to reach the
    # simulator's dynamic dependent-read check.
    bram = ast.BramDecl("m", elements=8, width=8)
    inner = ast.BramRead(bram, ast.Const(0, 3))
    outer = ast.BramRead(bram, inner)
    program = ast.UnitProgram(
        "raw", 8, 8, regs=(), vregs=(), brams=(bram,),
        body=(ast.Emit(outer),),
    )
    with pytest.raises(FleetDependentReadError):
        UnitSimulator(program).process_token(0)


def test_address_error_non_power_of_two_bram():
    b = UnitBuilder("ae", input_width=8, output_width=8)
    m = b.bram("m", elements=5, width=8)
    m[b.input] = 1
    unit = b.finish()
    UnitSimulator(unit).process_token(4)  # in range
    with pytest.raises(FleetAddressError):
        UnitSimulator(unit).process_token(6)  # truncates to 6 >= 5


def test_loop_limit_error_interp_and_compiled():
    b = UnitBuilder("ll", input_width=8, output_width=8)
    with b.while_(b.const(1, 1)):
        b.emit(b.input)
    unit = b.finish()
    with pytest.raises(FleetLoopLimitError):
        UnitSimulator(unit, engine="interp",
                      max_vcycles_per_token=64).process_token(0)
    with pytest.raises(FleetLoopLimitError):
        CompiledSimulator(unit, max_vcycles_per_token=64).run([0])


def test_hierarchy_is_backward_compatible():
    # Pre-existing code catches the coarse classes; the new typed
    # subclasses must land in the same nets.
    assert issubclass(FleetReadPortError, FleetRestrictionError)
    assert issubclass(FleetWritePortError, FleetRestrictionError)
    assert issubclass(FleetEmitConflictError, FleetRestrictionError)
    assert issubclass(FleetAssignConflictError, FleetRestrictionError)
    assert issubclass(FleetDependentReadError, FleetRestrictionError)
    assert issubclass(FleetAddressError, FleetSimulationError)
    assert issubclass(FleetLoopLimitError, FleetSimulationError)
