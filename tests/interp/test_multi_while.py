"""Multiple while loops in one program: "loop virtual cycles are executed
until all while conditions become false" (paper Section 3)."""

from repro.compiler import UnitTestbench
from repro.interp import UnitSimulator
from repro.lang import UnitBuilder


def dual_loop_unit():
    """Two independent drains with different lengths; both must finish
    before the next token is consumed."""
    b = UnitBuilder("dual", input_width=8, output_width=8)
    a = b.reg("a", width=4, init=0)
    c = b.reg("c", width=4, init=0)
    # Separate accumulators: the loops may overlap in the same virtual
    # cycle, so they must not write the same register.
    total_a = b.reg("total_a", width=8, init=0)
    total_c = b.reg("total_c", width=8, init=0)
    with b.while_(a != 0):
        a.set(a - 1)
        total_a.set((total_a + 1).bits(7, 0))
    with b.while_(c != 0):
        c.set(c - 1)
        total_c.set((total_c + 10).bits(7, 0))
    with b.when(b.not_(b.stream_finished)):
        a.set(b.input.bits(3, 0))
        c.set(b.input.bits(7, 4))
        b.emit((total_a + total_c).bits(7, 0))
    return b.finish()


def test_both_loops_drain_before_next_token():
    sim = UnitSimulator(dual_loop_unit())
    # token 0x23: a=3, c=2 -> 3 + 20 accumulated before next token
    out = sim.run([0x23, 0x00])
    assert out == [0, 23]


def test_vcycle_count_is_max_not_sum_when_overlapping():
    # Both loops active simultaneously: each loop vcycle executes both
    # bodies; the loop phase lasts max(a, c) cycles, not a + c.
    sim = UnitSimulator(dual_loop_unit())
    sim.run([0x33])  # a=3, c=3: 3 overlapping loop cycles
    # token 1: 1 vcycle; cleanup: 3 loop + 1 final
    assert sim.trace.vcycles_per_token == [1, 4]


def test_overlapping_loop_bodies_both_execute():
    sim = UnitSimulator(dual_loop_unit())
    sim.run([0x22, 0x00])
    # a=2 and c=2 drain together: total = 2*1 + 2*10 = 22
    assert sim.outputs[-1] == 22


def test_conflicting_writes_during_overlap_detected():
    import pytest

    from repro.lang import FleetRestrictionError

    b = UnitBuilder("clash", input_width=8, output_width=8)
    a = b.reg("a", width=2, init=1)
    c = b.reg("c", width=2, init=1)
    x = b.reg("x", width=8, init=0)
    with b.while_(a != 0):
        a.set(a - 1)
        x.set(1)
    with b.while_(c != 0):
        c.set(c - 1)
        x.set(2)  # both loops active on cycle 1 -> double assignment
    unit = b.finish()
    with pytest.raises(FleetRestrictionError):
        UnitSimulator(unit).process_token(0)


def test_rtl_matches_for_dual_loops(rnd):
    unit = dual_loop_unit()
    tokens = [rnd.randrange(256) for _ in range(20)]
    expected = UnitSimulator(unit).run(tokens)
    outputs, _ = UnitTestbench(unit).run(tokens)
    assert outputs == expected
