"""Certified specialization of the compiled engine.

The certificate-driven codegen path must be byte-identical to both the
guarded compiled lowering and the checking interpreter — outputs,
per-token virtual-cycle counts, emit traces, and final state — and a
certificate that no longer covers its program must *refuse* to
specialize rather than silently elide checks.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import int_coding_unit, regex_match_unit
from repro.interp import (
    CompiledSimulator,
    UnitSimulator,
    compile_program,
    fast_engine_for,
    try_specialize,
)
from repro.lang import FleetRestrictionError, UnitBuilder
from repro.lang.errors import FleetSimulationError
from repro.lint import certificate_for
from repro.testing import generator as gen_mod
from repro.testing import spec as spec_mod

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _signature(sim):
    return (
        tuple(sim.outputs),
        tuple(sim.trace.vcycles_per_token),
        tuple(sim.trace.emits_per_token),
        tuple(sim.peek_reg(r.name) for r in sim.program.regs),
        tuple(tuple(sim.peek_bram(b.name)) for b in sim.program.brams),
    )


def _run(sim_factory, streams):
    signatures = []
    for stream in streams:
        sim = sim_factory()
        sim.run(stream)
        signatures.append(_signature(sim))
    return signatures


# ---------------------------------------------------------------------------
# The hypothesis property: specialized == guarded == interp, always
# ---------------------------------------------------------------------------


@slow
@given(st.integers(min_value=0, max_value=2_000))
def test_specialized_codegen_byte_identical(seed):
    rng = random.Random(f"specialized:{seed}")
    spec = gen_mod.generate_spec(rng)
    streams = gen_mod.generate_streams(rng, spec)
    program = spec_mod.build_unit(spec)
    certificate = certificate_for(program)
    if not (certificate.ok and certificate.facts is not None):
        return  # uncertified programs have no specialized lowering
    specialized = compile_program(program, certificate=certificate)
    assert specialized.specialized
    guarded = compile_program(program)
    oracle = _run(lambda: UnitSimulator(program), streams)
    assert _run(
        lambda: CompiledSimulator(program, unit=guarded), streams
    ) == oracle
    assert _run(
        lambda: CompiledSimulator(program, unit=specialized), streams
    ) == oracle


def test_app_units_specialize_and_match():
    for build in (int_coding_unit, regex_match_unit):
        program = build()
        certificate = certificate_for(program)
        assert certificate.ok and certificate.facts is not None
        specialized = compile_program(program, certificate=certificate)
        assert specialized.specialized
        stream = [random.Random(7).randrange(256) for _ in range(300)]
        oracle = _run(lambda: UnitSimulator(program), [stream])
        assert _run(
            lambda: CompiledSimulator(program, unit=specialized), [stream]
        ) == oracle


# ---------------------------------------------------------------------------
# Mask elision actually happens
# ---------------------------------------------------------------------------


def test_specialization_elides_masks_and_records_counts():
    program = int_coding_unit()
    certificate = certificate_for(program)
    specialized = compile_program(program, certificate=certificate)
    guarded = compile_program(program)
    assert sum(specialized.elisions.values()) > 0
    # Fewer literal mask applications survive in the specialized source.
    assert specialized.source.count(" & 0x") < guarded.source.count(" & 0x")


def test_guarded_unit_reports_no_elisions():
    program = int_coding_unit()
    guarded = compile_program(program)
    assert not guarded.specialized
    assert not guarded.elisions


# ---------------------------------------------------------------------------
# Certificate invalidation: stale fingerprints never elide
# ---------------------------------------------------------------------------


def _conflict_free_unit():
    b = UnitBuilder("inv", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    m[0] = b.input
    b.emit(b.input)
    return b.finish()


def _mutate_into_conflict(program):
    """Append a second unconditional write to the same BRAM — a dynamic
    two-writes restriction violation on every token."""
    from repro.lang.ast import BramWrite, Const

    program.body = tuple(program.body) + (
        BramWrite(program.brams[0], Const(1, 3), Const(2, 8)),
    )


def test_stale_certificate_refuses_specialization():
    program = _conflict_free_unit()
    certificate = certificate_for(program)
    assert certificate.ok
    _mutate_into_conflict(program)
    assert not certificate.covers(program)
    with pytest.raises(FleetSimulationError, match="refusing"):
        compile_program(program, certificate=certificate)
    assert try_specialize(program, certificate=certificate) is None


def test_mutated_program_is_still_dynamically_checked():
    program = _conflict_free_unit()
    certificate = certificate_for(program)
    _mutate_into_conflict(program)
    # The stale certificate is rejected outright — it can never elide.
    with pytest.raises(FleetSimulationError, match="does not cover"):
        UnitSimulator(program, certificate=certificate)
    # And the unassisted interpreter still catches the violation.
    with pytest.raises(FleetRestrictionError, match="written twice"):
        UnitSimulator(program).process_token(0)


def test_rejected_certificate_refuses_specialization():
    b = UnitBuilder("rej", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    m[0] = 1
    m[1] = 2  # definite two-writes conflict: certification fails
    program = b.finish()
    certificate = certificate_for(program)
    assert not certificate.ok
    with pytest.raises(FleetSimulationError, match="rejected"):
        compile_program(program, certificate=certificate)
    assert try_specialize(program) is None


# ---------------------------------------------------------------------------
# certificate_for is memoized per fingerprint
# ---------------------------------------------------------------------------


def test_lint_runs_once_per_program_fingerprint(monkeypatch):
    from repro.lint import certificate as cert_mod

    calls = []
    real = cert_mod.certify_program

    def counting(program, report=None):
        calls.append(program.name)
        return real(program, report)

    monkeypatch.setattr(cert_mod, "certify_program", counting)
    # Structurally unique (fresh constant), so the process-wide
    # fingerprint cache can't already hold this program's certificate.
    b = UnitBuilder("memo-count", input_width=8, output_width=8)
    b.emit((b.input + 113).bits(7, 0))
    program = b.finish()
    # Repeated engine selection must certify once, not once per call.
    for _ in range(5):
        fast_engine_for(program)
        certificate_for(program)
    assert len(calls) == 1
