"""The DSL construction API: expressions, widths, statements, blocks."""

import pytest

from repro.lang import (
    FleetSyntaxError,
    FleetWidthError,
    UnitBuilder,
)
from repro.lang import ast


def fresh(name="t", in_w=8, out_w=8):
    return UnitBuilder(name, input_width=in_w, output_width=out_w)


class TestDeclarations:
    def test_reg_widths_and_init(self):
        b = fresh()
        r = b.reg("r", width=7, init=100)
        assert r.decl.width == 7
        assert r.decl.init == 100

    def test_reg_init_must_fit(self):
        b = fresh()
        with pytest.raises(FleetWidthError):
            b.reg("r", width=4, init=16)

    def test_duplicate_names_rejected(self):
        b = fresh()
        b.reg("x", width=4)
        with pytest.raises(FleetSyntaxError):
            b.bram("x", elements=4, width=4)

    def test_bram_addr_width(self):
        b = fresh()
        m = b.bram("m", elements=256, width=8)
        assert m.decl.addr_width == 8
        m2 = b.bram("m2", elements=300, width=8)
        assert m2.decl.addr_width == 9

    def test_vreg_index_width(self):
        b = fresh()
        v = b.vreg("v", elements=5, width=8)
        assert v.decl.index_width == 3


class TestExpressionWidths:
    def test_add_grows_one_bit(self):
        b = fresh()
        r = b.reg("r", width=8)
        assert (r + 1).width == 9

    def test_mul_adds_widths(self):
        b = fresh()
        r = b.reg("r", width=8)
        s = b.reg("s", width=4)
        assert (r * s).width == 12

    def test_comparisons_are_one_bit(self):
        b = fresh()
        r = b.reg("r", width=8)
        for expr in (r == 3, r != 3, r < 3, r <= 3, r > 3, r >= 3):
            assert expr.width == 1

    def test_const_shift_widens(self):
        b = fresh()
        r = b.reg("r", width=8)
        # Shift amounts are expressions; the result is sized for the
        # largest representable shift (here 4 is a 3-bit constant -> +7).
        assert (r << 4).width == 8 + 7
        assert (r >> 4).width == 8

    def test_bit_slicing(self):
        b = fresh()
        r = b.reg("r", width=8)
        assert r.bits(7, 4).width == 4
        assert r.bit(0).width == 1
        with pytest.raises(FleetWidthError):
            r.bits(8, 0)

    def test_cat_sums_widths(self):
        b = fresh()
        r = b.reg("r", width=8)
        assert b.cat(r, r, b.const(0, 2)).width == 18

    def test_mux_takes_max_width(self):
        b = fresh()
        r = b.reg("r", width=8)
        assert b.mux(r == 0, b.const(1, 2), r).width == 8

    def test_mux_condition_must_be_one_bit(self):
        b = fresh()
        r = b.reg("r", width=8)
        with pytest.raises(FleetWidthError):
            b.mux(r, 1, 0)

    def test_reductions(self):
        b = fresh()
        r = b.reg("r", width=8)
        assert r.any().width == 1
        assert r.all().width == 1
        assert r.parity().width == 1


class TestTruthinessGuard:
    def test_expressions_have_no_python_truth(self):
        b = fresh()
        r = b.reg("r", width=8)
        with pytest.raises(FleetSyntaxError):
            bool(r == 1)

    def test_if_on_expression_raises(self):
        b = fresh()
        r = b.reg("r", width=8)
        with pytest.raises(FleetSyntaxError):
            if r == 1:  # noqa: the raise is the point
                pass


class TestStatements:
    def test_assign_coerces_wider_value(self):
        b = fresh()
        r = b.reg("r", width=4)
        wide = b.reg("w", width=8)
        r.set(wide)  # silently truncated, Chisel connect style
        stmt = b._body[-1]
        assert isinstance(stmt, ast.RegAssign)
        assert stmt.value.width == 4

    def test_assign_rejects_unfittable_constant(self):
        b = fresh()
        r = b.reg("r", width=4)
        with pytest.raises(FleetWidthError):
            r.set(16)

    def test_emit_records_statement(self):
        b = fresh()
        b.emit(b.input)
        assert isinstance(b._body[-1], ast.Emit)

    def test_bram_setitem(self):
        b = fresh()
        m = b.bram("m", elements=16, width=8)
        m[b.input.bits(3, 0)] = 5
        assert isinstance(b._body[-1], ast.BramWrite)

    def test_when_elif_otherwise_structure(self):
        b = fresh()
        r = b.reg("r", width=4)
        with b.when(r == 0):
            r.set(1)
        with b.elif_(r == 1):
            r.set(2)
        with b.otherwise():
            r.set(3)
        stmt = b._body[-1]
        assert isinstance(stmt, ast.If)
        assert len(stmt.arms) == 3
        assert stmt.arms[2][0] is None

    def test_elif_requires_preceding_when(self):
        b = fresh()
        with pytest.raises(FleetSyntaxError):
            with b.elif_(b.input == 0):
                pass

    def test_otherwise_after_otherwise_rejected(self):
        b = fresh()
        with b.when(b.input == 0):
            pass
        with b.otherwise():
            pass
        with pytest.raises(FleetSyntaxError):
            with b.otherwise():
                pass

    def test_nested_while_rejected(self):
        b = fresh()
        r = b.reg("r", width=4)
        with pytest.raises(FleetSyntaxError):
            with b.while_(r != 0):
                with b.while_(r != 1):
                    pass

    def test_condition_must_be_one_bit(self):
        b = fresh()
        r = b.reg("r", width=4)
        with pytest.raises(FleetWidthError):
            with b.when(r):
                pass

    def test_finish_inside_block_rejected(self):
        b = fresh()
        with pytest.raises(FleetSyntaxError):
            with b.when(b.input == 0):
                b.finish()

    def test_no_statements_after_finish(self):
        b = fresh()
        b.finish()
        with pytest.raises(FleetSyntaxError):
            b.emit(0)

    def test_wire_shares_node(self):
        b = fresh()
        r = b.reg("r", width=8)
        w = b.wire(r + 1)
        assert isinstance(w.node, ast.WireRead)
        assert (w + w).node.lhs.wire is (w + w).node.rhs.wire


class TestProgramMetadata:
    def test_source_lines_counted(self):
        b = fresh()
        r = b.reg("r", width=4)
        r.set(r + 1)
        unit = b.finish()
        assert unit.source_lines >= 2

    def test_program_repr_mentions_name(self):
        b = fresh("myunit")
        unit = b.finish()
        assert "myunit" in repr(unit)
