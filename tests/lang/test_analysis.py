"""Static restriction checks (dependent BRAM reads, nested loops)."""

import pytest

from repro.lang import FleetRestrictionError, UnitBuilder


def test_read_address_from_register_allowed():
    b = UnitBuilder("ok", input_width=8, output_width=8)
    idx = b.reg("idx", width=4)
    m = b.bram("m", elements=16, width=8)
    b.emit(m[idx])
    b.finish()  # no error


def test_read_address_containing_read_rejected():
    b = UnitBuilder("bad", input_width=8, output_width=8)
    a = b.bram("a", elements=16, width=4)
    m = b.bram("m", elements=16, width=8)
    b.emit(m[a[0]])  # the paper's a[b[0]] example
    with pytest.raises(FleetRestrictionError, match="a\\[b\\[0\\]\\]"):
        b.finish()


def test_read_of_same_bram_in_own_address_rejected():
    b = UnitBuilder("bad", input_width=8, output_width=8)
    m = b.bram("m", elements=16, width=4)
    b.emit(m[m[0]])
    with pytest.raises(FleetRestrictionError):
        b.finish()


def test_read_gated_by_read_condition_rejected():
    # The paper's second example: if (b[0]) x = a[0] else x = a[1].
    b = UnitBuilder("bad", input_width=8, output_width=8)
    sel = b.bram("sel", elements=4, width=1)
    a = b.bram("a", elements=4, width=8)
    x = b.reg("x", width=8)
    with b.when(sel[0] == 1):
        x.set(a[0])
    with b.otherwise():
        x.set(a[1])
    with pytest.raises(FleetRestrictionError, match="gated"):
        b.finish()


def test_read_in_condition_gating_register_writes_allowed():
    # Read data may feed register updates (stage 2), as in the decision
    # tree's comparisons.
    b = UnitBuilder("ok", input_width=8, output_width=8)
    m = b.bram("m", elements=16, width=8)
    idx = b.reg("idx", width=4)
    x = b.reg("x", width=8)
    with b.when(m[idx] > 10):
        x.set(1)
    with b.otherwise():
        x.set(2)
    b.finish()  # no error


def test_loop_body_read_gated_by_reading_while_cond_rejected():
    b = UnitBuilder("bad", input_width=8, output_width=8)
    m = b.bram("m", elements=16, width=8)
    idx = b.reg("idx", width=4)
    with b.while_(m[0] != 0):
        idx.set(m[idx])
    with pytest.raises(FleetRestrictionError, match="condition chain"):
        b.finish()


def test_read_only_in_while_condition_now_validates():
    # Previously over-rejected: the *only* BRAM read is in the while
    # condition itself, at a constant address — nothing makes any read
    # address depend on same-cycle read data. The old whole-program
    # check rejected this because "a while condition reads a BRAM and
    # the program reads a BRAM" (they were the same read).
    b = UnitBuilder("ok", input_width=8, output_width=8)
    m = b.bram("m", elements=16, width=8)
    n = b.reg("n", width=4)
    with b.while_(m[0] != 0):
        n.set(n + 1)
    b.finish()  # no error


def test_post_loop_read_with_reading_while_cond_rejected():
    # The while_done mux dependence: a post-loop read fires only when
    # every loop condition is false, and that flag depends on the while
    # condition's BRAM read.
    b = UnitBuilder("bad", input_width=8, output_width=8)
    m = b.bram("m", elements=16, width=8)
    d = b.bram("d", elements=16, width=8)
    n = b.reg("n", width=4)
    with b.while_(m[0] != 0):
        n.set(n + 1)
    b.emit(d[n])
    with pytest.raises(FleetRestrictionError, match="while_done"):
        b.finish()


def test_violation_message_includes_guard_chain():
    from repro.lang import ast
    from repro.lang.analysis import dependent_read_violations

    b = UnitBuilder("bad", input_width=8, output_width=8)
    sel = b.bram("sel", elements=4, width=1)
    a = b.bram("a", elements=4, width=8)
    x = b.reg("x", width=8)
    with b.when(sel[0] == 1):
        x.set(a[0])
    # Assemble the program without finish()'s validation so the full
    # violation list (not just the first raise) can be inspected.
    program = ast.UnitProgram(
        b.name, b.input_width, b.output_width,
        b._regs, b._vregs, b._brams, b._body,
    )
    violations = dependent_read_violations(program)
    assert len(violations) == 1
    assert violations[0].kind == "guard"
    assert "sel[0]" in violations[0].message
    assert violations[0].bram is a.decl


def test_write_address_from_read_data_allowed():
    # Writes happen in stage 2; their addresses may use read data.
    b = UnitBuilder("ok", input_width=8, output_width=8)
    src = b.bram("src", elements=16, width=4)
    dst = b.bram("dst", elements=16, width=8)
    idx = b.reg("idx", width=4)
    dst[src[idx]] = b.input
    b.finish()  # no error


def test_wire_does_not_hide_dependent_read():
    b = UnitBuilder("bad", input_width=8, output_width=8)
    a = b.bram("a", elements=16, width=4)
    m = b.bram("m", elements=16, width=8)
    addr = b.wire(a[0] + 1)
    b.emit(m[addr])
    with pytest.raises(FleetRestrictionError):
        b.finish()
