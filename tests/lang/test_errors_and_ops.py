"""Error hierarchy and the shared operator tables."""

import pytest

from repro import ops
from repro.lang import (
    FleetError,
    FleetRestrictionError,
    FleetSimulationError,
    FleetSyntaxError,
    FleetWidthError,
)


def test_hierarchy_is_catchable_at_the_root():
    for exc in (FleetSyntaxError, FleetWidthError,
                FleetRestrictionError, FleetSimulationError):
        assert issubclass(exc, FleetError)


@pytest.mark.parametrize("op,a,b,expected", [
    ("add", 200, 100, 300),  # grows a bit: no wrap at 8-bit operands
    ("sub", 5, 10, (5 - 10) & 0x1FF),  # borrows wrap in w+1 bits
    ("mul", 255, 255, 255 * 255),
    ("and", 0b1100, 0b1010, 0b1000),
    ("xor", 0b1100, 0b1010, 0b0110),
    ("eq", 7, 7, 1),
    ("ne", 7, 7, 0),
    ("lt", 3, 7, 1),
    ("ge", 3, 7, 0),
    ("shr", 0b1000, 2, 0b10),
])
def test_binop_semantics(op, a, b, expected):
    assert ops.eval_binop(op, a, b, 8, 8) == expected


def test_shl_masks_to_inferred_width():
    # width = wl + mask(wr): 4 + 3 = 7 bits
    assert ops.eval_binop("shl", 0b1111, 3, 4, 2) == 0b1111000


@pytest.mark.parametrize("op,value,width,expected", [
    ("not", 0b1010, 4, 0b0101),
    ("lnot", 0, 4, 1),
    ("lnot", 3, 4, 0),
    ("orr", 0, 8, 0),
    ("orr", 64, 8, 1),
    ("andr", 255, 8, 1),
    ("andr", 254, 8, 0),
    ("xorr", 0b1011, 4, 1),
    ("xorr", 0b1001, 4, 0),
])
def test_unop_semantics(op, value, width, expected):
    assert ops.eval_unop(op, value, width) == expected


def test_huge_dynamic_shift_rejected():
    with pytest.raises(FleetWidthError, match="MAX_WIDTH"):
        ops.binop_width("shl", 8, 16)
