"""Bit-width arithmetic primitives."""

import pytest

from repro.lang import FleetWidthError
from repro.lang.types import (
    MAX_WIDTH,
    bits_for,
    check_width,
    fits,
    mask,
    truncate,
)


class TestCheckWidth:
    def test_accepts_positive_widths(self):
        assert check_width(1) == 1
        assert check_width(64) == 64
        assert check_width(MAX_WIDTH) == MAX_WIDTH

    def test_rejects_zero(self):
        with pytest.raises(FleetWidthError):
            check_width(0)

    def test_rejects_negative(self):
        with pytest.raises(FleetWidthError):
            check_width(-3)

    def test_rejects_bool(self):
        with pytest.raises(FleetWidthError):
            check_width(True)

    def test_rejects_non_int(self):
        with pytest.raises(FleetWidthError):
            check_width(8.0)

    def test_rejects_oversized(self):
        with pytest.raises(FleetWidthError):
            check_width(MAX_WIDTH + 1)


class TestMaskTruncate:
    def test_mask_values(self):
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(32) == 0xFFFFFFFF

    def test_truncate_wraps(self):
        assert truncate(0x1FF, 8) == 0xFF
        assert truncate(256, 8) == 0
        assert truncate(255, 8) == 255

    def test_truncate_negative_two_complement(self):
        # Python negatives wrap like hardware subtraction.
        assert truncate(-1, 8) == 0xFF
        assert truncate(-2, 4) == 0xE


class TestBitsFor:
    def test_zero_needs_one_bit(self):
        assert bits_for(0) == 1

    def test_powers_of_two(self):
        assert bits_for(1) == 1
        assert bits_for(2) == 2
        assert bits_for(255) == 8
        assert bits_for(256) == 9

    def test_rejects_negative(self):
        with pytest.raises(FleetWidthError):
            bits_for(-1)


class TestFits:
    def test_boundaries(self):
        assert fits(255, 8)
        assert not fits(256, 8)
        assert fits(0, 1)
        assert not fits(-1, 8)
