"""AST traversal utilities."""

import pytest

from repro.lang import FleetSyntaxError, UnitBuilder
from repro.lang import ast


def build_sample():
    b = UnitBuilder("s", input_width=8, output_width=8)
    r = b.reg("r", width=8)
    m = b.bram("m", elements=16, width=8)
    with b.when(r == 0):
        with b.while_(r != 5):
            r.set(r + 1)
    b.emit(m[b.input.bits(3, 0)])
    return b.finish()


def test_walk_statements_covers_nesting():
    unit = build_sample()
    statements = list(ast.walk_statements(unit.body))
    kinds = [type(s).__name__ for s in statements]
    assert "If" in kinds and "While" in kinds
    assert "RegAssign" in kinds and "Emit" in kinds


def test_statement_exprs_for_each_kind():
    unit = build_sample()
    for stmt in ast.walk_statements(unit.body):
        exprs = ast.statement_exprs(stmt)
        assert isinstance(exprs, tuple)
        for expr in exprs:
            assert isinstance(expr, ast.Node)


def test_contains_bram_read_through_wires():
    b = UnitBuilder("w", input_width=8, output_width=8)
    m = b.bram("m", elements=4, width=8)
    wired = b.wire(m[0] + 1)
    assert ast.contains_bram_read(wired.node)
    plain = b.wire(b.input + 1)
    assert not ast.contains_bram_read(plain.node)


def test_walk_expr_visits_shared_nodes_once():
    b = UnitBuilder("d", input_width=8, output_width=8)
    shared = b.wire(b.input + 1)
    expr = (shared + shared).node
    visited = list(ast.walk_expr(expr))
    wire_reads = [n for n in visited if isinstance(n, ast.WireRead)]
    assert len(wire_reads) == 1  # DAG-aware: each node once


def test_concat_of_nothing_rejected():
    with pytest.raises(FleetSyntaxError):
        ast.Concat([])


def test_decl_reprs_are_informative():
    unit = build_sample()
    assert "r" in repr(unit.regs[0])
    assert "m" in repr(unit.brams[0])
    assert "elements=16" in repr(unit.brams[0])
