"""The pattern library (the paper's hoped-for 'library code to simplify
common patterns')."""

import pytest

from repro.compiler import UnitTestbench
from repro.interp import UnitSimulator
from repro.lang import UnitBuilder
from repro.lang.patterns import (
    BlockCounter,
    BytePacker,
    WordAssembler,
    max_tree,
    min_tree,
    one_hot,
    popcount,
    saturating_add,
    saturating_sub,
)


def run_unit(unit, tokens):
    return UnitSimulator(unit).run(tokens)


class TestCombinators:
    def make(self):
        return UnitBuilder("t", input_width=8, output_width=8)

    def test_saturating_sub(self):
        b = self.make()
        b.emit(saturating_sub(b, b.input, 10))
        unit = b.finish()
        assert run_unit(unit, [3, 10, 50]) == [0, 0, 40, 0]

    def test_saturating_add(self):
        b = self.make()
        b.emit(saturating_add(b, b.input, 20, width=8))
        unit = b.finish()
        assert run_unit(unit, [5, 250])[:2] == [25, 255]

    def test_max_min_trees(self, rnd):
        b = self.make()
        regs = [b.reg(f"r{i}", width=8, init=v)
                for i, v in enumerate([17, 3, 250, 99, 42])]
        b.emit(max_tree(b, regs))
        unit = b.finish()
        assert run_unit(unit, [0])[0] == 250
        b = self.make()
        regs = [b.reg(f"r{i}", width=8, init=v)
                for i, v in enumerate([17, 3, 250, 99, 42])]
        b.emit(min_tree(b, regs))
        assert run_unit(b.finish(), [0])[0] == 3

    def test_trees_reject_empty(self):
        b = self.make()
        with pytest.raises(ValueError):
            max_tree(b, [])
        with pytest.raises(ValueError):
            min_tree(b, [])

    def test_popcount(self):
        b = self.make()
        b.emit(popcount(b, b.input))
        unit = b.finish()
        assert run_unit(unit, [0b10110101, 0, 255])[:3] == [5, 0, 8]

    def test_one_hot(self):
        b = self.make()
        b.emit(one_hot(b, b.input.bits(2, 0), 8))
        unit = b.finish()
        assert run_unit(unit, [0, 3, 7])[:3] == [1, 8, 128]


class TestWordAssembler:
    def build(self, word_bytes=4):
        b = UnitBuilder("asm", input_width=8, output_width=32)
        with b.when(b.not_(b.stream_finished)):
            asm = WordAssembler(b, "w", word_bytes=word_bytes)
            asm.step()
            with b.when(asm.word_ready):
                b.emit(asm.word)
        return b.finish()

    def test_little_endian_words(self):
        unit = self.build()
        data = list((0xDEADBEEF).to_bytes(4, "little"))
        data += list((0x12345678).to_bytes(4, "little"))
        assert run_unit(unit, data) == [0xDEADBEEF, 0x12345678]

    def test_partial_word_not_emitted(self):
        unit = self.build()
        assert run_unit(unit, [1, 2, 3]) == []

    def test_two_byte_words(self):
        unit = self.build(word_bytes=2)
        assert run_unit(unit, [0x34, 0x12]) == [0x1234]

    def test_double_step_rejected(self):
        b = UnitBuilder("bad", input_width=8, output_width=8)
        asm = WordAssembler(b, "w")
        asm.step()
        with pytest.raises(RuntimeError):
            asm.step()

    def test_use_before_step_rejected(self):
        b = UnitBuilder("bad", input_width=8, output_width=8)
        asm = WordAssembler(b, "w")
        with pytest.raises(RuntimeError):
            asm.word_ready

    def test_rtl_crosscheck(self, rnd):
        unit = self.build()
        data = [rnd.randrange(256) for _ in range(32)]
        expected = UnitSimulator(unit).run(data)
        outputs, _ = UnitTestbench(unit).run(data)
        assert outputs == expected


class TestBytePacker:
    def build_nibble_packer(self):
        """Packs the low nibble of every input byte; flushes at EOF.

        The canonical BytePacker driver: a while loop drains full bytes
        (and, once the stream has finished, the padded tail) before each
        insert, so the accumulator never holds 8+ bits at insert time.
        """
        b = UnitBuilder("packer", input_width=8, output_width=8)
        packer = BytePacker(b, "p", max_field_width=4)
        drain = b.any_of(
            packer.byte_ready,
            b.all_of(b.stream_finished, b.not_(packer.empty)),
        )
        with b.while_(drain):
            with b.when(packer.byte_ready):
                packer.emit_byte()
            with b.otherwise():
                packer.flush_byte()
        with b.when(b.not_(b.stream_finished)):
            packer.insert(b.input.bits(3, 0), b.const(4, 3))
        return b.finish()

    def test_nibbles_pack_two_per_byte(self):
        unit = self.build_nibble_packer()
        # low nibbles 1,2,3,4 -> bytes 0x21, 0x43
        out = run_unit(unit, [0xA1, 0xB2, 0xC3, 0xD4])
        assert out == [0x21, 0x43]

    def test_odd_tail_padded(self):
        unit = self.build_nibble_packer()
        out = run_unit(unit, [0xF5])
        assert out == [0x05]


class TestBlockCounter:
    def test_pulse_every_n_items(self):
        b = UnitBuilder("blk", input_width=8, output_width=8)
        counter = BlockCounter(b, "c", block_size=3)
        with b.when(b.not_(b.stream_finished)):
            done = counter.step()
            with b.when(done):
                b.emit(0xEE)
        unit = b.finish()
        out = run_unit(unit, [0] * 10)
        assert out == [0xEE] * 3
