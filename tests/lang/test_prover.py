"""The static restriction prover — the analyzer the paper sketches."""

from repro.apps import (
    block_frequencies_unit,
    bloom_filter_unit,
    decision_tree_unit,
    identity_unit,
    int_coding_unit,
    json_field_unit,
    regex_match_unit,
    smith_waterman_unit,
)
from repro.lang import UnitBuilder
from repro.lang.prover import prove_program


def make(name="t"):
    return UnitBuilder(name, input_width=8, output_width=8)


class TestExclusivityRules:
    def test_elif_negation_proven(self):
        b = make()
        with b.when(b.input == 0):
            b.emit(1)
        with b.otherwise():
            b.emit(2)
        assert prove_program(b.finish()).ok

    def test_separate_ifs_not_proven(self):
        # The paper's HLS example: two plain ifs look conflicting.
        b = make()
        state = b.reg("state", width=1)
        with b.when(state == 0):
            b.emit(0)
        with b.when(state == 1):
            b.emit(1)
        report = prove_program(b.finish())
        # equality on the same register with different constants IS
        # provable by intervals — this is where our prover beats the
        # naive HLS scheduler
        assert report.ok

    def test_truly_ambiguous_pair_reported(self):
        b = make()
        x = b.reg("x", width=8)
        y = b.reg("y", width=8)
        with b.when(x > 4):
            b.emit(1)
        with b.when(y > 4):  # nothing relates x and y
            b.emit(2)
        report = prove_program(b.finish())
        assert not report.ok
        assert report.conflicts[0].kind == "emit"

    def test_interval_separation_proven(self):
        b = make()
        idx = b.reg("idx", width=8)
        m = b.bram("m", elements=64, width=8)
        with b.when(b.all_of(idx >= 0, idx < 32)):
            b.emit(m[idx.bits(5, 0)])
        with b.when(b.all_of(idx >= 32, idx < 64)):
            b.emit(m[idx.bits(5, 0)])
        report = prove_program(b.finish())
        # reads proven exclusive by disjoint idx intervals; but the two
        # emits are as well
        assert report.ok

    def test_loop_phase_rule(self):
        b = make()
        n = b.reg("n", width=4, init=3)
        m = b.bram("m", elements=16, width=8)
        with b.while_(n != 0):
            b.emit(m[n])  # loop-body read
            n.set(n - 1)
        m[0] = b.input  # post-loop write and read can't co-fire with
        b.emit(m[1])  # ... wait: this emit CAN conflict? no: post-loop
        # Both post-loop accesses read/write m in the same cycle: the
        # read at 1 and write at 0 are fine (1R + 1W); the two emits are
        # loop vs post-loop.
        report = prove_program(b.finish())
        assert report.ok

    def test_same_address_reads_allowed(self):
        b = make()
        m = b.bram("m", elements=16, width=8)
        x = b.reg("x", width=8)
        y = b.reg("y", width=8)
        x.set(m[3])
        y.set((m[3] + 1).bits(7, 0))
        assert prove_program(b.finish()).ok

    def test_different_constant_addresses_conflict(self):
        b = make()
        m = b.bram("m", elements=16, width=8)
        x = b.reg("x", width=8)
        x.set((m[3] + m[4]).bits(7, 0))
        report = prove_program(b.finish())
        assert not report.ok
        assert report.conflicts[0].kind == "read"

    def test_double_register_assignment_conflict(self):
        b = make()
        r = b.reg("r", width=8)
        r.set(1)
        r.set(2)
        assert not prove_program(b.finish()).ok

    def test_contradictory_guard_never_fires(self):
        b = make()
        r = b.reg("r", width=8)
        with b.when(b.all_of(r == 1, r == 2)):  # unsatisfiable
            b.emit(1)
        b.emit(2)
        assert prove_program(b.finish()).ok

    def test_while_done_negation_through_lnot(self):
        b = make()
        flag = b.reg("flag", width=1)
        with b.when(b.not_(flag == 1)):
            b.emit(1)
        with b.when(flag == 1):
            b.emit(2)
        assert prove_program(b.finish()).ok


class TestApplicationsProven:
    """All eight units are statically clean — the dynamic checks can be
    disabled for them with confidence."""

    def test_identity(self):
        assert prove_program(identity_unit()).ok

    def test_histogram(self):
        assert prove_program(block_frequencies_unit()).ok

    def test_json(self):
        assert prove_program(json_field_unit()).ok

    def test_int_coding(self):
        assert prove_program(int_coding_unit()).ok

    def test_decision_tree(self):
        assert prove_program(decision_tree_unit()).ok

    def test_smith_waterman(self):
        assert prove_program(smith_waterman_unit()).ok

    def test_regex(self):
        assert prove_program(regex_match_unit()).ok

    def test_bloom(self):
        assert prove_program(
            bloom_filter_unit(block_size=64, num_hashes=4,
                              section_bits=1024)
        ).ok
