"""Search-loop invariants: determinism, pruning, budget, caching."""

import pytest

from repro.bench.catalog import catalog
from repro.dse import AppModel, EvalCache, dominates, search
from repro.system import AMAZON_F1


@pytest.fixture(scope="module")
def bloom_model():
    return AppModel.from_spec(catalog()["bloom_filter"])


@pytest.fixture(scope="module")
def result(bloom_model):
    return search(bloom_model, device=AMAZON_F1, seed=0, quick=True)


def test_search_is_deterministic(bloom_model, result):
    again = search(bloom_model, device=AMAZON_F1, seed=0, quick=True)
    assert again.best.as_dict() == result.best.as_dict()
    assert [e.as_dict() for e in again.frontier] == [
        e.as_dict() for e in result.frontier
    ]
    assert (again.evaluated, again.cache_hits, again.pruned) == (
        result.evaluated, result.cache_hits, result.pruned
    )


def test_best_beats_baseline_within_its_area(result):
    assert result.best.feasible
    assert result.best.gbps >= result.baseline.gbps
    assert result.best.area_frac <= result.baseline.area_frac + 1e-9
    assert result.speedup >= 1.0


def test_attribution_pruning_fires(result):
    assert result.pruned > 0
    assert result.evaluated > 0
    assert not result.budget_exhausted


def test_frontier_is_non_dominated(result):
    assert result.frontier
    for a in result.frontier:
        for b in result.frontier:
            if a is not b:
                assert not dominates(a, b)


def test_budget_caps_fresh_evaluations(bloom_model):
    capped = search(
        bloom_model, device=AMAZON_F1, seed=0, budget=6, quick=True
    )
    assert capped.evaluated <= 6
    assert capped.budget_exhausted
    # The baseline goes first, so a result still emerges.
    assert capped.baseline.gbps > 0
    assert capped.best.gbps >= capped.baseline.gbps


def test_budget_too_small_for_baseline_raises(bloom_model):
    with pytest.raises(RuntimeError, match="baseline"):
        search(
            bloom_model, device=AMAZON_F1, seed=0, budget=0,
            cache=EvalCache(), quick=True,
        )


def test_shared_cache_makes_rerun_free(bloom_model):
    cache = EvalCache()
    first = search(
        bloom_model, device=AMAZON_F1, seed=0, cache=cache, quick=True
    )
    warm = search(
        bloom_model, device=AMAZON_F1, seed=0, cache=cache, quick=True
    )
    assert warm.evaluated == 0
    assert warm.cache_hits == first.evaluated + first.cache_hits
    assert warm.best.as_dict() == first.best.as_dict()


def test_seed_is_recorded_and_changes_latency_draw(bloom_model):
    base = search(bloom_model, device=AMAZON_F1, seed=0, quick=True)
    other = search(bloom_model, device=AMAZON_F1, seed=7, quick=True)
    assert base.seed == 0 and other.seed == 7
    # Different seeds draw different latency workloads, so the p99s
    # (computed from seeded stream lengths) should differ somewhere.
    assert (
        base.best.p99_ms != other.best.p99_ms
        or base.baseline.p99_ms != other.baseline.p99_ms
    )
