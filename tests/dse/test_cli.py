"""``python -m repro.dse`` entry point."""

import json

import pytest

from repro.dse.__main__ import main


def test_selftest_passes(capsys):
    assert main(["--selftest"]) == 0
    out = capsys.readouterr().out
    assert "selftest: all checks passed" in out
    assert "FAIL" not in out


def test_app_report_is_byte_identical(capsys):
    assert main(["--app", "bloom_filter", "--quick"]) == 0
    first = capsys.readouterr().out
    assert main(["--app", "bloom_filter", "--quick"]) == 0
    assert capsys.readouterr().out == first
    assert "bloom_filter" in first
    assert "pareto" in first.lower()


def test_json_output_parses(capsys):
    assert main(["--app", "bloom_filter", "--quick", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["app"] == "bloom_filter"
    assert payload["best"]["gbps"] >= payload["baseline"]["gbps"]
    assert payload["pareto"]
    assert payload["mode"] == "quick"


def test_unknown_app_is_an_error():
    with pytest.raises(SystemExit):
        main(["--app", "definitely_not_an_app", "--quick"])


def test_requires_a_target(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_env_knobs_feed_defaults(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("FLEET_DSE_SEED", "3")
    monkeypatch.setenv("FLEET_DSE_CACHE", str(tmp_path / "cache"))
    assert main(["--app", "bloom_filter", "--quick", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["seed"] == 3
    assert list((tmp_path / "cache").glob("*.json"))
