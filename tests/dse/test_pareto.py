"""Pareto-frontier properties over synthetic evaluations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import DesignPoint, dominates, pareto_frontier


class _Eval:
    """The three objectives plus an identity — all the frontier reads."""

    def __init__(self, gbps, area_frac, p99_ms, point=None):
        self.gbps = gbps
        self.area_frac = area_frac
        self.p99_ms = p99_ms
        self.point = point or DesignPoint(
            pu_count=int(gbps * 100) + 4,
            burst_registers=max(1, int(area_frac * 32) + 1),
        )


def test_dominates_requires_strict_improvement():
    a = _Eval(10.0, 0.5, 1.0)
    twin = _Eval(10.0, 0.5, 1.0)
    assert not dominates(a, twin)
    assert dominates(_Eval(11.0, 0.5, 1.0), a)
    assert dominates(_Eval(10.0, 0.4, 1.0), a)
    assert dominates(_Eval(10.0, 0.5, 0.9), a)
    assert not dominates(_Eval(11.0, 0.6, 1.0), a)  # trades area away


def test_frontier_drops_dominated_points():
    best = _Eval(20.0, 0.3, 0.5, DesignPoint(pu_count=8))
    dominated = _Eval(10.0, 0.6, 1.0, DesignPoint(pu_count=12))
    incomparable = _Eval(25.0, 0.9, 2.0, DesignPoint(pu_count=16))
    front = pareto_frontier([dominated, best, incomparable])
    assert best in front and incomparable in front
    assert dominated not in front


def test_frontier_collapses_duplicate_points():
    point = DesignPoint(pu_count=8)
    a = _Eval(10.0, 0.5, 1.0, point)
    b = _Eval(10.0, 0.5, 1.0, point)
    assert len(pareto_frontier([a, b])) == 1


def test_frontier_sorted_by_throughput_desc():
    evals = [
        _Eval(g, 1.0 - g / 100.0, g / 10.0, DesignPoint(pu_count=4 + i))
        for i, g in enumerate((5.0, 25.0, 15.0))
    ]
    front = pareto_frontier(evals)
    assert [e.gbps for e in front] == sorted(
        (e.gbps for e in front), reverse=True
    )


@settings(max_examples=100, deadline=None)
@given(st.lists(
    st.tuples(
        st.floats(0.1, 50.0), st.floats(0.01, 1.0), st.floats(0.01, 9.0)
    ),
    min_size=1, max_size=24,
))
def test_frontier_is_internally_non_dominated(objectives):
    evals = [
        _Eval(g, a, p, DesignPoint(pu_count=4 + i))
        for i, (g, a, p) in enumerate(objectives)
    ]
    front = pareto_frontier(evals)
    assert front
    for kept in front:
        assert not any(
            dominates(other, kept) for other in evals
        )
    for a in front:
        for b in front:
            if a is not b:
                assert not dominates(a, b)
