"""Content-addressed evaluation cache: key semantics and both tiers."""

from repro.dse import DesignPoint, EvalCache, cache_key
from repro.system import AMAZON_F1, Device


def _key(point=None, **overrides):
    fields = dict(
        app_fingerprint="f" * 64,
        device=AMAZON_F1,
        point=point or DesignPoint(),
        sim_cycles=4_000,
        seed=0,
        latency_streams=128,
    )
    fields.update(overrides)
    return cache_key(
        fields["app_fingerprint"], fields["device"], fields["point"],
        sim_cycles=fields["sim_cycles"], seed=fields["seed"],
        latency_streams=fields["latency_streams"],
    )


def test_key_is_stable():
    assert _key() == _key()


def test_key_sensitive_to_every_component():
    base = _key()
    assert _key(app_fingerprint="0" * 64) != base
    assert _key(point=DesignPoint(burst_registers=8)) != base
    assert _key(sim_cycles=8_000) != base
    assert _key(seed=1) != base
    assert _key(latency_streams=64) != base
    other_device = Device(
        "other", luts=1, ffs=1, bram36=1, uram=0, dsp=0, channels=1,
        frequency_hz=1_000,
    )
    assert _key(device=other_device) != base


def test_memory_tier_round_trips():
    cache = EvalCache()
    key = _key()
    assert cache.get(key) is None
    cache.put(key, {"gbps": 1.5})
    assert cache.get(key) == {"gbps": 1.5}
    assert cache.hits == 1 and cache.misses == 1


def test_disk_tier_survives_process_boundary(tmp_path):
    directory = str(tmp_path / "dse-cache")
    key = _key()
    writer = EvalCache(directory)
    writer.put(key, {"gbps": 2.5, "attribution": {"idle": 3}})
    # A fresh cache instance (fresh process, conceptually) sees it.
    reader = EvalCache(directory)
    assert reader.get(key) == {"gbps": 2.5, "attribution": {"idle": 3}}
    assert reader.hits == 1


def test_corrupt_disk_entry_counts_as_miss(tmp_path):
    directory = str(tmp_path / "dse-cache")
    cache = EvalCache(directory)
    key = _key()
    (tmp_path / "dse-cache" / (key + ".json")).write_text("{not json")
    assert cache.get(key) is None
    assert cache.misses == 1
