"""AppModel + evaluate_point: the DSE's bridge into the system models."""

import pytest

from repro.bench.catalog import catalog
from repro.dse import AppModel, DesignPoint, evaluate_point
from repro.dse.evaluate import design_area, resolve_pu_count
from repro.system import AMAZON_F1
from repro.system.area import area_fraction


@pytest.fixture(scope="module")
def bloom():
    return AppModel.from_spec(catalog()["bloom_filter"])


def test_fingerprint_stable_and_content_sensitive(bloom):
    assert bloom.fingerprint() == bloom.fingerprint()
    other = AppModel.from_spec(catalog()["regex"])
    assert other.fingerprint() != bloom.fingerprint()


def test_profiles_are_amortized_marginals(bloom):
    # The scaled-down bloom profile emits 1 output byte per 8 input.
    assert bloom.output_ratio == pytest.approx(0.125, rel=0.2)
    assert bloom.vcpt > 0


def test_resolve_rounds_to_whole_pus_per_channel(bloom):
    point = DesignPoint(pu_count=101, channels=4)
    count, max_fit = resolve_pu_count(bloom, point, AMAZON_F1)
    assert count == 100
    assert max_fit % AMAZON_F1.channels == 0


def test_deeper_registers_fit_fewer_pus(bloom):
    _, fit_shallow = resolve_pu_count(
        bloom, DesignPoint(burst_registers=4), AMAZON_F1
    )
    _, fit_deep = resolve_pu_count(
        bloom, DesignPoint(burst_registers=32), AMAZON_F1
    )
    assert fit_deep <= fit_shallow


def test_design_area_grows_with_register_depth(bloom):
    shallow = design_area(
        bloom, DesignPoint(burst_registers=4), 100, AMAZON_F1
    )
    deep = design_area(
        bloom, DesignPoint(burst_registers=32), 100, AMAZON_F1
    )
    assert deep.luts > shallow.luts


def test_evaluate_point_is_deterministic(bloom):
    point = DesignPoint(layout_beats=4)
    first = evaluate_point(
        bloom, point, device=AMAZON_F1, sim_cycles=1_500
    )
    second = evaluate_point(
        bloom, point, device=AMAZON_F1, sim_cycles=1_500
    )
    assert first.as_dict() == second.as_dict()


def test_evaluate_point_carries_attribution(bloom):
    ev = evaluate_point(
        bloom, DesignPoint(), device=AMAZON_F1, sim_cycles=1_500
    )
    assert ev.attribution
    assert sum(ev.attribution.values()) > 0
    assert ev.gbps <= ev.theoretical_gbps + 1e-9
    assert 0 < ev.area_frac
    assert ev.p99_ms > 0


def test_overcommitted_point_is_infeasible(bloom):
    ev = evaluate_point(
        bloom, DesignPoint(pu_count=100_000), device=AMAZON_F1,
        sim_cycles=1_500,
    )
    assert not ev.feasible
    assert area_fraction(
        design_area(bloom, ev.point, ev.pu_count, AMAZON_F1), AMAZON_F1
    ) > 1.0


def test_point_eval_round_trips_through_cache_form(bloom):
    ev = evaluate_point(
        bloom, DesignPoint(), device=AMAZON_F1, sim_cycles=1_500
    )
    from repro.dse import PointEval

    again = PointEval.from_dict(ev.point, ev.as_dict())
    assert again.as_dict() == ev.as_dict()
