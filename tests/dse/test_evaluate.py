"""AppModel + evaluate_point: the DSE's bridge into the system models."""

import pytest

from repro.bench.catalog import catalog
from repro.dse import AppModel, DesignPoint, evaluate_point
from repro.dse.evaluate import design_area, resolve_pu_count
from repro.system import AMAZON_F1
from repro.system.area import area_fraction


@pytest.fixture(scope="module")
def bloom():
    return AppModel.from_spec(catalog()["bloom_filter"])


def test_fingerprint_stable_and_content_sensitive(bloom):
    assert bloom.fingerprint() == bloom.fingerprint()
    other = AppModel.from_spec(catalog()["regex"])
    assert other.fingerprint() != bloom.fingerprint()


def test_profiles_are_amortized_marginals(bloom):
    # The scaled-down bloom profile emits 1 output byte per 8 input.
    assert bloom.output_ratio == pytest.approx(0.125, rel=0.2)
    assert bloom.vcpt > 0


def test_resolve_rounds_to_whole_pus_per_channel(bloom):
    point = DesignPoint(pu_count=101, channels=4)
    count, max_fit = resolve_pu_count(bloom, point, AMAZON_F1)
    assert count == 100
    assert max_fit % AMAZON_F1.channels == 0


def test_deeper_registers_fit_fewer_pus(bloom):
    _, fit_shallow = resolve_pu_count(
        bloom, DesignPoint(burst_registers=4), AMAZON_F1
    )
    _, fit_deep = resolve_pu_count(
        bloom, DesignPoint(burst_registers=32), AMAZON_F1
    )
    assert fit_deep <= fit_shallow


def test_design_area_grows_with_register_depth(bloom):
    shallow = design_area(
        bloom, DesignPoint(burst_registers=4), 100, AMAZON_F1
    )
    deep = design_area(
        bloom, DesignPoint(burst_registers=32), 100, AMAZON_F1
    )
    assert deep.luts > shallow.luts


def test_evaluate_point_is_deterministic(bloom):
    point = DesignPoint(layout_beats=4)
    first = evaluate_point(
        bloom, point, device=AMAZON_F1, sim_cycles=1_500
    )
    second = evaluate_point(
        bloom, point, device=AMAZON_F1, sim_cycles=1_500
    )
    assert first.as_dict() == second.as_dict()


def test_evaluate_point_carries_attribution(bloom):
    ev = evaluate_point(
        bloom, DesignPoint(), device=AMAZON_F1, sim_cycles=1_500
    )
    assert ev.attribution
    assert sum(ev.attribution.values()) > 0
    assert ev.gbps <= ev.theoretical_gbps + 1e-9
    assert 0 < ev.area_frac
    assert ev.p99_ms > 0


def test_overcommitted_point_is_infeasible(bloom):
    ev = evaluate_point(
        bloom, DesignPoint(pu_count=100_000), device=AMAZON_F1,
        sim_cycles=1_500,
    )
    assert not ev.feasible
    assert area_fraction(
        design_area(bloom, ev.point, ev.pu_count, AMAZON_F1), AMAZON_F1
    ) > 1.0


def test_point_eval_round_trips_through_cache_form(bloom):
    ev = evaluate_point(
        bloom, DesignPoint(), device=AMAZON_F1, sim_cycles=1_500
    )
    from repro.dse import PointEval

    again = PointEval.from_dict(ev.point, ev.as_dict())
    assert again.as_dict() == ev.as_dict()


# ---------------------------------------------------------------------------
# Certified worst-case latency (static cost bounds)
# ---------------------------------------------------------------------------


def test_certified_bounds_memoized_and_finite(bloom):
    bounds = bloom.certified_bounds()
    assert bounds is not None
    token_hi, cleanup_hi = bounds
    assert token_hi >= 1 and cleanup_hi >= 1
    assert bloom.certified_bounds() is bounds  # lint ran once


def test_certified_p99_upper_bounds_profiled(bloom):
    ev = evaluate_point(
        bloom, DesignPoint(), device=AMAZON_F1, sim_cycles=1_500
    )
    assert ev.p99_certified_ms is not None
    # The certified per-token bound dominates the profiled mean rate,
    # so the worst-case analytic tail dominates the estimate.
    assert ev.p99_certified_ms >= ev.p99_ms
    assert ev.as_dict()["p99_certified_ms"] == ev.p99_certified_ms


def test_unbounded_app_has_no_certified_p99():
    from repro.dse.latency import latency_samples_ms

    model = AppModel.from_spec(catalog()["decision_tree"])
    assert model.certified_bounds() is None
    ev = evaluate_point(
        model, DesignPoint(), device=AMAZON_F1, sim_cycles=1_500
    )
    assert ev.p99_certified_ms is None
    with pytest.raises(ValueError):
        latency_samples_ms(
            model, DesignPoint(), device=AMAZON_F1, bound="certified"
        )


def test_point_eval_round_trip_without_certified_field(bloom):
    # Payloads written before the certified field existed still load.
    from repro.dse import PointEval

    ev = evaluate_point(
        bloom, DesignPoint(), device=AMAZON_F1, sim_cycles=1_500
    )
    data = ev.as_dict()
    del data["p99_certified_ms"]
    clone = PointEval.from_dict(ev.point, data)
    assert clone.p99_certified_ms is None
    assert clone.p99_ms == ev.p99_ms
