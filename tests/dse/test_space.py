"""DesignPoint semantics: validation, mapping onto MemoryConfig,
canonical forms."""

import pytest

from repro.dse import DesignPoint
from repro.system import AMAZON_F1


def test_defaults_are_the_paper_configuration():
    point = DesignPoint.baseline(AMAZON_F1)
    assert point.pu_count is None
    assert point.burst_registers == 16
    assert point.layout_beats == 2
    assert point.channels == AMAZON_F1.channels
    config = point.memory_config(AMAZON_F1)
    assert config.burst_registers == 16
    assert config.beats_per_burst == 2
    assert config.frequency_hz == AMAZON_F1.frequency_hz


def test_memory_config_rescales_outstanding_window():
    point = DesignPoint(burst_registers=4)
    config = point.memory_config(AMAZON_F1)
    assert config.burst_registers == 4
    # MemoryConfig.replace re-derives the address-ahead window from r.
    assert config.max_outstanding == 8


def test_layout_beats_set_burst_size():
    config = DesignPoint(layout_beats=16).memory_config(AMAZON_F1)
    assert config.beats_per_burst == 16
    assert config.burst_bytes == 16 * config.bus_bytes


@pytest.mark.parametrize("field", [
    "burst_registers", "layout_beats", "channels", "serve_slots",
])
def test_rejects_non_positive(field):
    with pytest.raises(ValueError):
        DesignPoint(**{field: 0})


def test_as_dict_round_trips():
    point = DesignPoint(pu_count=128, burst_registers=8, layout_beats=4,
                        channels=2, serve_slots=16)
    assert DesignPoint(**point.as_dict()) == point


def test_replace_overrides_one_field():
    point = DesignPoint()
    other = point.replace(serve_slots=64)
    assert other.serve_slots == 64
    assert other.replace(serve_slots=32) == point
    assert point.serve_slots == 32  # original untouched


def test_key_orders_deterministically():
    points = [
        DesignPoint(layout_beats=b, burst_registers=r)
        for b in (4, 2) for r in (32, 8)
    ]
    ordered = sorted(points, key=lambda p: p.key())
    assert [(p.layout_beats, p.burst_registers) for p in ordered] == [
        (2, 8), (2, 32), (4, 8), (4, 32),
    ]
