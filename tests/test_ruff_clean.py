"""The repo passes ``ruff check`` with the pinned configuration.

Gated on the binary: CI installs the version pinned in
``pyproject.toml`` (``[tool.ruff] required-version``) and runs this for
real; environments without ruff skip rather than fail — the constraint
is enforced where the toolchain exists, never silently dropped.
"""

import shutil
import subprocess
import sys

import pytest

pytestmark = pytest.mark.skipif(
    shutil.which("ruff") is None,
    reason="ruff not installed (CI installs the pinned version)",
)


def test_ruff_check_clean():
    proc = subprocess.run(
        ["ruff", "check", "."],
        capture_output=True, text=True, cwd=_repo_root(),
    )
    assert proc.returncode == 0, (
        f"ruff check failed:\n{proc.stdout}\n{proc.stderr}"
    )


def test_ruff_version_matches_pin():
    proc = subprocess.run(
        ["ruff", "--version"], capture_output=True, text=True,
    )
    pin = _pinned_version()
    assert pin in proc.stdout, (
        f"installed {proc.stdout.strip()!r} != pinned {pin!r}; "
        "update [tool.ruff] required-version and CI together"
    )


def _repo_root():
    import pathlib

    return str(pathlib.Path(__file__).resolve().parent.parent)


def _pinned_version():
    import pathlib

    if sys.version_info >= (3, 11):
        import tomllib

        text = (pathlib.Path(_repo_root()) / "pyproject.toml").read_bytes()
        return tomllib.loads(text.decode())["tool"]["ruff"][
            "required-version"]
    for line in (pathlib.Path(_repo_root()) / "pyproject.toml"
                 ).read_text().splitlines():
        if line.startswith("required-version"):
            return line.split("=", 1)[1].strip().strip('"')
    raise AssertionError("no required-version pin in pyproject.toml")
