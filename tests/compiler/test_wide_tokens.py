"""Non-byte token widths through the whole stack."""

from repro.apps import identity_unit
from repro.compiler import UnitTestbench
from repro.interp import UnitSimulator
from repro.lang import UnitBuilder


def test_sixteen_bit_identity(rnd):
    unit = identity_unit(token_width=16)
    tokens = [rnd.randrange(1 << 16) for _ in range(50)]
    expected = UnitSimulator(unit).run(tokens)
    outputs, cycles = UnitTestbench(unit).run(tokens)
    assert outputs == expected == tokens
    assert cycles == len(tokens) + 2


def test_four_bit_tokens_with_wide_output(rnd):
    """4-bit input tokens, 12-bit output tokens: widths are independent."""
    b = UnitBuilder("widen", input_width=4, output_width=12)
    acc = b.reg("acc", width=12, init=0)
    with b.when(b.not_(b.stream_finished)):
        value = b.cat(acc.bits(7, 0), b.input)
        acc.set(value)
        b.emit(value)
    unit = b.finish()
    tokens = [rnd.randrange(16) for _ in range(30)]
    expected = UnitSimulator(unit).run(tokens)
    outputs, _ = UnitTestbench(unit).run(tokens)
    assert outputs == expected


def test_one_bit_stream():
    """Bit-serial processing: 1-bit tokens, emits on rising edges."""
    b = UnitBuilder("edges", input_width=1, output_width=8)
    prev = b.reg("prev", width=1, init=0)
    count = b.reg("count", width=8, init=0)
    with b.when(b.not_(b.stream_finished)):
        rising = b.all_of(prev == 0, b.input == 1)
        with b.when(rising):
            b.emit(count + 1)
        count.set(b.mux(rising, count + 1, count))
        prev.set(b.input)
    unit = b.finish()
    bits = [0, 1, 1, 0, 1, 0, 0, 1, 1, 1]
    expected = UnitSimulator(unit).run(bits)
    assert expected == [1, 2, 3]
    outputs, _ = UnitTestbench(unit).run(bits)
    assert outputs == expected
