"""Compiled-RTL structure and the paper's II = 1 guarantee."""

from repro.apps import block_frequencies_unit, identity_unit
from repro.compiler import UnitTestbench, compile_unit
from repro.interp import UnitSimulator
from repro.lang import UnitBuilder


def test_io_interface_complete():
    module = compile_unit(identity_unit())
    input_names = {sig.name for sig in module.inputs}
    output_names = {sig.name for sig in module.outputs}
    assert input_names == {
        "input_token", "input_valid", "output_ready", "input_finished"
    }
    assert output_names == {
        "output_valid", "output_token", "input_ready", "output_finished"
    }


def test_port_widths_match_token_sizes():
    b = UnitBuilder("w", input_width=4, output_width=12)
    b.emit(b.cat(b.input, b.input, b.input))
    module = compile_unit(b.finish())
    token_in = next(s for s in module.inputs if s.name == "input_token")
    token_out = next(s for s in module.outputs if s.name == "output_token")
    assert token_in.width == 4
    assert token_out.width == 12


def test_forwarding_registers_created_per_written_bram():
    module = compile_unit(block_frequencies_unit(block_size=4))
    names = {spec.q.name for spec in module.regs}
    assert "b_frequencies_last_addr" in names
    assert "b_frequencies_last_data" in names


def test_forwarding_elision():
    module = compile_unit(
        block_frequencies_unit(block_size=4),
        elide_forwarding=("frequencies",),
    )
    names = {spec.q.name for spec in module.regs}
    assert "b_frequencies_last_addr" not in names


def test_read_only_bram_needs_no_forwarding():
    b = UnitBuilder("ro", input_width=8, output_width=8)
    m = b.bram("m", elements=16, width=8)
    b.emit(m[b.input.bits(3, 0)])
    module = compile_unit(b.finish())
    names = {spec.q.name for spec in module.regs}
    assert not any("last_addr" in n for n in names)


def test_one_virtual_cycle_per_real_cycle():
    """The paper's central throughput guarantee (Section 4): absent IO
    stalls, cycles == total virtual cycles (+1 for output_finished)."""
    unit = block_frequencies_unit(block_size=10)
    tokens = list(range(100)) * 2
    sim = UnitSimulator(unit)
    sim.run(tokens)
    tb = UnitTestbench(unit)
    outputs, cycles = tb.run(tokens)
    assert outputs == sim.outputs
    assert cycles == sim.trace.total_vcycles + 1


def test_identity_initiation_interval_is_one():
    unit = identity_unit()
    tb = UnitTestbench(unit)
    tokens = list(range(200))
    outputs, cycles = tb.run(tokens)
    assert outputs == tokens
    assert cycles == len(tokens) + 2  # pipeline fill + finished flag
