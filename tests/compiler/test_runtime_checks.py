"""The compiler's optional runtime restriction checks (paper Section 3:
"we could insert logic to perform runtime checks")."""

from repro.apps import block_frequencies_unit
from repro.compiler import compile_unit
from repro.lang import UnitBuilder
from repro.rtl import RtlSimulator


def drive_stream(sim, tokens):
    """Minimal unchecked driver that watches the error flag."""
    errors = []
    index = 0
    for _ in range(10 * (len(tokens) + 4)):
        sim.set_inputs(
            input_token=tokens[index] if index < len(tokens) else 0,
            input_valid=1 if index < len(tokens) else 0,
            input_finished=1 if index >= len(tokens) else 0,
            output_ready=1,
        )
        outs = sim.outputs()
        errors.append(outs["restriction_error"])
        if outs["output_finished"]:
            break
        if outs["input_ready"] and index < len(tokens):
            index += 1
        sim.clock_edge()
    return errors


def test_clean_program_never_flags():
    unit = block_frequencies_unit(block_size=4)
    module = compile_unit(unit, insert_runtime_checks=True)
    sim = RtlSimulator(module)
    errors = drive_stream(sim, list(range(12)))
    assert not any(errors)


def test_double_emit_latches_error():
    b = UnitBuilder("bad", input_width=8, output_width=8)
    # (guarded with stream_finished so the cleanup cycle's dummy token 0
    # does not itself trigger the overlap)
    with b.when(b.not_(b.stream_finished)):
        with b.when(b.input < 200):
            b.emit(1)
        with b.when(b.input < 100):  # overlaps for tokens < 100
            b.emit(2)
    unit = b.finish()
    module = compile_unit(unit, insert_runtime_checks=True)
    sim = RtlSimulator(module)
    errors = drive_stream(sim, [150])
    assert not any(errors)  # only one emit fired
    sim.reset()
    errors = drive_stream(sim, [50])
    assert any(errors)  # both guards true -> flagged
    # and the flag is sticky
    assert errors[-1] == 1


def test_conflicting_reads_latch_error():
    b = UnitBuilder("bad", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    x = b.reg("x", width=8)
    with b.when(b.input > 10):
        x.set((m[0] + m[1]).bits(7, 0))
    unit = b.finish()
    module = compile_unit(unit, insert_runtime_checks=True)
    sim = RtlSimulator(module)
    assert not any(drive_stream(sim, [5]))
    sim.reset()
    assert any(drive_stream(sim, [50]))


def test_double_write_latches_error():
    b = UnitBuilder("bad", input_width=8, output_width=8)
    m = b.bram("m", elements=8, width=8)
    with b.when(b.input > 10):
        m[0] = 1
    m[1] = 2
    unit = b.finish()
    module = compile_unit(unit, insert_runtime_checks=True)
    sim = RtlSimulator(module)
    assert not any(drive_stream(sim, [5]))
    sim.reset()
    assert any(drive_stream(sim, [50]))


def test_checks_off_by_default():
    unit = block_frequencies_unit(block_size=4)
    module = compile_unit(unit)
    names = {sig.name for sig in module.outputs}
    assert "restriction_error" not in names
