"""BRAM result forwarding: why the last-written-(addr, data) registers
exist, and what eliding them costs."""

from repro.apps import block_frequencies_unit
from repro.compiler import UnitTestbench
from repro.interp import UnitSimulator


def test_forwarding_makes_back_to_back_counts_correct():
    """Consecutive identical tokens are the read-after-previous-write
    case: the virtual cycle for token N reads the address token N-1 just
    wrote. With forwarding, RTL matches the functional simulator."""
    unit = block_frequencies_unit(block_size=4)
    tokens = [7, 7, 7, 7]  # worst case: same BRAM address every cycle
    expected = UnitSimulator(unit).run(tokens)
    outputs, _ = UnitTestbench(unit).run(tokens)
    assert outputs == expected
    assert expected[7] == 4


def test_eliding_forwarding_breaks_this_program():
    """The paper lets users elide the forwarding register when they
    assert no read-after-previous-write occurs; the histogram violates
    that assertion on repeated tokens, so the elided design undercounts —
    the software simulator is exactly the tool that catches this."""
    unit = block_frequencies_unit(block_size=4)
    tokens = [7, 7, 7, 7]
    expected = UnitSimulator(unit).run(tokens)
    tb = UnitTestbench(unit, elide_forwarding=("frequencies",))
    outputs, _ = tb.run(tokens)
    assert outputs != expected  # stale read data: counts are lost
    assert outputs[7] < 4


def test_eliding_is_safe_when_assertion_holds():
    """With strictly distinct consecutive tokens (and a block boundary
    that never re-reads a just-cleared slot), the elided design matches."""
    unit = block_frequencies_unit(block_size=4)
    tokens = [1, 2, 3, 4, 5, 6, 7, 8]
    expected = UnitSimulator(unit).run(tokens)
    tb = UnitTestbench(unit, elide_forwarding=("frequencies",))
    outputs, _ = tb.run(tokens)
    assert outputs == expected
