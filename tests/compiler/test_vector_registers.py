"""Vector registers through the full compiler path (the apps use
metaprogrammed scalar registers and BRAMs, so this path needs its own
coverage): random access reads/writes must match the interpreter in RTL,
including under stalls."""

from repro.compiler import UnitTestbench
from repro.interp import UnitSimulator
from repro.lang import UnitBuilder


def rotate_unit(elements=5):
    """Writes each token into a rotating slot and emits the slot it
    evicts — exercises dynamic vreg read AND write in one cycle."""
    b = UnitBuilder("rot", input_width=8, output_width=8)
    v = b.vreg("v", elements=elements, width=8)
    cursor = b.reg("cursor", width=3, init=0)
    with b.when(b.not_(b.stream_finished)):
        b.emit(v[cursor])
        v[cursor] = b.input
        cursor.set(b.mux(cursor == elements - 1, 0, cursor + 1))
    return b.finish()


def multi_write_unit():
    """Two concurrent writes to distinct dynamic indices per cycle."""
    b = UnitBuilder("mw", input_width=8, output_width=8)
    v = b.vreg("v", elements=8, width=8)
    lo = b.input.bits(2, 0)
    with b.when(b.not_(b.stream_finished)):
        b.emit((v[lo] + v[(lo + 1).bits(2, 0)]).bits(7, 0))
        v[lo] = b.input
        v[(lo + 4).bits(2, 0)] = (b.input + 1).bits(7, 0)
    return b.finish()


def test_rotate_matches_interpreter(rnd):
    unit = rotate_unit()
    tokens = [rnd.randrange(256) for _ in range(40)]
    expected = UnitSimulator(unit).run(tokens)
    outputs, cycles = UnitTestbench(unit).run(tokens)
    assert outputs == expected
    assert cycles == len(tokens) + 2  # II = 1 holds for vregs too


def test_rotate_under_stalls(rnd):
    unit = rotate_unit()
    tokens = [rnd.randrange(256) for _ in range(30)]
    expected = UnitSimulator(unit).run(tokens)
    outputs, _ = UnitTestbench(unit).run(
        tokens,
        input_stall=lambda c: c % 2 == 0,
        output_stall=lambda c: c % 5 == 3,
    )
    assert outputs == expected


def test_concurrent_distinct_writes(rnd):
    unit = multi_write_unit()
    # keep lo and lo+4 distinct mod 8: any token works (offset 4 < 8)
    tokens = [rnd.randrange(256) for _ in range(3, 60)]
    expected = UnitSimulator(unit).run(tokens)
    outputs, _ = UnitTestbench(unit).run(tokens)
    assert outputs == expected


def test_single_element_vreg():
    b = UnitBuilder("one", input_width=8, output_width=8)
    v = b.vreg("v", elements=1, width=8)
    with b.when(b.not_(b.stream_finished)):
        b.emit(v[0])
        v[0] = b.input
    unit = b.finish()
    tokens = [5, 6, 7]
    expected = UnitSimulator(unit).run(tokens)
    outputs, _ = UnitTestbench(unit).run(tokens)
    assert outputs == expected == [0, 5, 6]
