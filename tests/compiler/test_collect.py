"""The collection pass: guards, loop conditions, read/write gathering."""

from repro.compiler import collect
from repro.lang import UnitBuilder


def build_histogram_like():
    b = UnitBuilder("h", input_width=8, output_width=8)
    counter = b.reg("counter", width=7)
    freqs = b.bram("freqs", elements=256, width=8)
    idx = b.reg("idx", width=9)
    with b.when(counter == 100):
        with b.while_(idx < 256):
            b.emit(freqs[idx])
            freqs[idx] = 0
            idx.set(idx + 1)
        idx.set(0)
    freqs[b.input] = freqs[b.input] + 1
    counter.set(b.mux(counter == 100, 1, counter + 1))
    return b.finish()


def test_loop_guard_includes_enclosing_condition():
    unit = build_histogram_like()
    col = collect(unit)
    assert len(col.loops) == 1
    guard = col.loops[0]
    # both the if condition and the while condition, positively
    assert len(guard.terms) == 2
    assert all(positive for _, positive in guard.terms)
    assert not guard.needs_while_done


def test_loop_body_statements_do_not_need_while_done():
    unit = build_histogram_like()
    col = collect(unit)
    idx = next(r for r in unit.regs if r.name == "idx")
    guards = [g for g, _ in col.reg_assigns[idx]]
    # first assignment: inside the loop; second: after it
    assert not guards[0].needs_while_done
    assert guards[1].needs_while_done


def test_reads_collected_with_guards():
    unit = build_histogram_like()
    col = collect(unit)
    freqs = unit.brams[0]
    reads = col.reads_of(freqs)
    assert len(reads) == 2  # emit value and increment value
    loop_read, incr_read = reads
    assert not loop_read[0].needs_while_done
    assert incr_read[0].needs_while_done


def test_writes_collected():
    unit = build_histogram_like()
    col = collect(unit)
    freqs = unit.brams[0]
    assert len(col.writes_of(freqs)) == 2


def test_emit_guard_matches_loop():
    unit = build_histogram_like()
    col = collect(unit)
    assert len(col.emits) == 1
    guard, _ = col.emits[0]
    assert len(guard.terms) == 2  # if cond + loop cond


def test_elif_arms_negate_previous_conditions():
    b = UnitBuilder("e", input_width=8, output_width=8)
    r = b.reg("r", width=8)
    with b.when(b.input == 0):
        r.set(1)
    with b.elif_(b.input == 1):
        r.set(2)
    with b.otherwise():
        r.set(3)
    unit = b.finish()
    col = collect(unit)
    reg = unit.regs[0]
    guards = [g for g, _ in col.reg_assigns[reg]]
    assert [len(g.terms) for g in guards] == [1, 2, 2]
    # second arm: NOT(first cond) AND (second cond)
    assert [p for _, p in guards[1].terms] == [False, True]
    # else arm: both negated
    assert [p for _, p in guards[2].terms] == [False, False]


def test_reads_in_conditions_guarded_by_path_only():
    b = UnitBuilder("c", input_width=8, output_width=8)
    m = b.bram("m", elements=16, width=8)
    r = b.reg("r", width=8)
    s = b.reg("s", width=1)
    with b.when(s == 1):
        with b.when(m[0] > 4):
            r.set(1)
    unit = b.finish()
    col = collect(unit)
    guard, _ = col.reads_of(unit.brams[0])[0]
    assert len(guard.terms) == 1  # only the outer s == 1
    assert not guard.needs_while_done
