"""Full cross-check: compiled RTL vs the functional simulator on every
application, with and without IO stalls — the paper's peek-poke testing
infrastructure (Section 6)."""

import random

import pytest

from repro.apps import (
    block_frequencies_unit,
    bloom_filter_unit,
    decision_tree_unit,
    identity_unit,
    int_coding_unit,
    json_field_unit,
    regex_match_unit,
    smith_waterman_unit,
)
from repro.apps.json_parser import make_stream as json_stream
from repro.apps.smith_waterman import make_stream as sw_stream
from repro.bench.workloads import make_gbt_model
from repro.compiler import UnitTestbench
from repro.interp import UnitSimulator

RND = random.Random(0xC0C0)


def _dtree_stream():
    rnd = random.Random(77)
    model = make_gbt_model(rnd, n_features=4, n_trees=3, depth=3)
    points = [[rnd.randrange(1 << 20) for _ in range(4)] for _ in range(6)]
    from repro.apps.decision_tree import encode_points

    return list(model.encode_header() + encode_points(points))


CASES = [
    ("identity", identity_unit, lambda: [RND.randrange(256)
                                         for _ in range(150)]),
    ("histogram", lambda: block_frequencies_unit(block_size=7),
     lambda: [RND.randrange(256) for _ in range(60)]),
    ("json", json_field_unit,
     lambda: json_stream(["a.b", "k"],
                         b'{"a":{"b":1},"k":"x"}\n{"k":[1,2],"a":{"b":"y"}}')),
    ("int_coding", int_coding_unit,
     lambda: [RND.randrange(256) for _ in range(96)]),
    ("decision_tree",
     lambda: decision_tree_unit(max_features=8, max_trees=4, max_nodes=64),
     _dtree_stream),
    ("smith_waterman", lambda: smith_waterman_unit(target_length=4),
     lambda: sw_stream(b"ACGT", 6,
                       [RND.choice(b"ACGT") for _ in range(120)])),
    ("regex", lambda: regex_match_unit("a(b|c)+d"),
     lambda: [RND.choice(b"abcdx") for _ in range(150)]),
    ("bloom",
     lambda: bloom_filter_unit(block_size=4, num_hashes=2, section_bits=128),
     lambda: [RND.randrange(256) for _ in range(64)]),
]


@pytest.mark.parametrize("name,unit_fn,stream_fn",
                         CASES, ids=[c[0] for c in CASES])
def test_rtl_matches_functional_simulator(name, unit_fn, stream_fn):
    unit = unit_fn()
    tokens = stream_fn()
    expected = UnitSimulator(unit).run(tokens)
    outputs, _cycles = UnitTestbench(unit).run(tokens)
    assert outputs == expected


@pytest.mark.parametrize("name,unit_fn,stream_fn",
                         CASES, ids=[c[0] for c in CASES])
def test_rtl_matches_under_io_stalls(name, unit_fn, stream_fn):
    unit = unit_fn()
    tokens = stream_fn()
    expected = UnitSimulator(unit).run(tokens)
    stall_rnd = random.Random(name)
    outputs, _ = UnitTestbench(unit).run(
        tokens,
        input_stall=lambda c: stall_rnd.random() < 0.3,
        output_stall=lambda c: stall_rnd.random() < 0.3,
    )
    assert outputs == expected


def test_stalls_only_add_latency_never_reorder():
    unit = block_frequencies_unit(block_size=5)
    tokens = [RND.randrange(256) for _ in range(40)]
    tb = UnitTestbench(unit)
    baseline, base_cycles = tb.run(tokens)
    stalled, stalled_cycles = tb.run(
        tokens, input_stall=lambda c: c % 2 == 0
    )
    assert stalled == baseline
    assert stalled_cycles > base_cycles
