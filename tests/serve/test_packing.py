"""Unit tests for the serving scheduler's pure pieces: packers, the
cost model, the compiled-app cache, weighted-fair queuing, and device
placement."""

import pytest

from repro.serve import (
    CompiledAppCache,
    CostModel,
    FifoPacker,
    SkewAwarePacker,
    WeightedFairQueue,
    make_packer,
)
from repro.serve.job import Job
from repro.serve.packing import Batch, BatchEntry
from repro.serve.scheduler import place_batch
from repro.serve.server import default_apps


def _entries(costs, job_id=0):
    job = Job(job_id, "identity", "default", [b"x"] * len(costs),
              arrival_vtime=0.0)
    return [
        BatchEntry(job, index, b"x" * int(cost), float(cost))
        for index, cost in enumerate(costs)
    ]


# ---------------------------------------------------------------------------
# Packers
# ---------------------------------------------------------------------------


def test_fifo_packer_preserves_arrival_order():
    entries = _entries([5, 100, 7, 3, 90, 2])
    batches = FifoPacker().pack(entries, slots=2)
    assert [[e.predicted_cost for e in b] for b in batches] == [
        [5, 100], [7, 3], [90, 2],
    ]


def test_skew_packer_sorts_by_cost_descending():
    entries = _entries([5, 100, 7, 3, 90, 2])
    batches = SkewAwarePacker().pack(entries, slots=2)
    assert [[e.predicted_cost for e in b] for b in batches] == [
        [100, 90], [7, 5], [3, 2],
    ]


def test_skew_packing_reduces_makespan_on_skewed_window():
    # One heavy stream per FIFO batch forces every batch to pay the
    # heavy-tail maximum; LPT concentrates them into one batch.
    costs = [1000, 1, 1, 1, 1000, 1, 1, 1, 1000, 1, 1, 1]
    entries = _entries(costs)

    def makespan(packer):
        return sum(
            max(e.predicted_cost for e in batch)
            for batch in packer.pack(list(entries), slots=4)
        )

    fifo = makespan(FifoPacker())
    skew = makespan(SkewAwarePacker())
    assert fifo == 3000
    assert skew == 1002  # [1000,1000,1000,1] + [1]*4 + [1]*4
    assert fifo / skew > 2.5


def test_skew_packer_ties_break_by_submission_order():
    # Equal costs: skew must degrade to FIFO exactly (determinism and
    # fairness both depend on the tie-break).
    entries = _entries([7] * 6)
    fifo = FifoPacker().pack(list(entries), slots=2)
    skew = SkewAwarePacker().pack(list(entries), slots=2)
    def key(b):
        return [(e.job.job_id, e.stream_index) for e in b]

    assert [key(b) for b in fifo] == [key(b) for b in skew]


def test_make_packer():
    assert make_packer("fifo").name == "fifo"
    assert make_packer("skew").name == "skew"
    with pytest.raises(ValueError, match="unknown packer"):
        make_packer("lifo")


def test_batch_accounting():
    entries = _entries([10, 4])
    batch = Batch(0, "identity", entries, slots=4)
    assert batch.predicted_makespan == 10
    entries[0].vcycles, entries[1].vcycles = 11, 5
    assert batch.busy_vcycles == 16
    assert Batch(1, "identity", [], slots=4).predicted_makespan == 0


# ---------------------------------------------------------------------------
# Cost model + compiled-app cache
# ---------------------------------------------------------------------------


def test_cost_model_is_exact_for_identity():
    # Identity is token-linear (one vcycle per byte + one cleanup), so
    # the two-point linear fit must predict measured cost exactly.
    cache = CompiledAppCache(default_apps())
    model = CostModel(cache)
    for length in (1, 17, 500):
        stream = bytes(range(256))[:1] * length
        sim = cache.simulator("identity")
        sim.run(list(stream))
        assert model.predict("identity", stream) == sim.trace.total_vcycles


def test_cache_compiles_each_app_once():
    cache = CompiledAppCache(default_apps())
    for _ in range(5):
        cache.simulator("identity")
    stats = cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 4
    assert stats["compiled"] == ["identity"]
    assert "identity" in cache and "nope" not in cache


def test_cost_calibration_is_cached_and_deterministic():
    cache = CompiledAppCache(default_apps())
    model = CostModel(cache)
    first = model.coefficients("identity")
    assert model.coefficients("identity") is first
    fresh = CostModel(CompiledAppCache(default_apps()))
    assert fresh.coefficients("identity") == first


# ---------------------------------------------------------------------------
# Weighted-fair queuing + placement
# ---------------------------------------------------------------------------


def _jobs(tenants):
    return [
        Job(job_id, "identity", tenant, [b"x"], arrival_vtime=0.0)
        for job_id, tenant in enumerate(tenants)
    ]


def test_wfq_orders_by_virtual_finish_time():
    wfq = WeightedFairQueue({"gold": 2.0, "bronze": 1.0})
    jobs = _jobs(["bronze", "gold", "bronze", "gold"])
    ordered = wfq.order(jobs, lambda job: 100.0)
    # gold finishes at 50/100, bronze at 100/200: under contention the
    # weight-2 tenant's backlog is served twice as fast.
    assert [j.job_id for j in ordered] == [1, 0, 3, 2]


def test_wfq_equal_weights_fall_back_to_submission_order():
    wfq = WeightedFairQueue()
    jobs = _jobs(["a", "b", "a", "b"])
    ordered = wfq.order(jobs, lambda job: 10.0)
    assert [j.job_id for j in ordered] == [0, 1, 2, 3]


def test_wfq_idle_tenant_banks_no_credit():
    wfq = WeightedFairQueue()
    busy = _jobs(["busy"] * 4)
    wfq.order(busy, lambda job: 100.0)
    late = Job(99, "identity", "late", [b"x"], arrival_vtime=0.0)
    more = Job(100, "identity", "busy", [b"x"], arrival_vtime=0.0)
    ordered = wfq.order([more, late], lambda job: 100.0)
    # The late tenant starts at the advanced virtual time, not at 0 —
    # it gets its fair share now, not a retroactive surplus.
    assert ordered[0].job_id == 99
    assert late.vfinish >= 100.0


def test_place_batch_greedy_least_loaded():
    loads = [0.0, 0.0, 0.0]
    entries = _entries([10])
    batch = Batch(0, "identity", entries, slots=1)
    assert place_batch(batch, loads) == 0  # tie -> lowest index
    assert batch.device_index == 0
    assert loads == [10.0, 0.0, 0.0]
    assert place_batch(Batch(1, "identity", _entries([4]), slots=1),
                       loads) == 1
    assert place_batch(Batch(2, "identity", _entries([3]), slots=1),
                       loads) == 2
    assert place_batch(Batch(3, "identity", _entries([1]), slots=1),
                       loads) == 2
