"""The serving runtime's SIMD batch path: identical results to the
per-stream loop, occupancy stats in the report, and the config switch."""

import pytest

from repro.interp import numpy_available
from repro.serve import (
    FleetServer,
    ServeConfig,
    format_serve_report,
    validate_serve_report,
)

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy unavailable"
)


def _streams(lengths, fill=0x41):
    return [bytes([fill + i % 7]) * length
            for i, length in enumerate(lengths)]


def _run(batch_engine):
    server = FleetServer(config=ServeConfig(
        devices=1, pu_slots=4, window_streams=8,
        batch_engine=batch_engine,
    ))
    server.start()
    future = server.submit("identity", _streams((64, 8, 0, 200, 16)))
    server.drain()
    result = future.result(timeout=30)
    report = validate_serve_report(server.report())
    server.stop()
    return result, report


@requires_numpy
def test_simd_path_matches_per_stream_loop():
    simd_result, simd_report = _run(batch_engine=True)
    loop_result, loop_report = _run(batch_engine=False)
    assert simd_result.outputs == loop_result.outputs
    assert [j["device_vcycles"] for j in simd_report["jobs"]] == \
        [j["device_vcycles"] for j in loop_report["jobs"]]
    assert simd_report["totals"]["makespan"] == \
        loop_report["totals"]["makespan"]


@requires_numpy
def test_simd_batches_carry_occupancy_stats():
    _, report = _run(batch_engine=True)
    assert report["config"]["batch_engine"] is True
    simd = [b for b in report["batches"] if "batch_engine" in b]
    assert simd, "no batch ran on the SIMD path"
    for row in simd:
        stats = row["batch_engine"]
        assert 0 < stats["lanes"] <= row["streams"]
        assert 0.0 <= stats["waste_fraction"] <= 1.0
    assert "identity" in report["cache"]["batched"]
    assert "batch engine:" in format_serve_report(report)


@requires_numpy
def test_batch_engine_off_runs_per_stream():
    _, report = _run(batch_engine=False)
    assert report["config"]["batch_engine"] is False
    assert not any("batch_engine" in b for b in report["batches"])
