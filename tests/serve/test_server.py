"""End-to-end `FleetServer` behavior: results, reports, fair shares,
the asyncio bridge, memory-system attribution, and trace export."""

import asyncio
import json

import pytest

from repro.serve import (
    FleetServer,
    ServeConfig,
    ServeError,
    build_serve_report,
    format_serve_report,
    gather_async,
    validate_serve_report,
)
from repro.serve.job import DONE
from repro.system import serving_pu_slots


def _streams(lengths, fill=0x41):
    return [bytes([fill + i % 7]) * length
            for i, length in enumerate(lengths)]


def _served(config=None, jobs=((("identity", "default",
                                 (64, 8, 200, 16)),))):
    server = FleetServer(config=config or ServeConfig(
        devices=2, pu_slots=4, window_streams=8,
    ))
    server.start()
    futures = [
        server.submit(app, _streams(lengths), tenant=tenant)
        for app, tenant, lengths in jobs
    ]
    server.drain()
    return server, [f.result(timeout=30) for f in futures]


# ---------------------------------------------------------------------------
# Results + report structure
# ---------------------------------------------------------------------------


def test_identity_outputs_round_trip_in_stream_order():
    server, results = _served()
    (result,) = results
    assert [bytes(out) for out in result.outputs] == _streams(
        (64, 8, 200, 16)
    )
    assert result.report["status"] == DONE
    assert result.report["device_vcycles"] == sum(
        length + 1 for length in (64, 8, 200, 16)
    )
    server.stop()


def test_report_validates_and_renders():
    server, _ = _served(jobs=[
        ("identity", "gold", (100, 5)),
        ("sink", "silver", (40, 40, 40)),
        ("identity", "gold", (7,)),
    ])
    report = validate_serve_report(server.report())
    assert report["totals"]["jobs"] == 3
    assert report["totals"]["streams"] == 6
    assert set(report["tenants"]) == {"gold", "silver"}
    assert {b["app"] for b in report["batches"]} == {"identity", "sink"}
    rendered = format_serve_report(report)
    assert "serve run: 3 jobs, 6 streams" in rendered
    assert "tenant" in rendered and "gold" in rendered
    json.dumps(report)  # must be plain JSON-serializable data
    server.stop()


def test_report_requires_drained_server():
    config = ServeConfig(devices=1, pu_slots=4, window_streams=1_000_000)
    with FleetServer(config=config) as server:
        server.submit("identity", _streams((8, 8)))
        with pytest.raises(ServeError, match="drain"):
            server.report()
        server.drain()
        validate_serve_report(server.report())


def test_batches_spread_across_devices():
    server, _ = _served(jobs=[
        ("identity", "default", (50,) * 4) for _ in range(4)
    ])
    report = server.report()
    used = {b["device"] for b in report["batches"]}
    assert used == {0, 1}
    # Equal-cost batches on 2 devices: greedy placement balances 2/2.
    per_device = [d["batches"] for d in report["devices"]]
    assert per_device == [2, 2]
    server.stop()


def test_job_fragment_in_future_matches_report():
    server, results = _served(jobs=[("identity", "default", (30, 3))])
    report = server.report()
    (job_row,) = report["jobs"]
    frag = results[0].report
    for key in ("job_id", "app", "tenant", "status", "streams",
                "device_vcycles", "batches"):
        assert job_row[key] == frag[key]
    server.stop()


# ---------------------------------------------------------------------------
# Area-model slot sizing
# ---------------------------------------------------------------------------


def test_area_model_slots_when_pu_slots_is_none():
    config = ServeConfig(devices=1, pu_slots=None, window_streams=4,
                         slot_cap=16)
    with FleetServer(config=config) as server:
        server.submit("identity", _streams((8, 8, 8, 8)))
        server.drain()
        report = server.report()
    expected = serving_pu_slots(
        server.cache.entry("identity").program, cap=16
    )
    assert all(b["slots"] == expected for b in report["batches"])


# ---------------------------------------------------------------------------
# Asyncio bridge
# ---------------------------------------------------------------------------


def test_async_result_bridge():
    config = ServeConfig(devices=1, pu_slots=4, window_streams=4)
    with FleetServer(config=config) as server:
        futures = [
            server.submit("identity", _streams((16,)))
            for _ in range(3)
        ]
        server.flush()

        async def collect():
            single = await futures[0].result_async(timeout=30)
            rest = await gather_async(*futures[1:], timeout=30)
            return [single, *rest]

        results = asyncio.run(collect())
    assert [r.job_id for r in results] == [0, 1, 2]
    assert all(bytes(r.outputs[0]) == _streams((16,))[0] for r in results)


# ---------------------------------------------------------------------------
# memory_sim mode
# ---------------------------------------------------------------------------


def test_memory_sim_attaches_cycle_attribution():
    config = ServeConfig(devices=1, pu_slots=4, window_streams=4,
                         memory_sim=True)
    with FleetServer(config=config) as server:
        future = server.submit("identity", _streams((48, 12)))
        server.drain()
        outputs = future.result(timeout=60).outputs
        report = validate_serve_report(server.report())
    assert [bytes(out) for out in outputs] == _streams((48, 12))
    for batch in report["batches"]:
        attribution = batch["attribution"]
        assert sum(attribution.values()) > 0
        # Memory-system cycles dominate functional vcycles: the batch
        # makespan now includes DRAM/controller time.
        assert batch["makespan"] >= max(
            pu["busy_cycles"] for pu in batch["pus"]
        )


# ---------------------------------------------------------------------------
# Trace export
# ---------------------------------------------------------------------------


def test_trace_export_one_span_per_stream(tmp_path):
    server, _ = _served(jobs=[
        ("identity", "gold", (32, 8, 8)),
        ("identity", "silver", (16, 16)),
    ])
    path = tmp_path / "serve_trace.json"
    server.write_trace(str(path))
    trace = json.loads(path.read_text())
    # pid namespace is device shards, plus one "jobs" process carrying
    # the per-job submit -> queue -> batch -> done span chains.
    metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    names = {e["args"]["name"] for e in metas
             if e["name"] == "process_name"}
    assert names == {"device 0", "device 1", "jobs"}
    device_pids = {
        e["pid"] for e in metas
        if e["name"] == "process_name"
        and e["args"]["name"].startswith("device ")
    }
    spans = [
        e for e in trace["traceEvents"]
        if e["ph"] == "X" and e["pid"] in device_pids
    ]
    assert len(spans) == 5
    assert {e["args"]["tenant"] for e in spans} == {"gold", "silver"}
    for span in spans:
        assert span["dur"] > 0
    server.stop()


def test_build_serve_report_is_pure_reconstruction():
    server, _ = _served(jobs=[("identity", "default", (20, 4, 4))])
    first = build_serve_report(server)
    second = build_serve_report(server)
    assert first == second
    server.stop()
