"""Calibrated cost-model guarantees, over all eleven app units.

Two layers:

* **Pinned golden coefficients.** The ``(per_token, fixed)`` pair the
  cost model calibrates for each app unit is a pure function of the
  unit's semantics and the seeded calibration samples; any drift means
  either an engine stopped being bit-identical to the interpreter or a
  unit's cycle structure changed — both are release-note events, not
  noise. Exact equality, no tolerances.
* **Hypothesis property.** The predicted virtual-cycle cost is monotone
  non-decreasing in stream length for every app — the invariant the
  skew-aware packer's LPT ordering leans on (a longer stream may never
  be predicted cheaper than a shorter one).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.json_parser import encode_field_table
from repro.apps.string_search import AhoCorasick
from repro.bench.workloads import make_gbt_model, rng
from repro.lint.units import APP_UNIT_BUILDERS
from repro.serve import CompiledAppCache, CostModel, ServedApp


def _headers():
    """Fixed, seeded stream headers for the units that parse one."""
    return {
        "decision_tree": make_gbt_model(
            rng(2), n_features=8, n_trees=4, depth=3
        ).encode_header(),
        "json_field": encode_field_table(("id",), max_states=8),
        "smith_waterman": b"ACGT" + bytes([8, 0]),
        "string_search": AhoCorasick(
            (b"ab", b"cd"), max_states=16
        ).encode_header(),
    }


def _cost_model():
    headers = _headers()
    apps = {
        name: ServedApp(name, builder, header=headers.get(name, b""))
        for name, builder in APP_UNIT_BUILDERS.items()
    }
    return CostModel(CompiledAppCache(apps))


#: app -> (per_token, fixed): the exact calibration output. Pinned; see
#: the module docstring for what a mismatch means.
GOLDEN_COEFFICIENTS = {
    "block_frequencies": (3.6666666666666665, 1.0),
    "bloom_filter": (3.0, 1.0),
    "csv_extract": (1.0, 1.0),
    "decision_tree": (2.1875, 713.0),
    "identity": (1.0, 1.0),
    "int_coding": (2.5208333333333335, 1.0),
    "json_field": (1.0, 9.0),
    "regex_match": (1.0, 1.0),
    "sink": (1.0, 1.0),
    "smith_waterman": (1.0, 7.0),
    "string_search": (1.0, 39.0),
}


def test_golden_covers_every_app_unit():
    assert set(GOLDEN_COEFFICIENTS) == set(APP_UNIT_BUILDERS)


def test_calibrated_coefficients_match_golden():
    model = _cost_model()
    calibrated = {
        name: model.coefficients(name) for name in APP_UNIT_BUILDERS
    }
    assert calibrated == GOLDEN_COEFFICIENTS


def test_calibration_is_deterministic_across_models():
    first, second = _cost_model(), _cost_model()
    for name in APP_UNIT_BUILDERS:
        assert first.coefficients(name) == second.coefficients(name)


#: One shared model for the property — calibration is deterministic
#: (asserted above), so reuse is sound and keeps examples fast.
_MODEL = _cost_model()


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(APP_UNIT_BUILDERS)),
    short=st.integers(min_value=0, max_value=4096),
    extra=st.integers(min_value=0, max_value=4096),
)
def test_predicted_cost_monotone_in_stream_length(name, short, extra):
    small = _MODEL.predict(name, bytes(short))
    large = _MODEL.predict(name, bytes(short + extra))
    assert small <= large
    assert small >= 1.0  # at least the fixed floor
