"""Serving-runtime telemetry integration: byte-identical reports with
telemetry on or off, complete end-to-end span chains in both trace
exports, ``FLEET_TRACE`` auto-export, SLO report sections, and
``FLEET_METRICS`` validation."""

import json

import pytest

from repro.serve import build_trace, build_trace_log
from repro.serve.__main__ import demo_slos, run_demo
from repro.telemetry import SLO, metrics
from repro.telemetry.tracing import (
    mint_trace_id,
    parse_log_lines,
    render_log_lines,
    validate_trace_log,
)


def _demo(**kwargs):
    report, server = run_demo(jobs=8, seed=99, **kwargs)
    server.stop()
    return report, server


# -- reports never read metrics ----------------------------------------------

def test_reports_byte_identical_with_telemetry():
    with metrics.enabled_scope(False):
        off, _ = _demo()
    with metrics.enabled_scope():
        metrics.reset()
        on, _ = _demo()
        snap = metrics.snapshot()
        metrics.reset()
    assert json.dumps(off, sort_keys=True) == (
        json.dumps(on, sort_keys=True)
    )
    # ...and the enabled run really recorded into the live registry.
    submitted = snap["fleet_serve_jobs_submitted_total"]["samples"]
    assert sum(s["value"] for s in submitted) == 8


def test_metrics_match_report_totals():
    with metrics.enabled_scope():
        metrics.reset()
        report, _ = _demo()
        snap = metrics.snapshot()
        metrics.reset()
    batches = snap["fleet_serve_batches_executed_total"]["samples"]
    assert sum(s["value"] for s in batches) == len(report["batches"])
    streams = snap["fleet_serve_stream_vcycles"]["samples"]
    assert sum(s["count"] for s in streams) == report["totals"]["streams"]


# -- tracing ------------------------------------------------------------------

def test_every_job_has_complete_span_chain():
    _report, server = run_demo(jobs=8, seed=99)
    events = build_trace_log(server)
    server.stop()
    validate_trace_log(events)
    by_trace = {}
    for event in events:
        by_trace.setdefault(event["trace"], set()).add(event["event"])
    assert len(by_trace) == 8
    for hops in by_trace.values():
        assert {"submit", "queue", "batch", "done"} <= hops


def test_trace_ids_deterministic():
    _report, server = run_demo(jobs=4, seed=7)
    events = build_trace_log(server)
    server.stop()
    _report2, server2 = run_demo(jobs=4, seed=7)
    events2 = build_trace_log(server2)
    server2.stop()
    assert events == events2
    submits = [e for e in events if e["event"] == "submit"]
    assert submits[0]["trace"] == mint_trace_id(
        submits[0]["job"], submits[0]["app"], submits[0]["tenant"]
    )


def test_log_lines_round_trip():
    _report, server = run_demo(jobs=4, seed=7)
    events = build_trace_log(server)
    server.stop()
    assert parse_log_lines(render_log_lines(events)) == events


def test_perfetto_trace_carries_job_spans():
    _report, server = run_demo(jobs=4, seed=7)
    trace = build_trace(server).to_chrome()
    server.stop()
    job_events = [
        e for e in trace["traceEvents"]
        if e.get("args", {}).get("trace")
    ]
    traces = {e["args"]["trace"] for e in job_events}
    assert len(traces) == 4
    for trace_id in traces:
        hops = {
            e["name"].split()[0] for e in job_events
            if e["args"]["trace"] == trace_id
        }
        assert {"submit", "queue", "done"} <= hops


def test_fleet_trace_auto_export(tmp_path, monkeypatch):
    path = tmp_path / "serve.trace.json"
    monkeypatch.setenv("FLEET_TRACE", str(path))
    _report, server = run_demo(jobs=4, seed=7)
    server.stop()
    trace = json.loads(path.read_text())
    assert any(
        e.get("args", {}).get("trace") for e in trace["traceEvents"]
    )


def test_write_trace_log_file(tmp_path):
    _report, server = run_demo(jobs=4, seed=7)
    path = tmp_path / "trace.jsonl"
    server.write_trace_log(path)
    server.stop()
    events = parse_log_lines(path.read_text())
    validate_trace_log(events)
    assert len({e["trace"] for e in events}) == 4


# -- SLOs ---------------------------------------------------------------------

def test_slo_section_present_only_when_configured():
    plain, _ = _demo()
    assert "slo" not in plain
    assert "slos" not in plain["config"]
    with_slos, _ = _demo(slos=demo_slos())
    section = with_slos["slo"]
    assert [row["name"] for row in section] == [
        "p99-latency", "job-errors"
    ]
    for row in section:
        assert 0.0 <= row["compliance"] <= 1.0
        assert row["burn_rate"] >= 0.0
    # Stripping the SLO extras recovers the plain report byte-for-byte.
    stripped = dict(with_slos)
    stripped.pop("slo")
    stripped["config"] = {
        k: v for k, v in stripped["config"].items() if k != "slos"
    }
    assert json.dumps(stripped, sort_keys=True) == (
        json.dumps(plain, sort_keys=True)
    )


def test_slo_burn_rate_math():
    slo = SLO.latency("lat", percentile=90, target_vcycles=100)
    rows = [
        {"status": "done", "latency": 50},
        {"status": "done", "latency": 50},
        {"status": "done", "latency": 50},
        {"status": "done", "latency": 500},
    ]
    from repro.telemetry.slo import evaluate_slos

    (result,) = evaluate_slos([slo], rows)
    assert result["population"] == 4
    assert result["good"] == 3
    assert result["compliance"] == 0.75
    # bad fraction 0.25 against a 0.10 budget: burning 2.5x too fast.
    assert result["burn_rate"] == 2.5
    assert not result["met"]


def test_slo_constructor_validation():
    with pytest.raises(ValueError):
        SLO.latency("bad", target_vcycles=0)
    with pytest.raises(ValueError):
        SLO.error_rate("bad", max_rate=0.0)
    with pytest.raises(ValueError):
        SLO("bad", "throughput", 0.5, None)


# -- FLEET_METRICS validation -------------------------------------------------

def test_fleet_metrics_bad_value_raises(monkeypatch):
    from repro.envcfg import FleetConfigError

    metrics.use_env()
    monkeypatch.setenv("FLEET_METRICS", "banana")
    with pytest.raises(FleetConfigError):
        metrics.enabled()
    monkeypatch.delenv("FLEET_METRICS")
