"""Nearest-rank percentile (:func:`repro.serve.report.percentile`):
the serve report's latency-summary primitive."""

from repro.serve.report import percentile


def test_empty_is_zero():
    assert percentile([], 50) == 0
    assert percentile([], 99) == 0


def test_single_value_every_percentile():
    for pct in (0, 1, 50, 99, 100):
        assert percentile([42], pct) == 42


def test_unsorted_input():
    values = [30, 10, 50, 20, 40]
    assert percentile(values, 50) == 30
    assert percentile(values, 100) == 50


def test_nearest_rank_boundaries():
    values = list(range(1, 101))  # 1..100
    assert percentile(values, 1) == 1
    assert percentile(values, 50) == 50
    assert percentile(values, 99) == 99
    assert percentile(values, 100) == 100
    # Rank is ceil(n * pct / 100): p50 of two values is the first.
    assert percentile([1, 2], 50) == 1
    assert percentile([1, 2], 51) == 2


def test_p0_clamps_to_minimum():
    assert percentile([5, 1, 9], 0) == 1


def test_duplicates():
    assert percentile([7, 7, 7, 7], 75) == 7


def test_agrees_with_sorted_index():
    values = [13, 2, 8, 40, 21, 5, 34, 1]
    ordered = sorted(values)
    for pct in range(1, 101):
        rank = -(-len(values) * pct // 100)
        assert percentile(values, pct) == ordered[rank - 1]
