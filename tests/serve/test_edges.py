"""Serving edge cases: empty jobs, batch-spanning jobs, cooperative
cancellation, admission control, lifecycle errors, and the determinism
contract."""

import json

import pytest

from repro.serve import (
    FleetServer,
    JobCancelled,
    ServeConfig,
    ServerClosed,
    ServerOverloaded,
    UnknownApp,
    validate_serve_report,
)
from repro.serve.__main__ import run_demo
from repro.serve.job import CANCELLED, DONE


def _streams(lengths):
    return [bytes([0x61 + i % 5]) * length
            for i, length in enumerate(lengths)]


# ---------------------------------------------------------------------------
# Degenerate jobs
# ---------------------------------------------------------------------------


def test_empty_job_completes_immediately():
    with FleetServer(config=ServeConfig(devices=1)) as server:
        future = server.submit("identity", [])
        assert future.done()
        result = future.result(timeout=5)
        assert result.outputs == []
        assert result.report["status"] == DONE
        server.drain()
        report = validate_serve_report(server.report())
    (job,) = report["jobs"]
    assert job["latency"] == 0.0 and job["batches"] == []


def test_single_stream_job():
    config = ServeConfig(devices=2, pu_slots=4, window_streams=1)
    with FleetServer(config=config) as server:
        result = server.submit("identity", _streams((33,))).result(
            timeout=30
        )
        server.drain()
        report = validate_serve_report(server.report())
    assert bytes(result.outputs[0]) == _streams((33,))[0]
    assert report["totals"]["batches"] == 1
    (batch,) = report["batches"]
    assert batch["streams"] == 1 and batch["slots"] == 4


def test_job_with_more_streams_than_slots_spans_batches():
    lengths = tuple(range(20, 30))  # 10 streams, 4 slots -> 3 batches
    config = ServeConfig(devices=1, pu_slots=4, window_streams=4)
    with FleetServer(config=config) as server:
        result = server.submit("identity", _streams(lengths)).result(
            timeout=30
        )
        server.drain()
        report = validate_serve_report(server.report())
    # Outputs come back in submission stream order even though the
    # packer reordered the streams across batches.
    assert [bytes(out) for out in result.outputs] == _streams(lengths)
    assert report["totals"]["batches"] == 3
    assert len(result.report["batches"]) == 3


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------


def test_cancel_before_scheduling_skips_all_streams():
    config = ServeConfig(devices=1, window_streams=1_000_000)
    with FleetServer(config=config) as server:
        future = server.submit("identity", _streams((64, 64)))
        assert future.cancel()
        assert future.cancelled()
        server.drain()
        with pytest.raises(JobCancelled):
            future.result(timeout=5)
        report = validate_serve_report(server.report())
    assert report["totals"]["statuses"] == {CANCELLED: 1}
    assert report["totals"]["batches"] == 0


def test_cancel_mid_job_keeps_executed_streams():
    # Deterministic mid-run cancellation: schedule a 6-stream job into
    # three 2-slot batches, execute the first batch on this thread (the
    # device worker is never started), cancel, then run the rest.
    config = ServeConfig(devices=1, pu_slots=2,
                         window_streams=1_000_000)
    server = FleetServer(config=config)
    lengths = (100, 90, 80, 10, 9, 8)  # skew order == this order
    future = server.submit("identity", _streams(lengths))
    server.flush()
    device = server.devices[0]
    assert len(device.queue) == 3
    device.execute(device.queue.pop(0))
    assert future.cancel()  # mid-job: one batch already executed
    while device.queue:
        device.execute(device.queue.pop(0))
    with pytest.raises(JobCancelled):
        future.result(timeout=5)
    job = server._jobs[0]
    # The first batch's streams (the two heaviest) stayed executed;
    # the cancelled remainder was skipped, not run.
    assert [bytes(out) for out in job.outputs[:2]] == _streams(lengths)[:2]
    assert job.outputs[2:] == [[], [], [], []]
    assert job.vcycles[2:] == [0, 0, 0, 0]
    report = validate_serve_report(server.report())
    skipped = sum(
        1 for batch in report["batches"] for pu in batch["pus"]
        if pu["bursts"] == 0
    )
    assert skipped == 4
    server.stop()  # workers never started; nothing to join


def test_cancel_after_completion_returns_false():
    with FleetServer(config=ServeConfig(devices=1)) as server:
        future = server.submit("identity", _streams((8,)))
        server.drain()
        future.result(timeout=30)
        assert not future.cancel()
        assert not future.cancelled()


# ---------------------------------------------------------------------------
# Admission control + lifecycle
# ---------------------------------------------------------------------------


def test_overload_sheds_typed_error_and_recovers():
    config = ServeConfig(devices=1, pu_slots=4,
                         window_streams=1_000_000, max_pending_streams=6)
    with FleetServer(config=config) as server:
        held = server.submit("identity", _streams((8,) * 6))
        with pytest.raises(ServerOverloaded) as excinfo:
            server.submit("identity", _streams((8,)))
        error = excinfo.value
        assert error.pending_streams == 6
        assert error.limit == 6
        assert error.job_streams == 1
        server.drain()  # frees the queue
        retry = server.submit("identity", _streams((8,)))
        server.drain()
        assert held.result(timeout=30).report["status"] == DONE
        assert retry.result(timeout=30).report["status"] == DONE


def test_submit_after_stop_raises_server_closed():
    server = FleetServer(config=ServeConfig(devices=1))
    server.start()
    server.stop()
    with pytest.raises(ServerClosed):
        server.submit("identity", _streams((8,)))


def test_unknown_app_lists_registered_names():
    with FleetServer(config=ServeConfig(devices=1)) as server:
        with pytest.raises(UnknownApp, match="identity"):
            server.submit("nope", _streams((8,)))


# ---------------------------------------------------------------------------
# Determinism contract
# ---------------------------------------------------------------------------


def test_same_seed_produces_byte_identical_reports():
    def run():
        report, server = run_demo(jobs=8, seed=77, devices=2,
                                  window_streams=16)
        server.stop()
        return json.dumps(report, indent=2, sort_keys=True)

    first, second = run(), run()
    assert first == second


def test_different_seeds_produce_different_schedules():
    def batches(seed):
        report, server = run_demo(jobs=8, seed=seed, devices=2,
                                  window_streams=16)
        server.stop()
        return report["batches"]

    assert batches(77) != batches(78)
