"""ServeConfig.from_dse: tuned batch sizes wired into the runtime."""

import json

from repro.dse.tuned import TUNED, tuned_serve_slots
from repro.serve import FleetServer, ServeConfig, catalog_apps


def test_from_dse_fills_every_tuned_app():
    config = ServeConfig.from_dse()
    assert set(config.app_slots) == set(TUNED)
    for app, slots in config.app_slots.items():
        assert slots == tuned_serve_slots(app)
        assert slots >= 1


def test_from_dse_restricts_and_passes_overrides():
    config = ServeConfig.from_dse(
        ["bloom_filter"], devices=3, pu_slots=4
    )
    assert set(config.app_slots) == {"bloom_filter"}
    assert config.devices == 3
    assert config.pu_slots == 4


def test_app_slots_take_precedence_over_pu_slots():
    apps = catalog_apps()
    config = ServeConfig.from_dse(pu_slots=8)
    server = FleetServer(apps, config)
    assert server._slots_for("bloom_filter") == \
        tuned_serve_slots("bloom_filter")
    # identity has no tuned entry; the catalog apps all do, so check
    # fallback through a config restricted to one app instead.
    partial = FleetServer(
        apps, ServeConfig.from_dse(["bloom_filter"], pu_slots=8)
    )
    assert partial._slots_for("regex") == 8


def test_as_dict_omits_empty_app_slots():
    assert "app_slots" not in ServeConfig().as_dict()
    tuned = ServeConfig.from_dse().as_dict()
    assert tuned["app_slots"] == dict(sorted(
        (app, tuned_serve_slots(app)) for app in TUNED
    ))


def _run(config):
    streams = [bytes([i % 251]) * (40 + 13 * i) for i in range(24)]
    with FleetServer(catalog_apps(), config) as server:
        server.submit("bloom_filter", streams[:12])
        server.submit("regex", streams[12:])
        server.drain()
        return server.report()


def test_tuned_serve_outputs_stay_bit_identical():
    config = ServeConfig.from_dse(devices=1)
    first = json.dumps(_run(config), sort_keys=True)
    second = json.dumps(_run(config), sort_keys=True)
    assert first == second
    # Tuned batch shapes differ from the default, but outputs (and so
    # the jobs' output bytes recorded in the report) match a default
    # config's run — tuning moves batch boundaries, not results.
    assert "app_slots" in first
