"""The certified cost model (`ServeConfig(cost_model="certified")`):
sound worst-case predictions, calibrated tie-breaking, vcycle-budget
admission, and the byte-identical-when-off report contract."""

import json
import random

import pytest

from repro.apps.json_parser import encode_field_table
from repro.lint.units import APP_UNIT_BUILDERS
from repro.serve import (
    CertifiedCostModel,
    CompiledAppCache,
    CostModel,
    FleetServer,
    ServeConfig,
    ServedApp,
    ServerOverloaded,
)

#: Certified-bound apps used below (finite bounds; json_field has a
#: header, so header-token cost must be covered too).
CERTIFIED_APPS = ("identity", "bloom_filter", "json_field")


def _cache():
    headers = {"json_field": encode_field_table(("id",), max_states=8)}
    return CompiledAppCache({
        name: ServedApp(
            name, APP_UNIT_BUILDERS[name],
            header=headers.get(name, b""),
        )
        for name in CERTIFIED_APPS + ("decision_tree",)
    })


def test_certified_prediction_upper_bounds_measured_vcycles():
    cache = _cache()
    model = CertifiedCostModel(cache)
    rng = random.Random(99)
    for name in CERTIFIED_APPS:
        header = list(cache.entry(name).app.header)
        for _ in range(5):
            stream = bytes(
                rng.randrange(256) for _ in range(rng.randrange(0, 64))
            )
            sim = cache.simulator(name)
            sim.run(header + list(stream))
            measured = sim.trace.total_vcycles
            assert measured <= model.predict(name, stream), (
                name, stream
            )


def test_certified_is_at_least_as_pessimistic_as_calibrated():
    cache = _cache()
    certified = CertifiedCostModel(cache)
    for name in CERTIFIED_APPS:
        stream = bytes(32)
        assert certified.predict(name, stream) >= 1.0
        # The tie-breaker is exactly the calibrated prediction.
        assert certified.tiebreak(name, stream) == \
            CostModel(cache).predict(name, stream)


def test_unbounded_unit_falls_back_to_calibrated():
    cache = _cache()
    certified = CertifiedCostModel(cache)
    # decision_tree's BRAM walk has no certified upper bound.
    assert certified.certified_bounds("decision_tree") is None
    stream = bytes(range(16))
    assert certified.predict("decision_tree", stream) == \
        CostModel(cache).predict("decision_tree", stream)


def test_calibrated_tiebreak_is_zero():
    model = CostModel(_cache())
    assert model.tiebreak("identity", bytes(8)) == 0.0


def test_config_validates_cost_model():
    assert ServeConfig().cost_model == "calibrated"
    assert ServeConfig(cost_model="certified").cost_model == "certified"
    with pytest.raises(ValueError):
        ServeConfig(cost_model="psychic")


def test_config_dict_omits_cost_model_knobs_when_default():
    base = ServeConfig().as_dict()
    assert "cost_model" not in base
    assert "max_pending_vcycles" not in base
    on = ServeConfig(
        cost_model="certified", max_pending_vcycles=10_000
    ).as_dict()
    assert on["cost_model"] == "certified"
    assert on["max_pending_vcycles"] == 10_000
    # Everything else is untouched.
    assert {k: v for k, v in on.items()
            if k not in ("cost_model", "max_pending_vcycles")} == base


def _run_report(config):
    streams = [bytes([0x41]) * n for n in (64, 8, 200, 16, 3, 120)]
    with FleetServer(config=config) as server:
        for stream in streams:
            server.submit("identity", [stream])
        server.drain()
        return server.report()


def test_reports_byte_identical_with_cost_model_off():
    default = _run_report(ServeConfig(devices=1, pu_slots=4))
    explicit = _run_report(
        ServeConfig(devices=1, pu_slots=4, cost_model="calibrated")
    )
    assert json.dumps(default, sort_keys=True) == \
        json.dumps(explicit, sort_keys=True)


def test_certified_server_serves_and_reports():
    report = _run_report(
        ServeConfig(devices=1, pu_slots=4, cost_model="certified")
    )
    assert report["config"]["cost_model"] == "certified"
    # identity's certified bound (1 vcycle/token + 1 cleanup) equals
    # the measured cost, so the makespan matches the calibrated run's.
    calibrated = _run_report(ServeConfig(devices=1, pu_slots=4))
    assert report["totals"]["makespan"] == \
        calibrated["totals"]["makespan"]


def test_vcycle_budget_admission_control():
    config = ServeConfig(
        devices=1, pu_slots=4, window_streams=1_000_000,
        cost_model="certified", max_pending_vcycles=100.0,
    )
    with FleetServer(config=config) as server:
        # identity: certified cost of a 63-byte stream is 64 vcycles.
        server.submit("identity", [bytes(63)])
        with pytest.raises(ServerOverloaded) as exc:
            server.submit("identity", [bytes(63)])
        assert exc.value.unit == "predicted vcycles"
        assert "vcycle budget" in str(exc.value)
        # Scheduling the window frees the budget.
        server.flush()
        server.drain()
        server.submit("identity", [bytes(63)])
        server.drain()
