"""Corpus of shrunk repros and hand-picked seed programs.

Each corpus entry is one JSON file::

    {
      "description": str,       # what this program pins down
      "seed": str | null,       # generator seed, if fuzzer-found
      "stage": str | null,      # failing stage when first saved
      "spec": {...},            # repro.testing.spec program
      "streams": [[int, ...]],  # input streams to replay
    }

``tests/corpus/`` is replayed by the regression suite: every entry must
run through all models in agreement (the bugs they once caught must
stay fixed). :func:`save_repro` is what the engine calls to persist a
newly shrunk disagreement; filenames are derived from the seed so
re-runs overwrite rather than accumulate.
"""

import json
import os

from . import differential


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    for key in ("description", "spec", "streams"):
        if key not in entry:
            raise ValueError(f"corpus file {path!r} is missing {key!r}")
    return entry


def load_dir(directory):
    """Load every ``*.json`` corpus entry under ``directory``, sorted."""
    entries = []
    if not os.path.isdir(directory):
        return entries
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            entries.append((name, load(os.path.join(directory, name))))
    return entries


def save_repro(directory, *, seed, stage, spec, streams, description=None):
    """Persist one shrunk disagreement; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    slug = str(seed).replace(":", "_").replace("/", "_")
    path = os.path.join(directory, f"repro_{slug}.json")
    entry = {
        "description": description
        or f"fuzzer-found disagreement at stage {stage!r} (seed {seed})",
        "seed": str(seed),
        "stage": stage,
        "spec": spec,
        "streams": streams,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=1)
        handle.write("\n")
    return path


def replay(entry, *, rtl=True, verilog=True):
    """Run one corpus entry through the differential checker.

    Returns the interpreter outputs; raises
    :class:`~repro.testing.differential.Mismatch` if the once-fixed bug
    has regressed.
    """
    return differential.check_program(
        entry["spec"], entry["streams"], rtl=rtl, verilog=verilog
    )
