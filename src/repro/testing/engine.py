"""The conformance engine: generate → differentially check → shrink.

Drives the whole loop under a seed and a budget. Program ``index`` under
``seed`` always replays identically (each program draws from its own
``random.Random(f"{seed}:{index}")``, and string seeding is hash-stable
across processes), so any failure the engine reports can be reproduced
with ``python -m repro.testing --seed SEED --only INDEX``.
"""

import time

from ..lang.errors import FleetError
from . import corpus as corpus_mod
from . import differential, shrinker
from . import generator as generator_mod
from . import spec as spec_mod


class Failure:
    """One disagreement: where it failed and the shrunk repro."""

    def __init__(self, index, seed, stage, detail, spec, streams,
                 shrunk_spec=None, shrunk_streams=None, corpus_path=None):
        self.index = index
        self.seed = seed
        self.stage = stage
        self.detail = detail
        self.spec = spec
        self.streams = streams
        self.shrunk_spec = shrunk_spec
        self.shrunk_streams = shrunk_streams
        self.corpus_path = corpus_path

    def summary(self):
        size = (spec_mod.count_statements(self.shrunk_spec or self.spec))
        saved = f" -> {self.corpus_path}" if self.corpus_path else ""
        return (f"program {self.index} (seed {self.seed}): [{self.stage}] "
                f"{self.detail} (shrunk to {size} statements){saved}")


class FuzzReport:
    """Outcome of one engine run."""

    def __init__(self, seed):
        self.seed = seed
        self.programs = 0
        self.streams = 0
        self.tokens = 0
        self.failures = []
        self.generator_errors = []
        self.feature_counts = {}
        self.elapsed = 0.0

    @property
    def ok(self):
        return not self.failures and not self.generator_errors

    def summary(self):
        lines = [
            f"seed {self.seed}: {self.programs} programs, "
            f"{self.streams} streams, {self.tokens} tokens "
            f"in {self.elapsed:.1f}s",
            "features: "
            + ", ".join(
                f"{tag}={count}"
                for tag, count in sorted(self.feature_counts.items())
            ),
        ]
        for index, message in self.generator_errors:
            lines.append(f"GENERATOR BUG at program {index}: {message}")
        for failure in self.failures:
            lines.append("FAIL " + failure.summary())
        if self.ok:
            lines.append("all models agree")
        return "\n".join(lines)


class ConformanceEngine:
    def __init__(self, *, seed=0, max_programs=100, max_seconds=None,
                 rtl=True, verilog=True, corpus_dir=None,
                 source_transform=None, shrink_failures=True,
                 max_failures=5, config=None, log=None,
                 engines=differential.DEFAULT_ENGINES):
        self.seed = seed
        self.engines = tuple(engines)
        self.max_programs = max_programs
        self.max_seconds = max_seconds
        self.rtl = rtl
        self.verilog = verilog
        self.corpus_dir = corpus_dir
        self.source_transform = source_transform
        self.shrink_failures = shrink_failures
        self.max_failures = max_failures
        self.config = config or generator_mod.GenConfig()
        self.log = log or (lambda message: None)

    def rng_for(self, index):
        import random

        return random.Random(f"{self.seed}:{index}")

    def generate(self, index):
        rng = self.rng_for(index)
        spec = generator_mod.generate_spec(
            rng, self.config, name=f"fuzz_{index}"
        )
        streams = generator_mod.generate_streams(rng, spec, self.config)
        return spec, streams

    def run_one(self, index, report=None):
        """Check one program; returns a :class:`Failure` or ``None``."""
        spec, streams = self.generate(index)
        if report is not None:
            report.programs += 1
            report.streams += len(streams)
            report.tokens += sum(len(s) for s in streams)
            for tag in spec_mod.features(spec):
                report.feature_counts[tag] = (
                    report.feature_counts.get(tag, 0) + 1
                )
        try:
            differential.check_program(
                spec, streams, rtl=self.rtl, verilog=self.verilog,
                source_transform=self.source_transform,
                engines=self.engines,
            )
            return None
        except differential.Mismatch as exc:
            return self._handle_failure(index, spec, streams, exc)

    def _handle_failure(self, index, spec, streams, exc):
        failure = Failure(
            index, f"{self.seed}:{index}", exc.stage, exc.detail,
            spec, streams,
        )
        self.log(f"program {index} failed at stage {exc.stage}; shrinking")
        if self.shrink_failures:
            small, small_streams, _, attempts = shrinker.shrink(
                spec, streams, rtl=self.rtl, verilog=self.verilog,
                source_transform=self.source_transform,
                engines=self.engines,
            )
            failure.shrunk_spec = small
            failure.shrunk_streams = small_streams
            self.log(
                f"shrunk program {index} to "
                f"{spec_mod.count_statements(small)} statements "
                f"({attempts} attempts)"
            )
        if self.corpus_dir:
            failure.corpus_path = corpus_mod.save_repro(
                self.corpus_dir,
                seed=failure.seed,
                stage=exc.stage,
                spec=failure.shrunk_spec or spec,
                streams=failure.shrunk_streams or streams,
            )
        return failure

    def run(self):
        """Run the full budgeted loop; returns a :class:`FuzzReport`."""
        report = FuzzReport(self.seed)
        started = time.monotonic()
        for index in range(self.max_programs):
            if (self.max_seconds is not None
                    and time.monotonic() - started >= self.max_seconds):
                self.log(f"stopping at program {index}: time budget spent")
                break
            try:
                failure = self.run_one(index, report)
            except FleetError as exc:
                # The oracle rejected a generated program: the generator
                # broke its own well-formedness contract.
                report.generator_errors.append(
                    (index, f"{type(exc).__name__}: {exc}")
                )
                continue
            if failure is not None:
                report.failures.append(failure)
                if len(report.failures) >= self.max_failures:
                    self.log("stopping: failure limit reached")
                    break
        report.elapsed = time.monotonic() - started
        return report
