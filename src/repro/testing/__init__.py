"""Differential conformance engine for Fleet programs.

Generates random well-formed Fleet units (:mod:`.generator`), runs each
on random streams through every executable model — AST interpreter,
compile-to-Python fast engine, cycle-accurate RTL simulation — plus a
structural check of the emitted Verilog (:mod:`.differential`,
:mod:`.verilog_check`), and shrinks any disagreement to a minimal
statement-level repro (:mod:`.shrinker`) saved to a replayable corpus
(:mod:`.corpus`). ``python -m repro.testing --help`` runs it from the
command line; see ``docs/testing.md``.
"""

from .corpus import load as load_corpus_entry
from .corpus import load_dir as load_corpus_dir
from .corpus import replay as replay_corpus_entry
from .corpus import save_repro
from .differential import Mismatch, check_program
from .engine import ConformanceEngine, Failure, FuzzReport
from .generator import GenConfig, generate_spec, generate_streams
from .shrinker import Shrinker, shrink
from .spec import build_unit, count_statements, features

__all__ = [
    "ConformanceEngine",
    "Failure",
    "FuzzReport",
    "GenConfig",
    "Mismatch",
    "Shrinker",
    "build_unit",
    "check_program",
    "count_statements",
    "features",
    "generate_spec",
    "generate_streams",
    "load_corpus_dir",
    "load_corpus_entry",
    "replay_corpus_entry",
    "save_repro",
    "shrink",
]
