"""Differential execution of one program spec across all Fleet models.

Each spec is built into a :class:`~repro.lang.ast.UnitProgram` and every
input stream is executed on up to three independent implementations of
the unit semantics:

* the AST **interpreter** (`engine="interp"`) — the oracle;
* the **compile-to-Python** fast engine, forced on even when the static
  prover would not elide checks (the whole point is to compare it);
* the cycle-accurate **RTL simulator**, driven through its ready-valid
  interface by :class:`~repro.compiler.testbench.UnitTestbench`, under a
  deterministic rotation of input/output stall patterns.

All models must agree token for token on every stream. In addition the
emitted Verilog is checked structurally (see
:mod:`repro.testing.verilog_check`) and the interpreter's and compiled
engine's final architectural register state must match.

Fault injection for self-tests: ``source_transform`` rewrites the
compiled engine's generated Python source before it is executed, letting
the test suite plant a known bug and verify the pipeline catches and
shrinks it.
"""

from ..compiler.testbench import UnitTestbench
from ..interp.compile import (
    _NW,
    CompiledSimulator,
    CompiledUnit,
    compile_program,
)
from ..interp.simulator import UnitSimulator
from ..lang.errors import FleetError, FleetLoopLimitError, FleetSimulationError
from . import spec as spec_mod
from . import verilog_check

#: Per-token virtual-cycle bound during fuzzing; generated loops are
#: bounded by construction, so this only guards against model bugs.
MAX_VCYCLES = 10_000

#: Deterministic stall patterns, rotated by stream index so every
#: program sees both smooth and stalled handshakes.
STALL_PATTERNS = (
    {},
    {"input_stall": lambda c: c % 7 in (2, 5)},
    {"output_stall": lambda c: c % 5 == 1},
    {"input_stall": lambda c: c % 3 == 1,
     "output_stall": lambda c: c % 4 == 2},
)


class Mismatch(Exception):
    """A model disagreement (or model crash) on a well-formed program."""

    def __init__(self, stage, detail):
        super().__init__(f"[{stage}] {detail}")
        self.stage = stage
        self.detail = detail


def compile_transformed(program, source_transform=None):
    """Compile ``program`` to the fast engine, optionally rewriting the
    generated Python source first (test-only fault injection)."""
    unit = compile_program(program)
    if source_transform is None:
        return unit
    source = source_transform(unit.source)
    namespace = {
        "_NW": _NW,
        "_SimError": FleetSimulationError,
        "_LoopError": FleetLoopLimitError,
    }
    exec(compile(source, "<fleet-injected>", "exec"), namespace)
    return CompiledUnit(
        program, namespace["run_token"], namespace["run_stream"], source
    )


def run_interp(program, stream):
    sim = UnitSimulator(program, engine="interp",
                        max_vcycles_per_token=MAX_VCYCLES)
    outputs = list(sim.run(stream))
    state = {r.name: sim.peek_reg(r.name) for r in program.regs}
    return outputs, state, sim.trace


def run_compiled(program, stream, unit):
    sim = CompiledSimulator(program, unit=unit,
                            max_vcycles_per_token=MAX_VCYCLES)
    outputs = list(sim.run(stream))
    state = {r.name: sim.peek_reg(r.name) for r in program.regs}
    return outputs, state, sim.trace


def check_cost_soundness(program, stage, trace, index):
    """Cost-soundness axis: every measured ``(vcycles, emits)`` record
    of ``trace`` must land inside the program's certified per-token cost
    interval (:class:`~repro.lint.cost.CostFacts`). A violation is a
    miscompile or an analysis-soundness bug — either way a
    :class:`Mismatch`. No-op when the program has no cost facts (lint
    itself rejected it). Unbounded phases skip their upper check inside
    ``check_token``, so `NonterminationRisk` programs still validate
    their lower bounds.

    The batch / certified / cc stages assert their traces equal the
    compiled engine's record-for-record, so checking the interpreter and
    compiled traces here transitively covers every engine that ran.
    """
    from ..lint.certificate import certificate_for

    cost = certificate_for(program).cost
    if cost is None:
        return
    n = len(trace.vcycles_per_token)
    for i in range(n):
        cleanup = trace._cleanup_recorded and i == n - 1
        violations = cost.check_token(
            trace.vcycles_per_token[i], trace.emits_per_token[i],
            cleanup=cleanup,
        )
        if violations:
            raise Mismatch(
                "cost",
                f"stream {index}: {stage} run escapes the certified "
                "cost interval: " + "; ".join(violations),
            )


#: Default engine axis: the oracle plus the fast engine. Add ``"batch"``
#: (``--engines interp,compiled,batch``) to also run every program's
#: streams as one ragged SIMD batch, ``"compiled-certified"`` to compare
#: a fresh certified-specialized lowering, and ``"cc"`` to compare the
#: native C engine (each skips programs outside its gate).
DEFAULT_ENGINES = ("interp", "compiled")


def check_program(spec, streams, *, rtl=True, verilog=True,
                  source_transform=None, engines=DEFAULT_ENGINES):
    """Run every stream through every enabled model.

    ``engines`` selects the software-engine axis: the interpreter oracle
    always runs; ``"compiled"`` enables the per-stream fast-engine
    comparison and ``"batch"`` additionally executes all of the
    program's streams as *one ragged batch* on the SIMD engine (plus an
    empty-stream lane and a batch-of-1 run), comparing outputs,
    per-token virtual-cycle traces, and final register state against the
    compiled engine. ``"compiled-certified"`` builds a *fresh*
    certified-specialized lowering (certificate facts consumed at
    codegen time) and ``"cc"`` a fresh native C kernel, each compared
    stream-for-stream — outputs, virtual-cycle and emit traces, final
    register and BRAM state — against the guarded compiled engine.
    Programs outside an axis's gate (uncertified, batch/cc-unsupported,
    no C toolchain) skip that stage, so every axis is safe on any
    corpus.

    Returns the per-stream interpreter outputs on full agreement; raises
    :class:`Mismatch` on any disagreement or model crash. Raises the
    underlying :class:`~repro.lang.errors.FleetError` unchanged when the
    *oracle* rejects the program — for generated specs that indicates a
    generator bug, for shrinker candidates an invalid reduction.
    """
    program = spec_mod.build_unit(spec)

    compiled = None
    try:
        compiled = compile_transformed(program, source_transform)
    except FleetError as exc:
        raise Mismatch("compile", f"fast engine rejected the program: {exc}")

    testbench = None
    if rtl:
        try:
            testbench = UnitTestbench(program)
        except FleetError as exc:
            raise Mismatch("rtl-compile",
                           f"RTL compiler rejected the program: {exc}")

    if verilog:
        try:
            verilog_check.check_program(program)
        except verilog_check.VerilogCheckError as exc:
            raise Mismatch("verilog", str(exc))

    expected = []
    for index, stream in enumerate(streams):
        want, want_state, want_trace = run_interp(program, stream)
        expected.append(want)
        check_cost_soundness(program, "interp", want_trace, index)

        try:
            got, got_state, got_trace = run_compiled(
                program, stream, compiled
            )
        except FleetError as exc:
            raise Mismatch(
                "compiled",
                f"stream {index}: fast engine crashed: "
                f"{type(exc).__name__}: {exc}",
            )
        if got != want:
            raise Mismatch(
                "compiled",
                f"stream {index}: outputs differ: interp={want} "
                f"compiled={got}",
            )
        if got_state != want_state:
            raise Mismatch(
                "compiled",
                f"stream {index}: final register state differs: "
                f"interp={want_state} compiled={got_state}",
            )
        check_cost_soundness(program, "compiled", got_trace, index)

        if testbench is not None:
            stalls = STALL_PATTERNS[index % len(STALL_PATTERNS)]
            try:
                got_rtl, _cycles = testbench.run(stream, **stalls)
            except FleetError as exc:
                raise Mismatch(
                    "rtl",
                    f"stream {index}: RTL simulation failed: "
                    f"{type(exc).__name__}: {exc}",
                )
            if got_rtl != want:
                raise Mismatch(
                    "rtl",
                    f"stream {index}: outputs differ: interp={want} "
                    f"rtl={got_rtl} (stalls={sorted(stalls)})",
                )

    if "batch" in engines:
        check_batch(program, streams)
    if "compiled-certified" in engines:
        check_specialized(program, streams)
    if "cc" in engines:
        check_cc(program, streams)
    return expected


def check_batch(program, streams):
    """Differential stage for the SIMD batch engine.

    Runs all ``streams`` plus one always-empty lane as a single ragged
    batch and — when a non-empty stream exists — a batch of exactly one
    lane, comparing outputs, per-token virtual-cycle and emit traces,
    and final register state against per-stream
    :class:`~repro.interp.compile.CompiledSimulator` runs (the
    batch-of-1 == compiled property from the batch engine's contract).
    No-op when the program is outside the batch engine's support set.
    """
    from ..interp.batch import batch_support, compile_batch, \
        run_batch_streams

    ok, _reason = batch_support(program)
    if not ok:
        return
    try:
        unit = compile_batch(program)
    except FleetError as exc:
        raise Mismatch(
            "batch-compile",
            f"batch engine rejected the program: {exc}",
        )

    lanes = [list(stream) for stream in streams] + [[]]
    refs = []
    for stream in lanes:
        sim = CompiledSimulator(program, max_vcycles_per_token=MAX_VCYCLES)
        outs = list(sim.run(stream))
        state = {r.name: sim.peek_reg(r.name) for r in program.regs}
        refs.append((outs, sim.trace, state))

    batches = [("batch", lanes)]
    if any(lanes[:-1]):
        batches.append(("batch-of-1", [lanes[0]]))
    for stage, batch_lanes in batches:
        try:
            result = run_batch_streams(
                program, batch_lanes,
                max_vcycles_per_token=MAX_VCYCLES, unit=unit,
            )
        except FleetError as exc:
            raise Mismatch(
                stage,
                f"batch engine crashed: {type(exc).__name__}: {exc}",
            )
        for lane in range(len(batch_lanes)):
            outs, trace, state = refs[lane]
            if result.outputs[lane] != outs:
                raise Mismatch(
                    stage,
                    f"lane {lane}: outputs differ: compiled={outs} "
                    f"batch={result.outputs[lane]}",
                )
            got_trace = result.traces[lane]
            if got_trace.vcycles_per_token != trace.vcycles_per_token:
                raise Mismatch(
                    stage,
                    f"lane {lane}: virtual-cycle traces differ: "
                    f"compiled={trace.vcycles_per_token} "
                    f"batch={got_trace.vcycles_per_token}",
                )
            if got_trace.emits_per_token != trace.emits_per_token:
                raise Mismatch(
                    stage,
                    f"lane {lane}: emit traces differ: "
                    f"compiled={trace.emits_per_token} "
                    f"batch={got_trace.emits_per_token}",
                )
            if result.reg_state(lane) != state:
                raise Mismatch(
                    stage,
                    f"lane {lane}: final register state differs: "
                    f"compiled={state} batch={result.reg_state(lane)}",
                )


def _full_state(sim, program):
    """Final architectural state of a finished simulator: registers,
    plus every BRAM's full contents (vector registers have no peek hook;
    BRAM divergence is where address-guard elisions would show)."""
    state = {r.name: sim.peek_reg(r.name) for r in program.regs}
    for bram in program.brams:
        state[bram.name] = sim.peek_bram(bram.name)
    return state


def _check_against_compiled(program, streams, stage, make_sim):
    """Shared driver for the specializing axes: run every stream on a
    fresh guarded compiled reference and on ``make_sim()``'s simulator,
    comparing outputs, per-token virtual-cycle and emit traces, and
    final register + BRAM state."""
    for index, stream in enumerate(streams):
        ref = CompiledSimulator(program, max_vcycles_per_token=MAX_VCYCLES)
        want = list(ref.run(stream))
        want_state = _full_state(ref, program)
        sim = make_sim()
        try:
            got = list(sim.run(stream))
        except FleetError as exc:
            raise Mismatch(
                stage,
                f"stream {index}: {stage} engine crashed: "
                f"{type(exc).__name__}: {exc}",
            )
        if got != want:
            raise Mismatch(
                stage,
                f"stream {index}: outputs differ: compiled={want} "
                f"{stage}={got}",
            )
        if sim.trace.vcycles_per_token != ref.trace.vcycles_per_token:
            raise Mismatch(
                stage,
                f"stream {index}: virtual-cycle traces differ: "
                f"compiled={ref.trace.vcycles_per_token} "
                f"{stage}={sim.trace.vcycles_per_token}",
            )
        if sim.trace.emits_per_token != ref.trace.emits_per_token:
            raise Mismatch(
                stage,
                f"stream {index}: emit traces differ: "
                f"compiled={ref.trace.emits_per_token} "
                f"{stage}={sim.trace.emits_per_token}",
            )
        got_state = _full_state(sim, program)
        if got_state != want_state:
            raise Mismatch(
                stage,
                f"stream {index}: final state differs: "
                f"compiled={want_state} {stage}={got_state}",
            )


def check_specialized(program, streams):
    """Differential stage for the certified-specialized lowering.

    Builds a **fresh** specialized unit (no program-object cache), so
    the comparison exercises the full certificate → facts → codegen
    pipeline every time, and compares stream-for-stream against the
    guarded compiled engine. No-op for uncertified programs — they have
    no specialized engine by design.
    """
    from ..lint.certificate import certificate_for

    certificate = certificate_for(program)
    if not certificate.ok or certificate.facts is None:
        return
    try:
        unit = compile_program(program, certificate=certificate)
    except FleetError as exc:
        raise Mismatch(
            "specialize-compile",
            f"certified specialization rejected the program: {exc}",
        )
    _check_against_compiled(
        program, streams, "compiled-certified",
        lambda: CompiledSimulator(program, unit=unit,
                                  max_vcycles_per_token=MAX_VCYCLES),
    )


def check_cc(program, streams):
    """Differential stage for the native C engine.

    No-op when the program is outside the cc gate (unsupported shape,
    uncertified) or no C toolchain is available; otherwise builds a
    fresh kernel and compares stream-for-stream against the guarded
    compiled engine.
    """
    from ..interp.cc import CcSimulator, cc_available, cc_support, \
        compile_cc
    from ..lint.certificate import certificate_for

    ok, _reason = cc_support(program)
    if not ok:
        return
    certificate = certificate_for(program)
    if not certificate.ok or certificate.facts is None:
        return
    if not cc_available():
        return
    try:
        unit = compile_cc(program, certificate=certificate)
    except FleetError as exc:
        raise Mismatch(
            "cc-compile",
            f"native cc engine rejected the program: {exc}",
        )
    _check_against_compiled(
        program, streams, "cc",
        lambda: CcSimulator(program, unit=unit,
                            max_vcycles_per_token=MAX_VCYCLES),
    )
