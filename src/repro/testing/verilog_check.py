"""Structural checks on emitted Verilog.

There is no Verilog simulator in the container, so the conformance
engine cannot *execute* the emitted RTL text — the cycle-accurate model
runs on the in-memory IR instead. What it can do is verify that the
emitted text is structurally coherent, which catches the common emitter
bug classes (dangling references, malformed literals, port/width skew,
unbalanced blocks) without an external toolchain:

* the module wraps a ``module``/``endmodule`` pair and its port list
  matches the unit's handshake interface, with the right vector ranges
  for the token ports;
* every identifier referenced anywhere is declared (as a port, ``wire``
  or ``reg``);
* every sized literal ``N'dV`` fits its width (``V < 2**N``);
* ``begin``/``end`` blocks balance;
* emission is deterministic: emitting the same module twice yields the
  same text.
"""

import re

from ..compiler.unit_compiler import compile_unit
from ..rtl.verilog import emit_verilog

KEYWORDS = frozenset(
    "module endmodule input output wire reg assign always posedge "
    "negedge begin end if else".split()
)

_LITERAL = re.compile(r"(\d+)'d(\d+)")
_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")
_PORT_DECL = re.compile(
    r"^(input|output)\s*(?:\[(\d+):(\d+)\])?\s*([A-Za-z_][A-Za-z0-9_$]*)$"
)
_NET_DECL = re.compile(
    r"^\s*(wire|reg)\s*(?:\[(\d+):(\d+)\])?\s*([A-Za-z_][A-Za-z0-9_$]*)"
)


class VerilogCheckError(AssertionError):
    """The emitted Verilog failed a structural invariant."""


def _fail(message):
    raise VerilogCheckError(message)


def check_text(text, *, input_width=None, output_width=None):
    """Structurally validate one emitted Verilog module."""
    stripped = text.strip()
    if not stripped.startswith("module "):
        _fail("emitted text does not start with a module header")
    if not stripped.endswith("endmodule"):
        _fail("emitted text does not end with endmodule")
    if stripped.count("module ") != 1:
        _fail("expected exactly one module per emitted unit")

    header = stripped[: stripped.index(");")]
    module_name = header.split()[1]
    ports = {}
    for raw in header[header.index("(") + 1:].split(","):
        decl = _PORT_DECL.match(" ".join(raw.split()))
        if not decl:
            _fail(f"unparseable port declaration: {raw.strip()!r}")
        _, hi, lo, name = decl.groups()
        ports[name] = (int(hi) - int(lo) + 1) if hi is not None else 1

    expected = {"clock", "input_token", "input_valid", "input_finished",
                "output_ready", "output_valid", "output_token",
                "input_ready", "output_finished"}
    if set(ports) != expected:
        _fail(f"port list mismatch: got {sorted(ports)}")
    if input_width is not None and ports["input_token"] != input_width:
        _fail(f"input_token is {ports['input_token']} bits, "
              f"unit declares {input_width}")
    if output_width is not None and ports["output_token"] != output_width:
        _fail(f"output_token is {ports['output_token']} bits, "
              f"unit declares {output_width}")

    declared = set(ports) | {module_name}
    for line in stripped.splitlines():
        decl = _NET_DECL.match(line)
        if decl:
            declared.add(decl.group(4))

    for width, value in _LITERAL.findall(stripped):
        if int(value) >> int(width):
            _fail(f"literal {width}'d{value} does not fit in "
                  f"{width} bits")

    body = _LITERAL.sub(" ", stripped)
    for ident in set(_IDENT.findall(body)):
        if ident not in KEYWORDS and ident not in declared:
            _fail(f"identifier {ident!r} referenced but never declared")

    opens = len(re.findall(r"\bbegin\b", stripped))
    closes = len(re.findall(r"\bend\b", stripped))
    if opens != closes:
        _fail(f"unbalanced begin/end: {opens} begin vs {closes} end")
    return True


def check_program(program):
    """Compile ``program`` to RTL, emit Verilog, and validate the text.

    Also checks the emitter is deterministic (same module → same text).
    """
    module = compile_unit(program)
    text = emit_verilog(module)
    check_text(text, input_width=program.input_width,
               output_width=program.output_width)
    if emit_verilog(module) != text:
        _fail("emit_verilog is not deterministic for the same module")
    return text
