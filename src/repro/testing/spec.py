"""Serializable program specs for the conformance engine.

A *spec* is a plain JSON-able description of a Fleet processing unit:
declarations plus a statement tree whose expressions are nested lists.
The fuzzer generates specs, the differential runner builds them into
real :class:`~repro.lang.ast.UnitProgram` objects through the ordinary
:class:`~repro.lang.builder.UnitBuilder` API (so the builder and
analysis layers are exercised exactly as a human-written unit would
exercise them), the shrinker edits them structurally, and the corpus
stores them as JSON regression seeds.

Spec format::

    {
      "name": str,
      "input_width": int, "output_width": int,
      "regs":  [[name, width, init], ...],
      "vregs": [[name, elements, width, init], ...],
      "brams": [[name, elements, width], ...],
      "body":  [stmt, ...],
    }

Statements (lists; first element is the tag)::

    ["set", reg_name, value_expr]
    ["vset", vreg_name, index_expr, value_expr]
    ["bw", bram_name, addr_expr, value_expr]
    ["emit", value_expr]
    ["if", [[cond_expr_or_None, [stmt, ...]], ...]]   # None = else arm
    ["while", cond_expr, [stmt, ...]]

Expressions::

    ["const", value, width]
    ["input"] | ["sf"]
    ["reg", name]
    ["vreg", name, index_expr]
    ["bram", name, addr_expr]
    ["bin", op, lhs, rhs] | ["un", op, operand]
    ["mux", cond, then, els]
    ["slice", hi, lo, operand]
    ["cat", [part, ...]]
"""

from .. import ops
from ..lang import ast
from ..lang.builder import Expr, UnitBuilder
from ..lang.errors import FleetSyntaxError

#: Expression tags with no child expressions.
LEAF_TAGS = ("const", "input", "sf", "reg")


def build_unit(spec):
    """Build a validated :class:`~repro.lang.ast.UnitProgram` from a spec.

    Raises the same :class:`~repro.lang.errors.FleetError` subclasses a
    hand-written unit would raise for malformed programs.
    """
    b = UnitBuilder(
        spec["name"],
        input_width=spec["input_width"],
        output_width=spec["output_width"],
    )
    handles = {}
    for name, width, init in spec.get("regs", ()):
        handles[name] = b.reg(name, width=width, init=init)
    for name, elements, width, init in spec.get("vregs", ()):
        handles[name] = b.vreg(name, elements=elements, width=width,
                               init=init)
    for name, elements, width in spec.get("brams", ()):
        handles[name] = b.bram(name, elements=elements, width=width)

    def expr(e):
        tag = e[0]
        if tag == "const":
            return b.const(e[1], e[2])
        if tag == "input":
            return b.input
        if tag == "sf":
            return b.stream_finished
        if tag == "reg":
            return handles[e[1]]
        if tag == "vreg":
            return handles[e[1]][expr(e[2])]
        if tag == "bram":
            return handles[e[1]][expr(e[2])]
        if tag == "bin":
            return Expr(ast.BinOp(e[1], expr(e[2]).node, expr(e[3]).node))
        if tag == "un":
            return Expr(ast.UnOp(e[1], expr(e[2]).node))
        if tag == "mux":
            return b.mux(expr(e[1]), expr(e[2]), expr(e[3]))
        if tag == "slice":
            return expr(e[3]).bits(e[1], e[2])
        if tag == "cat":
            return b.cat(*[expr(p) for p in e[1]])
        raise FleetSyntaxError(f"unknown spec expression tag {tag!r}")

    def stmts(body):
        for s in body:
            tag = s[0]
            if tag == "set":
                handles[s[1]].set(expr(s[2]))
            elif tag == "vset":
                handles[s[1]][expr(s[2])] = expr(s[3])
            elif tag == "bw":
                handles[s[1]][expr(s[2])] = expr(s[3])
            elif tag == "emit":
                b.emit(expr(s[1]))
            elif tag == "if":
                arms = s[1]
                if not arms or arms[0][0] is None:
                    raise FleetSyntaxError("if spec needs a first condition")
                with b.when(expr(arms[0][0])):
                    stmts(arms[0][1])
                for cond, arm_body in arms[1:]:
                    if cond is None:
                        with b.otherwise():
                            stmts(arm_body)
                    else:
                        with b.elif_(expr(cond)):
                            stmts(arm_body)
            elif tag == "while":
                with b.while_(expr(s[1])):
                    stmts(s[2])
            else:
                raise FleetSyntaxError(f"unknown spec statement tag {tag!r}")

    stmts(spec["body"])
    return b.finish()


# ---------------------------------------------------------------------------
# Spec-level width inference (mirrors the AST rules, used by the
# generator and shrinker to stay well-formed without building)
# ---------------------------------------------------------------------------


def decl_widths(spec):
    """Map of state-element name -> value width for a spec."""
    widths = {}
    for name, width, _ in spec.get("regs", ()):
        widths[name] = width
    for name, _, width, _ in spec.get("vregs", ()):
        widths[name] = width
    for name, _, width in spec.get("brams", ()):
        widths[name] = width
    return widths


def expr_width(e, spec, widths=None):
    """Inferred bit width of a spec expression (same rules as the AST)."""
    if widths is None:
        widths = decl_widths(spec)
    tag = e[0]
    if tag == "const":
        return e[2]
    if tag == "input":
        return spec["input_width"]
    if tag == "sf":
        return 1
    if tag in ("reg", "vreg", "bram"):
        return widths[e[1]]
    if tag == "bin":
        return ops.binop_width(
            e[1],
            expr_width(e[2], spec, widths),
            expr_width(e[3], spec, widths),
        )
    if tag == "un":
        return ops.unop_width(e[1], expr_width(e[2], spec, widths))
    if tag == "mux":
        return max(
            expr_width(e[2], spec, widths), expr_width(e[3], spec, widths)
        )
    if tag == "slice":
        return e[1] - e[2] + 1
    if tag == "cat":
        return sum(expr_width(p, spec, widths) for p in e[1])
    raise FleetSyntaxError(f"unknown spec expression tag {tag!r}")


# ---------------------------------------------------------------------------
# Structure helpers shared by the shrinker, corpus, and reports
# ---------------------------------------------------------------------------


def walk_statements(body):
    """Yield every statement in a spec body, recursing into ifs/whiles."""
    for s in body:
        yield s
        if s[0] == "if":
            for _, arm_body in s[1]:
                yield from walk_statements(arm_body)
        elif s[0] == "while":
            yield from walk_statements(s[2])


def count_statements(spec):
    """Total statement count (every leaf, if, and while counts as one)."""
    return sum(1 for _ in walk_statements(spec["body"]))


def statement_exprs(s):
    """The expression trees directly referenced by a spec statement."""
    tag = s[0]
    if tag == "set":
        return (s[2],)
    if tag == "vset":
        return (s[2], s[3])
    if tag == "bw":
        return (s[2], s[3])
    if tag == "emit":
        return (s[1],)
    if tag == "if":
        return tuple(c for c, _ in s[1] if c is not None)
    if tag == "while":
        return (s[1],)
    raise FleetSyntaxError(f"unknown spec statement tag {s[0]!r}")


def walk_exprs(e):
    """Yield ``e`` and every sub-expression beneath it."""
    yield e
    tag = e[0]
    if tag in LEAF_TAGS:
        return
    if tag in ("vreg", "bram"):
        yield from walk_exprs(e[2])
    elif tag == "bin":
        yield from walk_exprs(e[2])
        yield from walk_exprs(e[3])
    elif tag == "un":
        yield from walk_exprs(e[2])
    elif tag == "mux":
        for child in e[1:]:
            yield from walk_exprs(child)
    elif tag == "slice":
        yield from walk_exprs(e[3])
    elif tag == "cat":
        for part in e[1]:
            yield from walk_exprs(part)


def used_names(spec):
    """Names of state elements referenced anywhere in the body."""
    used = set()
    for s in walk_statements(spec["body"]):
        tag = s[0]
        if tag in ("set", "vset", "bw"):
            used.add(s[1])
        for root in statement_exprs(s):
            for e in walk_exprs(root):
                if e[0] in ("reg", "vreg", "bram"):
                    used.add(e[1])
    return used


def features(spec):
    """Coarse feature tags for coverage accounting and corpus metadata."""
    tags = set()
    statements = list(walk_statements(spec["body"]))
    if any(s[0] == "while" for s in statements):
        tags.add("while")
    if any(s[0] == "if" for s in statements):
        tags.add("if")
    if any(s[0] == "bw" for s in statements):
        tags.add("bram-write")
    if any(s[0] == "vset" for s in statements):
        tags.add("vreg-write")
    if sum(1 for s in statements if s[0] == "emit") > 1:
        tags.add("multi-emit")
    exprs = [
        e
        for s in statements
        for root in statement_exprs(s)
        for e in walk_exprs(root)
    ]
    if any(e[0] == "bram" for e in exprs):
        tags.add("bram-read")
    if any(e[0] == "vreg" for e in exprs):
        tags.add("vreg-read")
    if any(e[0] == "sf" for e in exprs):
        tags.add("stream-finished")
    widths = decl_widths(spec)
    if any(w >= 32 for w in widths.values()):
        tags.add("wide")
    if any(e[0] == "bin" and e[1] == "mul" for e in exprs):
        tags.add("mul")
    return tags
