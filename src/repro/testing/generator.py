"""Typed random generation of well-formed Fleet programs.

The generator produces :mod:`repro.testing.spec` program specs that are
valid *by construction* — every generated program builds, passes static
analysis, and can never trip the dynamic restriction checks, so any
model disagreement the differential runner sees is a genuine bug in one
of the models, not a malformed input. The invariants enforced:

* **Width rules** — expressions are built bottom-up with the same width
  inference the AST applies, constants always fit their widths, dynamic
  shift amounts are narrow, and inferred widths are capped well below
  ``MAX_WIDTH``.
* **Port/emit/assign budgets** — statements that could co-fire in one
  virtual cycle draw from a shared per-resource budget (one read and one
  write per BRAM, one emit, one assignment per register, one
  vector-register assignment). Mutually exclusive ``if`` arms each get a
  copy of the budget (the mutual-exclusion argument the static prover
  makes); loop-body and post-loop statements live in separate phases
  because they can never share a virtual cycle.
* **BRAM discipline** — reads appear only in value positions (never in
  conditions or addresses), which rules out dependent reads; element
  counts are powers of two, so every truncated address is in range and
  the compile-to-Python fast path always applies.
* **Termination** — every ``while`` owns a dedicated loop-counter
  register that its body unconditionally increments and whose bound is
  conjoined into the loop condition, so loops run a bounded number of
  virtual cycles per token.

Generation is deterministic given a :class:`random.Random` instance.
"""

from . import spec as spec_mod

#: Inferred expression widths above this are rejected during generation
#: (MAX_WIDTH is the hard simulator bound; staying far below keeps the
#: generated RTL small while still covering multi-word arithmetic).
WIDTH_CAP = 256


class GenConfig:
    """Tunable knobs for program and stream generation."""

    def __init__(self, *,
                 max_regs=3,
                 max_brams=2,
                 max_block_stmts=4,
                 max_expr_depth=3,
                 max_streams=3,
                 max_stream_len=24,
                 input_widths=(1, 2, 4, 8, 8, 8, 12, 16),
                 output_widths=(1, 4, 8, 8, 8, 12, 16, 24),
                 reg_widths=(1, 2, 3, 4, 6, 8, 12, 16, 48, 64),
                 mem_elements=(2, 4, 8, 16),
                 mem_widths=(2, 4, 8, 12),
                 p_while=0.55,
                 p_if=0.45,
                 p_vreg=0.4,
                 p_bram=0.65):
        self.max_regs = max_regs
        self.max_brams = max_brams
        self.max_block_stmts = max_block_stmts
        self.max_expr_depth = max_expr_depth
        self.max_streams = max_streams
        self.max_stream_len = max_stream_len
        self.input_widths = input_widths
        self.output_widths = output_widths
        self.reg_widths = reg_widths
        self.mem_elements = mem_elements
        self.mem_widths = mem_widths
        self.p_while = p_while
        self.p_if = p_if
        self.p_vreg = p_vreg
        self.p_bram = p_bram


class _Gen:
    def __init__(self, rng, config):
        self.rng = rng
        self.config = config
        self.regs = []    # [name, width, init]
        self.vregs = []   # [name, elements, width, init]
        self.brams = []   # [name, elements, width]
        self.widths = {}  # name -> value width
        self.index_widths = {}  # vreg/bram name -> index/addr width
        self.elements = {}      # vreg/bram name -> element count
        #: (kind, name, phase) -> remaining uses; missing means 1.
        self.budget = {}
        self.loop_count = 0

    # -- budget ------------------------------------------------------------
    def _take(self, key):
        remaining = self.budget.get(key, 1)
        if remaining <= 0:
            return False
        self.budget[key] = remaining - 1
        return True

    def _peek(self, key):
        return self.budget.get(key, 1) > 0

    # -- declarations ------------------------------------------------------
    def declare(self):
        rng, config = self.rng, self.config
        self.input_width = rng.choice(config.input_widths)
        self.output_width = rng.choice(config.output_widths)
        for i in range(rng.randint(1, config.max_regs)):
            width = rng.choice(config.reg_widths)
            init = rng.randrange(1 << min(width, 16))
            self._add_reg([f"r{i}", width, init])
        if rng.random() < config.p_vreg:
            elements = rng.choice(config.mem_elements)
            width = rng.choice(config.mem_widths)
            init = rng.randrange(1 << width)
            self.vregs.append(["v0", elements, width, init])
            self.widths["v0"] = width
            self.elements["v0"] = elements
            self.index_widths["v0"] = max(1, (elements - 1).bit_length())
        n_brams = 0
        while n_brams < config.max_brams and rng.random() < config.p_bram:
            name = f"m{n_brams}"
            elements = rng.choice(config.mem_elements)
            width = rng.choice(config.mem_widths)
            self.brams.append([name, elements, width])
            self.widths[name] = width
            self.elements[name] = elements
            self.index_widths[name] = max(1, (elements - 1).bit_length())
            n_brams += 1

    def _add_reg(self, decl):
        self.regs.append(decl)
        self.widths[decl[0]] = decl[1]

    # -- expressions -------------------------------------------------------
    def expr(self, depth, phase, *, width_hint=8, allow_read=True):
        """A value expression; consumes BRAM read budget when it reads."""
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            return self._leaf(phase, width_hint, allow_read)
        pick = rng.random()
        if pick < 0.55:
            op = rng.choice(
                ("add", "add", "sub", "sub", "and", "or", "xor", "mul",
                 "shr", "shl")
            )
            lhs = self.expr(depth - 1, phase, width_hint=width_hint,
                            allow_read=allow_read)
            if op == "shl":
                # Dynamic left shifts grow by the largest representable
                # amount; keep the shift operand to two bits.
                rhs = ["const", rng.randrange(4), 2]
            else:
                rhs = self.expr(depth - 1, phase, width_hint=width_hint,
                                allow_read=allow_read)
            candidate = ["bin", op, lhs, rhs]
        elif pick < 0.72:
            candidate = [
                "mux",
                self.cond(depth - 1, phase),
                self.expr(depth - 1, phase, width_hint=width_hint,
                          allow_read=allow_read),
                self.expr(depth - 1, phase, width_hint=width_hint,
                          allow_read=allow_read),
            ]
        elif pick < 0.82:
            operand = self.expr(depth - 1, phase, width_hint=width_hint,
                                allow_read=allow_read)
            width = self._width(operand)
            hi = rng.randrange(width)
            lo = rng.randrange(hi + 1)
            candidate = ["slice", hi, lo, operand]
        elif pick < 0.92:
            candidate = [
                "cat",
                [
                    self.expr(depth - 1, phase, width_hint=width_hint,
                              allow_read=allow_read),
                    self.expr(depth - 1, phase, width_hint=width_hint,
                              allow_read=allow_read),
                ],
            ]
        else:
            op = rng.choice(("not", "lnot", "orr", "andr", "xorr"))
            candidate = [
                "un", op,
                self.expr(depth - 1, phase, width_hint=width_hint,
                          allow_read=allow_read),
            ]
        if self._width(candidate) > WIDTH_CAP:
            return self._leaf(phase, width_hint, allow_read=False)
        return candidate

    def _leaf(self, phase, width_hint, allow_read):
        rng = self.rng
        choices = ["const", "input", "const"]
        choices += ["reg"] * min(len(self.regs), 3)
        if self.vregs:
            choices.append("vreg")
        if allow_read:
            for name, _, _ in self.brams:
                if self._peek(("bram_r", name, phase)):
                    choices.append("bram:" + name)
        pick = rng.choice(choices)
        if pick == "const":
            width = rng.randint(1, max(1, min(width_hint, 16)))
            return ["const", rng.randrange(1 << width), width]
        if pick == "input":
            return ["input"]
        if pick == "reg":
            return ["reg", rng.choice(self.regs)[0]]
        if pick == "vreg":
            name = self.vregs[0][0]
            return ["vreg", name, self._addr_expr(name, phase)]
        name = pick.split(":", 1)[1]
        self._take(("bram_r", name, phase))
        return ["bram", name, self._addr_expr(name, phase)]

    def _addr_expr(self, name, phase):
        """An index/address expression: read-free, occasionally compound.

        Any width is fine — all models truncate addresses to the index
        width, and power-of-two element counts keep them in range.
        """
        width = self.index_widths[name]
        if self.rng.random() < 0.5:
            return ["const", self.rng.randrange(self.elements[name]), width]
        return self.expr(1, phase, width_hint=width, allow_read=False)

    def cond(self, depth, phase):
        """A 1-bit expression, always read-free (reads in conditions would
        gate other reads and trip the dependent-read rule)."""
        rng = self.rng
        if depth <= 0 or rng.random() < 0.45:
            pick = rng.random()
            if pick < 0.6:
                op = rng.choice(("eq", "ne", "lt", "le", "gt", "ge"))
                lhs = self.expr(1, phase, allow_read=False)
                width = min(self._width(lhs), 16)
                rhs = ["const", rng.randrange(1 << width), width]
                return ["bin", op, lhs, rhs]
            if pick < 0.75:
                operand = self.expr(1, phase, allow_read=False)
                return ["un", rng.choice(("orr", "lnot", "andr", "xorr")),
                        operand]
            if pick < 0.85:
                return ["sf"]
            operand = self.expr(1, phase, allow_read=False)
            width = self._width(operand)
            bit = rng.randrange(width)
            return ["slice", bit, bit, operand]
        op = rng.choice(("and", "or", "xor"))
        return ["bin", op, self.cond(depth - 1, phase),
                self.cond(depth - 1, phase)]

    def _width(self, e):
        return spec_mod.expr_width(e, {"input_width": self.input_width},
                                   self.widths)

    # -- statements --------------------------------------------------------
    def block(self, depth, phase, allow_while):
        rng = self.rng
        body = []
        for _ in range(rng.randint(1, self.config.max_block_stmts)):
            stmt = self.statement(depth, phase, allow_while)
            if stmt is None:
                break
            body.extend(stmt if isinstance(stmt, _Multi) else [stmt])
        return body

    def statement(self, depth, phase, allow_while):
        rng, config = self.rng, self.config
        choices = []
        if self._peek(("emit", "<out>", phase)):
            choices += ["emit", "emit"]
        writable = [
            decl[0] for decl in self.regs
            if self._peek(("reg", decl[0], phase))
        ]
        if writable:
            choices += ["set", "set"]
        if self.vregs and self._peek(("vreg", self.vregs[0][0], phase)):
            choices.append("vset")
        bram_writable = [
            name for name, _, _ in self.brams
            if self._peek(("bram_w", name, phase))
        ]
        if bram_writable:
            choices += ["bw", "bw"]
        if depth < 2 and rng.random() < config.p_if:
            choices.append("if")
        if (allow_while and phase == "done" and depth < 2
                and rng.random() < config.p_while):
            choices.append("while")
        if not choices:
            return None
        pick = rng.choice(choices)
        if pick == "emit":
            self._take(("emit", "<out>", phase))
            return ["emit", self.expr(config.max_expr_depth, phase,
                                      width_hint=self.output_width)]
        if pick == "set":
            name = rng.choice(writable)
            self._take(("reg", name, phase))
            return ["set", name,
                    self.expr(config.max_expr_depth, phase,
                              width_hint=self.widths[name])]
        if pick == "vset":
            name = self.vregs[0][0]
            self._take(("vreg", name, phase))
            return ["vset", name, self._addr_expr(name, phase),
                    self.expr(2, phase, width_hint=self.widths[name])]
        if pick == "bw":
            name = rng.choice(bram_writable)
            self._take(("bram_w", name, phase))
            return ["bw", name, self._addr_expr(name, phase),
                    self.expr(2, phase, width_hint=self.widths[name])]
        if pick == "if":
            return self._if_stmt(depth, phase, allow_while)
        return self._while_stmt(depth, phase)

    def _if_stmt(self, depth, phase, allow_while):
        rng = self.rng
        n_arms = rng.randint(1, 3)
        has_else = n_arms > 1 and rng.random() < 0.5
        snapshot = dict(self.budget)
        arms = []
        remainders = []
        for arm in range(n_arms):
            self.budget = dict(snapshot)
            cond = None if (has_else and arm == n_arms - 1) else \
                self.cond(2, phase)
            arm_body = self.block(depth + 1, phase, allow_while)
            arms.append([cond, arm_body])
            remainders.append(self.budget)
        # Subsequent siblings co-fire with whichever arm is taken, so the
        # surviving budget is the pointwise minimum across arms.
        merged = dict(snapshot)
        for remainder in remainders:
            for key in set(remainder) | set(merged):
                merged[key] = min(
                    merged.get(key, snapshot.get(key, 1)),
                    remainder.get(key, snapshot.get(key, 1)),
                )
        self.budget = merged
        return ["if", arms]

    def _while_stmt(self, depth, phase):
        rng = self.rng
        width = rng.randint(2, 4)
        bound = rng.randint(1, (1 << width) - 1)
        name = f"lc{self.loop_count}"
        self.loop_count += 1
        self._add_reg([name, width, 0])
        # The increment owns the counter's loop-phase assignment slot.
        self._take(("reg", name, "loop"))
        cond = ["bin", "lt", ["reg", name], ["const", bound, width]]
        if rng.random() < 0.35:
            cond = ["bin", "and", cond, self.cond(1, "loop")]
        body = [
            ["set", name,
             ["bin", "add", ["reg", name], ["const", 1, 1]]],
        ]
        body.extend(self.block(depth + 1, "loop", allow_while=False))
        result = [["while", cond, body]]
        # Optionally rearm the loop for the next token.
        if self._peek(("reg", name, "done")) and rng.random() < 0.6:
            self._take(("reg", name, "done"))
            result.append(["set", name, ["const", 0, 1]])
        return _Multi(result)


class _Multi(list):
    """Marker: a statement choice that expands to several statements."""


def generate_spec(rng, config=None, *, name="fuzz"):
    """Generate one well-formed program spec from ``rng``."""
    config = config or GenConfig()
    gen = _Gen(rng, config)
    gen.declare()
    body = gen.block(0, "done", allow_while=True)
    if not any(s[0] == "emit" for s in spec_mod.walk_statements(body)):
        # Keep every program observable: ensure at least one emit. The
        # done-phase emit budget is necessarily unconsumed (no emit was
        # generated), and expr() still honours the remaining read budget.
        body.append(["emit", gen.expr(2, "done",
                                      width_hint=gen.output_width)])
    return {
        "name": name,
        "input_width": gen.input_width,
        "output_width": gen.output_width,
        "regs": gen.regs,
        "vregs": gen.vregs,
        "brams": gen.brams,
        "body": body,
    }


def generate_streams(rng, spec, config=None):
    """Generate input streams for a spec: mixes empty, single-token, and
    boundary-valued streams with uniform random ones."""
    config = config or GenConfig()
    top = (1 << spec["input_width"]) - 1
    streams = []
    for _ in range(rng.randint(1, config.max_streams)):
        pick = rng.random()
        if pick < 0.08:
            length = 0
        elif pick < 0.2:
            length = 1
        else:
            length = rng.randint(2, config.max_stream_len)
        stream = []
        for _ in range(length):
            if rng.random() < 0.2:
                stream.append(rng.choice((0, top)))
            else:
                stream.append(rng.randrange(top + 1))
        streams.append(stream)
    return streams
