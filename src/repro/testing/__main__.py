"""Command-line entry point: ``python -m repro.testing``.

Examples::

    python -m repro.testing --seed 0 --max-programs 200
    python -m repro.testing --seed nightly --max-seconds 600 \
        --corpus-dir tests/corpus
    python -m repro.testing --seed 0 --only 49   # replay one program

Exit status is 0 when every checked program agrees across all models,
1 on any disagreement or generator bug.
"""

import argparse
import json
import sys

from .engine import ConformanceEngine


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Differential conformance fuzzing of Fleet programs",
    )
    parser.add_argument("--seed", default="0",
                        help="base seed; program i draws from seed:i")
    parser.add_argument("--max-programs", type=int, default=100,
                        help="number of programs to generate and check")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="stop starting new programs after this long")
    parser.add_argument("--engines", default="interp,compiled",
                        help="comma-separated software-engine axis "
                             "(interp,compiled,compiled-certified,"
                             "batch,cc); batch runs each program's "
                             "streams as one ragged SIMD batch, "
                             "compiled-certified compares a fresh "
                             "certified-specialized lowering, cc the "
                             "native C engine")
    parser.add_argument("--no-rtl", action="store_true",
                        help="skip the cycle-accurate RTL model")
    parser.add_argument("--no-verilog", action="store_true",
                        help="skip the Verilog emission checks")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report failures without shrinking them")
    parser.add_argument("--corpus-dir", default=None,
                        help="save shrunk repros as JSON under this dir")
    parser.add_argument("--max-failures", type=int, default=5,
                        help="stop after this many distinct failures")
    parser.add_argument("--only", type=int, default=None, metavar="INDEX",
                        help="check a single program index and print it")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress logging")
    options = parser.parse_args(argv)

    engines = tuple(
        name.strip() for name in options.engines.split(",") if name.strip()
    )
    known = {"interp", "compiled", "compiled-certified", "batch", "cc"}
    unknown = [name for name in engines if name not in known]
    if unknown:
        parser.error(
            f"unknown engine(s) {', '.join(unknown)}: "
            f"choose from {', '.join(sorted(known))}"
        )

    engine = ConformanceEngine(
        seed=options.seed,
        engines=engines,
        max_programs=options.max_programs,
        max_seconds=options.max_seconds,
        rtl=not options.no_rtl,
        verilog=not options.no_verilog,
        corpus_dir=options.corpus_dir,
        shrink_failures=not options.no_shrink,
        max_failures=options.max_failures,
        log=(lambda message: None) if options.quiet
        else (lambda message: print(message, file=sys.stderr)),
    )

    if options.only is not None:
        spec, streams = engine.generate(options.only)
        print(json.dumps({"spec": spec, "streams": streams}, indent=1))
        failure = engine.run_one(options.only)
        if failure is None:
            print(f"program {options.only}: all models agree")
            return 0
        print("FAIL " + failure.summary())
        if failure.shrunk_spec is not None:
            print(json.dumps(
                {"spec": failure.shrunk_spec,
                 "streams": failure.shrunk_streams},
                indent=1,
            ))
        return 1

    report = engine.run()
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
