"""Automatic reduction of disagreeing programs to minimal repros.

Greedy fixpoint over a pass list, in cost order: drop whole streams,
delta-debug token runs, delete statements, unwrap control structure
(``if`` → taken-arm body, ``while`` → body), simplify expressions by
replacing a node with one of its own sub-expressions or with a zero
constant, drop unreferenced declarations, and zero remaining tokens.
A candidate is kept only if the *same-stage* failure still reproduces;
candidates the oracle rejects (the edit made the program ill-formed)
are simply discarded. Every accepted candidate strictly shrinks the
``(statements, tokens, expression-nodes)`` cost, so the loop
terminates.
"""

import copy

from ..lang.errors import FleetError
from . import differential
from . import spec as spec_mod


def _cost(spec, streams):
    nodes = sum(
        1
        for s in spec_mod.walk_statements(spec["body"])
        for root in spec_mod.statement_exprs(s)
        for _ in spec_mod.walk_exprs(root)
    )
    decls = (len(spec.get("regs", ())) + len(spec.get("vregs", ()))
             + len(spec.get("brams", ())))
    return (
        spec_mod.count_statements(spec),
        sum(len(s) for s in streams),
        len(streams),
        nodes,
        decls,
        sum(sum(s) for s in streams),
    )


class Shrinker:
    """Reduce a failing ``(spec, streams)`` pair while preserving the
    failure stage reported by the differential runner."""

    def __init__(self, spec, streams, *, rtl=True, verilog=True,
                 source_transform=None,
                 engines=differential.DEFAULT_ENGINES):
        self.rtl = rtl
        self.verilog = verilog
        self.source_transform = source_transform
        self.engines = tuple(engines)
        self.stage = self._failure_stage(spec, streams)
        if self.stage is None:
            raise ValueError("program does not fail; nothing to shrink")
        self.spec = spec
        self.streams = streams
        self.attempts = 0

    def _failure_stage(self, spec, streams):
        try:
            differential.check_program(
                spec, streams, rtl=self.rtl, verilog=self.verilog,
                source_transform=self.source_transform,
                engines=self.engines,
            )
        except differential.Mismatch as exc:
            return exc.stage
        except FleetError:
            return None  # ill-formed candidate, not a model disagreement
        return None

    def _try(self, spec, streams):
        """Adopt the candidate if it still fails at the same stage and is
        strictly cheaper."""
        self.attempts += 1
        if _cost(spec, streams) >= _cost(self.spec, self.streams):
            return False
        if self._failure_stage(spec, streams) != self.stage:
            return False
        self.spec = spec
        self.streams = streams
        return True

    def run(self):
        """Shrink to a local minimum; returns ``(spec, streams)``."""
        passes = (
            self._drop_streams,
            self._ddmin_tokens,
            self._drop_statements,
            self._unwrap_control,
            self._simplify_exprs,
            self._drop_decls,
            self._zero_tokens,
        )
        changed = True
        while changed:
            changed = False
            for shrink_pass in passes:
                while shrink_pass():
                    changed = True
        return self.spec, self.streams

    # -- stream passes -----------------------------------------------------
    def _drop_streams(self):
        for i in range(len(self.streams)):
            streams = self.streams[:i] + self.streams[i + 1:]
            if streams and self._try(self.spec, streams):
                return True
        return False

    def _ddmin_tokens(self):
        for i, stream in enumerate(self.streams):
            chunk = max(1, len(stream) // 2)
            while chunk >= 1:
                start = 0
                while start < len(self.streams[i]):
                    stream = self.streams[i]
                    candidate = stream[:start] + stream[start + chunk:]
                    streams = list(self.streams)
                    streams[i] = candidate
                    if not self._try(self.spec, streams):
                        start += chunk
                chunk //= 2
        return False  # loop above runs to fixpoint internally

    def _zero_tokens(self):
        for i, stream in enumerate(self.streams):
            for j, token in enumerate(stream):
                if token == 0:
                    continue
                streams = copy.deepcopy(self.streams)
                streams[i][j] = 0
                if self._try(self.spec, streams):
                    return True
        return False

    # -- statement passes --------------------------------------------------
    def _blocks(self, spec):
        """Yield every mutable statement list in a spec body (the body
        itself, each if arm, each while body)."""
        def visit(body):
            yield body
            for s in body:
                if s[0] == "if":
                    for _, arm_body in s[1]:
                        yield from visit(arm_body)
                elif s[0] == "while":
                    yield from visit(s[2])
        yield from visit(spec["body"])

    def _drop_statements(self):
        for block_index, block in enumerate(self._blocks(self.spec)):
            for i in range(len(block)):
                spec = copy.deepcopy(self.spec)
                target = list(self._blocks(spec))[block_index]
                del target[i]
                if self._try(spec, self.streams):
                    return True
        return False

    def _unwrap_control(self):
        for block_index, block in enumerate(self._blocks(self.spec)):
            for i, s in enumerate(block):
                replacements = []
                if s[0] == "if":
                    # Replace the if with any single arm's body, and also
                    # try dropping one arm at a time.
                    for _, arm_body in s[1]:
                        replacements.append(("splice", arm_body))
                    if len(s[1]) > 1:
                        for drop in range(len(s[1])):
                            arms = s[1][:drop] + s[1][drop + 1:]
                            if arms and arms[0][0] is not None:
                                replacements.append(("stmt", ["if", arms]))
                elif s[0] == "while":
                    replacements.append(("splice", s[2]))
                for kind, replacement in replacements:
                    spec = copy.deepcopy(self.spec)
                    target = list(self._blocks(spec))[block_index]
                    if kind == "splice":
                        target[i:i + 1] = copy.deepcopy(replacement)
                    else:
                        target[i] = copy.deepcopy(replacement)
                    if self._try(spec, self.streams):
                        return True
        return False

    # -- expression passes -------------------------------------------------
    def _expr_slots(self, spec):
        """Yield ``(container, key)`` for every expression slot."""
        def expr_slots(container, key):
            e = container[key]
            yield container, key
            tag = e[0]
            if tag in spec_mod.LEAF_TAGS:
                return
            if tag in ("vreg", "bram", "un"):
                yield from expr_slots(e, 2)
            elif tag == "bin":
                yield from expr_slots(e, 2)
                yield from expr_slots(e, 3)
            elif tag == "mux":
                for k in (1, 2, 3):
                    yield from expr_slots(e, k)
            elif tag == "slice":
                yield from expr_slots(e, 3)
            elif tag == "cat":
                for k in range(len(e[1])):
                    yield from expr_slots(e[1], k)

        for s in spec_mod.walk_statements(spec["body"]):
            tag = s[0]
            if tag == "set":
                yield from expr_slots(s, 2)
            elif tag in ("vset", "bw"):
                yield from expr_slots(s, 2)
                yield from expr_slots(s, 3)
            elif tag == "emit":
                yield from expr_slots(s, 1)
            elif tag == "if":
                for arm in s[1]:
                    if arm[0] is not None:
                        yield from expr_slots(arm, 0)
            elif tag == "while":
                yield from expr_slots(s, 1)

    def _simplify_exprs(self):
        n_slots = sum(1 for _ in self._expr_slots(self.spec))
        for slot_index in range(n_slots):
            spec = copy.deepcopy(self.spec)
            slots = list(self._expr_slots(spec))
            if slot_index >= len(slots):
                break
            container, key = slots[slot_index]
            original = container[key]
            if original[0] == "const":
                continue
            candidates = [["const", 0, 1]]
            candidates += [
                copy.deepcopy(sub)
                for sub in spec_mod.walk_exprs(original)
                if sub is not original
            ]
            for candidate in candidates:
                container[key] = candidate
                if self._try(copy.deepcopy(spec), self.streams):
                    return True
            container[key] = original
        return False

    # -- declaration passes ------------------------------------------------
    def _drop_decls(self):
        used = spec_mod.used_names(self.spec)
        for kind in ("regs", "vregs", "brams"):
            for i, decl in enumerate(self.spec.get(kind, ())):
                if decl[0] in used:
                    continue
                spec = copy.deepcopy(self.spec)
                del spec[kind][i]
                if self._try(spec, self.streams):
                    return True
        return False


def shrink(spec, streams, *, rtl=True, verilog=True, source_transform=None,
           engines=differential.DEFAULT_ENGINES):
    """Convenience wrapper; returns ``(spec, streams, stage, attempts)``."""
    shrinker = Shrinker(spec, streams, rtl=rtl, verilog=verilog,
                        source_transform=source_transform, engines=engines)
    spec, streams = shrinker.run()
    return spec, streams, shrinker.stage, shrinker.attempts
