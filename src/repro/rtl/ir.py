"""A small synthesizable RTL intermediate representation.

This is the substrate the Fleet compiler targets — the Python analogue of
the Chisel RTL the paper's compiler emits. A :class:`Module` contains:

* input and output ports,
* named combinational wires (single assignment, no cycles),
* registers with an init value, a next-value expression, and an optional
  write-enable,
* BRAM primitives with one read port and one write port and **one cycle of
  read latency** (read-during-write to the same address returns the old
  value), matching the technology BRAMs the paper describes.

Everything is an unsigned bit vector. Width inference reuses the shared
operator tables in :mod:`repro.ops`, and :mod:`repro.rtl.simulator` executes
modules cycle by cycle. :mod:`repro.rtl.verilog` pretty-prints a module as
synthesizable Verilog.
"""

from ..lang.errors import FleetSyntaxError, FleetWidthError
from ..lang.types import check_width, fits
from ..ops import binop_width, unop_width


class Value:
    """Base class for IR expressions; provides operator sugar.

    Comparison helpers are methods (``a.eq(b)``) rather than rich-comparison
    overloads so that IR objects keep default identity semantics in dicts
    and sets.
    """

    __slots__ = ("width",)

    def children(self):
        return ()

    # -- arithmetic / bitwise sugar -----------------------------------------
    def __add__(self, other):
        return BinOp("add", self, wrap(other))

    def __sub__(self, other):
        return BinOp("sub", self, wrap(other))

    def __mul__(self, other):
        return BinOp("mul", self, wrap(other))

    def __and__(self, other):
        return BinOp("and", self, wrap(other))

    def __or__(self, other):
        return BinOp("or", self, wrap(other))

    def __xor__(self, other):
        return BinOp("xor", self, wrap(other))

    def __invert__(self):
        return UnOp("not", self)

    def __lshift__(self, other):
        return BinOp("shl", self, wrap(other))

    def __rshift__(self, other):
        return BinOp("shr", self, wrap(other))

    # -- comparisons ---------------------------------------------------------
    def eq(self, other):
        return BinOp("eq", self, wrap(other))

    def ne(self, other):
        return BinOp("ne", self, wrap(other))

    def lt(self, other):
        return BinOp("lt", self, wrap(other))

    def le(self, other):
        return BinOp("le", self, wrap(other))

    def gt(self, other):
        return BinOp("gt", self, wrap(other))

    def ge(self, other):
        return BinOp("ge", self, wrap(other))

    # -- reductions / logic ----------------------------------------------------
    def lnot(self):
        """1 iff zero."""
        return UnOp("lnot", self)

    def orr(self):
        """OR-reduce."""
        return UnOp("orr", self)

    def andr(self):
        """AND-reduce."""
        return UnOp("andr", self)

    def bits(self, hi, lo):
        return Slice(self, hi, lo)

    def bit(self, i):
        return Slice(self, i, i)


def wrap(value):
    """Coerce Python ints to :class:`Const`."""
    if isinstance(value, Value):
        return value
    if isinstance(value, bool):
        return Const(int(value), 1)
    if isinstance(value, int):
        return Const(value)
    raise FleetSyntaxError(f"not an RTL value: {value!r}")


class Const(Value):
    __slots__ = ("value",)

    def __init__(self, value, width=None):
        if value < 0:
            raise FleetWidthError(f"RTL constants are unsigned, got {value}")
        if width is None:
            width = max(1, value.bit_length())
        if not fits(value, width):
            raise FleetWidthError(f"{value} does not fit in {width} bits")
        self.value = value
        self.width = check_width(width)

    def __repr__(self):
        return f"Const({self.value}, w={self.width})"


#: Signal kinds.
INPUT, WIRE, REG, BRAM_RD = "input", "wire", "reg", "bram_rd"


class Signal(Value):
    """A named net: module input, wire, register output, or BRAM read data.

    ``index`` is the slot in the simulator's value table, assigned by the
    owning module.
    """

    __slots__ = ("name", "kind", "index")

    def __init__(self, name, width, kind, index):
        self.name = name
        self.width = check_width(width)
        self.kind = kind
        self.index = index

    def __repr__(self):
        return f"Signal({self.name}:{self.kind}, w={self.width})"


class BinOp(Value):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op, lhs, rhs):
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.width = binop_width(op, lhs.width, rhs.width)

    def children(self):
        return (self.lhs, self.rhs)


class UnOp(Value):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        self.op = op
        self.operand = operand
        self.width = unop_width(op, operand.width)


    def children(self):
        return (self.operand,)


class Mux(Value):
    __slots__ = ("cond", "then", "els")

    def __init__(self, cond, then, els):
        cond = wrap(cond)
        if cond.width != 1:
            raise FleetWidthError(
                f"mux condition must be 1 bit, got {cond.width}"
            )
        self.cond = cond
        self.then = wrap(then)
        self.els = wrap(els)
        self.width = max(self.then.width, self.els.width)

    def children(self):
        return (self.cond, self.then, self.els)


def mux(cond, then, els):
    """``cond ? then : els``."""
    return Mux(wrap(cond), then, els)


class Slice(Value):
    __slots__ = ("operand", "hi", "lo")

    def __init__(self, operand, hi, lo):
        if not (0 <= lo <= hi < operand.width):
            raise FleetWidthError(
                f"slice [{hi}:{lo}] out of range for width {operand.width}"
            )
        self.operand = operand
        self.hi = hi
        self.lo = lo
        self.width = hi - lo + 1

    def children(self):
        return (self.operand,)


class Concat(Value):
    """``parts[0]`` is most significant."""

    __slots__ = ("parts",)

    def __init__(self, parts):
        self.parts = tuple(wrap(p) for p in parts)
        if not self.parts:
            raise FleetSyntaxError("concat of zero parts")
        self.width = check_width(sum(p.width for p in self.parts))

    def children(self):
        return self.parts


def cat(*parts):
    return Concat(parts)


def truncate(value, width):
    """Slice an IR value down to ``width`` bits (no-op if already narrow),
    zero-extension being implicit in the unsigned semantics."""
    value = wrap(value)
    if value.width <= width:
        return value
    return Slice(value, width - 1, 0)


def zext(value, width):
    """Zero-extend (or pass through) ``value`` to exactly ``width`` bits."""
    value = wrap(value)
    if value.width == width:
        return value
    if value.width > width:
        raise FleetWidthError(
            f"cannot zero-extend width {value.width} down to {width}"
        )
    return Concat([Const(0, width - value.width), value])


class RegSpec:
    """A register: ``q <= enable ? next : q`` at each clock edge."""

    __slots__ = ("q", "init", "next", "enable")

    def __init__(self, q, init):
        self.q = q
        if not fits(init, q.width):
            raise FleetWidthError(
                f"register {q.name!r}: init {init} does not fit in "
                f"{q.width} bits"
            )
        self.init = init
        self.next = None
        self.enable = None  # None means always enabled

    def __repr__(self):
        return f"RegSpec({self.q.name}, w={self.q.width}, init={self.init})"


class BramSpec:
    """A BRAM primitive: one read port, one write port, 1-cycle read
    latency, read-old-data on same-address collision."""

    __slots__ = (
        "name", "elements", "width", "rd_data",
        "rd_addr", "wr_en", "wr_addr", "wr_data",
    )

    def __init__(self, name, elements, width, rd_data):
        if elements < 1:
            raise FleetSyntaxError(f"BRAM {name!r}: needs >= 1 element")
        self.name = name
        self.elements = elements
        self.width = check_width(width)
        self.rd_data = rd_data
        self.rd_addr = None
        self.wr_en = None
        self.wr_addr = None
        self.wr_data = None

    @property
    def addr_width(self):
        return max(1, (self.elements - 1).bit_length())

    def __repr__(self):
        return (
            f"BramSpec({self.name!r}, elements={self.elements}, "
            f"width={self.width})"
        )


class Module:
    """A flat RTL module (the compiler emits one per processing unit)."""

    def __init__(self, name):
        self.name = name
        self.inputs = []
        self.outputs = []  # Signals that are also wires
        self.wires = []  # list of (Signal, Value) in declaration order
        self.regs = []
        self.brams = []
        self._signals = []
        self._names = set()
        self._finalized = False

    # -- construction -----------------------------------------------------------
    def _new_signal(self, name, width, kind):
        if name in self._names:
            raise FleetSyntaxError(
                f"duplicate signal name {name!r} in module {self.name!r}"
            )
        self._names.add(name)
        sig = Signal(name, width, kind, len(self._signals))
        self._signals.append(sig)
        return sig

    def input(self, name, width):
        sig = self._new_signal(name, width, INPUT)
        self.inputs.append(sig)
        return sig

    def wire(self, name, value):
        """Declare a combinational wire driven by ``value``."""
        value = wrap(value)
        sig = self._new_signal(name, value.width, WIRE)
        self.wires.append((sig, value))
        return sig

    def output(self, name, value):
        """Declare an output port driven combinationally by ``value``."""
        sig = self.wire(name, value)
        self.outputs.append(sig)
        return sig

    def reg(self, name, width, init=0):
        """Declare a register; set ``.next`` (and optionally ``.enable``)
        on the returned spec before finalizing."""
        q = self._new_signal(name, width, REG)
        spec = RegSpec(q, init)
        self.regs.append(spec)
        return spec

    def bram(self, name, elements, width):
        """Declare a BRAM; set its port expressions before finalizing."""
        rd_data = self._new_signal(f"{name}__rd_data", width, BRAM_RD)
        spec = BramSpec(name, elements, width, rd_data)
        self.brams.append(spec)
        return spec

    # -- validation ----------------------------------------------------------------
    def finalize(self):
        """Validate connectivity; must be called before simulation/emission."""
        for spec in self.regs:
            if spec.next is None:
                raise FleetSyntaxError(
                    f"register {spec.q.name!r} has no next-value expression"
                )
            spec.next = truncate(wrap(spec.next), spec.q.width)
            if spec.enable is not None:
                spec.enable = wrap(spec.enable)
                if spec.enable.width != 1:
                    raise FleetWidthError(
                        f"register {spec.q.name!r}: enable must be 1 bit"
                    )
        for spec in self.brams:
            for port in ("rd_addr", "wr_en", "wr_addr", "wr_data"):
                if getattr(spec, port) is None:
                    raise FleetSyntaxError(
                        f"BRAM {spec.name!r}: port {port} not connected"
                    )
            spec.rd_addr = truncate(wrap(spec.rd_addr), spec.addr_width)
            spec.wr_addr = truncate(wrap(spec.wr_addr), spec.addr_width)
            spec.wr_data = truncate(wrap(spec.wr_data), spec.width)
            spec.wr_en = wrap(spec.wr_en)
            if spec.wr_en.width != 1:
                raise FleetWidthError(
                    f"BRAM {spec.name!r}: wr_en must be 1 bit"
                )
        self._finalized = True
        return self

    @property
    def finalized(self):
        return self._finalized

    @property
    def signals(self):
        return list(self._signals)

    def find_signal(self, name):
        for sig in self._signals:
            if sig.name == name:
                return sig
        raise FleetSyntaxError(f"no signal named {name!r}")

    def __repr__(self):
        return (
            f"Module({self.name!r}, inputs={len(self.inputs)}, "
            f"wires={len(self.wires)}, regs={len(self.regs)}, "
            f"brams={len(self.brams)})"
        )


def walk_value(value):
    """Yield ``value`` and all sub-expressions, each distinct node once
    (IR expressions are DAGs — compiled programs share sub-expressions)."""
    stack = [value]
    seen = set()
    while stack:
        v = stack.pop()
        if id(v) in seen:
            continue
        seen.add(id(v))
        yield v
        stack.extend(v.children())


def referenced_signals(value):
    """All :class:`Signal` leaves used by an expression."""
    return [v for v in walk_value(value) if isinstance(v, Signal)]
