"""RTL intermediate representation, cycle-accurate simulation, and Verilog
emission — the hardware substrate the Fleet compiler targets."""

from .ir import (
    BinOp,
    BramSpec,
    Concat,
    Const,
    Module,
    Mux,
    RegSpec,
    Signal,
    Slice,
    UnOp,
    Value,
    cat,
    mux,
    truncate,
    wrap,
    zext,
)
from .simulator import RtlSimulator
from .verilog import emit_verilog

__all__ = [
    "BinOp",
    "BramSpec",
    "Concat",
    "Const",
    "Module",
    "Mux",
    "RegSpec",
    "RtlSimulator",
    "Signal",
    "Slice",
    "UnOp",
    "Value",
    "cat",
    "emit_verilog",
    "mux",
    "truncate",
    "wrap",
    "zext",
]
