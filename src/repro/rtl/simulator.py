"""Cycle-accurate simulation of RTL modules.

The simulator levelizes each module's combinational logic (topologically
sorting wires; combinational cycles are rejected) and compiles every wire,
register-next, and BRAM-port expression to a Python closure once, so
stepping is just closure evaluation — the same structure as a compiled
event-free RTL simulator.

IR expressions are DAGs: compiled Fleet programs share sub-expressions
heavily (guards, forwarded read data, wire temporaries). Any node
referenced more than once is *hoisted* — given its own slot in the value
table and evaluated exactly once per cycle, in dependency order — so
simulation cost is linear in the number of distinct nodes, exactly like
the hardware it models.

Clocking model per :meth:`RtlSimulator.step`:

1. apply the given input values,
2. evaluate all combinational logic in topological order,
3. clock edge: registers latch their next values (subject to enables);
   each BRAM latches ``mem[rd_addr]`` into its read-data signal and then
   performs its write, so a same-cycle read of the written address returns
   the **old** data, as the paper's BRAM semantics require.
"""

from ..lang.errors import (
    FleetAddressError,
    FleetSimulationError,
    FleetSyntaxError,
)
from ..lang.types import fits, mask
from ..ops import BINOPS, UNOPS
from . import ir


def _topo_sort_wires(module):
    """Order wires so every wire is evaluated after the wires it reads.

    Iterative DFS: compiled units routinely produce wire chains thousands
    deep (forwarding networks), which would blow the recursion limit."""
    wire_value = {sig.index: value for sig, value in module.wires}
    order = []
    state = {}  # index -> 1 visiting, 2 done
    for root_sig, root_value in module.wires:
        if state.get(root_sig.index) is not None:
            continue
        # Stack frames: (sig, value, iterator over wire dependencies).
        stack = [(root_sig, root_value, None)]
        state[root_sig.index] = 1
        while stack:
            sig, value, deps = stack[-1]
            if deps is None:
                deps = iter(ir.referenced_signals(value))
                stack[-1] = (sig, value, deps)
            advanced = False
            for dep in deps:
                if dep.kind != ir.WIRE:
                    continue
                dep_state = state.get(dep.index)
                if dep_state == 1:
                    raise FleetSyntaxError(
                        f"combinational cycle through wire {dep.name!r} in "
                        f"module {module.name!r}"
                    )
                if dep_state is None:
                    state[dep.index] = 1
                    stack.append((dep, wire_value[dep.index], None))
                    advanced = True
                    break
            if not advanced:
                state[sig.index] = 2
                order.append((sig, value))
                stack.pop()
    return order


class _Compiler:
    """Compiles a module's expressions to closures over a value table,
    hoisting multiply-referenced nodes into their own slots."""

    def __init__(self, roots, first_free_slot):
        refcount = {}
        by_id = {}
        for root in roots:
            refcount[id(root)] = refcount.get(id(root), 0) + 1
            for node in ir.walk_value(root):
                by_id[id(node)] = node
                for child in node.children():
                    refcount[id(child)] = refcount.get(id(child), 0) + 1
        self._shared_slot = {}
        next_slot = first_free_slot
        for node_id, count in refcount.items():
            node = by_id[node_id]
            if count > 1 and not isinstance(node, (ir.Signal, ir.Const)):
                self._shared_slot[node_id] = next_slot
                next_slot += 1
        self.slot_count = next_slot
        #: evaluation steps: (slot_index, closure), in dependency order.
        self.plan = []
        self._scheduled = set()

    def compile(self, node):
        """Return ``fn(values) -> int``; schedules hoisted dependencies."""
        slot = self._shared_slot.get(id(node))
        if slot is None:
            return self._compile_body(node)
        if id(node) not in self._scheduled:
            self._scheduled.add(id(node))
            body = self._compile_body(node)
            self.plan.append((slot, body))
        return lambda values: values[slot]

    def add_step(self, slot, node):
        """Schedule ``node`` to be evaluated into ``slot`` (used for
        module wires, which are already single-assignment signals)."""
        self.plan.append((slot, self.compile(node)))

    def _compile_body(self, node):
        compile_ = self.compile
        if isinstance(node, ir.Const):
            const = node.value
            return lambda values: const
        if isinstance(node, ir.Signal):
            index = node.index
            return lambda values: values[index]
        if isinstance(node, ir.BinOp):
            lhs = compile_(node.lhs)
            rhs = compile_(node.rhs)
            rule, fn = BINOPS[node.op]
            wl, wr = node.lhs.width, node.rhs.width
            result_mask = mask(rule(wl, wr))
            return lambda values: (
                fn(lhs(values), rhs(values), wl, wr) & result_mask
            )
        if isinstance(node, ir.UnOp):
            operand = compile_(node.operand)
            rule, fn = UNOPS[node.op]
            w = node.operand.width
            result_mask = mask(rule(w))
            return lambda values: fn(operand(values), w) & result_mask
        if isinstance(node, ir.Mux):
            cond = compile_(node.cond)
            then = compile_(node.then)
            els = compile_(node.els)
            return lambda values: (
                then(values) if cond(values) else els(values)
            )
        if isinstance(node, ir.Slice):
            operand = compile_(node.operand)
            lo = node.lo
            slice_mask = mask(node.width)
            return lambda values: (operand(values) >> lo) & slice_mask
        if isinstance(node, ir.Concat):
            parts = [(compile_(p), p.width) for p in node.parts]

            def concat(values):
                acc = 0
                for fn, width in parts:
                    acc = (acc << width) | fn(values)
                return acc

            return concat
        raise FleetSimulationError(f"unknown IR value {node!r}")


class RtlSimulator:
    """Runs one finalized :class:`~repro.rtl.ir.Module` cycle by cycle."""

    def __init__(self, module):
        if not module.finalized:
            module.finalize()
        self.module = module
        ordered_wires = _topo_sort_wires(module)

        roots = [value for _, value in ordered_wires]
        for spec in module.regs:
            roots.append(spec.next)
            if spec.enable is not None:
                roots.append(spec.enable)
        for spec in module.brams:
            roots.extend((spec.rd_addr, spec.wr_en, spec.wr_addr,
                          spec.wr_data))
        compiler = _Compiler(roots, first_free_slot=len(module.signals))

        # Wires are compiled in topological order; hoisted shared nodes are
        # interleaved into the plan just before their first user.
        for sig, value in ordered_wires:
            compiler.add_step(sig.index, value)
        self._reg_plan = [
            (
                spec,
                compiler.compile(spec.next),
                compiler.compile(spec.enable) if spec.enable is not None
                else None,
            )
            for spec in module.regs
        ]
        self._bram_plan = [
            (
                spec,
                compiler.compile(spec.rd_addr),
                compiler.compile(spec.wr_en),
                compiler.compile(spec.wr_addr),
                compiler.compile(spec.wr_data),
            )
            for spec in module.brams
        ]
        self._plan = compiler.plan
        self._slot_count = compiler.slot_count
        self._inputs_by_name = {sig.name: sig for sig in module.inputs}
        self._outputs = list(module.outputs)
        self.reset()

    def reset(self):
        """Reset registers to their init values and zero all BRAMs."""
        self._values = [0] * self._slot_count
        for spec in self.module.regs:
            self._values[spec.q.index] = spec.init
        self._brams = {
            spec.name: [0] * spec.elements for spec in self.module.brams
        }
        self.cycle = 0
        self._evaluated = False

    # -- driving ----------------------------------------------------------------
    def set_inputs(self, **inputs):
        """Set input port values (sticky until changed)."""
        for name, value in inputs.items():
            sig = self._inputs_by_name.get(name)
            if sig is None:
                raise FleetSimulationError(f"no input port named {name!r}")
            if not isinstance(value, int) or not fits(value, sig.width):
                raise FleetSimulationError(
                    f"value {value!r} does not fit input {name!r} "
                    f"({sig.width} bits)"
                )
            self._values[sig.index] = value
        self._evaluated = False

    def evaluate(self):
        """Propagate combinational logic for the current cycle."""
        values = self._values
        for index, fn in self._plan:
            values[index] = fn(values)
        self._evaluated = True

    def peek(self, name):
        """Read any signal's value after :meth:`evaluate`."""
        if not self._evaluated:
            self.evaluate()
        return self._values[self.module.find_signal(name).index]

    def outputs(self):
        """All output port values for the current cycle."""
        if not self._evaluated:
            self.evaluate()
        return {sig.name: self._values[sig.index] for sig in self._outputs}

    def clock_edge(self):
        """Advance one clock edge (registers and BRAMs update)."""
        if not self._evaluated:
            self.evaluate()
        values = self._values
        # Sample everything before committing, so register updates are
        # concurrent with each other and with BRAM reads/writes.
        reg_updates = []
        for spec, next_fn, enable_fn in self._reg_plan:
            if enable_fn is None or enable_fn(values):
                reg_updates.append((spec.q.index, next_fn(values)))
        bram_updates = []
        for spec, rd_addr_fn, wr_en_fn, wr_addr_fn, wr_data_fn in (
            self._bram_plan
        ):
            memory = self._brams[spec.name]
            rd_addr = rd_addr_fn(values)
            rd_value = memory[rd_addr] if rd_addr < spec.elements else 0
            write = None
            if wr_en_fn(values):
                wr_addr = wr_addr_fn(values)
                if wr_addr >= spec.elements:
                    raise FleetAddressError(
                        f"BRAM {spec.name!r} write address {wr_addr} out of "
                        f"range (elements={spec.elements})"
                    )
                write = (wr_addr, wr_data_fn(values))
            bram_updates.append((spec, memory, rd_value, write))
        for index, value in reg_updates:
            values[index] = value
        for spec, memory, rd_value, write in bram_updates:
            values[spec.rd_data.index] = rd_value
            if write is not None:
                memory[write[0]] = write[1]
        self.cycle += 1
        self._evaluated = False

    def step(self, **inputs):
        """Convenience: set inputs, evaluate, sample outputs, clock."""
        if inputs:
            self.set_inputs(**inputs)
        outs = self.outputs()
        self.clock_edge()
        return outs

    def peek_bram(self, name):
        """Current contents of a BRAM (testing hook)."""
        if name not in self._brams:
            raise FleetSimulationError(f"no BRAM named {name!r}")
        return list(self._brams[name])
