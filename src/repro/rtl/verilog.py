"""Verilog emission for RTL modules.

Fleet accepts units in "any standard RTL language" and its compiler emits
Chisel that elaborates to Verilog; this emitter makes our compiled modules
inspectable as synthesizable Verilog-2001. Registers and BRAMs use the
standard FPGA inference patterns (``always @(posedge clock)`` with a
synchronous read register for BRAMs), which vendor tools map to technology
flip-flops and block RAMs.

Verilog slices and reductions apply only to identifiers, so the emitter
hoists sliced/concatenated subexpressions into automatically named
intermediate wires.
"""

from ..lang.errors import FleetSimulationError
from . import ir

_BINOP_SYMBOL = {
    "add": "+", "sub": "-", "mul": "*",
    "and": "&", "or": "|", "xor": "^",
    "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
    "shl": "<<", "shr": ">>",
}

_UNOP_FORMAT = {
    "not": "~({0})",
    "lnot": "~(|({0}))",
    "orr": "|({0})",
    "andr": "&({0})",
    "xorr": "^({0})",
}


class _Emitter:
    def __init__(self, module, roots):
        self.module = module
        self.lines = []
        self.hoisted = []  # (name, width, text) for temp wires
        self._temp_count = 0
        # Sub-expressions referenced more than once are emitted as a single
        # named wire — both for readability and because compiled Fleet
        # expressions are DAGs that would explode if printed as trees.
        counts = {}
        self._by_id = {}
        for root in roots:
            counts[id(root)] = counts.get(id(root), 0) + 1
            for node in ir.walk_value(root):
                self._by_id[id(node)] = node
                for child in node.children():
                    counts[id(child)] = counts.get(id(child), 0) + 1
        self._shared = {
            node_id
            for node_id, count in counts.items()
            if count > 1
            and not isinstance(self._by_id[node_id], (ir.Signal, ir.Const))
        }
        self._shared_name = {}

    def _hoist(self, value):
        """Materialize ``value`` as a named wire and return the name."""
        if isinstance(value, ir.Signal):
            return value.name
        if id(value) in self._shared:
            return self.expr(value)
        text = self._expr_body(value)
        name = f"_t{self._temp_count}"
        self._temp_count += 1
        self.hoisted.append((name, value.width, text))
        return name

    def expr(self, value):
        if id(value) in self._shared:
            name = self._shared_name.get(id(value))
            if name is None:
                text = self._expr_body(value)
                name = f"_t{self._temp_count}"
                self._temp_count += 1
                self.hoisted.append((name, value.width, text))
                self._shared_name[id(value)] = name
            return name
        return self._expr_body(value)

    def _expr_body(self, value):
        if isinstance(value, ir.Const):
            return f"{value.width}'d{value.value}"
        if isinstance(value, ir.Signal):
            return value.name
        if isinstance(value, ir.BinOp):
            lhs = self.expr(value.lhs)
            rhs = self.expr(value.rhs)
            return f"({lhs} {_BINOP_SYMBOL[value.op]} {rhs})"
        if isinstance(value, ir.UnOp):
            operand = self.expr(value.operand)
            return _UNOP_FORMAT[value.op].format(operand)
        if isinstance(value, ir.Mux):
            return (
                f"({self.expr(value.cond)} ? {self.expr(value.then)} : "
                f"{self.expr(value.els)})"
            )
        if isinstance(value, ir.Slice):
            name = self._hoist(value.operand)
            if value.hi == value.lo:
                return f"{name}[{value.lo}]"
            return f"{name}[{value.hi}:{value.lo}]"
        if isinstance(value, ir.Concat):
            return "{" + ", ".join(self.expr(p) for p in value.parts) + "}"
        raise FleetSimulationError(f"cannot emit {value!r}")


def _decl(width, name):
    if width == 1:
        return name
    return f"[{width - 1}:0] {name}"


def emit_verilog(module):
    """Render a finalized module as a Verilog-2001 source string."""
    if not module.finalized:
        module.finalize()
    roots = [value for _, value in module.wires]
    for spec in module.regs:
        roots.append(spec.next)
        if spec.enable is not None:
            roots.append(spec.enable)
    for spec in module.brams:
        roots.extend((spec.rd_addr, spec.wr_en, spec.wr_addr, spec.wr_data))
    em = _Emitter(module, roots)

    ports = ["input clock"]
    ports += [f"input {_decl(sig.width, sig.name)}" for sig in module.inputs]
    ports += [
        f"output {_decl(sig.width, sig.name)}" for sig in module.outputs
    ]

    body = []
    output_names = {sig.name for sig in module.outputs}
    wire_texts = []
    for sig, value in module.wires:
        wire_texts.append((sig, em.expr(value)))
    for sig, text in wire_texts:
        if sig.name in output_names:
            body.append(f"  assign {sig.name} = {text};")
        else:
            body.append(f"  wire {_decl(sig.width, sig.name)} = {text};")

    for spec in module.regs:
        body.append(
            f"  reg {_decl(spec.q.width, spec.q.name)} = "
            f"{spec.q.width}'d{spec.init};"
        )
    for spec in module.brams:
        body.append(
            f"  reg {_decl(spec.width, spec.name + '__mem')} "
            f"[0:{spec.elements - 1}];"
        )
        body.append(
            f"  reg {_decl(spec.width, spec.rd_data.name)} = "
            f"{spec.width}'d0;"
        )

    seq = ["  always @(posedge clock) begin"]
    for spec in module.regs:
        next_text = em.expr(spec.next)
        if spec.enable is None:
            seq.append(f"    {spec.q.name} <= {next_text};")
        else:
            seq.append(
                f"    if ({em.expr(spec.enable)}) "
                f"{spec.q.name} <= {next_text};"
            )
    for spec in module.brams:
        rd_addr = em.expr(spec.rd_addr)
        seq.append(f"    {spec.rd_data.name} <= {spec.name}__mem[{rd_addr}];")
        seq.append(
            f"    if ({em.expr(spec.wr_en)}) "
            f"{spec.name}__mem[{em.expr(spec.wr_addr)}] <= "
            f"{em.expr(spec.wr_data)};"
        )
    seq.append("  end")

    hoist_lines = [
        f"  wire {_decl(width, name)} = {text};"
        for name, width, text in em.hoisted
    ]

    lines = [f"module {module.name} ("]
    lines.append(",\n".join(f"  {p}" for p in ports))
    lines.append(");")
    lines.extend(hoist_lines)
    lines.extend(body)
    if module.regs or module.brams:
        lines.extend(seq)
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
