"""Full-unit RTL testbench: drives a compiled processing unit through its
ready-valid interface and collects its output stream.

This reproduces the paper's peek-poke cross-check infrastructure (Section
6): the same input stream is run through the functional simulator and the
compiled RTL, and the outputs must match token for token — including under
arbitrary input and output stalls, which the driver can inject.
"""

from ..lang.errors import FleetSimulationError
from ..rtl.simulator import RtlSimulator
from .unit_compiler import compile_unit


class UnitTestbench:
    """Cycle-accurate harness around one compiled processing unit."""

    def __init__(self, program, *, elide_forwarding=()):
        self.program = program
        self.module = compile_unit(program, elide_forwarding=elide_forwarding)
        self.sim = RtlSimulator(self.module)

    def run(self, tokens, *, input_stall=None, output_stall=None,
            max_cycles=None):
        """Run a whole stream to completion and return the output tokens.

        ``input_stall``/``output_stall`` are optional callables invoked with
        the cycle number; returning true deasserts ``input_valid`` /
        ``output_ready`` for that cycle (models a slow memory controller).

        Returns ``(outputs, cycles)`` where ``cycles`` counts from reset to
        the cycle ``output_finished`` first reads true.
        """
        sim = self.sim
        sim.reset()
        outputs = []
        index = 0
        if max_cycles is None:
            max_cycles = 10_000 + 200 * (len(tokens) + 1) * 64
        for cycle in range(max_cycles):
            stalled_in = input_stall is not None and input_stall(cycle)
            stalled_out = output_stall is not None and output_stall(cycle)
            have_token = index < len(tokens) and not stalled_in
            sim.set_inputs(
                input_token=tokens[index] if index < len(tokens) else 0,
                input_valid=1 if have_token else 0,
                input_finished=1 if index >= len(tokens) else 0,
                output_ready=0 if stalled_out else 1,
            )
            outs = sim.outputs()
            if outs["output_finished"]:
                return outputs, cycle
            if outs["output_valid"] and not stalled_out:
                outputs.append(outs["output_token"])
            if outs["input_ready"] and have_token:
                index += 1
            sim.clock_edge()
        raise FleetSimulationError(
            f"unit {self.program.name!r} did not finish within "
            f"{max_cycles} cycles (processed {index}/{len(tokens)} tokens, "
            f"emitted {len(outputs)})"
        )
