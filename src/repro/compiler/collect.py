"""Collection pass: gather every assignment, write, emit, and BRAM read in
a Fleet program together with its guard.

This is the first half of the paper's compilation algorithm (Section 4):
"For each register r, the compiler gathers all assignments to it in the
program, along with their conditions." A guard is:

* the conjunction of the enclosing ``if`` conditions (with earlier arms of
  the same ``if`` negated, so ``else if``/``else`` arms are mutually
  exclusive),
* plus the loop condition for statements inside a ``while`` body,
* plus ``while_done`` for leaf statements outside every ``while`` — a
  ``while`` loop "is simply an if block that our control logic executes
  multiple times", and post-loop statements fire only once it completes.

BRAM reads found inside ``if``/``while`` *conditions* are guarded by the
path up to (not including) that condition and never by ``while_done``:
condition logic computes on every virtual cycle, exactly as in hardware.
"""

from ..lang import ast


class Guard:
    """A conjunction of (condition expression, polarity) terms, optionally
    conjoined with the program-wide ``while_done`` signal."""

    __slots__ = ("terms", "needs_while_done")

    def __init__(self, terms, needs_while_done):
        self.terms = tuple(terms)  # tuple of (Node, bool positive)
        self.needs_while_done = needs_while_done

    def __repr__(self):
        return (
            f"Guard({len(self.terms)} terms, "
            f"while_done={self.needs_while_done})"
        )


class Collection:
    """Everything the code generator needs, grouped by state element."""

    def __init__(self):
        self.loops = []  # list of Guard (loop active when guard true)
        self.reg_assigns = {}  # RegDecl -> [(Guard, value Node)]
        self.vreg_assigns = {}  # VectorRegDecl -> [(Guard, index, value)]
        self.bram_writes = {}  # BramDecl -> [(Guard, addr, value)]
        self.bram_reads = {}  # BramDecl -> [(Guard, addr Node)]
        self.emits = []  # [(Guard, value Node)]

    def reads_of(self, bram):
        return self.bram_reads.get(bram, [])

    def writes_of(self, bram):
        return self.bram_writes.get(bram, [])


def collect(program):
    """Run the collection pass over a validated program."""
    collection = Collection()
    _walk(program.body, (), False, collection)
    return collection


def _walk(body, conds, in_loop, out):
    for stmt in body:
        if isinstance(stmt, ast.If):
            negated = []
            for cond, arm_body in stmt.arms:
                arm_conds = conds + tuple(negated)
                if cond is not None:
                    _record_reads(cond, Guard(arm_conds, False), out)
                    _walk(
                        arm_body, arm_conds + ((cond, True),), in_loop, out
                    )
                    negated.append((cond, False))
                else:
                    _walk(arm_body, arm_conds, in_loop, out)
        elif isinstance(stmt, ast.While):
            _record_reads(stmt.cond, Guard(conds, False), out)
            loop_conds = conds + ((stmt.cond, True),)
            out.loops.append(Guard(loop_conds, False))
            _walk(stmt.body, loop_conds, True, out)
        else:
            guard = Guard(conds, needs_while_done=not in_loop)
            _record_leaf(stmt, guard, out)


def _record_leaf(stmt, guard, out):
    for expr in ast.statement_exprs(stmt):
        _record_reads(expr, guard, out)
    if isinstance(stmt, ast.RegAssign):
        out.reg_assigns.setdefault(stmt.reg, []).append((guard, stmt.value))
    elif isinstance(stmt, ast.VectorRegAssign):
        out.vreg_assigns.setdefault(stmt.vreg, []).append(
            (guard, stmt.index, stmt.value)
        )
    elif isinstance(stmt, ast.BramWrite):
        out.bram_writes.setdefault(stmt.bram, []).append(
            (guard, stmt.addr, stmt.value)
        )
    elif isinstance(stmt, ast.Emit):
        out.emits.append((guard, stmt.value))
    else:  # pragma: no cover - the AST has no other leaf statements
        raise AssertionError(f"unexpected leaf {stmt!r}")


def _record_reads(expr, guard, out):
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.BramRead):
            out.bram_reads.setdefault(node.bram, []).append(
                (guard, node.addr)
            )
