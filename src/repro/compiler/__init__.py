"""The Fleet compiler: processing-unit programs to RTL (paper Section 4)."""

from .collect import Collection, Guard, collect
from .testbench import UnitTestbench
from .unit_compiler import compile_unit

__all__ = ["Collection", "Guard", "UnitTestbench", "collect", "compile_unit"]
