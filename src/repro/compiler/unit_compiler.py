"""Fleet-to-RTL code generation (paper Section 4, Figure 4).

Given a validated :class:`~repro.lang.ast.UnitProgram`, produce an RTL
module with the paper's processing-unit IO interface::

    input  input_token[w_in]   input  input_valid    output input_ready
    output output_token[w_out] output output_valid   input  output_ready
    input  input_finished      output output_finished

and the paper's two-stage virtual-cycle pipeline:

* stage 1 — BRAM reads: read addresses are issued one real cycle early,
  using *next* register values (result forwarding), so read data is ready
  when the virtual cycle executes;
* stage 2 — register/BRAM writes and emits, committed when the virtual
  cycle finishes (``v_done``).

All the control described in the paper is generated here: the ``v``/``f``
registers for input/output stalls and end-of-stream, ``while_done`` for
loops, next-value muxes for registers, read-address muxes with
last-written-(address, data) forwarding registers per BRAM, and the
ready-valid handshake logic. The structure intentionally parallels the
paper's Figure 4 line by line; tests cross-check the result against the
functional simulator on every application.
"""

from ..lang import ast
from ..lang.errors import FleetSyntaxError
from ..lang.types import mask
from ..rtl import ir
from .collect import collect


class _Env:
    """Translation environment: how Fleet leaves map to IR values.

    ``cur`` maps registers to their current outputs (used for statement
    guards, values, and stall-stable read addresses); ``next`` maps them to
    their committed next values (used for the read addresses of the
    *upcoming* virtual cycle — the paper's result forwarding).
    """

    def __init__(self, name, reg_value, input_value, sf_value,
                 vreg_elem_value, bram_value, while_done=None):
        self.name = name
        self.reg_value = reg_value
        self.input_value = input_value
        self.sf_value = sf_value
        self.vreg_elem_value = vreg_elem_value
        self.bram_value = bram_value  # None = BRAM reads forbidden here
        self.while_done = while_done  # ir.Value, set once computed
        self._memo = {}

    def translate(self, node):
        key = id(node)
        cached = self._memo.get(key)
        if cached is None:
            cached = self._translate(node)
            self._memo[key] = cached
        return cached

    def _translate(self, node):
        t = self.translate
        if isinstance(node, ast.Const):
            return ir.Const(node.value, node.width)
        if isinstance(node, ast.InputToken):
            return self.input_value
        if isinstance(node, ast.StreamFinished):
            return self.sf_value
        if isinstance(node, ast.RegRead):
            return self.reg_value(node.reg)
        if isinstance(node, ast.WireRead):
            # Wires are aliases; sharing is preserved because the defining
            # node is translated once (memoized by identity).
            return self.translate(node.wire.value)
        if isinstance(node, ast.VectorRegRead):
            return self._vreg_mux(node.vreg, t(node.index))
        if isinstance(node, ast.BramRead):
            if self.bram_value is None:
                raise FleetSyntaxError(
                    f"internal: BRAM read reached the {self.name!r} "
                    "environment (dependent-read checks should prevent this)"
                )
            return self.bram_value(node.bram)
        if isinstance(node, ast.BinOp):
            return ir.BinOp(node.op, t(node.lhs), t(node.rhs))
        if isinstance(node, ast.UnOp):
            return ir.UnOp(node.op, t(node.operand))
        if isinstance(node, ast.Mux):
            return ir.Mux(t(node.cond), t(node.then), t(node.els))
        if isinstance(node, ast.Slice):
            return ir.Slice(t(node.operand), node.hi, node.lo)
        if isinstance(node, ast.Concat):
            return ir.Concat([t(p) for p in node.parts])
        raise FleetSyntaxError(f"cannot translate {node!r}")

    def _vreg_mux(self, vreg, index_ir):
        """Random access into a register bank = a mux tree.

        The index is truncated to the bank's index width first, matching
        the simulators and the write-port comparison below — without
        this, an index expression wider than ``index_width`` never
        matches any element constant and the mux falls through to the
        last element (found by the differential fuzzer).
        """
        index_ir = ir.truncate(index_ir, vreg.index_width)
        value = self.vreg_elem_value(vreg, vreg.elements - 1)
        for k in range(vreg.elements - 2, -1, -1):
            value = ir.Mux(
                index_ir.eq(ir.Const(k, vreg.index_width)),
                self.vreg_elem_value(vreg, k),
                value,
            )
        return value

    def guard(self, guard):
        """Translate a collection :class:`Guard` to a 1-bit IR value."""
        acc = None
        for cond, positive in guard.terms:
            term = self.translate(cond)
            if not positive:
                term = term.lnot()
            acc = term if acc is None else acc & term
        if guard.needs_while_done:
            wd = self.while_done
            acc = wd if acc is None else acc & wd
        return ir.Const(1, 1) if acc is None else acc


def _priority_mux(pairs, default):
    """First-match-wins mux chain; ``default`` when no guard is true."""
    acc = default
    for guard, value in reversed(pairs):
        acc = ir.Mux(guard, value, acc)
    return acc


def compile_unit(program, *, elide_forwarding=(), module_name=None,
                 insert_runtime_checks=False):
    """Compile a Fleet program to a finalized RTL module.

    ``elide_forwarding`` names BRAMs for which the user asserts that no
    virtual cycle reads an address written by the previous virtual cycle;
    their last-written forwarding registers are elided, as the paper allows
    (the software simulator can check the assertion on example streams).

    ``insert_runtime_checks`` adds the paper's other enforcement option
    ("we could insert logic to perform runtime checks"): a sticky
    ``restriction_error`` output that latches whenever a completing
    virtual cycle performs two same-BRAM reads at different addresses,
    two same-BRAM writes, or two emits.
    """
    col = collect(program)
    m = ir.Module(module_name or f"fleet_{program.name}")

    # -- IO interface (paper Section 4) -------------------------------------
    input_token = m.input("input_token", program.input_width)
    input_valid = m.input("input_valid", 1)
    output_ready = m.input("output_ready", 1)
    input_finished = m.input("input_finished", 1)

    # -- control state --------------------------------------------------------
    i_reg = m.reg("i", program.input_width)  # current input token
    v_reg = m.reg("v", 1)  # a virtual cycle is executing
    f_reg = m.reg("f", 1)  # the stream_finished virtual cycle has begun

    # -- program state ----------------------------------------------------------
    reg_q = {reg: m.reg(f"r_{reg.name}", reg.width, reg.init) for reg
             in program.regs}
    vreg_q = {
        vreg: [
            m.reg(f"vr_{vreg.name}_{k}", vreg.width, vreg.init)
            for k in range(vreg.elements)
        ]
        for vreg in program.vregs
    }
    bram_spec = {
        bram: m.bram(f"b_{bram.name}", bram.elements, bram.width)
        for bram in program.brams
    }
    forward_regs = {}
    for bram in program.brams:
        if bram.name in elide_forwarding or not col.writes_of(bram):
            continue
        # One extra address bit holds the "never written" sentinel, so a
        # fresh unit never forwards (Figure 4 lines 10-11).
        last_addr = m.reg(
            f"b_{bram.name}_last_addr", bram.addr_width + 1,
            mask(bram.addr_width + 1),
        )
        last_data = m.reg(f"b_{bram.name}_last_data", bram.width)
        forward_regs[bram] = (last_addr, last_data)

    # -- current-value environment --------------------------------------------------
    bram_fwd_wire = {}  # filled in below; guards/addresses never need it

    cur = _Env(
        "cur",
        reg_value=lambda reg: reg_q[reg].q,
        input_value=i_reg.q,
        sf_value=f_reg.q,
        vreg_elem_value=lambda vreg, k: vreg_q[vreg][k].q,
        bram_value=lambda bram: bram_fwd_wire[bram],
    )

    # while_done (Figure 4 line 15): negation of the disjunction of all
    # loop guards. Loop guards are read-free (checked statically), so this
    # never touches BRAM data.
    loop_actives = [cur.guard(g) for g in col.loops]
    while_done_cur = m.wire(
        "while_done",
        _or_tree(loop_actives).lnot() if loop_actives else ir.Const(1, 1),
    )
    cur.while_done = while_done_cur

    # Current-cycle read addresses (read-free by the dependent-read rule),
    # then the forwarded read-data wires every other translation may use.
    cur_rd_addr = {}
    for bram in program.brams:
        reads = col.reads_of(bram)
        if not reads:
            continue
        pairs = [
            (cur.guard(guard), cur.translate(addr))
            for guard, addr in reads
        ]
        cur_rd_addr[bram] = m.wire(
            f"b_{bram.name}_cur_rd_addr",
            ir.truncate(
                _priority_mux(pairs[:-1], pairs[-1][1]),
                bram_spec[bram].addr_width,
            ),
        )
        spec = bram_spec[bram]
        if bram in forward_regs:
            last_addr, last_data = forward_regs[bram]
            fwd = ir.Mux(
                ir.Concat(
                    [ir.Const(0, 1), cur_rd_addr[bram]]
                ).eq(last_addr.q),
                last_data.q,
                spec.rd_data,
            )
        else:
            fwd = spec.rd_data
        bram_fwd_wire[bram] = m.wire(f"b_{bram.name}_rd", fwd)

    # -- emits and the output interface (Figure 4 lines 38-39) ----------------------
    emit_pairs = [
        (cur.guard(guard), cur.translate(value))
        for guard, value in col.emits
    ]
    if emit_pairs:
        any_emit = _or_tree([g for g, _ in emit_pairs])
        token_value = ir.truncate(
            _priority_mux(emit_pairs[:-1], emit_pairs[-1][1]),
            program.output_width,
        )
    else:
        any_emit = ir.Const(0, 1)
        token_value = ir.Const(0, program.output_width)
    output_valid = m.output("output_valid", v_reg.q & any_emit)
    m.output("output_token", ir.zext(token_value, program.output_width))

    # -- virtual-cycle completion (Figure 4 line 14) --------------------------------
    v_done = m.wire(
        "v_done", v_reg.q & (output_valid.lnot() | output_ready)
    )

    # -- register next values (Figure 4 lines 17-18) --------------------------------
    reg_next = {}
    for reg in program.regs:
        pairs = [
            (cur.guard(guard), cur.translate(value))
            for guard, value in col.reg_assigns.get(reg, [])
        ]
        reg_next[reg] = m.wire(
            f"r_{reg.name}_n",
            ir.truncate(_priority_mux(pairs, reg_q[reg].q), reg.width),
        )
        reg_q[reg].next = reg_next[reg]
        reg_q[reg].enable = v_done

    vreg_next = {}
    for vreg in program.vregs:
        assigns = col.vreg_assigns.get(vreg, [])
        translated = [
            (cur.guard(guard), cur.translate(index), cur.translate(value))
            for guard, index, value in assigns
        ]
        nexts = []
        for k, spec in enumerate(vreg_q[vreg]):
            pairs = [
                (
                    guard_ir
                    & ir.truncate(index_ir, vreg.index_width).eq(
                        ir.Const(k, vreg.index_width)
                    ),
                    value_ir,
                )
                for guard_ir, index_ir, value_ir in translated
            ]
            next_wire = m.wire(
                f"vr_{vreg.name}_{k}_n",
                ir.truncate(_priority_mux(pairs, spec.q), vreg.width),
            )
            spec.next = next_wire
            spec.enable = v_done
            nexts.append(next_wire)
        vreg_next[vreg] = nexts

    # -- next-value environment for read forwarding (Figure 4 line 29) ---------------
    # Effective next values: when the virtual cycle is not finishing
    # (stalled, or no cycle in flight), registers hold, so "next" is the
    # current value. This also covers accepting a token from idle.
    reg_next_eff = {
        reg: m.wire(
            f"r_{reg.name}_ne", ir.Mux(v_done, reg_next[reg], reg_q[reg].q)
        )
        for reg in program.regs
    }
    vreg_next_eff = {
        vreg: [
            m.wire(
                f"vr_{vreg.name}_{k}_ne",
                ir.Mux(v_done, vreg_next[vreg][k], vreg_q[vreg][k].q),
            )
            for k in range(vreg.elements)
        ]
        for vreg in program.vregs
    }
    sf_next = m.wire(
        "sf_next", f_reg.q | (input_finished & input_valid.lnot())
    )

    nxt = _Env(
        "next",
        reg_value=lambda reg: reg_next_eff[reg],
        input_value=input_token,
        sf_value=sf_next,
        vreg_elem_value=lambda vreg, k: vreg_next_eff[vreg][k],
        bram_value=None,  # read addresses are read-free by construction
    )
    loop_actives_next = [nxt.guard(g) for g in col.loops]
    nxt.while_done = m.wire(
        "while_done_n",
        _or_tree(loop_actives_next).lnot() if loop_actives_next
        else ir.Const(1, 1),
    )

    # -- handshake logic (Figure 4 lines 37, 40-45) ----------------------------------
    input_ready = m.output(
        "input_ready",
        v_reg.q.lnot()
        | (while_done_cur & (output_valid.lnot() | output_ready)),
    )
    i_reg.next = input_token
    i_reg.enable = input_ready
    v_reg.next = input_valid | (f_reg.q.lnot() & input_finished)
    v_reg.enable = input_ready
    f_reg.next = f_reg.q | input_finished
    f_reg.enable = input_ready
    m.output("output_finished", v_reg.q.lnot() & f_reg.q)

    # -- BRAM ports (Figure 4 lines 30, 33-35) ----------------------------------------
    # A new virtual cycle's read address is issued while the previous one
    # finishes (v_done) or while a token is being accepted from idle
    # (input_ready covers that case); otherwise hold the current address so
    # read data stays stable across stalls.
    issue_next = m.wire("issue_next", v_done | input_ready)
    for bram in program.brams:
        spec = bram_spec[bram]
        reads = col.reads_of(bram)
        if reads:
            next_pairs = [
                (nxt.guard(guard), nxt.translate(addr))
                for guard, addr in reads
            ]
            next_addr = ir.truncate(
                _priority_mux(next_pairs[:-1], next_pairs[-1][1]),
                spec.addr_width,
            )
            spec.rd_addr = ir.Mux(issue_next, next_addr, cur_rd_addr[bram])
        else:
            spec.rd_addr = ir.Const(0, spec.addr_width)

        writes = col.writes_of(bram)
        if writes:
            write_pairs = [
                (
                    cur.guard(guard),
                    cur.translate(addr),
                    cur.translate(value),
                )
                for guard, addr, value in writes
            ]
            any_write = _or_tree([g for g, _, _ in write_pairs])
            wr_addr = ir.truncate(
                _priority_mux(
                    [(g, a) for g, a, _ in write_pairs[:-1]],
                    write_pairs[-1][1],
                ),
                spec.addr_width,
            )
            wr_data = _priority_mux(
                [(g, d) for g, _, d in write_pairs[:-1]],
                write_pairs[-1][2],
            )
            spec.wr_en = v_done & any_write
            spec.wr_addr = wr_addr
            spec.wr_data = wr_data
            if bram in forward_regs:
                last_addr, last_data = forward_regs[bram]
                last_addr.next = ir.Concat([ir.Const(0, 1), wr_addr])
                last_addr.enable = spec.wr_en
                last_data.next = wr_data
                last_data.enable = spec.wr_en
        else:
            spec.wr_en = ir.Const(0, 1)
            spec.wr_addr = ir.Const(0, spec.addr_width)
            spec.wr_data = ir.Const(0, spec.width)

    if insert_runtime_checks:
        _insert_runtime_checks(m, program, col, cur, v_done)

    return m.finalize()


def _insert_runtime_checks(m, program, col, cur, v_done):
    """Latch a sticky error flag on any same-cycle restriction violation
    (pairwise guard checks over the collected accesses)."""
    violations = []
    for bram in program.brams:
        reads = [
            (cur.guard(guard), cur.translate(addr))
            for guard, addr in col.reads_of(bram)
        ]
        for i in range(len(reads)):
            for j in range(i + 1, len(reads)):
                gi, ai = reads[i]
                gj, aj = reads[j]
                width = max(ai.width, aj.width)
                violations.append(
                    gi & gj & ir.zext(ai, width).ne(ir.zext(aj, width))
                )
        write_guards = [
            cur.guard(guard) for guard, _, _ in col.writes_of(bram)
        ]
        for i in range(len(write_guards)):
            for j in range(i + 1, len(write_guards)):
                violations.append(write_guards[i] & write_guards[j])
    emit_guards = [cur.guard(guard) for guard, _ in col.emits]
    for i in range(len(emit_guards)):
        for j in range(i + 1, len(emit_guards)):
            violations.append(emit_guards[i] & emit_guards[j])

    if violations:
        any_violation = violations[0]
        for value in violations[1:]:
            any_violation = any_violation | value
        violation_now = m.wire("restriction_violation", any_violation)
        error = m.reg("restriction_error_r", 1)
        error.next = error.q | (v_done & violation_now)
        m.output("restriction_error", error.q)
    else:
        m.output("restriction_error", ir.Const(0, 1))


def _or_tree(values):
    acc = values[0]
    for value in values[1:]:
        acc = acc | value
    return acc
