"""Operator tables shared by the Fleet DSL, the RTL IR, and both simulators.

Each operator has a width-inference rule and an evaluation function over
unsigned Python integers. Evaluation functions receive already-masked
operands and must return a value that the caller masks to the result width;
this keeps wrap-around semantics in exactly one place.
"""

from .lang.errors import FleetWidthError
from .lang.types import MAX_WIDTH, mask

# ---------------------------------------------------------------------------
# Binary operators
# ---------------------------------------------------------------------------

#: op name -> (width_rule, eval_fn). ``width_rule(wl, wr)`` returns the
#: result width; ``eval_fn(a, b, wl, wr)`` returns the unmasked result.
BINOPS = {
    "add": (lambda wl, wr: max(wl, wr) + 1, lambda a, b, wl, wr: a + b),
    "sub": (lambda wl, wr: max(wl, wr) + 1, lambda a, b, wl, wr: a - b),
    "mul": (lambda wl, wr: wl + wr, lambda a, b, wl, wr: a * b),
    "and": (lambda wl, wr: max(wl, wr), lambda a, b, wl, wr: a & b),
    "or": (lambda wl, wr: max(wl, wr), lambda a, b, wl, wr: a | b),
    "xor": (lambda wl, wr: max(wl, wr), lambda a, b, wl, wr: a ^ b),
    "eq": (lambda wl, wr: 1, lambda a, b, wl, wr: int(a == b)),
    "ne": (lambda wl, wr: 1, lambda a, b, wl, wr: int(a != b)),
    "lt": (lambda wl, wr: 1, lambda a, b, wl, wr: int(a < b)),
    "le": (lambda wl, wr: 1, lambda a, b, wl, wr: int(a <= b)),
    "gt": (lambda wl, wr: 1, lambda a, b, wl, wr: int(a > b)),
    "ge": (lambda wl, wr: 1, lambda a, b, wl, wr: int(a >= b)),
    # Dynamic shifts: the shift amount is an expression. The result width of
    # a dynamic left shift grows by the largest representable amount, which
    # is why real designs (and our apps) shift by constants where possible.
    "shl": (
        lambda wl, wr: _bounded(wl + mask(wr)),
        lambda a, b, wl, wr: a << b,
    ),
    "shr": (lambda wl, wr: wl, lambda a, b, wl, wr: a >> b),
}

#: Unary operator name -> (width_rule, eval_fn).
UNOPS = {
    "not": (lambda w: w, lambda a, w: ~a),  # bitwise complement
    "lnot": (lambda w: 1, lambda a, w: int(a == 0)),  # logical negation
    "orr": (lambda w: 1, lambda a, w: int(a != 0)),  # OR-reduce
    "andr": (lambda w: 1, lambda a, w: int(a == mask(w))),  # AND-reduce
    "xorr": (lambda w: 1, lambda a, w: bin(a).count("1") & 1),  # parity
}


def _bounded(width):
    if width > MAX_WIDTH:
        raise FleetWidthError(
            f"inferred width {width} exceeds MAX_WIDTH={MAX_WIDTH}; "
            "shift by a constant or mask the shift amount first"
        )
    return width


def binop_width(op, wl, wr):
    """Result width of binary ``op`` applied to widths ``wl`` and ``wr``."""
    return BINOPS[op][0](wl, wr)


def eval_binop(op, a, b, wl, wr):
    """Evaluate binary ``op``, masking the result to its inferred width."""
    rule, fn = BINOPS[op]
    return fn(a, b, wl, wr) & mask(rule(wl, wr))


def unop_width(op, w):
    """Result width of unary ``op`` applied to width ``w``."""
    return UNOPS[op][0](w)


def eval_unop(op, a, w):
    """Evaluate unary ``op``, masking the result to its inferred width."""
    rule, fn = UNOPS[op]
    return fn(a, w) & mask(rule(w))
