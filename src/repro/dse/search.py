"""The search loop: seeded grid + successive-halving refinement.

Two phases, both deterministic in (app, device, seed, budget):

1. **Coarse grid** over memory layout (beats per burst), burst-register
   depth, and PU count, at a short simulation horizon. Stall
   attribution from :mod:`repro.obs` prunes provably unhelpful
   directions — when a layout's attribution shows zero
   ``no_burst_register`` stalls, deeper register files cannot raise
   throughput and only cost area, so they are skipped; a layout whose
   throughput already equals the replicas' theoretical rate is
   compute-bound, so longer bursts are skipped.
2. **Refinement** of the best third of the grid at a long horizon
   (successive halving: survivors earn simulation cycles), expanding
   the channel-count and serve-batch axes around the leaders to spread
   the Pareto frontier.

The winner is the highest-throughput feasible refined point whose
binding-resource area fraction does not exceed the hand-picked
baseline's — the search may spend the paper's area budget, not grow it.
"""

from ..obs.attribution import NO_BURST_REGISTER
from ..telemetry import counter, histogram
from .cache import EvalCache, cache_key
from .evaluate import PointEval, evaluate_point
from .pareto import pareto_frontier
from .space import (
    BURST_REGISTERS,
    CHANNEL_COUNTS,
    LAYOUT_BEATS,
    PU_FRACTIONS,
    SERVE_SLOTS,
    DesignPoint,
)

#: Simulation horizons (virtual cycles): coarse grid vs refinement,
#: quick mode vs full.
COARSE_CYCLES = {"quick": 1_500, "full": 2_500}
FINE_CYCLES = {"quick": 4_000, "full": 8_000}
#: Streams in the analytic latency workload.
LATENCY_STREAMS = 128
#: Relative slack for "throughput equals the theoretical rate".
_COMPUTE_BOUND_SLACK = 0.999

_POINTS_EVALUATED = counter(
    "fleet_dse_points_evaluated_total",
    "Design points evaluated fresh (cache misses) by the DSE search",
    ("app",),
)
_POINTS_PRUNED = counter(
    "fleet_dse_points_pruned_total",
    "Design points skipped by attribution-based pruning",
    ("app", "rule"),
)
_CACHE_HITS = counter(
    "fleet_dse_cache_hits_total",
    "DSE evaluation-cache hits",
    ("app",),
)
_EVAL_SECONDS = histogram(
    "fleet_dse_eval_seconds",
    "Wall-clock seconds per fresh design-point evaluation",
    ("app",),
)


class DseResult:
    """Everything one search produced."""

    def __init__(self, *, app, fingerprint, device, baseline, best,
                 frontier, evaluated, cache_hits, pruned, seed, budget,
                 budget_exhausted, mode):
        self.app = app
        self.fingerprint = fingerprint
        self.device = device
        self.baseline = baseline
        self.best = best
        self.frontier = frontier
        self.evaluated = evaluated
        self.cache_hits = cache_hits
        self.pruned = pruned
        self.seed = seed
        self.budget = budget
        self.budget_exhausted = budget_exhausted
        self.mode = mode

    @property
    def speedup(self):
        """Tuned throughput over the hand-picked baseline's."""
        return (
            self.best.gbps / self.baseline.gbps
            if self.baseline.gbps else 0.0
        )

    def __repr__(self):
        return (
            f"DseResult({self.app!r}, best={self.best.gbps:.2f} GB/s, "
            f"{self.speedup:.3f}x baseline, "
            f"|frontier|={len(self.frontier)})"
        )


class _Searcher:
    """One search run's mutable state."""

    def __init__(self, model, device, *, seed, budget, cache, mode):
        self.model = model
        self.device = device
        self.seed = seed
        self.budget = budget
        self.cache = cache
        self.mode = mode
        self.fingerprint = model.fingerprint()
        self.evaluated = 0
        self.cache_hits = 0
        self.pruned = 0
        self.budget_exhausted = False
        self.fine_evals = {}  # point.key() -> PointEval at fine horizon

    def evaluate(self, point, cycles, *, fine=False):
        """Evaluate through the cache; ``None`` once the budget is
        spent (fresh evaluations only — hits are free)."""
        key = cache_key(
            self.fingerprint, self.device, point,
            sim_cycles=cycles, seed=self.seed,
            latency_streams=LATENCY_STREAMS,
        )
        data = self.cache.get(key)
        if data is not None:
            self.cache_hits += 1
            _CACHE_HITS.inc(app=self.model.name)
            ev = PointEval.from_dict(point, data)
        else:
            if self.budget is not None and self.evaluated >= self.budget:
                self.budget_exhausted = True
                return None
            import time

            from ..telemetry import enabled

            start = time.perf_counter() if enabled() else None
            ev = evaluate_point(
                self.model, point, device=self.device,
                sim_cycles=cycles, seed=self.seed,
                latency_streams=LATENCY_STREAMS,
            )
            if start is not None:
                _EVAL_SECONDS.observe(
                    time.perf_counter() - start, app=self.model.name
                )
            self.cache.put(key, ev.as_dict())
            self.evaluated += 1
            _POINTS_EVALUATED.inc(app=self.model.name)
        if fine:
            self.fine_evals[point.key()] = ev
        return ev

    def prune(self, rule, n):
        if n > 0:
            self.pruned += n
            _POINTS_PRUNED.inc(n, app=self.model.name, rule=rule)

    # -- phase 1: coarse grid ---------------------------------------------
    def coarse_grid(self):
        cycles = COARSE_CYCLES[self.mode]
        evals = []
        for bi, beats in enumerate(LAYOUT_BEATS):
            layout_best = None
            for ri, r in enumerate(BURST_REGISTERS):
                point = DesignPoint(
                    burst_registers=r, layout_beats=beats,
                    channels=self.device.channels,
                )
                ev = self.evaluate(point, cycles)
                if ev is None:
                    return evals
                evals.append(ev)
                if layout_best is None or ev.gbps > layout_best.gbps:
                    layout_best = ev
                attr = ev.attribution or {}
                if not attr.get(NO_BURST_REGISTER, 0):
                    # No cycle was ever lost waiting for a burst
                    # register: deeper files are pure area.
                    self.prune(
                        "no_burst_register_stalls",
                        len(BURST_REGISTERS) - ri - 1,
                    )
                    break
            if layout_best is not None and (
                layout_best.gbps
                >= _COMPUTE_BOUND_SLACK * layout_best.theoretical_gbps
            ):
                # The PUs, not the memory system, bound this app:
                # longer bursts cannot add throughput.
                remaining = len(LAYOUT_BEATS) - bi - 1
                self.prune(
                    "compute_bound_layout",
                    remaining * len(BURST_REGISTERS),
                )
                break
        evals.extend(self.pu_sweep(evals, cycles))
        return evals

    def pu_sweep(self, grid, cycles):
        """Reduced-PU variants of the best grid layouts: memory-bound
        layouts keep their throughput at a fraction of the replicas
        (area for free); compute-bound ones scale down linearly, so
        only a single area-tradeoff sample survives the prune."""
        leaders = sorted(
            (ev for ev in grid if ev.feasible),
            key=lambda ev: (-ev.gbps, ev.point.key()),
        )[:2]
        out = []
        for leader in leaders:
            compute_bound = (
                leader.gbps
                >= _COMPUTE_BOUND_SLACK * leader.theoretical_gbps
            )
            fracs = [f for f in PU_FRACTIONS if f < 1.0]
            if compute_bound:
                self.prune("compute_bound_pus", len(fracs) - 1)
                fracs = [0.5]
            for frac in fracs:
                count = max(
                    leader.point.channels,
                    int(leader.max_pu_count * frac),
                )
                ev = self.evaluate(
                    leader.point.replace(pu_count=count), cycles
                )
                if ev is None:
                    return out
                out.append(ev)
        return out

    # -- phase 2: refinement ----------------------------------------------
    def refine(self, grid):
        cycles = FINE_CYCLES[self.mode]
        survivors = sorted(
            (ev for ev in grid if ev.feasible),
            key=lambda ev: (-ev.gbps, ev.point.key()),
        )
        keep = max(2, len(survivors) // 3)
        refined = []
        for ev in survivors[:keep]:
            fine = self.evaluate(ev.point, cycles, fine=True)
            if fine is None:
                return refined
            refined.append(fine)
        if not refined:
            return refined
        best = min(refined, key=lambda ev: (-ev.gbps, ev.point.key()))
        for ch in CHANNEL_COUNTS:
            if ch == best.point.channels or ch > self.device.channels:
                continue
            ev = self.evaluate(
                best.point.replace(channels=ch, pu_count=None),
                cycles, fine=True,
            )
            if ev is None:
                return refined
            refined.append(ev)
        for leader in refined[:2]:
            for slots in SERVE_SLOTS:
                if slots == leader.point.serve_slots:
                    continue
                ev = self.evaluate(
                    leader.point.replace(serve_slots=slots),
                    cycles, fine=True,
                )
                if ev is None:
                    return refined
                refined.append(ev)
        return refined

    def run(self):
        # The baseline goes first: it anchors the area budget the
        # winner must respect, and under FLEET_DSE_BUDGET it must land
        # before the grid can spend the evaluation allowance.
        baseline = self.evaluate(
            DesignPoint.baseline(self.device),
            FINE_CYCLES[self.mode], fine=True,
        )
        if baseline is None:
            raise RuntimeError(
                "FLEET_DSE_BUDGET too small to evaluate even the "
                "baseline configuration"
            )
        grid = self.coarse_grid()
        self.refine(grid)
        candidates = [
            ev for ev in self.fine_evals.values()
            if ev.feasible and ev.area_frac <= baseline.area_frac + 1e-9
        ]
        best = min(
            candidates or [baseline],
            key=lambda ev: (
                -ev.gbps, ev.area_frac, ev.p99_ms, ev.point.key()
            ),
        )
        frontier = pareto_frontier(self.fine_evals.values())
        return DseResult(
            app=self.model.name,
            fingerprint=self.fingerprint,
            device=self.device,
            baseline=baseline,
            best=best,
            frontier=frontier,
            evaluated=self.evaluated,
            cache_hits=self.cache_hits,
            pruned=self.pruned,
            seed=self.seed,
            budget=self.budget,
            budget_exhausted=self.budget_exhausted,
            mode=self.mode,
        )


def search(model, *, device, seed=0, budget=None, cache=None,
           quick=False):
    """Explore the design space for ``model``'s app on ``device``.

    Deterministic in its arguments: the same call returns the same
    :class:`DseResult` (and renders byte-identically) every time.
    ``budget`` caps fresh evaluations (cache hits are free); ``cache``
    defaults to a fresh in-memory :class:`EvalCache`.
    """
    searcher = _Searcher(
        model, device, seed=seed, budget=budget,
        cache=cache if cache is not None else EvalCache(),
        mode="quick" if quick else "full",
    )
    return searcher.run()
