"""The design space: what a candidate Fleet configuration is.

A :class:`DesignPoint` names one spot in the space the paper's authors
explored by hand when they fixed the F1 configuration (Section 5's
1024-bit bursts, ``r = 16`` burst registers, all four channels, and as
many PUs as fit): how many processing units to instantiate, how deep the
controllers' burst-register files are, how many beats each DRAM burst
carries (the input memory layout — longer bursts amortize bus
turnaround but deepen each PU's buffer drain), how many memory channels
the design spreads over, and how many serve slots the serving runtime
batches per device.

Points are plain data: :meth:`DesignPoint.memory_config` maps one onto
the memory simulator's :class:`~repro.memory.MemoryConfig`, and
:meth:`DesignPoint.as_dict` is the canonical JSON form the evaluation
cache keys on.
"""

from ..memory import MemoryConfig

#: Grid axes of the coarse search phase (:mod:`repro.dse.search`).
LAYOUT_BEATS = (2, 4, 8, 16)
BURST_REGISTERS = (4, 8, 16, 32)
PU_FRACTIONS = (0.25, 0.5, 0.75, 1.0)
#: Refinement-phase axes.
CHANNEL_COUNTS = (1, 2, 4)
SERVE_SLOTS = (16, 32, 64)


class DesignPoint:
    """One candidate configuration.

    ``pu_count=None`` means "as many as fit" — resolved against the
    area model (with the point's own controller cost budgeted) at
    evaluation time.
    """

    __slots__ = ("pu_count", "burst_registers", "layout_beats",
                 "channels", "serve_slots")

    def __init__(self, *, pu_count=None, burst_registers=16,
                 layout_beats=2, channels=4, serve_slots=32):
        if burst_registers < 1:
            raise ValueError("burst_registers must be >= 1")
        if layout_beats < 1:
            raise ValueError("layout_beats must be >= 1")
        if channels < 1:
            raise ValueError("channels must be >= 1")
        if serve_slots < 1:
            raise ValueError("serve_slots must be >= 1")
        self.pu_count = pu_count
        self.burst_registers = burst_registers
        self.layout_beats = layout_beats
        self.channels = channels
        self.serve_slots = serve_slots

    @classmethod
    def baseline(cls, device):
        """The paper's hand-picked Figure-7 configuration on ``device``:
        default bursts, ``r = 16``, every channel, maximal PU count."""
        return cls(pu_count=None, burst_registers=16, layout_beats=2,
                   channels=device.channels, serve_slots=32)

    def memory_config(self, device):
        """This point as a memory-simulator configuration."""
        return MemoryConfig(frequency_hz=device.frequency_hz).replace(
            burst_registers=self.burst_registers,
            beats_per_burst=self.layout_beats,
        )

    def replace(self, **overrides):
        fields = self.as_dict()
        fields.update(overrides)
        return DesignPoint(**fields)

    def as_dict(self):
        """Canonical JSON form (cache keys, reports)."""
        return {
            "pu_count": self.pu_count,
            "burst_registers": self.burst_registers,
            "layout_beats": self.layout_beats,
            "channels": self.channels,
            "serve_slots": self.serve_slots,
        }

    def key(self):
        """A deterministic sort/identity key."""
        return (
            self.layout_beats, self.burst_registers,
            -1 if self.pu_count is None else self.pu_count,
            self.channels, self.serve_slots,
        )

    def __eq__(self, other):
        if isinstance(other, DesignPoint):
            return self.as_dict() == other.as_dict()
        return NotImplemented

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        pus = "fit" if self.pu_count is None else str(self.pu_count)
        return (
            f"DesignPoint(pus={pus}, r={self.burst_registers}, "
            f"beats={self.layout_beats}, ch={self.channels}, "
            f"slots={self.serve_slots})"
        )
