"""``python -m repro.dse`` — run searches, print reports, self-check.

Examples::

    python -m repro.dse --app bloom_filter     # one search, text report
    python -m repro.dse --all-apps --json      # every catalog app, JSON
    python -m repro.dse --selftest             # determinism + invariants
    python -m repro.dse --all-apps --write-tuned  # regen tuned.py
"""

import argparse
import sys

from ..envcfg import env_int, env_path
from ..system import AMAZON_F1
from .cache import EvalCache
from .pareto import dominates
from .report import format_dse_report, render_json_text
from .search import search


def _parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.dse",
        description="Design-space exploration over the Fleet models.",
    )
    parser.add_argument("--app", help="catalog app key to search")
    parser.add_argument(
        "--all-apps", action="store_true",
        help="search every catalog app",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short simulation horizons (CI mode)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="search seed (default: FLEET_DSE_SEED or 0)",
    )
    parser.add_argument(
        "--budget", type=int, default=None,
        help="max fresh evaluations per app "
             "(default: FLEET_DSE_BUDGET or unlimited)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="on-disk evaluation cache (default: FLEET_DSE_CACHE)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit canonical JSON",
    )
    parser.add_argument(
        "--write-tuned", action="store_true",
        help="print src/repro/dse/tuned.py contents for the searched "
             "apps (use with --all-apps, full mode, seed 0)",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="verify determinism, caching, and frontier invariants",
    )
    return parser


def _run_searches(args):
    from ..bench.catalog import catalog
    from .evaluate import AppModel

    seed = args.seed if args.seed is not None else (
        env_int("FLEET_DSE_SEED", 0)
    )
    budget = args.budget if args.budget is not None else (
        env_int("FLEET_DSE_BUDGET", None, minimum=1)
    )
    cache = EvalCache(args.cache or env_path("FLEET_DSE_CACHE"))
    specs = catalog()
    keys = sorted(specs) if args.all_apps else [args.app]
    results = []
    for key in keys:
        if key not in specs:
            raise SystemExit(
                f"unknown app {key!r}: choose from "
                f"{', '.join(sorted(specs))}"
            )
        model = AppModel.from_spec(specs[key])
        results.append(search(
            model, device=AMAZON_F1, seed=seed, budget=budget,
            cache=cache, quick=args.quick,
        ))
    return results


def _tuned_source(results):
    entries = []
    for result in results:
        best = result.best
        entries.append(
            f"    {result.app!r}: {{\n"
            f"        'point': {best.point.as_dict()!r},\n"
            f"        'gbps': {best.gbps!r},\n"
            f"        'baseline_gbps': {result.baseline.gbps!r},\n"
            f"        'area_frac': {best.area_frac!r},\n"
            f"        'baseline_area_frac': "
            f"{result.baseline.area_frac!r},\n"
            f"        'p99_ms': {best.p99_ms!r},\n"
            f"    }},"
        )
    body = "\n".join(entries)
    return f"TUNED = {{\n{body}\n}}\n"


def _selftest():
    failures = []

    def check(name, ok, detail=""):
        status = "ok" if ok else "FAIL"
        line = f"  {status:<6}{name}"
        if detail and not ok:
            line += f" — {detail}"
        print(line)
        if not ok:
            failures.append(name)

    print("repro.dse selftest")
    from ..bench.catalog import catalog
    from .evaluate import AppModel

    cache = EvalCache()
    model = AppModel.from_spec(catalog()["bloom_filter"])
    first = search(model, device=AMAZON_F1, seed=0, cache=cache,
                   quick=True)
    cold = search(model, device=AMAZON_F1, seed=0, cache=EvalCache(),
                  quick=True)
    check(
        "deterministic report",
        format_dse_report(first) == format_dse_report(cold),
        "two cold-cache searches rendered differently",
    )
    check(
        "deterministic json",
        render_json_text([first]) == render_json_text([cold]),
    )
    warm = search(model, device=AMAZON_F1, seed=0, cache=cache,
                  quick=True)
    check(
        "warm search all cache hits",
        warm.evaluated == 0 and warm.cache_hits > 0,
        f"evaluated={warm.evaluated} hits={warm.cache_hits}",
    )
    check(
        "warm search same conclusion",
        warm.best.as_dict() == first.best.as_dict()
        and [e.as_dict() for e in warm.frontier]
        == [e.as_dict() for e in first.frontier],
    )
    check("search evaluated points", first.evaluated > 0)
    check("pruning engaged", first.pruned > 0,
          "attribution pruning never fired")
    front = first.frontier
    check("frontier non-empty", bool(front))
    clean = all(
        not dominates(a, b)
        for a in front for b in front if a is not b
    )
    check("frontier is non-dominated", clean)
    check(
        "best is feasible",
        first.best.feasible,
    )
    check(
        "best within baseline area",
        first.best.area_frac <= first.baseline.area_frac + 1e-9,
        f"{first.best.area_frac:.4f} > {first.baseline.area_frac:.4f}",
    )
    check(
        "best at least baseline throughput",
        first.best.gbps >= first.baseline.gbps,
    )
    from .space import DesignPoint

    point = first.best.point
    check(
        "design point round-trips",
        DesignPoint(**point.as_dict()) == point,
    )
    if failures:
        print(f"selftest: {len(failures)} failure(s)")
        return 1
    print("selftest: all checks passed")
    return 0


def main(argv=None):
    args = _parser().parse_args(argv)
    if args.selftest:
        return _selftest()
    if not args.app and not args.all_apps:
        _parser().error("one of --app, --all-apps, --selftest required")
    results = _run_searches(args)
    if args.write_tuned:
        sys.stdout.write(_tuned_source(results))
        return 0
    if args.json:
        sys.stdout.write(render_json_text(results))
        return 0
    for result in results:
        sys.stdout.write(format_dse_report(result))
        sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
