"""Content-addressed evaluation cache.

An evaluation is a pure function of (application fingerprint, device
spec, design point, simulation parameters, model version); the cache
key is the SHA-256 of that tuple's canonical JSON. Hits are exact —
no version drift, no app collisions — so a second search of the same
space is all lookups.

Two tiers: an in-process dict (always on) and an optional on-disk
directory of ``<key>.json`` files (``FLEET_DSE_CACHE``), shared across
processes. Disk writes are atomic (write-then-rename) so concurrent
searches cannot observe torn entries; unreadable or corrupt files
count as misses and are rewritten.
"""

import hashlib
import json
import os

#: Bump when the evaluation semantics change (cost model, latency
#: model, area accounting) — old cache entries stop matching.
#: v2: certified worst-case analytic p99 joined the evaluation.
MODEL_VERSION = 2


def cache_key(app_fingerprint, device, point, *, sim_cycles, seed,
              latency_streams):
    """The content address of one evaluation."""
    payload = {
        "v": MODEL_VERSION,
        "app": app_fingerprint,
        "device": device.as_dict(),
        "point": point.as_dict(),
        "sim_cycles": sim_cycles,
        "seed": seed,
        "latency_streams": latency_streams,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


class EvalCache:
    """In-memory + optional on-disk evaluation store."""

    def __init__(self, directory=None):
        self.directory = directory
        self._memory = {}
        self.hits = 0
        self.misses = 0
        if directory:
            os.makedirs(directory, exist_ok=True)

    def _path(self, key):
        return os.path.join(self.directory, key + ".json")

    def get(self, key):
        """The cached evaluation dict, or ``None``."""
        value = self._memory.get(key)
        if value is not None:
            self.hits += 1
            return value
        if self.directory:
            try:
                with open(self._path(key)) as handle:
                    value = json.load(handle)
            except (OSError, ValueError):
                value = None
            if value is not None:
                self._memory[key] = value
                self.hits += 1
                return value
        self.misses += 1
        return None

    def put(self, key, value):
        self._memory[key] = value
        if self.directory:
            path = self._path(key)
            tmp = f"{path}.{os.getpid()}.tmp"
            with open(tmp, "w") as handle:
                json.dump(value, handle, sort_keys=True)
            os.replace(tmp, path)

    def __len__(self):
        return len(self._memory)
