"""Pareto frontier over (throughput, area, tail latency).

The search does not reduce the space to one scalar: a configuration
that trades a little throughput for a lot of area is worth reporting
even when it is not "the best". The frontier keeps every evaluated
point no other point dominates — dominance being at-least-as-good on
all three objectives (maximize GB/s, minimize binding-resource area
fraction, minimize p99 latency) and strictly better on one.

Ordering is deterministic (throughput descending, then area, then p99,
then the point's identity key), so the rendered frontier is
byte-identical run to run.
"""


def dominates(a, b):
    """Whether eval ``a`` Pareto-dominates eval ``b``."""
    as_good = (
        a.gbps >= b.gbps
        and a.area_frac <= b.area_frac
        and a.p99_ms <= b.p99_ms
    )
    better = (
        a.gbps > b.gbps
        or a.area_frac < b.area_frac
        or a.p99_ms < b.p99_ms
    )
    return as_good and better


def frontier_sort_key(ev):
    return (-ev.gbps, ev.area_frac, ev.p99_ms, ev.point.key())


def pareto_frontier(evals):
    """The non-dominated subset of ``evals``, deterministically ordered.

    Duplicate points (same identity key) collapse to one entry; points
    tied on every objective all survive — they are genuinely
    incomparable alternatives.
    """
    unique = {}
    for ev in evals:
        unique.setdefault(ev.point.key(), ev)
    candidates = sorted(unique.values(), key=frontier_sort_key)
    front = []
    for ev in candidates:
        if not any(dominates(kept, ev) for kept in front):
            front.append(ev)
    return front
