"""Analytic p99 serving latency for a design point.

The serving runtime (:mod:`repro.serve`) batches streams onto PU slots;
tail latency at a design point comes from three competing effects the
search must trade off:

* **batch fill** — a stream waits for its window of ``serve_slots``
  streams to fill before the batch launches;
* **lockstep drag** — a batch runs as long as its longest stream (the
  SIMD engine's lockstep cost), so bigger batches inherit heavier
  tails from the length distribution;
* **queueing** — consecutive batches serialize on the device, so any
  makespan above the arrival rate's budget compounds.

This module prices those effects in closed form over a seeded
heavy-tailed workload (the same bounded Pareto the serve demo uses) —
no discrete-event serve run, so a latency estimate costs microseconds
and the search can afford one per candidate. Virtual cycles convert to
milliseconds at the device clock; the compiler's one-virtual-cycle-per-
real-cycle guarantee (paper Section 4) makes that exact.
"""

#: Workload shape: bounded Pareto exponent and payload-byte bounds.
ALPHA = 1.3
LEN_LO = 96
LEN_HI = 4_096

#: Offered load relative to the design's batch capacity — arrivals come
#: in at 80% of the rate the device can drain, the regime where batch
#: sizing actually moves the tail.
UTILIZATION = 0.8


def stream_cost_vcycles(model, point, device, length_bytes):
    """Virtual cycles to serve one stream of ``length_bytes``: the
    unit's steady-state rate over the stream, plus the per-stream fill
    cost of moving its first burst through the memory system (DRAM
    access latency, then the PU-port drain of one burst)."""
    config = point.memory_config(device)
    tokens = max(1, length_bytes // model.token_bytes)
    fill = config.dram_latency + config.drain_cycles
    return model.vcpt * tokens + fill


def certified_stream_cost_vcycles(model, point, device, length_bytes):
    """Certified worst-case virtual cycles for one stream, or ``None``
    when the app has no finite certified bound.

    Uses the static cost analysis's sealed per-token vcycle upper bound
    (:mod:`repro.lint.cost`) instead of the profiled mean rate —
    ``token_hi * tokens + cleanup_hi`` plus the same memory-system fill
    cost — so the analytic tail is a *guarantee*, not an estimate.
    """
    bounds = model.certified_bounds()
    if bounds is None:
        return None
    token_hi, cleanup_hi = bounds
    config = point.memory_config(device)
    tokens = max(1, length_bytes // model.token_bytes)
    fill = config.dram_latency + config.drain_cycles
    return token_hi * tokens + cleanup_hi + fill


def latency_samples_ms(model, point, *, device, seed=0, n_streams=128,
                       bound="profiled"):
    """Per-stream latencies (ms) of the modeled serve run, in arrival
    order. Deterministic in (model, point, device, seed, n_streams).

    ``bound="certified"`` prices every stream at its certified
    worst-case cost (raising :class:`ValueError` when the app has no
    finite bound) — the p99 of those samples upper-bounds the profiled
    model's tail at the same design point.
    """
    import random

    from ..serve.workload import zipf_lengths

    rnd = random.Random(seed)
    lengths = zipf_lengths(
        rnd, n_streams, alpha=ALPHA, lo=LEN_LO, hi=LEN_HI
    )
    if bound == "certified":
        costs = [
            certified_stream_cost_vcycles(model, point, device, length)
            for length in lengths
        ]
        if any(cost is None for cost in costs):
            raise ValueError(
                f"{model.name}: no finite certified cost bound"
            )
    else:
        costs = [
            stream_cost_vcycles(model, point, device, length)
            for length in lengths
        ]
    mean_cost = sum(costs) / len(costs)

    # Streams arrive one per spacing; a full batch of ``serve_slots``
    # takes its max cost to run, and the device serves batches back to
    # back. Spacing is set so offered load is UTILIZATION of the
    # device's mean batch drain rate.
    slots = point.serve_slots
    spacing = mean_cost / (UTILIZATION * slots)
    arrivals = [i * spacing for i in range(len(costs))]

    latencies = []
    device_free = 0.0
    for start in range(0, len(costs), slots):
        batch = list(range(start, min(start + slots, len(costs))))
        ready = arrivals[batch[-1]]  # window fills with its last stream
        begin = max(ready, device_free)
        makespan = max(costs[i] for i in batch)
        end = begin + makespan
        device_free = end
        for i in batch:
            latencies.append(end - arrivals[i])

    to_ms = 1_000.0 / device.frequency_hz
    return [latency * to_ms for latency in latencies]


def p99_latency_ms(model, point, *, device, seed=0, n_streams=128,
                   bound="profiled"):
    """Nearest-rank 99th-percentile latency of the modeled run."""
    from ..serve.report import percentile

    return percentile(
        latency_samples_ms(
            model, point, device=device, seed=seed,
            n_streams=n_streams, bound=bound,
        ),
        99,
    )


def certified_p99_latency_ms(model, point, *, device, seed=0,
                             n_streams=128):
    """Certified worst-case analytic p99 (ms), or ``None`` when the
    app carries no finite certified cost bound (decision_tree)."""
    if model.certified_bounds() is None:
        return None
    return p99_latency_ms(
        model, point, device=device, seed=seed, n_streams=n_streams,
        bound="certified",
    )
