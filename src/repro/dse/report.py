"""Rendering search results — deterministically.

Reports carry no wall-clock timestamps and format every float at fixed
precision, so the same search renders byte-identically run after run
(the CLI's determinism contract; the selftest diffs two renders).
"""

import json

from ..obs.attribution import CATEGORIES


def _point_cell(ev):
    p = ev.point
    return (
        f"pus={ev.pu_count} r={p.burst_registers} "
        f"beats={p.layout_beats} ch={p.channels} slots={p.serve_slots}"
    )


def render_dse_json(result):
    """Plain-data form of a :class:`~repro.dse.search.DseResult`."""
    return {
        "app": result.app,
        "fingerprint": result.fingerprint,
        "device": result.device.as_dict(),
        "mode": result.mode,
        "seed": result.seed,
        "budget": result.budget,
        "budget_exhausted": result.budget_exhausted,
        "evaluated": result.evaluated,
        "cache_hits": result.cache_hits,
        "pruned": result.pruned,
        "baseline": result.baseline.as_dict(),
        "best": result.best.as_dict(),
        "speedup": result.speedup,
        "pareto": [ev.as_dict() for ev in result.frontier],
    }


def format_dse_report(result):
    """The human-readable search report, byte-identical per search."""
    lines = []
    lines.append(f"== DSE: {result.app} on {result.device.name} ==")
    lines.append(
        f"mode={result.mode} seed={result.seed} "
        f"evaluated={result.evaluated} cache_hits={result.cache_hits} "
        f"pruned={result.pruned}"
        + (" BUDGET EXHAUSTED" if result.budget_exhausted else "")
    )
    lines.append("")
    base, best = result.baseline, result.best
    lines.append(
        f"baseline  {base.gbps:8.2f} GB/s  area {base.area_frac:6.3f}  "
        f"p99 {base.p99_ms:8.3f} ms  [{_point_cell(base)}]"
    )
    lines.append(
        f"tuned     {best.gbps:8.2f} GB/s  area {best.area_frac:6.3f}  "
        f"p99 {best.p99_ms:8.3f} ms  [{_point_cell(best)}]"
    )
    if best.p99_certified_ms is not None:
        lines.append(
            f"certified worst-case p99 {best.p99_certified_ms:8.3f} ms "
            f"(static cost bounds; baseline "
            f"{base.p99_certified_ms:8.3f} ms)"
        )
    lines.append(f"speedup   {result.speedup:8.3f}x at equal-or-lower area")
    lines.append("")
    lines.append("Pareto frontier (throughput desc):")
    header = (
        f"  {'GB/s':>8}  {'area':>6}  {'p99 ms':>9}  configuration"
    )
    lines.append(header)
    for ev in result.frontier:
        lines.append(
            f"  {ev.gbps:8.2f}  {ev.area_frac:6.3f}  "
            f"{ev.p99_ms:9.3f}  {_point_cell(ev)}"
        )
    attr = best.attribution
    if attr:
        total = sum(attr.values())
        lines.append("")
        lines.append("tuned point's cycle attribution:")
        for category in CATEGORIES:
            n = attr.get(category, 0)
            if not n:
                continue
            pct = 100.0 * n / total if total else 0.0
            lines.append(f"  {category:<18}{pct:7.2f}%")
    return "\n".join(lines) + "\n"


def result_from_payload(payload):
    """Rebuild a renderable :class:`~repro.dse.search.DseResult` from
    its :func:`render_dse_json` form — so a saved ``--json`` file
    re-renders (``python -m repro.report --dse``) byte-identically to
    the search that produced it."""
    from ..system.device import Device
    from .evaluate import PointEval
    from .search import DseResult
    from .space import DesignPoint

    def point_eval(data):
        return PointEval.from_dict(DesignPoint(**data["point"]), data)

    device_fields = dict(payload["device"])
    device = Device(device_fields.pop("name"), **device_fields)
    return DseResult(
        app=payload["app"],
        fingerprint=payload["fingerprint"],
        device=device,
        baseline=point_eval(payload["baseline"]),
        best=point_eval(payload["best"]),
        frontier=[point_eval(d) for d in payload["pareto"]],
        evaluated=payload["evaluated"],
        cache_hits=payload["cache_hits"],
        pruned=payload["pruned"],
        seed=payload["seed"],
        budget=payload["budget"],
        budget_exhausted=payload["budget_exhausted"],
        mode=payload["mode"],
    )


def render_json_text(results):
    """Canonical JSON text for one or more results (the ``--json``
    output): sorted keys, stable separators, trailing newline."""
    payload = [render_dse_json(result) for result in results]
    if len(payload) == 1:
        payload = payload[0]
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"
