"""Automated design-space exploration over the Fleet system models.

The paper fixes one configuration by hand (1024-bit bursts, ``r = 16``
burst registers, four channels, maximal PU count — Sections 5 and 7.2).
This package searches that space instead: given an application and a
device, it explores PU count, burst-register depth, memory layout
(beats per burst), channel mapping, and serve batch size, evaluating
candidates with the same fast engines and event-driven memory
simulator the figures use, pruning with stall attribution from
:mod:`repro.obs`, and reporting a Pareto frontier over (throughput,
area, p99 latency).

Entry points:

* :func:`run_dse` / ``python -m repro.dse --app bloom_filter`` — one
  search, deterministic byte-identical report;
* :data:`repro.dse.tuned.TUNED` — the committed search output the
  serving runtime (:meth:`repro.serve.ServeConfig.from_dse`) and the
  tuned figure mode consume;
* :class:`EvalCache` — content-addressed evaluation store
  (``FLEET_DSE_CACHE`` persists it across processes).

See ``docs/dse.md``.
"""

from .cache import MODEL_VERSION, EvalCache, cache_key
from .evaluate import AppModel, PointEval, evaluate_point
from .latency import (
    certified_p99_latency_ms,
    latency_samples_ms,
    p99_latency_ms,
)
from .pareto import dominates, pareto_frontier
from .report import format_dse_report, render_dse_json
from .search import DseResult, search
from .space import DesignPoint
from .tuned import TUNED, tuned_point, tuned_serve_slots


def run_dse(app, *, device=None, seed=0, budget=None, cache=None,
            quick=False):
    """Search the design space for catalog app ``app`` — the one-call
    form: builds the :class:`AppModel` from the benchmark catalog and
    runs :func:`search` on ``device`` (default: the Amazon F1)."""
    from ..bench.catalog import catalog
    from ..system import AMAZON_F1

    specs = catalog()
    if app not in specs:
        raise KeyError(
            f"unknown app {app!r}: choose from {', '.join(sorted(specs))}"
        )
    model = AppModel.from_spec(specs[app])
    return search(
        model, device=device or AMAZON_F1, seed=seed, budget=budget,
        cache=cache, quick=quick,
    )


__all__ = [
    "AppModel",
    "DesignPoint",
    "DseResult",
    "EvalCache",
    "MODEL_VERSION",
    "PointEval",
    "TUNED",
    "cache_key",
    "dominates",
    "evaluate_point",
    "format_dse_report",
    "certified_p99_latency_ms",
    "latency_samples_ms",
    "p99_latency_ms",
    "pareto_frontier",
    "render_dse_json",
    "run_dse",
    "search",
    "tuned_point",
    "tuned_serve_slots",
]
