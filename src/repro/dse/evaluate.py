"""Evaluating one design point: the DSE's bridge into the system models.

:class:`AppModel` front-loads everything about an application that does
*not* depend on the design point — the compiled unit's area and the
functional-simulation profiles (virtual cycles per token, output ratio)
— so the search loop pays for compilation and profiling once per app,
then evaluates hundreds of points against the fast engines only.

:func:`evaluate_point` is a thin shim over
:func:`repro.system.evaluate_fleet_app` — the same evaluation path the
Figure-7 harness uses — plus the point-dependent area accounting
(:func:`repro.system.estimate_controllers` replaces the device's fixed
controller fraction, so deep-burst layouts pay for their register
storage) and the analytic serving-latency model
(:mod:`repro.dse.latency`).
"""

import hashlib
import json

from ..compiler import compile_unit
from ..obs import Observation
from ..system import (
    estimate_controllers,
    estimate_module,
    evaluate_fleet_app,
    fit_processing_units,
    pu_overhead,
)
from ..system.area import AreaEstimate, area_fraction
from ..system.system_sim import profile_unit_marginal
from .latency import certified_p99_latency_ms, p99_latency_ms

#: Sentinel for the lazily-computed certified bounds (None is a valid
#: computed value: "no finite bound").
_MISSING = object()


class AppModel:
    """Point-independent facts about one application on one device."""

    def __init__(self, name, unit, area, profiles, token_bytes):
        self.name = name
        self.unit = unit
        self.area = area
        self.profiles = profiles
        self.token_bytes = token_bytes
        self.vcpt = (
            sum(p.vcycles_per_token for p in profiles) / len(profiles)
        )
        self.output_ratio = (
            sum(p.output_ratio for p in profiles) / len(profiles)
        )
        self._certified_bounds = _MISSING

    def certified_bounds(self):
        """``(token_hi, cleanup_hi)`` — the static cost analysis's
        certified per-token/cleanup vcycle upper bounds for the
        production unit — or ``None`` when no finite bound exists
        (decision_tree's unbounded BRAM walk). Lazy: the lint pipeline
        runs once per model, only when a certified latency is asked
        for."""
        if self._certified_bounds is _MISSING:
            from ..lint.certificate import certificate_for

            cost = certificate_for(self.unit).cost
            if (cost is not None
                    and cost.token.vcycles[1] is not None
                    and cost.cleanup.vcycles[1] is not None):
                self._certified_bounds = (
                    cost.token.vcycles[1], cost.cleanup.vcycles[1]
                )
            else:
                self._certified_bounds = None
        return self._certified_bounds

    @classmethod
    def from_spec(cls, spec, *, small=None, large=None):
        """Build from a :class:`repro.bench.catalog.AppSpec` — compile
        the production unit for area, profile the (possibly scaled-down)
        profiling unit marginally on the catalog's seeded streams."""
        from ..bench.catalog import LARGE, SMALL

        unit = spec.unit()
        profiled = spec.profile_unit() if spec.profile_unit else unit
        pairs = spec.stream_pairs(small or SMALL, large or LARGE)
        profiles = [
            profile_unit_marginal(profiled, s, l) for s, l in pairs
        ]
        area = estimate_module(compile_unit(unit))
        return cls(spec.key, unit, area, profiles,
                   max(1, unit.input_width // 8))

    def fingerprint(self):
        """Content address of everything evaluation depends on: the
        area estimate and the steady-state profile rates. Two apps with
        the same fingerprint evaluate identically at every point, so
        the cache may share their entries."""
        payload = {
            "name": self.name,
            "token_bytes": self.token_bytes,
            "area": {
                "luts": self.area.luts,
                "ffs": self.area.ffs,
                "bram36": self.area.bram36,
            },
            "profiles": [
                [p.vcycles_per_token, p.output_ratio]
                for p in self.profiles
            ],
            # Certified bounds feed the analytic worst-case latency,
            # so they are part of the evaluation identity too.
            "certified_bounds": (
                None if self.certified_bounds() is None
                else list(self.certified_bounds())
            ),
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


class PointEval:
    """One evaluated design point."""

    __slots__ = ("point", "pu_count", "max_pu_count", "feasible", "gbps",
                 "theoretical_gbps", "area_frac", "p99_ms",
                 "p99_certified_ms", "attribution")

    def __init__(self, point, *, pu_count, max_pu_count, feasible, gbps,
                 theoretical_gbps, area_frac, p99_ms, attribution,
                 p99_certified_ms=None):
        self.point = point
        self.pu_count = pu_count
        self.max_pu_count = max_pu_count
        self.feasible = feasible
        self.gbps = gbps
        self.theoretical_gbps = theoretical_gbps
        self.area_frac = area_frac
        self.p99_ms = p99_ms
        # Certified worst-case analytic p99 (None when the app has no
        # finite certified cost bound).
        self.p99_certified_ms = p99_certified_ms
        self.attribution = attribution

    def as_dict(self):
        return {
            "point": self.point.as_dict(),
            "pu_count": self.pu_count,
            "max_pu_count": self.max_pu_count,
            "feasible": self.feasible,
            "gbps": self.gbps,
            "theoretical_gbps": self.theoretical_gbps,
            "area_frac": self.area_frac,
            "p99_ms": self.p99_ms,
            "p99_certified_ms": self.p99_certified_ms,
            "attribution": self.attribution,
        }

    @classmethod
    def from_dict(cls, point, data):
        return cls(
            point,
            pu_count=data["pu_count"],
            max_pu_count=data["max_pu_count"],
            feasible=data["feasible"],
            gbps=data["gbps"],
            theoretical_gbps=data["theoretical_gbps"],
            area_frac=data["area_frac"],
            p99_ms=data["p99_ms"],
            # Absent in pre-certified-bound payloads.
            p99_certified_ms=data.get("p99_certified_ms"),
            attribution=data["attribution"],
        )

    def __repr__(self):
        return (
            f"PointEval({self.point!r}, {self.gbps:.2f} GB/s, "
            f"area={self.area_frac:.3f}, p99={self.p99_ms:.2f} ms)"
        )


def resolve_pu_count(model, point, device):
    """(pu_count, max_fit) for ``point`` with its controllers budgeted.

    Explicit counts are rounded down to a whole number of PUs per used
    channel; ``None`` takes the maximum that fits."""
    config = point.memory_config(device)
    controllers = estimate_controllers(config)
    max_fit = fit_processing_units(
        model.area, device, config, controller_area=controllers
    )
    if point.pu_count is None:
        return max_fit, max_fit
    count = max(point.channels,
                point.pu_count - point.pu_count % point.channels)
    return count, max_fit


def design_area(model, point, pu_count, device):
    """Total area of the design: replicated PUs (unit + per-PU IO
    plumbing) plus the used channels' controller pairs."""
    config = point.memory_config(device)
    overhead = pu_overhead(config)
    controllers = estimate_controllers(config).scaled(point.channels)
    return AreaEstimate(
        luts=pu_count * (model.area.luts + overhead.luts)
        + controllers.luts,
        ffs=pu_count * (model.area.ffs + overhead.ffs) + controllers.ffs,
        bram36=pu_count * (model.area.bram36 + overhead.bram36)
        + controllers.bram36,
    )


def evaluate_point(model, point, *, device, sim_cycles=4_000, seed=0,
                   latency_streams=128):
    """Evaluate ``point`` for ``model``'s app on ``device``.

    Runs the event-driven memory simulation (with cycle attribution —
    the pruning signal) through :func:`evaluate_fleet_app`, then the
    analytic serving-latency model. Deterministic in all arguments.
    """
    pu_count, max_fit = resolve_pu_count(model, point, device)
    feasible = pu_count <= max_fit
    obs = Observation()
    result = evaluate_fleet_app(
        model.name, model.unit,
        device=device,
        config=point.memory_config(device),
        sim_cycles=sim_cycles,
        pu_count=pu_count,
        channels=point.channels,
        area=model.area,
        profile_cache={"profiles": model.profiles},
        profile_cache_key="profiles",
        obs=obs,
    )
    frac = area_fraction(
        design_area(model, point, pu_count, device), device
    )
    p99 = p99_latency_ms(
        model, point, device=device, seed=seed, n_streams=latency_streams
    )
    p99_certified = certified_p99_latency_ms(
        model, point, device=device, seed=seed, n_streams=latency_streams
    )
    return PointEval(
        point,
        pu_count=pu_count,
        max_pu_count=max_fit,
        feasible=feasible,
        gbps=result.gbps,
        theoretical_gbps=result.theoretical_gbps,
        area_frac=frac,
        p99_ms=p99,
        p99_certified_ms=p99_certified,
        attribution=result.attribution,
    )
