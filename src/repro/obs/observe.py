"""The observation objects the simulators record into.

An :class:`Observation` is created by the caller (or by
``FLEET_TRACE``-driven auto-enabling in :func:`repro.system.run_full_system`)
and passed to :class:`~repro.memory.ChannelSystem`,
:func:`~repro.memory.simulate_channels`, or the full-system/bench entry
points. Each simulated channel attaches a :class:`ChannelObservation`
scope holding its cycle attribution, counters, histograms, and per-PU
accounting; a shared :class:`~repro.obs.tracer.TraceRecorder` (when
tracing is on) collects span events across channels.

Everything here is **opt-in**: with no observation attached the
simulators skip every hook behind a single ``is None`` check, so the
disabled cost is one branch per cycle (the perf-regression harness
guards this).

Attribution, histograms, and per-PU statistics are engine-independent:
they are recorded either at simulation *events* (which the stepped and
event-driven engines execute identically) or per-cycle with an exact
closed-form equivalent for skipped windows — the differential tests
assert bit-identity.
"""

import threading
from collections import deque

from .attribution import ChannelAttribution
from .counters import Registry
from .tracer import TID_AXI_READ, TID_AXI_WRITE, TID_PU_BASE, TraceRecorder


class PuStats:
    """Event-based input/output accounting for one processing unit.

    ``busy_cycles`` sums the unit's drain+compute intervals (they never
    overlap: the next drain starts at or after the previous completion);
    ``starved_cycles`` sums the gaps where the unit's input buffer sat
    empty waiting for the input controller (including initial startup);
    ``deferred_bursts`` counts bursts whose drain had to wait because the
    unit's buffer was still busy — the source of ``pu_backpressure``
    attribution.
    """

    __slots__ = ("bytes_in", "bytes_out", "bursts", "busy_cycles",
                 "starved_cycles", "deferred_bursts")

    def __init__(self):
        self.bytes_in = 0
        self.bytes_out = 0
        self.bursts = 0
        self.busy_cycles = 0
        self.starved_cycles = 0
        self.deferred_bursts = 0

    def utilization(self, total_cycles):
        """Fraction of the run this unit spent draining or computing."""
        if not total_cycles:
            return 0.0
        return self.busy_cycles / total_cycles

    def as_dict(self, total_cycles=None):
        out = {
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "bursts": self.bursts,
            "busy_cycles": self.busy_cycles,
            "starved_cycles": self.starved_cycles,
            "deferred_bursts": self.deferred_bursts,
        }
        if total_cycles is not None:
            out["utilization"] = round(self.utilization(total_cycles), 4)
        return out

    def __eq__(self, other):
        if isinstance(other, PuStats):
            return all(
                getattr(self, field) == getattr(other, field)
                for field in self.__slots__
            )
        return NotImplemented


class ChannelObservation:
    """One channel's worth of instrumentation (see module docstring)."""

    def __init__(self, index, config, n_pus, tracer=None):
        self.index = index
        self.config = config
        self.tracer = tracer
        self.attribution = ChannelAttribution()
        self.registry = Registry()
        self.reg_occupancy = self.registry.histogram("reg_occupancy")
        self.addr_lead = self.registry.histogram("addr_lead")
        self.read_bursts = self.registry.counter("read_bursts")
        self.write_bursts = self.registry.counter("write_bursts")
        self.pu_stats = [PuStats() for _ in range(n_pus)]
        self._read_submits = deque()  # submit cycles, AXI order
        self.cycles = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.pu_traces = None  # per-PU functional-trace summaries
        if tracer is not None:
            tracer.process_name(index, f"channel {index}")
            tracer.thread_name(index, TID_AXI_READ, "axi-read")
            tracer.thread_name(index, TID_AXI_WRITE, "axi-write")
            for pu in range(n_pus):
                tracer.thread_name(index, TID_PU_BASE + pu, f"pu {pu}")

    # -- per-cycle hooks (ChannelSystem) -------------------------------------
    def on_cycle(self, now, system, delivered, wrote, accept):
        """Classify one stepped cycle and sample burst-register
        occupancy."""
        self.attribution.record(
            self.attribution.classify_step(
                now, system, delivered, wrote, accept
            )
        )
        self.reg_occupancy.record(
            system.input_controller.occupied_registers(now)
        )

    def on_window(self, start, end, system):
        """Attribute an event-driven skipped window [start, end) exactly
        as stepping would have (all classifier inputs except the refresh
        phase are frozen inside the window)."""
        self.attribution.record_window(start, end, system)
        self.reg_occupancy.record(
            system.input_controller.occupied_registers(start), end - start
        )

    # -- event hooks (controllers) -------------------------------------------
    def read_submitted(self, now):
        self._read_submits.append(now)

    def read_burst_done(self, pu, nbytes, now):
        """The last beat of a read burst arrived at ``now``."""
        submitted = self._read_submits.popleft()
        self.read_bursts.add()
        self.addr_lead.record(now - submitted)
        if self.tracer is not None:
            self.tracer.complete(
                f"read pu{pu}", submitted, now, pid=self.index,
                tid=TID_AXI_READ, args={"pu": pu, "bytes": nbytes},
            )

    def pu_burst(self, pu, drain_start, done, prev_free, nbytes):
        """A burst was scheduled to drain into PU ``pu``."""
        stats = self.pu_stats[pu]
        stats.bytes_in += nbytes
        stats.bursts += 1
        stats.busy_cycles += done - drain_start
        if drain_start > prev_free:
            stats.starved_cycles += drain_start - prev_free
        else:
            stats.deferred_bursts += 1
        if self.tracer is not None:
            self.tracer.complete(
                "process", drain_start, done, pid=self.index,
                tid=TID_PU_BASE + pu, args={"bytes": nbytes},
            )

    def pu_output(self, pu, nbytes):
        self.pu_stats[pu].bytes_out += nbytes

    def write_burst_done(self, pu, nbytes, submitted, now):
        """A write burst's beats finished crossing the bus at ``now``."""
        self.write_bursts.add()
        if self.tracer is not None:
            self.tracer.complete(
                f"write pu{pu}", submitted, now, pid=self.index,
                tid=TID_AXI_WRITE, args={"pu": pu, "bytes": nbytes},
            )

    # -- completion ----------------------------------------------------------
    def finalize(self, stats, system=None):
        """Record the run's totals (called by ``ChannelSystem.run`` /
        ``run_for``); captures functional-PU trace summaries when the
        PUs carry them."""
        self.cycles = stats.cycles
        self.bytes_in = stats.bytes_in
        self.bytes_out = stats.bytes_out
        if system is not None:
            traces = []
            for pu in system.pus:
                sim = getattr(pu, "sim", None)
                trace = getattr(sim, "trace", None)
                if trace is None:
                    traces = None
                    break
                traces.append({
                    "tokens_in": trace.tokens_in,
                    "tokens_out": trace.tokens_out,
                    "total_vcycles": trace.total_vcycles,
                    "cleanup_vcycles": trace.cleanup_vcycles,
                })
            self.pu_traces = traces

    def as_dict(self):
        """This channel's report fragment (plain JSON-serializable
        data)."""
        out = {
            "index": self.index,
            "cycles": self.cycles,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "input_gbps": round(
                self.config.gbps(self.bytes_in, self.cycles), 4
            ),
            "output_gbps": round(
                self.config.gbps(self.bytes_out, self.cycles), 4
            ),
            "attribution": self.attribution.as_dict(),
            "attribution_pct": {
                k: round(v, 2)
                for k, v in self.attribution.percentages().items()
            },
            "counters": self.registry.as_dict(),
            "reg_occupancy_mean": round(self.reg_occupancy.mean, 3),
            "addr_lead_mean": round(self.addr_lead.mean, 3),
            "pus": [
                stats.as_dict(self.cycles) for stats in self.pu_stats
            ],
        }
        if self.pu_traces is not None:
            out["pu_traces"] = self.pu_traces
        return out


class Observation:
    """Top-level observability scope for one or more channel runs.

    Pass one instance through ``ChannelSystem`` / ``simulate_channels`` /
    ``run_full_system`` / ``evaluate_fleet_app``; inspect
    :attr:`channels`, :meth:`report`, :meth:`summary`, and (with
    ``trace=True``) :meth:`write_trace` afterwards.

    There is no module-level observability state anywhere in
    :mod:`repro.obs` — every collector hangs off an ``Observation``
    instance, so concurrent device/channel runs (the multi-device
    serving runtime, parallel test shards) cannot bleed counters into
    each other as long as each simulation gets its own scope. Channel
    *registration* on a shared instance is additionally thread-safe:
    scope creation is serialized so each concurrent channel gets a
    distinct index. The per-cycle recording hooks inside one scope stay
    lock-free (they are single-simulation hot paths); give each
    concurrently simulated device its own scope, the way
    :mod:`repro.serve` keeps one collector per device shard.
    """

    def __init__(self, *, trace=False):
        self.tracer = TraceRecorder() if trace else None
        self.channels = []
        self.frequency_hz = None
        self._register_lock = threading.Lock()

    def channel(self, config, n_pus):
        """Attach (and return) a new per-channel scope (thread-safe)."""
        with self._register_lock:
            if self.frequency_hz is None:
                self.frequency_hz = config.frequency_hz
            scope = ChannelObservation(
                len(self.channels), config, n_pus, tracer=self.tracer
            )
            self.channels.append(scope)
        return scope

    def report(self):
        """The structured run report (see :mod:`repro.obs.report`)."""
        from .report import build_report
        return build_report(self)

    def summary(self):
        """Human-readable report text."""
        from .report import build_report, format_report
        return format_report(build_report(self))

    def write_trace(self, path):
        """Write the Chrome trace-event JSON; returns the path."""
        if self.tracer is None:
            raise ValueError(
                "tracing is not enabled (construct Observation(trace=True) "
                "or set FLEET_TRACE)"
            )
        return self.tracer.write(path, frequency_hz=self.frequency_hz)
