"""Chrome trace-event recording (Perfetto / ``chrome://tracing``).

The recorder stores spans and instants with *cycle* timestamps; export
converts cycles to microseconds using the channel clock so the timeline
in Perfetto reads in real time. The export is the JSON object form of
the Trace Event Format: ``{"traceEvents": [...], ...}`` with ``ph`` "X"
(complete spans), "i" (instants), and "M" (process/thread metadata).

Track layout: one *process* per simulated channel, with one thread for
the AXI read path, one for the AXI write path, and one per processing
unit. Events are recorded at the same simulation events in both the
stepped and event-driven engines, so traces are engine-independent; the
export sorts by timestamp, which the schema tests rely on.
"""

import json

#: Thread ids within one channel's process.
TID_AXI_READ = 0
TID_AXI_WRITE = 1
TID_PU_BASE = 2


class TraceRecorder:
    """Collects trace events; timestamps are in cycles until export."""

    def __init__(self):
        self.events = []
        self._meta = []

    # -- recording -----------------------------------------------------------
    def complete(self, name, start, end, *, pid=0, tid=0, args=None):
        """A span covering cycles [start, end)."""
        self.events.append({
            "ph": "X", "name": name, "ts": start, "dur": end - start,
            "pid": pid, "tid": tid, "args": args or {},
        })

    def instant(self, name, ts, *, pid=0, tid=0, args=None):
        self.events.append({
            "ph": "i", "name": name, "ts": ts, "s": "t",
            "pid": pid, "tid": tid, "args": args or {},
        })

    def process_name(self, pid, name):
        self._meta.append({
            "ph": "M", "name": "process_name", "ts": 0, "pid": pid,
            "tid": 0, "args": {"name": name},
        })

    def thread_name(self, pid, tid, name):
        self._meta.append({
            "ph": "M", "name": "thread_name", "ts": 0, "pid": pid,
            "tid": tid, "args": {"name": name},
        })

    # -- export --------------------------------------------------------------
    def to_chrome(self, frequency_hz=None):
        """The Trace Event Format object. ``frequency_hz`` converts cycle
        timestamps to microseconds (Perfetto's native unit); without it,
        timestamps stay in cycles (1 cycle == 1 us on the timeline)."""
        scale = 1e6 / frequency_hz if frequency_hz else 1.0

        def convert(event):
            out = dict(event)
            out["ts"] = round(event["ts"] * scale, 3)
            if "dur" in event:
                out["dur"] = round(event["dur"] * scale, 3)
            return out

        events = [convert(e) for e in self._meta]
        events += sorted(
            (convert(e) for e in self.events),
            key=lambda e: (e["ts"], e["pid"], e["tid"]),
        )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": {
                "generator": "repro.obs",
                "timestamp_unit": "us" if frequency_hz else "cycles",
            },
        }

    def write(self, path, frequency_hz=None):
        """Write the trace as JSON; returns the path."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(frequency_hz), fh, indent=1)
            fh.write("\n")
        return path

    def __len__(self):
        return len(self.events)
