"""Counters and histograms for the observability layer.

Deliberately tiny: a counter is an integer with a name, a histogram is a
sparse ``bucket -> count`` mapping. Everything the simulators record is
built from these two primitives so reports and tests can treat all
metrics uniformly (:meth:`Registry.as_dict`).

Histograms support weighted recording (``record(bucket, n)``) because the
event-driven engine attributes whole skipped windows in one call; the
differential tests require the resulting histograms to be identical to
per-cycle sampling.
"""


class Counter:
    """A named monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def add(self, n=1):
        self.value += n

    def __repr__(self):
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """A named sparse histogram over integer buckets."""

    __slots__ = ("name", "buckets")

    def __init__(self, name):
        self.name = name
        self.buckets = {}

    def record(self, bucket, n=1):
        buckets = self.buckets
        buckets[bucket] = buckets.get(bucket, 0) + n

    @property
    def total(self):
        """Total observations across every bucket."""
        return sum(self.buckets.values())

    @property
    def mean(self):
        """Observation-weighted mean bucket value (0.0 when empty)."""
        total = self.total
        if not total:
            return 0.0
        return sum(b * n for b, n in self.buckets.items()) / total

    @property
    def max(self):
        return max(self.buckets) if self.buckets else 0

    def as_dict(self):
        """Bucket -> count with string keys in ascending bucket order
        (JSON object keys must be strings)."""
        return {str(b): self.buckets[b] for b in sorted(self.buckets)}

    def __eq__(self, other):
        if isinstance(other, Histogram):
            return self.buckets == other.buckets
        return NotImplemented

    def __repr__(self):
        return (
            f"Histogram({self.name!r}, n={self.total}, "
            f"mean={self.mean:.2f})"
        )


class Registry:
    """A flat namespace of counters and histograms."""

    def __init__(self):
        self._counters = {}
        self._histograms = {}

    def counter(self, name):
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name):
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name)
        return hist

    def as_dict(self):
        out = {name: c.value for name, c in sorted(self._counters.items())}
        for name, hist in sorted(self._histograms.items()):
            out[name] = hist.as_dict()
        return out
