"""Per-channel cycle attribution: where every bus cycle goes.

Every cycle of a channel simulation is classified into exactly one
category, so the categories always sum to the total cycle count — the
invariant the property tests enforce:

* ``data_beat_in`` — a read data beat crossed the bus;
* ``data_beat_out`` — a write data beat crossed the bus;
* ``refresh`` — the bus was idled by a DRAM refresh window;
* ``bus_turnaround`` — the bus was switching direction (the switch cycle
  itself plus the ``turnaround_cycles`` penalty);
* ``bank_gap`` — bank-management overhead after a request;
* ``pu_backpressure`` — a read beat was ready but every burst register
  was occupied and at least one occupied register is waiting on a PU
  whose input buffer was busy when its drain was scheduled (the
  downstream consumer, not the register count, is the bottleneck);
* ``no_burst_register`` — a read beat was ready but every burst register
  was occupied purely by drains in progress (more registers would have
  helped — the Figure 9 ``r = 1`` signature);
* ``idle`` — nothing was ready: no request ready on either path.  DRAM
  access latency with no address supplied ahead shows up here, which is
  the synchronous-addressing ablation's signature.

Priority order (refresh over turnaround over bank-gap over data over
consumer stalls over idle) mirrors the bus scheduler's own guard order in
:meth:`repro.memory.dram.DramChannel.step`, so the attribution of a cycle
is exactly the reason the scheduler did (or did not) act.

The event-driven engine attributes a skipped window in closed form
(:meth:`ChannelAttribution.record_window`): inside a provably idle window
every classifier input is frozen except the refresh phase — the runner's
thresholds guarantee no turnaround/bank-gap/``ready_at``/register/PU
boundary is crossed — so the window splits into analytically counted
refresh cycles plus a constant base category. The differential tests
assert this equals per-cycle stepping exactly.
"""

DATA_BEAT_IN = "data_beat_in"
DATA_BEAT_OUT = "data_beat_out"
REFRESH = "refresh"
BUS_TURNAROUND = "bus_turnaround"
BANK_GAP = "bank_gap"
PU_BACKPRESSURE = "pu_backpressure"
NO_BURST_REGISTER = "no_burst_register"
IDLE = "idle"

#: Every category, in report order.
CATEGORIES = (
    DATA_BEAT_IN,
    DATA_BEAT_OUT,
    REFRESH,
    BUS_TURNAROUND,
    BANK_GAP,
    PU_BACKPRESSURE,
    NO_BURST_REGISTER,
    IDLE,
)


def refresh_cycles_between(start, end, interval, refresh_cycles):
    """Number of cycles c in [start, end) with ``c % interval <
    refresh_cycles`` — the refreshing cycles of the window, in closed
    form."""
    if end <= start or not interval or not refresh_cycles:
        return 0

    def upto(limit):  # refreshing cycles in [0, limit)
        return (limit // interval) * refresh_cycles + min(
            limit % interval, refresh_cycles
        )

    return upto(end) - upto(start)


class ChannelAttribution:
    """Category -> cycle counts for one channel."""

    __slots__ = ("cycles",)

    def __init__(self):
        self.cycles = {category: 0 for category in CATEGORIES}

    @property
    def total(self):
        return sum(self.cycles.values())

    def record(self, category, n=1):
        self.cycles[category] += n

    def classify_step(self, now, system, delivered, wrote, accept):
        """Classify one stepped cycle from the channel's post-step state
        (see the module docstring for the category semantics)."""
        if delivered is not None:
            return DATA_BEAT_IN
        if wrote:
            return DATA_BEAT_OUT
        dram = system.dram
        if dram.refreshing_at(now):
            return REFRESH
        if dram.turnaround_until > now:
            return BUS_TURNAROUND
        if dram.bank_gap_until > now:
            return BANK_GAP
        if dram.read_head_ready(now) and not accept:
            return system.input_controller.stall_category(now)
        return IDLE

    def record_window(self, start, end, system):
        """Attribute the skipped window [start, end) of an event-driven
        jump, identically to stepping each cycle.

        The runner only jumps across cycles whose classifier inputs are
        frozen (no threshold boundary lies inside the window), except the
        refresh phase, which is periodic and counted in closed form.
        """
        dram = system.dram
        config = system.config
        refreshing = refresh_cycles_between(
            start, end, config.refresh_interval, config.refresh_cycles
        )
        if refreshing:
            self.cycles[REFRESH] += refreshing
        rest = (end - start) - refreshing
        if not rest:
            return
        if dram.turnaround_until > start:
            base = BUS_TURNAROUND
        elif dram.bank_gap_until > start:
            base = BANK_GAP
        elif dram.read_head_ready(start) and not (
            system.input_controller.can_accept_beat(start)
        ):
            base = system.input_controller.stall_category(start)
        else:
            base = IDLE
        self.cycles[base] += rest

    def as_dict(self):
        """Category -> cycles (every category present, report order)."""
        return dict(self.cycles)

    def percentages(self):
        """Category -> percent of total cycles (0.0 when no cycles)."""
        total = self.total
        if not total:
            return {category: 0.0 for category in CATEGORIES}
        return {
            category: 100.0 * n / total
            for category, n in self.cycles.items()
        }

    def __eq__(self, other):
        if isinstance(other, ChannelAttribution):
            return self.cycles == other.cycles
        return NotImplemented

    def __repr__(self):
        top = max(self.cycles, key=self.cycles.get)
        return (
            f"ChannelAttribution(total={self.total}, top={top}="
            f"{self.cycles[top]})"
        )


def summarize_attribution(cycles, indent=""):
    """Render a category -> cycles mapping as aligned percentage lines."""
    total = sum(cycles.values())
    lines = []
    for category in CATEGORIES:
        n = cycles.get(category, 0)
        if not n:
            continue
        pct = 100.0 * n / total if total else 0.0
        lines.append(f"{indent}{category:<18}{n:>12}  {pct:6.2f}%")
    return "\n".join(lines)
