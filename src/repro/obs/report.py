"""Structured run reports built from an :class:`~repro.obs.Observation`.

``build_report`` produces plain JSON-serializable data (the machine
form); ``format_report`` renders the human-readable breakdown table the
``python -m repro.report`` CLI prints. The aggregate section sums cycle
attribution across channels (each channel's attribution still sums to
that channel's own cycle count — the per-channel invariant the tests
enforce).
"""

from .attribution import CATEGORIES, summarize_attribution

#: Bumped when the report layout changes incompatibly.
REPORT_SCHEMA = "repro.obs.report/v1"


def build_report(observation):
    """The structured run report for one observation."""
    channels = [channel.as_dict() for channel in observation.channels]
    aggregate = {category: 0 for category in CATEGORIES}
    total_cycles = total_in = total_out = 0
    busy = starved = 0
    for channel in channels:
        for category, cycles in channel["attribution"].items():
            aggregate[category] += cycles
        total_cycles += channel["cycles"]
        total_in += channel["bytes_in"]
        total_out += channel["bytes_out"]
        for pu in channel["pus"]:
            busy += pu["busy_cycles"]
            starved += pu["starved_cycles"]
    agg_total = sum(aggregate.values())
    return {
        "schema": REPORT_SCHEMA,
        "frequency_hz": observation.frequency_hz,
        "traced": observation.tracer is not None,
        "channels": channels,
        "aggregate": {
            "channels": len(channels),
            "cycles": total_cycles,
            "bytes_in": total_in,
            "bytes_out": total_out,
            "attribution": aggregate,
            "attribution_pct": {
                category: round(100.0 * n / agg_total, 2) if agg_total
                else 0.0
                for category, n in aggregate.items()
            },
            "pu_busy_cycles": busy,
            "pu_starved_cycles": starved,
        },
    }


def format_report(report):
    """Render a report dict as the human-readable breakdown."""
    lines = []
    for channel in report["channels"]:
        lines.append(
            f"channel {channel['index']}: {channel['cycles']} cycles, "
            f"in {channel['input_gbps']:.2f} GB/s, "
            f"out {channel['output_gbps']:.2f} GB/s"
        )
        lines.append(f"{'  category':<20}{'cycles':>12}  {'share':>7}")
        lines.append("  " + "-" * 40)
        lines.append(summarize_attribution(channel["attribution"],
                                           indent="  "))
        lines.append(
            f"  burst-register occupancy mean "
            f"{channel['reg_occupancy_mean']:.2f}, "
            f"address->data lead mean {channel['addr_lead_mean']:.1f} "
            f"cycles"
        )
        pus = channel["pus"]
        if pus:
            utils = [pu.get("utilization", 0.0) for pu in pus]
            starved = sum(pu["starved_cycles"] for pu in pus)
            lines.append(
                f"  {len(pus)} PUs: utilization min "
                f"{min(utils):.2f} / mean "
                f"{sum(utils) / len(utils):.2f} / max {max(utils):.2f}, "
                f"starved {starved} PU-cycles total"
            )
        lines.append("")
    agg = report["aggregate"]
    lines.append(
        f"aggregate ({agg['channels']} channel"
        f"{'s' if agg['channels'] != 1 else ''}): "
        f"{agg['cycles']} cycles, {agg['bytes_in']} bytes in, "
        f"{agg['bytes_out']} bytes out"
    )
    lines.append(summarize_attribution(agg["attribution"], indent="  "))
    return "\n".join(lines)


def validate_report(report):
    """Assert the report's internal invariants (used by the CLI
    selftest and CI): per-channel attribution sums to the channel's
    cycles and the aggregate is the channel sum. Returns the report."""
    for channel in report["channels"]:
        total = sum(channel["attribution"].values())
        if total != channel["cycles"]:
            raise AssertionError(
                f"channel {channel['index']}: attribution sums to "
                f"{total}, expected {channel['cycles']} cycles"
            )
        occupancy = sum(
            channel["counters"]["reg_occupancy"].values()
        )
        if occupancy != channel["cycles"]:
            raise AssertionError(
                f"channel {channel['index']}: occupancy histogram covers "
                f"{occupancy} cycles, expected {channel['cycles']}"
            )
    agg = report["aggregate"]
    for category in CATEGORIES:
        expected = sum(
            channel["attribution"][category]
            for channel in report["channels"]
        )
        if agg["attribution"][category] != expected:
            raise AssertionError(
                f"aggregate attribution for {category} is not the "
                f"channel sum"
            )
    return report
