"""``repro.obs`` — opt-in, zero-cost-when-disabled observability for the
memory/system simulators: cycle attribution (where every channel cycle
goes), counters and histograms, per-PU stall/utilization accounting, and
Chrome trace-event export (Perfetto-loadable).

Quick start::

    from repro.obs import Observation
    from repro.system import run_full_system

    obs = Observation(trace=True)
    result = run_full_system(unit, streams, obs=obs)
    print(obs.summary())            # human-readable breakdown
    report = obs.report()           # machine JSON
    obs.write_trace("trace.json")   # open in https://ui.perfetto.dev

or set ``FLEET_TRACE=trace.json`` to auto-instrument
``run_full_system``. See ``docs/observability.md``.
"""

from .attribution import (
    BANK_GAP,
    BUS_TURNAROUND,
    CATEGORIES,
    DATA_BEAT_IN,
    DATA_BEAT_OUT,
    IDLE,
    NO_BURST_REGISTER,
    PU_BACKPRESSURE,
    REFRESH,
    ChannelAttribution,
    refresh_cycles_between,
    summarize_attribution,
)
from .counters import Counter, Histogram, Registry
from .observe import ChannelObservation, Observation, PuStats
from .report import REPORT_SCHEMA, build_report, format_report, validate_report
from .tracer import TraceRecorder

__all__ = [
    "BANK_GAP",
    "BUS_TURNAROUND",
    "CATEGORIES",
    "DATA_BEAT_IN",
    "DATA_BEAT_OUT",
    "IDLE",
    "NO_BURST_REGISTER",
    "PU_BACKPRESSURE",
    "REFRESH",
    "REPORT_SCHEMA",
    "ChannelAttribution",
    "ChannelObservation",
    "Counter",
    "Histogram",
    "Observation",
    "PuStats",
    "Registry",
    "TraceRecorder",
    "build_report",
    "format_report",
    "refresh_cycles_between",
    "summarize_attribution",
    "validate_report",
]
