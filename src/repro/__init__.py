"""Reproduction of *Fleet: A Framework for Massively Parallel Streaming on
FPGAs* (Thomas, Hanrahan, Zaharia — ASPLOS 2020).

Public entry points:

* :mod:`repro.lang` — the Fleet processing-unit DSL.
* :mod:`repro.interp` — the software (virtual-cycle) simulator.
* :mod:`repro.compiler` — the Fleet-to-RTL compiler (paper Section 4).
* :mod:`repro.rtl` — the RTL IR, cycle-accurate simulator, Verilog emitter.
* :mod:`repro.memory` — the multi-stream memory controller (Section 5).
* :mod:`repro.system` — replicated designs, area/power models, the runtime.
* :mod:`repro.apps` — the paper's six applications plus running examples.
* :mod:`repro.isa`, :mod:`repro.baselines` — CPU/GPU/HLS comparators.
* :mod:`repro.bench` — workload generators and experiment harnesses.
"""

__version__ = "1.0.0"
