"""Bloom filter construction (paper Section 7.1).

The unit computes and emits a Bloom filter for each block of items. Items
are 32-bit little-endian integers arriving as 8-bit tokens; each item is
hashed with ``num_hashes`` multiplicative hash functions and one bit per
hash is set in the filter.

The filter is *blocked*: it is partitioned into ``num_hashes`` equal
sections, one BRAM per section, with hash function ``j`` setting a bit only
in section ``j``. This is what lets the hardware perform all hash updates
in a single virtual cycle — each section BRAM sees exactly one
read-modify-write — and it is also why consecutive items hashing into the
same word exercise the compiler's BRAM read-after-write forwarding.

At the end of each block the unit emits the filter section by section as
bytes (clearing words as they are emitted, ready for the next block), so
the output stream is ``blocks * num_hashes * section_bits / 8`` bytes.
A final partial block is not emitted (blocks are emitted on the token that
*completes* them, as in the paper's Figure 3 running example).
"""

from ..lang import UnitBuilder

#: Odd multiplicative hashing constants (Knuth-style); compile-time fixed,
#: shared by the hardware unit, the golden model, and the ISA baselines.
HASH_CONSTANTS = (
    0x9E3779B1, 0x85EBCA77, 0xC2B2AE3D, 0x27D4EB2F,
    0x165667B1, 0xD3A2646D, 0xFD7046C5, 0xB55A4F09,
)


def _hash_value(x, j, section_bits):
    """Multiplicative hash of 32-bit ``x`` into ``[0, section_bits)``."""
    shift = 32 - max(1, (section_bits - 1).bit_length())
    return ((x * HASH_CONSTANTS[j]) & 0xFFFFFFFF) >> shift


def bloom_filter_unit(block_size=64, num_hashes=8, section_bits=1024):
    """Build the Bloom filter construction unit.

    ``section_bits`` must be a power of two (one BRAM section per hash
    function, each holding ``section_bits`` filter bits as 8-bit words).
    """
    if section_bits & (section_bits - 1):
        raise ValueError("section_bits must be a power of two")
    if not 1 <= num_hashes <= len(HASH_CONSTANTS):
        raise ValueError(f"num_hashes must be in [1, {len(HASH_CONSTANTS)}]")
    words_per_section = section_bits // 8
    bit_index_width = (section_bits - 1).bit_length()
    shift = 32 - bit_index_width

    b = UnitBuilder("bloom_filter", input_width=8, output_width=8)
    sections = [
        b.bram(f"section_{j}", elements=words_per_section, width=8)
        for j in range(num_hashes)
    ]
    item = b.reg("item", width=32, init=0)  # assembles the 32-bit item
    byte_count = b.reg("byte_count", width=2, init=0)
    item_count = b.reg(
        "item_count", width=max(1, block_size.bit_length()), init=0
    )
    # Emission cursor: section index and word index, flattened.
    emit_idx = b.reg(
        "emit_idx",
        width=(num_hashes * words_per_section).bit_length() + 1,
        init=0,
    )
    emitting = b.reg("emitting", width=1, init=0)

    total_words = num_hashes * words_per_section

    with b.while_(emitting == 1):
        # One word per virtual cycle: emit it and clear it. The section is
        # selected by a metaprogrammed mux over the emit cursor.
        for j in range(num_hashes):
            lo = j * words_per_section
            hi = lo + words_per_section
            with b.when(b.all_of(emit_idx >= lo, emit_idx < hi)):
                word = (emit_idx - lo).bits(
                    max(0, words_per_section - 1).bit_length() - 1
                    if words_per_section > 1 else 0,
                    0,
                )
                b.emit(sections[j][word])
                sections[j][word] = 0
        last_word = emit_idx == total_words - 1
        emit_idx.set(b.mux(last_word, 0, emit_idx + 1))
        with b.when(last_word):
            emitting.set(0)

    # Token assembly and hashing (outside the loop: fires on while_done).
    with b.when(b.not_(b.stream_finished)):
        full_item = b.cat(b.input, item.bits(31, 8))
        with b.when(byte_count == 3):
            for j in range(num_hashes):
                hashed = (full_item * HASH_CONSTANTS[j]).bits(31, 0)
                bit_idx = hashed.bits(31, shift)
                word = bit_idx.bits(bit_index_width - 1, 3)
                bit = bit_idx.bits(2, 0)
                one_hot = (b.const(1, 1) << bit).bits(7, 0)
                sections[j][word] = sections[j][word] | one_hot
            last_item = item_count == block_size - 1
            item_count.set(b.mux(last_item, 0, item_count + 1))
            with b.when(last_item):
                emitting.set(1)
        item.set(b.cat(b.input, item.bits(31, 8)))
        byte_count.set(byte_count + 1)
    return b.finish()


def bloom_reference(data, block_size=64, num_hashes=8, section_bits=1024):
    """Golden model: the exact byte stream the unit emits.

    ``data`` is the raw byte stream (length a multiple of 4). Only complete
    blocks produce output.
    """
    words_per_section = section_bits // 8
    outputs = []
    sections = [bytearray(words_per_section) for _ in range(num_hashes)]
    items = [
        int.from_bytes(bytes(data[i:i + 4]), "little")
        for i in range(0, len(data) - len(data) % 4, 4)
    ]
    count = 0
    for item in items:
        for j in range(num_hashes):
            bit_idx = _hash_value(item, j, section_bits)
            sections[j][bit_idx >> 3] |= 1 << (bit_idx & 7)
        count += 1
        if count == block_size:
            for j in range(num_hashes):
                outputs.extend(sections[j])
                sections[j] = bytearray(words_per_section)
            count = 0
    return outputs


def bloom_contains(filter_bytes, item, num_hashes=8, section_bits=1024):
    """Membership test against one emitted filter (golden-side utility used
    by tests to prove the no-false-negatives property)."""
    words_per_section = section_bits // 8
    for j in range(num_hashes):
        bit_idx = _hash_value(item, j, section_bits)
        word = filter_bytes[j * words_per_section + (bit_idx >> 3)]
        if not (word >> (bit_idx & 7)) & 1:
            return False
    return True
