"""The paper's simplest example unit: emit every input token unchanged.

Used throughout the paper (and this repo) to exercise IO plumbing, and —
with the emit removed — as the token-dropping *sink* unit that isolates
input-controller performance in Figure 9.
"""

from ..lang import UnitBuilder


def identity_unit(token_width=8):
    """``unit Identity { if (!stream_finished) emit(input) }``."""
    b = UnitBuilder(
        "identity", input_width=token_width, output_width=token_width
    )
    with b.when(b.not_(b.stream_finished)):
        b.emit(b.input)
    return b.finish()


def sink_unit(token_width=8):
    """Consumes every token and emits nothing; the Figure 9 memory
    controller experiments use this to isolate the input path."""
    b = UnitBuilder("sink", input_width=token_width, output_width=token_width)
    counter = b.reg("consumed", width=32, init=0)
    counter.set(counter + 1)
    return b.finish()


def identity_reference(tokens):
    """Golden model: the output stream equals the input stream."""
    return list(tokens)
