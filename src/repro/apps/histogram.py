"""The paper's Figure 3 running example: per-block frequency counting.

For every block of ``block_size`` 8-bit tokens, the unit maintains a
256-entry BRAM of counts; when a block completes it emits all 256 counts
(and clears them) via a while loop, exactly as in the paper. The cleanup
virtual cycles after the stream emit the final block's histogram when the
stream length is a whole number of blocks.
"""

from ..lang import UnitBuilder


def block_frequencies_unit(block_size=100, count_width=8):
    """Reproduces paper Figure 3 (``unit BlockFrequencies``)."""
    b = UnitBuilder(
        "block_frequencies", input_width=8, output_width=count_width
    )
    counter_width = max(1, block_size.bit_length())
    item_counter = b.reg("item_counter", width=counter_width, init=0)
    frequencies = b.bram("frequencies", elements=256, width=count_width)
    # 9 bits so the loop index can hold the terminal value 256.
    idx = b.reg("frequencies_idx", width=9, init=0)

    with b.when(item_counter == block_size):
        with b.while_(idx < 256):
            b.emit(frequencies[idx])
            frequencies[idx] = 0
            idx.set(idx + 1)
        idx.set(0)
    frequencies[b.input] = frequencies[b.input] + 1
    item_counter.set(b.mux(item_counter == block_size, 1, item_counter + 1))
    return b.finish()


def block_frequencies_reference(tokens, block_size=100, count_width=8):
    """Golden model matching the unit's exact semantics.

    Counts wrap modulo ``2**count_width``, exactly as the hardware's
    fixed-width adder does. Histograms are emitted for each
    *completed* block; the final block's histogram appears only if the
    stream length is a whole multiple of ``block_size`` (the unit increments
    through the block boundary during cleanup, mirroring Figure 3).
    """
    wrap = 1 << count_width
    outputs = []
    counts = [0] * 256
    item_counter = 0
    for token in tokens:
        if item_counter == block_size:
            outputs.extend(counts)
            counts = [0] * 256
            item_counter = 1
        else:
            item_counter += 1
        counts[token] = (counts[token] + 1) % wrap
    # stream_finished virtual cycle: the dummy token is processed by the
    # same logic, so a just-completed block is flushed (and the dummy token
    # 0 is counted into the new block, which is then discarded).
    if item_counter == block_size:
        outputs.extend(counts)
    return outputs
