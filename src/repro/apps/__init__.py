"""The paper's six applications (Section 7.1) plus its running examples,
each with a processing unit in the Fleet DSL and a bit-exact golden model.
"""

from .bloom import bloom_contains, bloom_filter_unit, bloom_reference
from .csv_extract import csv_extract_reference, csv_extract_unit
from .decision_tree import (
    GbtModel,
    TreeNode,
    decision_tree_reference,
    decision_tree_unit,
    encode_points,
)
from .histogram import block_frequencies_reference, block_frequencies_unit
from .identity import identity_reference, identity_unit, sink_unit
from .int_coding import (
    int_coding_decode,
    int_coding_reference,
    int_coding_unit,
)
from .json_parser import (
    build_field_table,
    encode_field_table,
    json_field_unit,
    json_fields_reference,
)
from .regex import (
    EMAIL_PATTERN,
    build_automaton,
    regex_match_unit,
    regex_reference,
)
from .smith_waterman import smith_waterman_reference, smith_waterman_unit
from .string_search import (
    AhoCorasick,
    string_search_reference,
    string_search_unit,
)

#: The six evaluation applications in the paper's Figure 7 order.
PAPER_APPS = (
    "json_parsing",
    "integer_coding",
    "decision_tree",
    "smith_waterman",
    "regex",
    "bloom_filter",
)

__all__ = [
    "AhoCorasick",
    "EMAIL_PATTERN",
    "GbtModel",
    "PAPER_APPS",
    "TreeNode",
    "block_frequencies_reference",
    "block_frequencies_unit",
    "bloom_contains",
    "bloom_filter_unit",
    "bloom_reference",
    "csv_extract_reference",
    "csv_extract_unit",
    "build_automaton",
    "build_field_table",
    "decision_tree_reference",
    "decision_tree_unit",
    "encode_field_table",
    "encode_points",
    "identity_reference",
    "identity_unit",
    "int_coding_decode",
    "int_coding_reference",
    "int_coding_unit",
    "json_field_unit",
    "json_fields_reference",
    "regex_match_unit",
    "regex_reference",
    "sink_unit",
    "smith_waterman_reference",
    "smith_waterman_unit",
    "string_search_reference",
    "string_search_unit",
]
