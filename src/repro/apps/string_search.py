"""Multi-pattern string search — the remaining application domain from
the paper's introduction ("parsing, compression, **string search**, and
machine learning").

An Aho-Corasick DFA over a compile-time pattern set, with the failure
function folded into dense next-state transitions so every character is
one BRAM lookup — one virtual cycle per token, the same table-in-BRAM
structure as the JSON field extractor. State 0 is the root and doubles as
the "no transition" value, which is exactly what a zero-initialized BRAM
provides; only non-root transitions are loaded from the stream head.

Whenever the automaton enters a state where at least one pattern ends,
the unit emits the current 32-bit stream index; the host resolves *which*
patterns end there by windowing back into the input (the paper's
split-and-reconstruct division of labour for search applications).

Stream layout: entry count (2 bytes LE), then per entry: table index
(``state * 256 + char``, 2 bytes LE) and the value byte (bit 7 = a
pattern ends in the target state; bits 6:0 = next state). Then the text.
"""

from ..lang import UnitBuilder

MATCH_BIT = 0x80
STATE_MASK = 0x7F

# Loader/scanner states.
_L_CNT0, _L_CNT1, _L_IDX0, _L_IDX1, _L_VAL, _SCAN = range(6)


class AhoCorasick:
    """The automaton: goto/fail construction folded to dense DFA rows."""

    def __init__(self, patterns, max_states=128):
        patterns = [bytes(p) for p in patterns]
        if not patterns or any(not p for p in patterns):
            raise ValueError("need at least one non-empty pattern")
        goto = [{}]  # state -> {char: state}
        match_at = [set()]  # state -> pattern ids ending here
        for pid, pattern in enumerate(patterns):
            state = 0
            for char in pattern:
                nxt = goto[state].get(char)
                if nxt is None:
                    nxt = len(goto)
                    if nxt > STATE_MASK or nxt >= max_states:
                        raise ValueError(
                            f"pattern set needs more than "
                            f"{min(max_states, STATE_MASK + 1)} states"
                        )
                    goto.append({})
                    match_at.append(set())
                    goto[state][char] = nxt
                state = nxt
            match_at[state].add(pid)

        # BFS failure links, folding outputs.
        fail = [0] * len(goto)
        queue = list(goto[0].values())
        for state in queue:
            fail[state] = 0
        while queue:
            state = queue.pop(0)
            match_at[state] |= match_at[fail[state]]
            for char, nxt in goto[state].items():
                queue.append(nxt)
                f = fail[state]
                while f and char not in goto[f]:
                    f = fail[f]
                fail[nxt] = goto[f].get(char, 0)
                if fail[nxt] == nxt:
                    fail[nxt] = 0

        # Dense delta via the failure closure.
        self.n_states = len(goto)
        self.patterns = patterns
        self.match_at = [frozenset(s) for s in match_at]
        self.delta = [[0] * 256 for _ in range(self.n_states)]
        for state in range(self.n_states):
            for char in range(256):
                s = state
                while s and char not in goto[s]:
                    s = fail[s]
                self.delta[state][char] = goto[s].get(char, 0)

    def table_entries(self):
        """Sparse (index, value) pairs; transitions to the root (0) are
        the BRAM's zero-initialized default."""
        entries = []
        for state in range(self.n_states):
            for char in range(256):
                nxt = self.delta[state][char]
                if nxt == 0:
                    continue
                value = nxt | (MATCH_BIT if self.match_at[nxt] else 0)
                entries.append((state * 256 + char, value))
        return entries

    def encode_header(self):
        entries = self.table_entries()
        out = bytearray(len(entries).to_bytes(2, "little"))
        for index, value in entries:
            out += index.to_bytes(2, "little")
            out.append(value)
        return bytes(out)

    def scan(self, text):
        """Golden model: indices where at least one pattern ends."""
        hits = []
        state = 0
        for index, char in enumerate(bytes(text)):
            state = self.delta[state][char]
            if self.match_at[state]:
                hits.append(index & 0xFFFFFFFF)
        return hits

    def resolve(self, text, index):
        """Host-side reconstruction: which patterns end at ``index``."""
        text = bytes(text)
        return sorted(
            pid
            for pid, pattern in enumerate(self.patterns)
            if index + 1 >= len(pattern)
            and text[index + 1 - len(pattern):index + 1] == pattern
        )


def string_search_unit(max_states=128):
    """Build the multi-pattern matching unit (table loaded at runtime)."""
    b = UnitBuilder("string_search", input_width=8, output_width=32)
    state_bits = max(1, (max_states - 1).bit_length())
    table = b.bram("table", elements=max_states * 256, width=8)

    mode = b.reg("mode", width=3, init=_L_CNT0)
    entry_total = b.reg("entry_total", width=16)
    entry_count = b.reg("entry_count", width=16, init=0)
    entry_idx = b.reg("entry_idx", width=16)
    state = b.reg("state", width=state_bits, init=0)
    position = b.reg("position", width=32, init=0)

    ch = b.input
    with b.when(b.not_(b.stream_finished)):
        with b.when(mode == _L_CNT0):
            entry_total.set(ch)
            mode.set(_L_CNT1)
        with b.elif_(mode == _L_CNT1):
            total = b.wire(b.cat(ch, entry_total.bits(7, 0)), name="tot")
            entry_total.set(total)
            mode.set(b.mux(total == 0, _SCAN, _L_IDX0))
        with b.elif_(mode == _L_IDX0):
            entry_idx.set(ch)
            mode.set(_L_IDX1)
        with b.elif_(mode == _L_IDX1):
            entry_idx.set(b.cat(ch, entry_idx.bits(7, 0)))
            mode.set(_L_VAL)
        with b.elif_(mode == _L_VAL):
            table[entry_idx.bits(state_bits + 7, 0)] = ch
            done = entry_count == entry_total - 1
            entry_count.set(b.mux(done, 0, entry_count + 1))
            mode.set(b.mux(done, _SCAN, _L_IDX0))
        with b.otherwise():  # _SCAN: one lookup per character
            lookup = b.wire(
                table[b.cat(state, ch).bits(state_bits + 7, 0)],
                name="lookup",
            )
            state.set(lookup.bits(state_bits - 1, 0))
            with b.when(lookup.bit(7) == 1):
                b.emit(position)
            position.set(position + 1)
    return b.finish()


def make_stream(automaton, text):
    """Header + text as a token list."""
    return list(automaton.encode_header() + bytes(text))


def string_search_reference(patterns, text, max_states=128):
    """Golden model for a pattern set applied to ``text``."""
    return AhoCorasick(patterns, max_states).scan(text)
