"""Integer compression (paper Section 7.1).

Compresses blocks of four consecutive 32-bit integers. For every block the
unit evaluates **sixteen fixed-width encodings in parallel** (widths 2, 4,
..., 32): integers that fit in the width go to a main section, the rest
become *exceptions* stored in an exception section coded either with
variable-byte encoding or with the best possible fixed width — whichever
is cheaper. The scheme follows OptPFD and the other patched-frame
techniques of Lemire & Boytsov that the paper cites.

Block wire format (width code ``c`` means width ``w = 2*(c+1)``):

* header byte: ``c << 4 | exception_bitmap`` (bit ``i`` set when integer
  ``i`` of the block is an exception, i.e. ``x_i >= 2**w``),
* if the bitmap is nonzero, an exception-header byte:
  ``mode << 7 | exception_width`` (mode 0 = variable-byte with
  ``exception_width`` 0; mode 1 = fixed width),
* the main section: the low ``w`` bits of all four integers, packed
  LSB-first and zero-padded to a byte boundary (``ceil(4*w/8)`` bytes),
* the exception section, in index order: each exception's high part
  ``x_i >> w``; variable-byte uses 7 data bits per byte with a
  continuation MSB; fixed mode packs ``exception_width``-bit values
  LSB-first, zero-padded to a byte boundary.

The encoder picks the cheapest total width (ties go to the smaller width)
and, within it, variable-byte when not more expensive than fixed. Streams
whose length is not a multiple of 16 bytes have their final partial block
dropped, exactly like the golden model.

The emission machinery — one 8-bit output token per virtual cycle carved
out of a 40-bit shift accumulator — is why this is the largest Fleet unit,
matching the paper's observation that "dynamic shifts are expensive in
hardware ... managing the division of output words into 8-bit chunks was
fairly complex" (Section 7.2).
"""

from ..lang import UnitBuilder

WIDTH_CODES = 16
BLOCK_INTS = 4
BLOCK_BYTES = 4 * BLOCK_INTS


def _width_of(code):
    return 2 * (code + 1)


def _varbyte_len(value):
    length = 1
    while value >= 128:
        value >>= 7
        length += 1
    return length


# Emission phase states.
_E_HDR, _E_EXCHDR, _E_MAIN, _E_FLUSH, _E_EXCLOAD, _E_EXCVB, _E_EXCF, \
    _E_EXCFLUSH = range(1, 9)


def int_coding_unit():
    """Build the 4-integer-block compression unit."""
    b = UnitBuilder("int_coding", input_width=8, output_width=8)

    block = b.bram("block", elements=BLOCK_INTS, width=32)
    cur_int = b.reg("cur_int", width=32)
    byte_cnt = b.reg("byte_cnt", width=2, init=0)
    int_cnt = b.reg("int_cnt", width=2, init=0)

    # Per-width running state, updated in parallel as each integer lands.
    vb_sum = [b.reg(f"vb_sum_{c}", width=6, init=0) for c in range(15)]
    max_eb = [b.reg(f"max_eb_{c}", width=5, init=0) for c in range(15)]
    bitmap = [b.reg(f"bitmap_{c}", width=4, init=0) for c in range(15)]

    # Selected encoding for the block being emitted.
    best_code = b.reg("best_code", width=4)
    best_mode = b.reg("best_mode", width=1)  # 0 = varbyte, 1 = fixed
    best_we = b.reg("best_we", width=5)
    best_bitmap = b.reg("best_bitmap", width=4)

    estate = b.reg("estate", width=4, init=0)
    acc = b.reg("acc", width=40, init=0)
    acc_bits = b.reg("acc_bits", width=6, init=0)
    item_idx = b.reg("item_idx", width=3, init=0)
    cur_e = b.reg("cur_e", width=32)

    # Width of the selected code and the matching low-bits mask, as mux
    # chains keyed on best_code (dynamic (1 << w) - 1 would be wider logic).
    best_w = b.const(_width_of(15), 6)
    for code in range(14, -1, -1):
        best_w = b.mux(best_code == code, _width_of(code), best_w)
    best_w = b.wire(best_w, name="best_w")

    def low_bits_mask(width_expr, max_width):
        mask = b.const((1 << 32) - 1, 32)
        for width in range(max_width, -1, -1):
            mask = b.mux(width_expr == width, (1 << width) - 1, mask)
        return mask

    main_mask = b.wire(low_bits_mask(best_w, 32), name="main_mask")
    exc_mask = b.wire(low_bits_mask(best_we, 31), name="exc_mask")

    # ------------------------------------------------------------------
    # Emission loop: one output byte (or one BRAM load) per virtual cycle.
    # ------------------------------------------------------------------
    with b.while_(estate != 0):
        with b.when(estate == _E_HDR):
            b.emit(b.cat(best_code, best_bitmap))
            estate.set(b.mux(best_bitmap != 0, _E_EXCHDR, _E_MAIN))
            acc.set(0)
            acc_bits.set(0)
            item_idx.set(0)
        with b.elif_(estate == _E_EXCHDR):
            b.emit(b.cat(best_mode, b.const(0, 2), best_we))
            estate.set(_E_MAIN)
        with b.elif_(estate == _E_MAIN):
            with b.when(acc_bits >= 8):
                b.emit(acc.bits(7, 0))
                acc.set(acc >> 8)
                acc_bits.set(acc_bits - 8)
            with b.elif_(item_idx <= BLOCK_INTS - 1):
                chunk = block[item_idx.bits(1, 0)] & main_mask
                acc.set(acc | (chunk << acc_bits.bits(2, 0)))
                acc_bits.set(acc_bits + best_w)
                item_idx.set(item_idx + 1)
            with b.otherwise():
                estate.set(_E_FLUSH)
        with b.elif_(estate == _E_FLUSH):
            with b.when(acc_bits != 0):
                b.emit(acc.bits(7, 0))
                acc.set(0)
                acc_bits.set(0)
            with b.otherwise():
                pass
            estate.set(b.mux(best_bitmap != 0, _E_EXCLOAD, 0))
            item_idx.set(0)
        with b.elif_(estate == _E_EXCLOAD):
            with b.when(item_idx >= BLOCK_INTS):
                estate.set(b.mux(best_mode == 1, _E_EXCFLUSH, 0))
            with b.otherwise():
                is_exc = b.wire(
                    b.any_of(*[
                        (best_bitmap.bit(i) == 1) & (item_idx == i)
                        for i in range(BLOCK_INTS)
                    ]),
                    name="is_exc",
                )
                with b.when(is_exc):
                    high = (block[item_idx.bits(1, 0)] >> best_w).bits(31, 0)
                    cur_e.set(high)
                    estate.set(b.mux(best_mode == 1, _E_EXCF, _E_EXCVB))
                with b.otherwise():
                    item_idx.set(item_idx + 1)
        with b.elif_(estate == _E_EXCVB):
            more = cur_e >= 128
            b.emit(b.cat(more, cur_e.bits(6, 0)))
            cur_e.set(cur_e >> 7)
            with b.when(b.not_(more)):
                item_idx.set(item_idx + 1)
                estate.set(_E_EXCLOAD)
        with b.elif_(estate == _E_EXCF):
            with b.when(acc_bits >= 8):
                b.emit(acc.bits(7, 0))
                acc.set(acc >> 8)
                acc_bits.set(acc_bits - 8)
            with b.otherwise():
                chunk = cur_e & exc_mask
                acc.set(acc | (chunk << acc_bits.bits(2, 0)))
                acc_bits.set(acc_bits + best_we)
                item_idx.set(item_idx + 1)
                estate.set(_E_EXCLOAD)
        with b.otherwise():  # _E_EXCFLUSH
            with b.when(acc_bits != 0):
                b.emit(acc.bits(7, 0))
                acc.set(b.mux(acc_bits > 8, acc >> 8, 0))
                acc_bits.set(b.mux(acc_bits > 8, acc_bits - 8, 0))
            with b.otherwise():
                estate.set(0)

    # ------------------------------------------------------------------
    # Input side: assemble integers, track all 16 encodings in parallel.
    # ------------------------------------------------------------------
    with b.when(b.not_(b.stream_finished)):
        x = b.wire(b.cat(b.input, cur_int.bits(31, 8)), name="x")
        cur_int.set(x)
        with b.when(byte_cnt == 3):
            block[int_cnt] = x
            # Per-width contributions of this integer, all in parallel.
            new_vb, new_eb, new_bm = [], [], []
            for code in range(15):
                w = _width_of(code)
                high = b.wire(x.bits(31, w), name=f"hi_{code}")
                is_exc = b.wire(high.any(), name=f"exc_{code}")
                # Bit length of the high part (priority encode).
                blen = b.const(0, 5)
                for k in range(32 - w):
                    blen = b.mux(high.bit(k) == 1, k + 1, blen)
                blen = b.wire(blen, name=f"blen_{code}")
                vbl = b.mux(
                    blen <= 7, 1,
                    b.mux(blen <= 14, 2,
                          b.mux(blen <= 21, 3, b.mux(blen <= 28, 4, 5))),
                )
                new_vb.append(b.wire(
                    vb_sum[code] + b.mux(is_exc, vbl, b.const(0, 3)),
                    name=f"nvb_{code}",
                ))
                new_eb.append(b.wire(
                    b.mux(blen > max_eb[code], blen, max_eb[code]),
                    name=f"neb_{code}",
                ))
                # bitmap bit i corresponds to integer i: insert at int_cnt.
                bm = bitmap[code]
                for i in range(BLOCK_INTS):
                    one = 1 << i
                    bm = b.mux(
                        (int_cnt == i) & is_exc, (bitmap[code] | one), bm
                    )
                new_bm.append(b.wire(bm, name=f"nbm_{code}"))
            with b.when(int_cnt == BLOCK_INTS - 1):
                # Finalize: pick the cheapest encoding from the *updated*
                # per-width state, then reset it for the next block.
                best = None
                for code in range(15):
                    w = _width_of(code)
                    main_bytes = (4 * w + 7) // 8
                    nexc = b.wire(
                        sum(
                            new_bm[code].bit(i) for i in range(BLOCK_INTS)
                        ),
                        name=f"nexc_{code}",
                    )
                    fixed_bytes = b.wire(
                        (nexc * new_eb[code] + 7) >> 3, name=f"fb_{code}"
                    )
                    vb_cheaper = new_vb[code] <= fixed_bytes
                    exc_bytes = b.mux(vb_cheaper, new_vb[code], fixed_bytes)
                    has_exc = new_bm[code] != 0
                    cost = b.wire(
                        1 + main_bytes + b.mux(has_exc, exc_bytes + 1,
                                               b.const(0, 1)),
                        name=f"cost_{code}",
                    )
                    mode = b.wire(
                        b.mux(vb_cheaper, b.const(0, 1), b.const(1, 1)),
                        name=f"mode_{code}",
                    )
                    entry = (cost, code, mode, new_eb[code], new_bm[code])
                    if best is None:
                        best = entry
                    else:
                        better = b.wire(
                            entry[0] < best[0], name=f"better_{code}"
                        )
                        best = (
                            b.wire(b.mux(better, entry[0], best[0])),
                            b.wire(b.mux(better, entry[1], best[1])),
                            b.wire(b.mux(better, entry[2], best[2])),
                            b.wire(b.mux(better, entry[3], best[3])),
                            b.wire(b.mux(better, entry[4], best[4])),
                        )
                # Width 32 (code 15) never has exceptions: cost 17.
                better = b.wire(b.const(17, 6) < best[0], name="better_15")
                best_code.set(b.mux(better, 15, best[1]))
                best_mode.set(b.mux(better, 0, best[2]))
                best_we.set(b.mux(better, 0, best[3]))
                best_bitmap.set(b.mux(better, 0, best[4]))
                estate.set(_E_HDR)
                for code in range(15):
                    vb_sum[code].set(0)
                    max_eb[code].set(0)
                    bitmap[code].set(0)
            with b.otherwise():
                for code in range(15):
                    vb_sum[code].set(new_vb[code])
                    max_eb[code].set(new_eb[code])
                    bitmap[code].set(new_bm[code])
        byte_cnt.set(byte_cnt + 1)
        with b.when(byte_cnt == 3):
            int_cnt.set(int_cnt + 1)
    return b.finish()


# ---------------------------------------------------------------------------
# Golden encoder / decoder
# ---------------------------------------------------------------------------


def _encode_block(ints):
    """Encode one 4-integer block; must match the unit bit for bit."""
    candidates = []
    for code in range(WIDTH_CODES):
        w = _width_of(code)
        exceptions = [
            (i, x >> w) for i, x in enumerate(ints) if x >> w
        ]
        main_bytes = (4 * w + 7) // 8
        if exceptions:
            vb_bytes = sum(_varbyte_len(e) for _, e in exceptions)
            we = max(e.bit_length() for _, e in exceptions)
            fixed_bytes = (len(exceptions) * we + 7) // 8
            vb_cheaper = vb_bytes <= fixed_bytes
            exc_bytes = vb_bytes if vb_cheaper else fixed_bytes
            cost = 1 + 1 + main_bytes + exc_bytes
            mode = 0 if vb_cheaper else 1
        else:
            we, mode = 0, 0
            cost = 1 + main_bytes
        candidates.append((cost, code, mode, we, exceptions))
    best = min(candidates, key=lambda entry: (entry[0], entry[1]))
    cost, code, mode, we, exceptions = best
    w = _width_of(code)

    out = bytearray()
    bitmap = 0
    for i, _ in exceptions:
        bitmap |= 1 << i
    out.append((code << 4) | bitmap)
    if bitmap:
        out.append((mode << 7) | we)
    # Main section.
    value, bits = 0, 0
    for x in ints:
        value |= (x & ((1 << w) - 1)) << bits
        bits += w
    out += value.to_bytes((bits + 7) // 8, "little")
    # Exception section.
    if bitmap:
        if mode == 0:
            for _, e in exceptions:
                while True:
                    byte = e & 0x7F
                    e >>= 7
                    out.append(byte | (0x80 if e else 0))
                    if not e:
                        break
        else:
            value, bits = 0, 0
            for _, e in exceptions:
                value |= (e & ((1 << we) - 1)) << bits
                bits += we
            out += value.to_bytes((bits + 7) // 8, "little")
    return bytes(out)


def int_coding_reference(data):
    """Golden model: the exact compressed byte stream for raw input bytes.

    The final partial block (if the input is not a multiple of 16 bytes)
    is dropped, matching the unit.
    """
    out = []
    usable = len(data) - len(data) % BLOCK_BYTES
    for offset in range(0, usable, BLOCK_BYTES):
        ints = [
            int.from_bytes(bytes(data[offset + 4 * i:offset + 4 * i + 4]),
                           "little")
            for i in range(BLOCK_INTS)
        ]
        out.extend(_encode_block(ints))
    return out


def int_coding_decode(encoded, n_blocks):
    """Decode ``n_blocks`` blocks; used by tests to prove round-tripping."""
    data = bytes(encoded)
    pos = 0
    ints = []
    for _ in range(n_blocks):
        header = data[pos]
        pos += 1
        code, bitmap = header >> 4, header & 0xF
        w = _width_of(code)
        mode = we = 0
        if bitmap:
            exc_header = data[pos]
            pos += 1
            mode, we = exc_header >> 7, exc_header & 0x1F
        main_bytes = (4 * w + 7) // 8
        main = int.from_bytes(data[pos:pos + main_bytes], "little")
        pos += main_bytes
        block = [(main >> (w * i)) & ((1 << w) - 1) for i in range(4)]
        if bitmap:
            exc_indices = [i for i in range(4) if bitmap & (1 << i)]
            if mode == 0:
                for i in exc_indices:
                    e, shift = 0, 0
                    while True:
                        byte = data[pos]
                        pos += 1
                        e |= (byte & 0x7F) << shift
                        shift += 7
                        if not byte & 0x80:
                            break
                    block[i] |= e << w
            else:
                exc_bytes = (len(exc_indices) * we + 7) // 8
                packed = int.from_bytes(data[pos:pos + exc_bytes], "little")
                pos += exc_bytes
                for k, i in enumerate(exc_indices):
                    e = (packed >> (k * we)) & ((1 << we) - 1)
                    block[i] |= e << w
        ints.extend(v & 0xFFFFFFFF for v in block)
    if pos != len(data):
        raise ValueError(f"trailing bytes: consumed {pos} of {len(data)}")
    return ints
