"""JSON field extraction (paper Section 7.1).

The unit reads a list of fields to extract (e.g. ``a.b``, ``a.c``) at the
start of its input stream — encoded as a character-level transition table —
and then emits the values of those fields from the potentially nested JSON
records in the remainder of the stream. The transition table lives in a
BRAM indexed by ``(state << 8) | character``; states are nodes of the trie
of target field paths with ``.`` joining nested keys, so matching advances
one state per key character, one virtual cycle per input byte. Most of the
unit is the state machine handling JSON control characters (``{``, ``:``,
``"``, ...), exactly as the paper describes.

Stream layout:

* entry count (2 bytes LE)
* per entry, 3 bytes: table index (2 bytes LE, ``state*256 + char``) and
  the table value (bit 7 = this edge completes a target field, bits 6:0 =
  next trie state, nonzero)
* the JSON text: records (objects) separated by arbitrary whitespace

Emission: when a key whose full path matches a target field has a string,
number, boolean/null, or array value, the value's characters are emitted
(string values without the surrounding quotes but with escape sequences
left raw; arrays with their brackets), followed by a ``\\n`` separator.
Object values of matched fields are never emitted — extraction targets are
leaves — but matching continues inside them via the trie's ``.`` edges.

Input JSON is assumed well-formed; behaviour on malformed input mirrors
the golden model but is otherwise unspecified (as in the paper, splitting
and validation happen on the CPU side).
"""

from ..lang import UnitBuilder

# Parser states (also the loader states; one 4-bit register holds both).
P_OUT, P_WKEY, P_KEY, P_COLON, P_WVAL = 0, 1, 2, 3, 4
P_SVAL, P_BVAL, P_AVAL, P_TERM, P_AFTERVAL = 5, 6, 7, 8, 9
L_CNT0, L_CNT1, L_IDX0, L_IDX1, L_VAL = 10, 11, 12, 13, 14

_WHITESPACE = (0x20, 0x09, 0x0A, 0x0D)
SEPARATOR = 0x0A  # '\n' between emitted values

TERMINAL_BIT = 0x80
STATE_MASK = 0x7F


def json_field_unit(max_states=32, max_depth=32):
    """Build the JSON field extraction unit.

    ``max_states`` bounds the trie size (table BRAM is ``max_states * 256``
    entries); ``max_depth`` bounds object nesting.
    """
    b = UnitBuilder("json_fields", input_width=8, output_width=8)

    state_bits = max(1, (max_states - 1).bit_length())
    trie = b.bram("trie", elements=max_states * 256, width=8)
    stack = b.bram("stack", elements=max_depth, width=8)

    pstate = b.reg("pstate", width=4, init=L_CNT0)
    entry_total = b.reg("entry_total", width=16)
    entry_count = b.reg("entry_count", width=16, init=0)
    entry_idx = b.reg("entry_idx", width=16)

    key_state = b.reg("key_state", width=state_bits, init=0)
    key_alive = b.reg("key_alive", width=1, init=0)
    key_term = b.reg("key_term", width=1, init=0)
    match_state = b.reg("match_state", width=state_bits, init=0)
    match_alive = b.reg("match_alive", width=1, init=0)
    match_term = b.reg("match_term", width=1, init=0)
    cur_path = b.reg("cur_path", width=state_bits, init=0)
    path_alive = b.reg("path_alive", width=1, init=0)
    depth = b.reg("depth", width=max(1, (max_depth - 1).bit_length()), init=0)

    adepth = b.reg("adepth", width=8, init=0)
    esc = b.reg("esc", width=1, init=0)
    instr = b.reg("instr", width=1, init=0)
    emit_on = b.reg("emit_on", width=1, init=0)

    ch = b.input
    is_ws = b.any_of(*[ch == w for w in _WHITESPACE])

    def trie_index(state_expr, char=None):
        return b.cat(state_expr, ch if char is None else b.const(char, 8))

    def pop_object():
        """Handle '}' closing the current object."""
        with b.when(depth == 0):
            pstate.set(P_OUT)
        with b.otherwise():
            entry = b.wire(stack[(depth - 1).bits(depth.width - 1, 0)],
                           name="popped")
            cur_path.set(entry.bits(state_bits - 1, 0))
            path_alive.set(entry.bit(7))
            depth.set(depth - 1)
            pstate.set(P_AFTERVAL)

    def after_value(emitted_sep):
        """Dispatch in the 'value just ended' position."""
        with b.when(ch == ord(",")):
            pstate.set(P_WKEY)
        with b.elif_(ch == ord("}")):
            pop_object()
        with b.otherwise():  # whitespace (well-formed input)
            if emitted_sep:
                pstate.set(P_AFTERVAL)

    with b.when(b.not_(b.stream_finished)):
        # ---- transition table loading --------------------------------------
        with b.when(pstate == L_CNT0):
            entry_total.set(ch)
            pstate.set(L_CNT1)
        with b.elif_(pstate == L_CNT1):
            total = b.wire(b.cat(ch, entry_total.bits(7, 0)), name="total")
            entry_total.set(total)
            pstate.set(b.mux(total == 0, P_OUT, L_IDX0))
        with b.elif_(pstate == L_IDX0):
            entry_idx.set(ch)
            pstate.set(L_IDX1)
        with b.elif_(pstate == L_IDX1):
            entry_idx.set(b.cat(ch, entry_idx.bits(7, 0)))
            pstate.set(L_VAL)
        with b.elif_(pstate == L_VAL):
            trie[entry_idx.bits(state_bits + 7, 0)] = ch
            done = entry_count == entry_total - 1
            entry_count.set(b.mux(done, 0, entry_count + 1))
            pstate.set(b.mux(done, P_OUT, L_IDX0))

        # ---- between records -------------------------------------------------
        with b.elif_(pstate == P_OUT):
            with b.when(ch == ord("{")):
                pstate.set(P_WKEY)
                depth.set(0)
                cur_path.set(0)
                path_alive.set(1)

        # ---- inside an object, before a key -----------------------------------
        with b.elif_(pstate == P_WKEY):
            with b.when(ch == ord('"')):
                pstate.set(P_KEY)
                key_state.set(cur_path)
                key_alive.set(path_alive)
                key_term.set(0)
            with b.elif_(ch == ord("}")):
                pop_object()

        # ---- key characters ----------------------------------------------------
        with b.elif_(pstate == P_KEY):
            with b.when(esc == 1):
                lookup = b.wire(trie[trie_index(key_state)], name="k_esc")
                key_state.set(lookup.bits(state_bits - 1, 0))
                key_alive.set(key_alive & (lookup != 0))
                key_term.set(key_alive & lookup.bit(7))
                esc.set(0)
            with b.elif_(ch == ord('"')):
                match_state.set(key_state)
                match_alive.set(key_alive)
                match_term.set(key_alive & key_term)
                pstate.set(P_COLON)
            with b.otherwise():
                with b.when(ch == ord("\\")):
                    esc.set(1)
                lookup = b.wire(trie[trie_index(key_state)], name="k_look")
                key_state.set(lookup.bits(state_bits - 1, 0))
                key_alive.set(key_alive & (lookup != 0))
                key_term.set(key_alive & lookup.bit(7))

        # ---- between key and value ------------------------------------------------
        with b.elif_(pstate == P_COLON):
            with b.when(ch == ord(":")):
                pstate.set(P_WVAL)

        # ---- value start ---------------------------------------------------------
        with b.elif_(pstate == P_WVAL):
            with b.when(is_ws):
                pass
            with b.elif_(ch == ord('"')):
                pstate.set(P_SVAL)
                emit_on.set(match_term)
                esc.set(0)
            with b.elif_(ch == ord("{")):
                if state_bits < 7:
                    entry = b.cat(
                        path_alive, b.const(0, 7 - state_bits), cur_path
                    )
                else:
                    entry = b.cat(path_alive, cur_path)
                stack[depth] = entry
                dot = b.wire(
                    trie[trie_index(match_state, ord("."))], name="dot"
                )
                cur_path.set(dot.bits(state_bits - 1, 0))
                path_alive.set(match_alive & (dot != 0))
                depth.set(depth + 1)
                pstate.set(P_WKEY)
            with b.elif_(ch == ord("[")):
                pstate.set(P_AVAL)
                adepth.set(1)
                instr.set(0)
                esc.set(0)
                emit_on.set(match_term)
                with b.when(match_term):
                    b.emit(ch)
            with b.otherwise():  # number / true / false / null
                pstate.set(P_BVAL)
                emit_on.set(match_term)
                with b.when(match_term):
                    b.emit(ch)

        # ---- string value -----------------------------------------------------------
        with b.elif_(pstate == P_SVAL):
            with b.when(esc == 1):
                esc.set(0)
                with b.when(emit_on):
                    b.emit(ch)
            with b.elif_(ch == ord("\\")):
                esc.set(1)
                with b.when(emit_on):
                    b.emit(ch)
            with b.elif_(ch == ord('"')):
                pstate.set(b.mux(emit_on, P_TERM, P_AFTERVAL))
            with b.otherwise():
                with b.when(emit_on):
                    b.emit(ch)

        # ---- bare value (number, true, false, null) -------------------------------------
        with b.elif_(pstate == P_BVAL):
            ends = b.wire(
                b.any_of(ch == ord(","), ch == ord("}"), is_ws),
                name="bare_end",
            )
            with b.when(ends):
                with b.when(emit_on):
                    b.emit(SEPARATOR)
                after_value(emitted_sep=True)
            with b.otherwise():
                with b.when(emit_on):
                    b.emit(ch)

        # ---- array value (opaque; brackets and strings tracked) -----------------------------
        with b.elif_(pstate == P_AVAL):
            with b.when(emit_on):
                b.emit(ch)
            with b.when(instr == 1):
                with b.when(esc == 1):
                    esc.set(0)
                with b.elif_(ch == ord("\\")):
                    esc.set(1)
                with b.elif_(ch == ord('"')):
                    instr.set(0)
            with b.otherwise():
                with b.when(ch == ord('"')):
                    instr.set(1)
                with b.elif_(ch == ord("[")):
                    adepth.set(adepth + 1)
                with b.elif_(ch == ord("]")):
                    adepth.set(adepth - 1)
                    with b.when(adepth == 1):
                        pstate.set(b.mux(emit_on, P_TERM, P_AFTERVAL))

        # ---- pending separator after a string/array value ---------------------------------------
        with b.elif_(pstate == P_TERM):
            b.emit(SEPARATOR)
            after_value(emitted_sep=True)

        # ---- after a value, waiting for ',' or '}' ------------------------------------------------
        with b.otherwise():  # P_AFTERVAL
            after_value(emitted_sep=False)

    return b.finish()


# ---------------------------------------------------------------------------
# Field-table construction and stream encoding
# ---------------------------------------------------------------------------


def build_field_table(fields, max_states=32):
    """Build transition-table entries for dotted field paths.

    Returns a list of ``(index, value)`` pairs. Trie node 0 is the root (a
    table *value* of 0 means "no transition", so allocated nodes start
    at 1).
    """
    next_state = 1
    edges = {}  # (state, char) -> [next_state, terminal]
    for field in fields:
        if not field:
            raise ValueError("empty field path")
        state = 0
        chars = field.encode()
        for position, char in enumerate(chars):
            last = position == len(chars) - 1
            edge = edges.get((state, char))
            if edge is None:
                if next_state >= max_states:
                    raise ValueError(
                        f"field set needs more than {max_states} trie states"
                    )
                edge = [next_state, False]
                edges[(state, char)] = edge
                next_state += 1
            if last:
                edge[1] = True
            state = edge[0]
    return [
        (state * 256 + char, to | (TERMINAL_BIT if terminal else 0))
        for (state, char), (to, terminal) in sorted(edges.items())
    ]


def encode_field_table(fields, max_states=32):
    """The stream header bytes for a field set."""
    entries = build_field_table(fields, max_states)
    out = bytearray(len(entries).to_bytes(2, "little"))
    for index, value in entries:
        out += index.to_bytes(2, "little")
        out.append(value)
    return bytes(out)


# ---------------------------------------------------------------------------
# Golden model — a direct transcription of the state machine
# ---------------------------------------------------------------------------


def json_fields_reference(fields, text, max_states=32):
    """Golden model: the exact bytes the unit emits for ``text`` (bytes)
    given a field set (the table-loading prefix is implied)."""
    entries = dict(build_field_table(fields, max_states))

    def trie(state, char):
        return entries.get(state * 256 + char, 0)

    out = bytearray()
    pstate = P_OUT
    key_state = key_alive = key_term = 0
    match_state = match_alive = match_term = 0
    cur_path = 0
    path_alive = 0
    depth = 0
    stack = []
    adepth = esc = instr = emit_on = 0

    def after_value(ch):
        nonlocal pstate, cur_path, path_alive, depth
        if ch == ord(","):
            pstate = P_WKEY
        elif ch == ord("}"):
            if depth == 0:
                pstate = P_OUT
            else:
                cur_path, path_alive = stack.pop()
                depth -= 1
                pstate = P_AFTERVAL
        else:
            pstate = P_AFTERVAL

    for ch in bytes(text):
        ws = ch in _WHITESPACE
        if pstate == P_OUT:
            if ch == ord("{"):
                pstate, depth, cur_path, path_alive = P_WKEY, 0, 0, 1
        elif pstate == P_WKEY:
            if ch == ord('"'):
                pstate = P_KEY
                key_state, key_alive, key_term = cur_path, path_alive, 0
            elif ch == ord("}"):
                after_value(ch)
        elif pstate == P_KEY:
            if esc:
                lookup = trie(key_state, ch)
                key_state = lookup & STATE_MASK
                key_term = key_alive and bool(lookup & TERMINAL_BIT)
                key_alive = key_alive and lookup != 0
                esc = 0
            elif ch == ord('"'):
                match_state = key_state
                match_alive = key_alive
                match_term = key_alive and key_term
                pstate = P_COLON
            else:
                if ch == ord("\\"):
                    esc = 1
                lookup = trie(key_state, ch)
                key_state = lookup & STATE_MASK
                key_term = key_alive and bool(lookup & TERMINAL_BIT)
                key_alive = key_alive and lookup != 0
        elif pstate == P_COLON:
            if ch == ord(":"):
                pstate = P_WVAL
        elif pstate == P_WVAL:
            if ws:
                pass
            elif ch == ord('"'):
                pstate, emit_on, esc = P_SVAL, match_term, 0
            elif ch == ord("{"):
                stack.append((cur_path, path_alive))
                dot = trie(match_state, ord("."))
                cur_path = dot & STATE_MASK
                path_alive = 1 if (match_alive and dot != 0) else 0
                depth += 1
                pstate = P_WKEY
            elif ch == ord("["):
                pstate, adepth, instr, esc = P_AVAL, 1, 0, 0
                emit_on = match_term
                if match_term:
                    out.append(ch)
            else:
                pstate, emit_on = P_BVAL, match_term
                if match_term:
                    out.append(ch)
        elif pstate == P_SVAL:
            if esc:
                esc = 0
                if emit_on:
                    out.append(ch)
            elif ch == ord("\\"):
                esc = 1
                if emit_on:
                    out.append(ch)
            elif ch == ord('"'):
                pstate = P_TERM if emit_on else P_AFTERVAL
            else:
                if emit_on:
                    out.append(ch)
        elif pstate == P_BVAL:
            if ch in (ord(","), ord("}")) or ws:
                if emit_on:
                    out.append(SEPARATOR)
                after_value(ch)
            else:
                if emit_on:
                    out.append(ch)
        elif pstate == P_AVAL:
            if emit_on:
                out.append(ch)
            if instr:
                if esc:
                    esc = 0
                elif ch == ord("\\"):
                    esc = 1
                elif ch == ord('"'):
                    instr = 0
            else:
                if ch == ord('"'):
                    instr = 1
                elif ch == ord("["):
                    adepth += 1
                elif ch == ord("]"):
                    adepth -= 1
                    if adepth == 0:
                        pstate = P_TERM if emit_on else P_AFTERVAL
        elif pstate == P_TERM:
            out.append(SEPARATOR)
            after_value(ch)
        else:  # P_AFTERVAL
            after_value(ch)
    return list(out)


def make_stream(fields, text, max_states=32):
    """Header + JSON text as a token list."""
    return list(encode_field_table(fields, max_states) + bytes(text))
