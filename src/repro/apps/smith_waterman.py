"""Smith-Waterman fuzzy matching (paper Section 7.1).

The unit reads an ``m``-character target string and a 16-bit score
threshold from the head of its stream, then computes the Smith-Waterman
edit-distance matrix between the target and the remainder of the stream.
Only one matrix row is stored — ``m`` registers — because each row depends
only on itself and the previous row; all ``m`` cells update in a single
virtual cycle (a chain of compare-select logic, exactly the structure the
paper describes). Whenever any cell reaches the threshold the unit emits
the current 32-bit stream index; software can then reconstruct the match
from the input stream.

Scoring is the classic local-alignment recurrence with ``match=+2``,
``mismatch=-1``, ``gap=-1`` and a floor of zero, computed in saturating
unsigned arithmetic (cell values are bounded by ``2*m``).

Stream layout: ``[m target bytes][threshold lo][threshold hi][payload...]``.
"""

from ..lang import UnitBuilder

MATCH_SCORE = 2
MISMATCH_PENALTY = 1
GAP_PENALTY = 1


def smith_waterman_unit(target_length=16):
    """Build the fuzzy-matching unit for an ``m``-character target."""
    m = target_length
    cell_width = max(8, (2 * m).bit_length())

    b = UnitBuilder("smith_waterman", input_width=8, output_width=32)
    target = [b.reg(f"target_{j}", width=8) for j in range(m)]
    row = [b.reg(f"row_{j}", width=cell_width) for j in range(m)]
    threshold = b.reg("threshold", width=16)
    # Phases: loading target (index < m), loading threshold (m..m+1),
    # streaming payload afterwards.
    load_idx = b.reg("load_idx", width=(m + 2).bit_length())
    loaded = b.reg("loaded", width=1, init=0)
    position = b.reg("position", width=32, init=0)

    def saturating_sub(value, amount):
        return b.mux(value >= amount, value - amount, b.const(0, 1))

    def max2(x, y):
        return b.mux(x >= y, x, y)

    with b.when(b.not_(b.stream_finished)):
        with b.when(loaded == 0):
            for j in range(m):
                with b.when(load_idx == j):
                    target[j].set(b.input)
            with b.when(load_idx == m):
                threshold.set(b.cat(threshold.bits(15, 8), b.input))
            with b.when(load_idx == m + 1):
                threshold.set(b.cat(b.input, threshold.bits(7, 0)))
                loaded.set(1)
            load_idx.set(load_idx + 1)
        with b.otherwise():
            # One virtual cycle per payload character: compute the new row.
            new_cells = []
            diag_prev = b.const(0, cell_width)  # H[i-1][j-1]; zero at j=0
            left_prev = b.const(0, cell_width)  # H[i][j-1];   zero at j=0
            for j in range(m):
                is_match = b.input == target[j]
                diag_score = b.mux(
                    is_match,
                    diag_prev + MATCH_SCORE,
                    saturating_sub(diag_prev, MISMATCH_PENALTY),
                )
                up_score = saturating_sub(row[j], GAP_PENALTY)
                left_score = saturating_sub(left_prev, GAP_PENALTY)
                cell = b.wire(max2(max2(diag_score, up_score), left_score))
                new_cells.append(cell)
                diag_prev = row[j]
                left_prev = cell
            hit = b.any_of(*[cell >= threshold for cell in new_cells])
            with b.when(hit):
                b.emit(position)
            for j in range(m):
                row[j].set(new_cells[j])
            position.set(position + 1)
    return b.finish()


def smith_waterman_reference(data, target_length=16):
    """Golden model: list of emitted 32-bit stream positions.

    ``data`` is the full stream including the header. Positions count
    payload characters from zero, exactly as the unit's ``position``
    register does.
    """
    m = target_length
    if len(data) < m + 2:
        return []
    target = list(data[:m])
    threshold = data[m] | (data[m + 1] << 8)
    payload = data[m + 2:]
    row = [0] * m
    hits = []
    for position, char in enumerate(payload):
        new_row = [0] * m
        for j in range(m):
            diag_prev = row[j - 1] if j else 0
            left_prev = new_row[j - 1] if j else 0
            if char == target[j]:
                diag = diag_prev + MATCH_SCORE
            else:
                diag = max(0, diag_prev - MISMATCH_PENALTY)
            up = max(0, row[j] - GAP_PENALTY)
            left = max(0, left_prev - GAP_PENALTY)
            new_row[j] = max(diag, up, left)
        if any(cell >= threshold for cell in new_row):
            hits.append(position & 0xFFFFFFFF)
        row = new_row
    return hits


def make_stream(target, threshold, payload):
    """Assemble a stream with the unit's header layout."""
    head = list(target) + [threshold & 0xFF, (threshold >> 8) & 0xFF]
    return head + list(payload)
