"""Gradient-boosted decision tree evaluation (paper Section 7.1).

The unit first loads the model — located at the start of the stream — into
BRAMs, then evaluates the ensemble on each datapoint and emits the 32-bit
prediction. As the paper notes, this application does one comparison per
BRAM read, so its throughput is bound by BRAM accesses: each tree node
visited costs two virtual cycles (fetch node, then fetch the feature and
compare), which is why the decision tree is Fleet's slowest application.

Stream layout (all little-endian):

* ``n_features`` (1 byte), ``n_trees`` (1 byte)
* per tree: root node index (2 bytes)
* ``n_nodes`` (2 bytes)
* per node, 14 bytes: ``is_leaf`` (1), ``feature`` (1), ``threshold`` (4),
  ``left`` (2), ``right`` (2), ``value`` (4)
* datapoints: ``n_features`` 32-bit values each

Traversal: at an internal node, go left when
``features[feature] < threshold`` else right; at a leaf, add ``value`` to a
32-bit wrapping accumulator. After the last tree the accumulator is emitted
as four bytes.
"""

from ..lang import UnitBuilder

NODE_BYTES = 14

# Loading modes.
_M_NF, _M_NT, _M_ROOTS, _M_NNODES, _M_NODES, _M_DATA = range(6)
# Evaluation sub-states (0 = not evaluating).
_E_ROOT, _E_NODE, _E_STEP, _E_EMIT = 1, 2, 3, 4


def decision_tree_unit(max_features=64, max_trees=32, max_nodes=4096):
    """Build the GBT evaluation unit with compile-time capacity limits."""
    b = UnitBuilder("decision_tree", input_width=8, output_width=8)

    nodes = b.bram("nodes", elements=max_nodes, width=NODE_BYTES * 8)
    features = b.bram("features", elements=max_features, width=32)
    roots = b.bram("roots", elements=max_trees, width=16)

    mode = b.reg("mode", width=3, init=_M_NF)
    n_features = b.reg("n_features", width=8)
    n_trees = b.reg("n_trees", width=8)
    n_nodes = b.reg("n_nodes", width=16)
    count = b.reg("count", width=16, init=0)  # multi-purpose load counter
    byte_idx = b.reg("byte_idx", width=4, init=0)  # byte within record
    shift_reg = b.reg("shift_reg", width=NODE_BYTES * 8)

    eval_state = b.reg("eval_state", width=3, init=0)
    tree_idx = b.reg("tree_idx", width=8, init=0)
    cur_node = b.reg("cur_node", width=16)
    node_reg = b.reg("node_reg", width=NODE_BYTES * 8)
    acc = b.reg("acc", width=32, init=0)
    emit_cnt = b.reg("emit_cnt", width=2, init=0)

    # Decoded fields of the latched node record.
    node_is_leaf = node_reg.bit(0)
    node_feature = node_reg.bits(15, 8)
    node_threshold = node_reg.bits(47, 16)
    node_left = node_reg.bits(63, 48)
    node_right = node_reg.bits(79, 64)
    node_value = node_reg.bits(111, 80)

    # ---- ensemble evaluation (runs between input tokens) -------------------
    with b.while_(eval_state != 0):
        with b.when(eval_state == _E_ROOT):
            cur_node.set(roots[tree_idx])
            eval_state.set(_E_NODE)
        with b.elif_(eval_state == _E_NODE):
            node_reg.set(nodes[cur_node])
            eval_state.set(_E_STEP)
        with b.elif_(eval_state == _E_STEP):
            with b.when(node_is_leaf):
                acc.set(acc + node_value)
                last_tree = tree_idx == n_trees - 1
                tree_idx.set(b.mux(last_tree, 0, tree_idx + 1))
                eval_state.set(b.mux(last_tree, _E_EMIT, _E_ROOT))
            with b.otherwise():
                go_left = features[node_feature] < node_threshold
                cur_node.set(b.mux(go_left, node_left, node_right))
                eval_state.set(_E_NODE)
        with b.otherwise():  # _E_EMIT
            b.emit(acc.bits(7, 0))
            acc.set(acc >> 8)
            emit_cnt.set(emit_cnt + 1)
            with b.when(emit_cnt == 3):
                eval_state.set(0)

    # ---- loading and datapoint assembly -------------------------------------
    with b.when(b.not_(b.stream_finished)):
        with b.when(mode == _M_NF):
            n_features.set(b.input)
            mode.set(_M_NT)
        with b.elif_(mode == _M_NT):
            n_trees.set(b.input)
            mode.set(_M_ROOTS)
            count.set(0)
            byte_idx.set(0)
        with b.elif_(mode == _M_ROOTS):
            with b.when(byte_idx == 0):
                shift_reg.set(b.input)
                byte_idx.set(1)
            with b.otherwise():
                roots[count.bits(7, 0)] = b.cat(b.input, shift_reg.bits(7, 0))
                byte_idx.set(0)
                last = count == n_trees - 1
                count.set(b.mux(last, 0, count + 1))
                with b.when(last):
                    mode.set(_M_NNODES)
        with b.elif_(mode == _M_NNODES):
            with b.when(byte_idx == 0):
                shift_reg.set(b.input)
                byte_idx.set(1)
            with b.otherwise():
                n_nodes.set(b.cat(b.input, shift_reg.bits(7, 0)))
                byte_idx.set(0)
                count.set(0)
                mode.set(_M_NODES)
        with b.elif_(mode == _M_NODES):
            record = b.wire(
                b.cat(b.input, shift_reg.bits(NODE_BYTES * 8 - 1, 8)),
                name="node_record",
            )
            shift_reg.set(record)
            with b.when(byte_idx == NODE_BYTES - 1):
                nodes[count] = record
                byte_idx.set(0)
                last = count == n_nodes - 1
                count.set(b.mux(last, 0, count + 1))
                with b.when(last):
                    mode.set(_M_DATA)
            with b.otherwise():
                byte_idx.set(byte_idx + 1)
        with b.otherwise():  # _M_DATA: 4 bytes per feature value
            word = b.wire(
                b.cat(b.input, shift_reg.bits(31, 8)), name="feature_word"
            )
            shift_reg.set(word)
            with b.when(byte_idx == 3):
                features[count.bits(5, 0)] = word.bits(31, 0)
                byte_idx.set(0)
                last = count == n_features - 1
                count.set(b.mux(last, 0, count + 1))
                with b.when(last):
                    eval_state.set(_E_ROOT)
                    tree_idx.set(0)
                    acc.set(0)
                    emit_cnt.set(0)
            with b.otherwise():
                byte_idx.set(byte_idx + 1)
    return b.finish()


# ---------------------------------------------------------------------------
# Golden model and model serialization
# ---------------------------------------------------------------------------


class TreeNode:
    """One node of a serialized tree."""

    __slots__ = ("is_leaf", "feature", "threshold", "left", "right", "value")

    def __init__(self, *, is_leaf, feature=0, threshold=0, left=0, right=0,
                 value=0):
        self.is_leaf = is_leaf
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.value = value

    def encode(self):
        out = bytearray()
        out.append(1 if self.is_leaf else 0)
        out.append(self.feature)
        out += self.threshold.to_bytes(4, "little")
        out += self.left.to_bytes(2, "little")
        out += self.right.to_bytes(2, "little")
        out += self.value.to_bytes(4, "little")
        return bytes(out)


class GbtModel:
    """An ensemble: a flat node array plus one root index per tree."""

    def __init__(self, n_features, roots, nodes):
        self.n_features = n_features
        self.roots = list(roots)
        self.nodes = list(nodes)

    def encode_header(self):
        out = bytearray([self.n_features, len(self.roots)])
        for root in self.roots:
            out += root.to_bytes(2, "little")
        out += len(self.nodes).to_bytes(2, "little")
        for node in self.nodes:
            out += node.encode()
        return bytes(out)

    def predict(self, point):
        """Golden evaluation of one datapoint (32-bit wrapping sum)."""
        total = 0
        for root in self.roots:
            idx = root
            while not self.nodes[idx].is_leaf:
                node = self.nodes[idx]
                idx = (
                    node.left if point[node.feature] < node.threshold
                    else node.right
                )
            total = (total + self.nodes[idx].value) & 0xFFFFFFFF
        return total


def encode_points(points):
    """Serialize datapoints (lists of 32-bit ints) to the stream tail."""
    out = bytearray()
    for point in points:
        for value in point:
            out += value.to_bytes(4, "little")
    return bytes(out)


def decision_tree_reference(model, points):
    """Golden model: the byte stream the unit emits (4 bytes/point, LE)."""
    out = []
    for point in points:
        out.extend(model.predict(point).to_bytes(4, "little"))
    return out
