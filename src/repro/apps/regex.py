"""Regular expression matching (paper Section 7.1).

A compile-time regex is turned into a circuit following the classic
FPGA NFA construction the paper cites (Sidhu & Prasanna, FCCM'01): one
single-bit register per regex character position, with next-state logic
``state[j] = char_matches(class_j) AND (OR of predecessor states)``. We
build the position automaton with the Glushkov construction (nullable /
first / last / follow sets), which yields exactly that one-hot register
structure with no epsilon transitions.

Matching semantics: the automaton restarts at every input character (all
``first`` positions are candidate starts each cycle), and the unit emits
the current 32-bit stream index whenever any match *ends* at the current
character — the paper's "emit the index of the current character in the
stream whenever the unit detects a match".

Supported syntax: literals, ``.``, escapes (``\\w \\d \\s`` and escaped
metacharacters), character classes ``[...]`` with ranges and ``^``
negation, grouping ``( )``, alternation ``|``, and the ``* + ?`` repeats.
Patterns that match the empty string are rejected (every index would be
emitted).

The default benchmark pattern is the email regex from the regex benchmark
the paper cites.
"""

import string

from ..lang import UnitBuilder

#: The email pattern from the mariomka/regex-benchmark suite (paper [4]).
EMAIL_PATTERN = r"[\w.+-]+@[\w-]+\.[\w.-]+"

_WORD_CHARS = frozenset(
    (string.ascii_letters + string.digits + "_").encode()
)
_DIGIT_CHARS = frozenset(string.digits.encode())
_SPACE_CHARS = frozenset(b" \t\n\r\x0b\x0c")
_DOT_CHARS = frozenset(range(256)) - {ord("\n")}
_METACHARS = set("\\^$.|?*+()[]")


class RegexSyntaxError(ValueError):
    """Malformed pattern."""


# ---------------------------------------------------------------------------
# Parsing to a tiny regex AST
# ---------------------------------------------------------------------------


class _Chars:
    """A character-class leaf (one automaton position)."""

    def __init__(self, chars):
        self.chars = frozenset(chars)


class _Concat:
    def __init__(self, parts):
        self.parts = parts


class _Alt:
    def __init__(self, options):
        self.options = options


class _Repeat:
    """op is '*', '+' or '?'."""

    def __init__(self, inner, op):
        self.inner = inner
        self.op = op


class _Epsilon:
    pass


class _Parser:
    def __init__(self, pattern):
        self.pattern = pattern
        self.pos = 0

    def peek(self):
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def take(self):
        ch = self.peek()
        if ch is None:
            raise RegexSyntaxError("unexpected end of pattern")
        self.pos += 1
        return ch

    def parse(self):
        node = self._alternation()
        if self.pos != len(self.pattern):
            raise RegexSyntaxError(
                f"unexpected {self.pattern[self.pos]!r} at {self.pos}"
            )
        return node

    def _alternation(self):
        options = [self._concat()]
        while self.peek() == "|":
            self.take()
            options.append(self._concat())
        return options[0] if len(options) == 1 else _Alt(options)

    def _concat(self):
        parts = []
        while self.peek() not in (None, "|", ")"):
            parts.append(self._repeat())
        if not parts:
            return _Epsilon()
        return parts[0] if len(parts) == 1 else _Concat(parts)

    def _repeat(self):
        node = self._atom()
        while self.peek() in ("*", "+", "?"):
            node = _Repeat(node, self.take())
        return node

    def _atom(self):
        ch = self.take()
        if ch == "(":
            node = self._alternation()
            if self.take() != ")":
                raise RegexSyntaxError("unbalanced parenthesis")
            return node
        if ch == "[":
            return _Chars(self._char_class())
        if ch == ".":
            return _Chars(_DOT_CHARS)
        if ch == "\\":
            return _Chars(self._escape())
        if ch in _METACHARS:
            raise RegexSyntaxError(f"unexpected metacharacter {ch!r}")
        return _Chars({ord(ch)})

    def _escape(self):
        ch = self.take()
        if ch == "w":
            return _WORD_CHARS
        if ch == "d":
            return _DIGIT_CHARS
        if ch == "s":
            return _SPACE_CHARS
        if ch in "nrt":
            return {ord({"n": "\n", "r": "\r", "t": "\t"}[ch])}
        return {ord(ch)}

    def _char_class(self):
        negated = False
        if self.peek() == "^":
            self.take()
            negated = True
        chars = set()
        first = True
        while True:
            ch = self.take()
            if ch == "]" and not first:
                break
            first = False
            if ch == "\\":
                chars |= self._escape()
                continue
            if (
                self.peek() == "-"
                and self.pos + 1 < len(self.pattern)
                and self.pattern[self.pos + 1] != "]"
            ):
                self.take()
                hi = self.take()
                if ord(hi) < ord(ch):
                    raise RegexSyntaxError(f"bad range {ch}-{hi}")
                chars |= set(range(ord(ch), ord(hi) + 1))
            else:
                chars.add(ord(ch))
        if negated:
            return frozenset(range(256)) - chars
        return frozenset(chars)


# ---------------------------------------------------------------------------
# Glushkov position automaton
# ---------------------------------------------------------------------------


class PositionAutomaton:
    """nullable/first/last/follow over numbered character positions."""

    def __init__(self, classes, nullable, first, last, follow):
        self.classes = classes  # position -> frozenset of byte values
        self.nullable = nullable
        self.first = first  # set of positions
        self.last = last  # set of positions
        self.follow = follow  # position -> set of successor positions

    @property
    def size(self):
        return len(self.classes)


def build_automaton(pattern):
    """Parse ``pattern`` and run the Glushkov construction."""
    ast = _Parser(pattern).parse()
    classes = []
    follow = {}

    def go(node):
        """Returns (nullable, first, last)."""
        if isinstance(node, _Epsilon):
            return True, set(), set()
        if isinstance(node, _Chars):
            if not node.chars:
                raise RegexSyntaxError("empty character class")
            position = len(classes)
            classes.append(node.chars)
            follow[position] = set()
            return False, {position}, {position}
        if isinstance(node, _Alt):
            nullable, first, last = False, set(), set()
            for option in node.options:
                n, f, l = go(option)
                nullable = nullable or n
                first |= f
                last |= l
            return nullable, first, last
        if isinstance(node, _Concat):
            nullable, first, last = True, set(), set()
            for part in node.parts:
                n, f, l = go(part)
                for p in last:
                    follow[p] |= f
                if nullable:
                    first |= f
                if n:
                    last |= l
                else:
                    last = l
                nullable = nullable and n
            return nullable, first, last
        if isinstance(node, _Repeat):
            n, f, l = go(node.inner)
            if node.op in ("*", "+"):
                for p in l:
                    follow[p] |= f
            if node.op in ("*", "?"):
                n = True
            return n, f, l
        raise RegexSyntaxError(f"unknown node {node!r}")

    nullable, first, last = go(ast)
    if nullable:
        raise RegexSyntaxError(
            "pattern matches the empty string; every index would match"
        )
    return PositionAutomaton(classes, nullable, first, last, follow)


def _char_ranges(chars):
    """Collapse a character set into sorted inclusive (lo, hi) ranges."""
    ordered = sorted(chars)
    ranges = []
    start = prev = ordered[0]
    for c in ordered[1:]:
        if c == prev + 1:
            prev = c
            continue
        ranges.append((start, prev))
        start = prev = c
    ranges.append((start, prev))
    return ranges


# ---------------------------------------------------------------------------
# The processing unit and its golden model
# ---------------------------------------------------------------------------


def regex_match_unit(pattern=EMAIL_PATTERN):
    """Build the NFA-circuit matching unit for a compile-time pattern.

    One 1-bit register per position; all next-state logic is a few gates —
    the construction scales with the pattern, not with the input, and every
    input character takes exactly one virtual cycle.
    """
    automaton = build_automaton(pattern)
    predecessors = {j: set() for j in range(automaton.size)}
    for i, successors in automaton.follow.items():
        for j in successors:
            predecessors[j].add(i)

    b = UnitBuilder("regex_match", input_width=8, output_width=32)
    states = [
        b.reg(f"state_{j}", width=1, init=0) for j in range(automaton.size)
    ]
    position = b.reg("position", width=32, init=0)

    with b.when(b.not_(b.stream_finished)):
        matches = []
        for j, chars in enumerate(automaton.classes):
            ranges = _char_ranges(chars)
            terms = []
            for lo, hi in ranges:
                if lo == hi:
                    terms.append(b.input == lo)
                else:
                    terms.append(b.all_of(b.input >= lo, b.input <= hi))
            matches.append(b.wire(b.any_of(*terms), name=f"match_{j}"))
        new_states = []
        for j in range(automaton.size):
            if j in automaton.first:
                # A new match attempt can start at every character.
                active = b.const(1, 1)
            else:
                active = b.any_of(*[states[i] for i in predecessors[j]])
            new_states.append(
                b.wire(matches[j] & active, name=f"next_{j}")
            )
        hit = b.any_of(*[new_states[j] for j in automaton.last])
        with b.when(hit):
            b.emit(position)
        for j in range(automaton.size):
            states[j].set(new_states[j])
        position.set(position + 1)
    return b.finish()


def regex_reference(data, pattern=EMAIL_PATTERN):
    """Golden model: every stream index where a match ends, via bitset NFA
    simulation over the same Glushkov automaton."""
    automaton = build_automaton(pattern)
    last_mask = 0
    for j in automaton.last:
        last_mask |= 1 << j
    first_mask = 0
    for j in automaton.first:
        first_mask |= 1 << j
    # char -> bitmask of positions whose class contains it.
    char_masks = [0] * 256
    for j, chars in enumerate(automaton.classes):
        for c in chars:
            char_masks[c] |= 1 << j
    # position -> bitmask of successors.
    follow_masks = [0] * automaton.size
    for i, successors in automaton.follow.items():
        for j in successors:
            follow_masks[i] |= 1 << j

    hits = []
    state = 0
    for index, char in enumerate(data):
        reachable = first_mask
        rest = state
        while rest:
            low = rest & -rest
            reachable |= follow_masks[low.bit_length() - 1]
            rest ^= low
        state = reachable & char_masks[char]
        if state & last_mask:
            hits.append(index & 0xFFFFFFFF)
    return hits
