"""CSV column extraction — a second unit in the paper's parsing domain.

Extracts a compile-time set of columns from RFC-4180-style CSV rows
(newline-terminated records, ``"``-quoted fields with ``""`` escapes,
quotes significant only at field start). Selected columns' bytes are
emitted with their quoting removed, each field terminated by a NUL
separator (quoted fields may legally contain commas and newlines, so a
printable separator would be ambiguous).

Unlike the JSON and string-search units this one needs no BRAM at all —
the entire parser is a register state machine, so it is among the
densest-packing units — and like them it processes exactly one character
per virtual cycle.

The golden model is cross-checked against Python's ``csv`` module by the
test suite.
"""

from ..lang import UnitBuilder

SEPARATOR = 0x00

# Parser states.
_START, _FIELD, _QUOTED, _QUOTE_SEEN = range(4)


def csv_extract_unit(columns=(0, 2), max_columns=256):
    """Build the extractor for a compile-time column set."""
    columns = tuple(sorted(set(columns)))
    if not columns:
        raise ValueError("need at least one column index")
    if columns[-1] >= max_columns:
        raise ValueError(f"column index {columns[-1]} out of range")

    b = UnitBuilder("csv_extract", input_width=8, output_width=8)
    state = b.reg("state", width=2, init=_START)
    col = b.reg("col", width=max(1, (max_columns - 1).bit_length()), init=0)

    ch = b.input
    selected = b.wire(
        b.any_of(*[col == c for c in columns]), name="selected"
    )

    def end_field(is_row_end):
        with b.when(selected):
            b.emit(SEPARATOR)
        if is_row_end:
            col.set(0)
        else:
            col.set(col + 1)
        state.set(_START)

    with b.when(b.not_(b.stream_finished)):
        with b.when(state == _START):
            with b.when(ch == ord('"')):
                state.set(_QUOTED)
            with b.elif_(ch == ord(",")):
                end_field(False)
            with b.elif_(ch == ord("\n")):
                end_field(True)
            with b.otherwise():
                state.set(_FIELD)
                with b.when(selected):
                    b.emit(ch)
        with b.elif_(state == _FIELD):
            with b.when(ch == ord(",")):
                end_field(False)
            with b.elif_(ch == ord("\n")):
                end_field(True)
            with b.otherwise():
                with b.when(selected):
                    b.emit(ch)
        with b.elif_(state == _QUOTED):
            with b.when(ch == ord('"')):
                state.set(_QUOTE_SEEN)
            with b.otherwise():
                with b.when(selected):
                    b.emit(ch)
        with b.otherwise():  # _QUOTE_SEEN: "" escape or field end
            with b.when(ch == ord('"')):
                state.set(_QUOTED)
                with b.when(selected):
                    b.emit(ord('"'))
            with b.elif_(ch == ord(",")):
                end_field(False)
            with b.elif_(ch == ord("\n")):
                end_field(True)
            # anything else after a closing quote is malformed; ignore
    return b.finish()


def csv_extract_reference(columns, text):
    """Golden model: the exact byte stream the unit emits."""
    columns = set(columns)
    out = []
    state = _START
    col = 0

    def end_field(row_end):
        nonlocal col, state
        if col in columns:
            out.append(SEPARATOR)
        col = 0 if row_end else col + 1
        state = _START

    for ch in bytes(text):
        selected = col in columns
        if state == _START:
            if ch == ord('"'):
                state = _QUOTED
            elif ch == ord(","):
                end_field(False)
            elif ch == ord("\n"):
                end_field(True)
            else:
                state = _FIELD
                if selected:
                    out.append(ch)
        elif state == _FIELD:
            if ch == ord(","):
                end_field(False)
            elif ch == ord("\n"):
                end_field(True)
            elif selected:
                out.append(ch)
        elif state == _QUOTED:
            if ch == ord('"'):
                state = _QUOTE_SEEN
            elif selected:
                out.append(ch)
        else:  # _QUOTE_SEEN
            if ch == ord('"'):
                state = _QUOTED
                if selected:
                    out.append(ord('"'))
            elif ch == ord(","):
                end_field(False)
            elif ch == ord("\n"):
                end_field(True)
    return out


def decode_fields(emitted):
    """Split an emitted byte stream back into field values."""
    fields = []
    current = bytearray()
    for byte in emitted:
        if byte == SEPARATOR:
            fields.append(bytes(current))
            current = bytearray()
        else:
            current.append(byte)
    return fields
