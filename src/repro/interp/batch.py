"""Vectorized many-PU batch engine: N lockstep replicas per virtual cycle.

The compiled engine (:mod:`repro.interp.compile`) removed per-node
dispatch but still executes one processing unit at a time; simulating a
Figure-7 fleet of 192+ PUs costs N independent runs. This module lowers
a :class:`~repro.lang.ast.UnitProgram` *once* into NumPy array code that
executes N replicas per virtual cycle as SIMD over struct-of-arrays
state:

* registers become rows of one ``(R, N)`` ``uint64`` matrix (lane ``i``
  is replica ``i``'s value);
* vector registers and BRAMs with the same element count are stacked
  into ``(B, E, N)`` ``uint64`` groups, read with flat gathers and
  written with boolean-compressed scatters;
* guards and ``while_done`` become boolean lane masks, and every
  pending write commits at end-of-cycle as ``old += (new - old) * mask``
  — exact modulo ``2**64`` — preserving the interpreter's
  read-start-of-cycle / last-write-wins semantics bit for bit;
* replicas with unequal stream lengths run under an active-lane mask
  (the :mod:`repro.isa.simt` reconvergence idiom), so one compilation
  serves a whole ragged batch.

The lowering is *structural*: expression nodes are interned (CSE over
the program DAG), then grouped into classes of nodes with the same
operator and child classes. Each class evaluates with one ufunc call
over a ``(G, N)`` block — differing constants become ``(G, 1)``
columns — so per-cycle Python overhead scales with the number of
*shapes* in the program, not the number of nodes.

Every arithmetic value lives in a ``uint64`` lane: Fleet's width rules
(:mod:`repro.lang.types`) guarantee each expression's exact value fits
its inferred width ``<= 64`` bits, so ``uint64`` arithmetic is exact
everywhere except explicit wrap points (``sub`` and assignment
truncation AND with the width mask, ``not`` XORs it). Comparisons,
reductions, and guard masks are ``bool`` arrays — NumPy's boolean
ufunc loops are measurably faster than integer ones, and booleans feed
``uint64`` arithmetic without casts. The generated per-cycle code calls
every ufunc with preallocated ``out=`` buffers, hoists all row views
out of the loop, and never passes ``dtype=``/``casting=`` keywords on
the hot path (both measurably triple a small-N ufunc call).

Soundness conditions (checked by :func:`batch_support`):

* every BRAM/vector register has a power-of-two element count (same
  totality gate as the compiled engine);
* every expression width is at most 64 bits and every constant fits a
  machine word;
* only the operator set the compiled engine supports appears.

Like check-elision in the compiled engine, automatic selection
(:func:`batch_engine_for`) additionally requires a clean covering
:class:`~repro.lint.certificate.RestrictionCertificate`: the grouped
write commits assume the restriction checks can never fire.

NumPy is an optional dependency: when it is missing every entry point
degrades gracefully (``batch_support`` says so, ``batch_engine_for``
returns ``None`` so callers fall back to the compiled engine) and
:func:`compile_batch` raises a :class:`FleetSimulationError` with an
install hint.
"""

import re
import time

try:  # pragma: no cover - exercised both ways across environments
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..envcfg import env_choice
from ..lang import ast
from ..lang.errors import (
    FleetConfigError,
    FleetLoopLimitError,
    FleetSimulationError,
)
from ..lang.types import MACHINE_WIDTH, machine_bits, mask
from ..telemetry.metrics import counter as _tm_counter
from ..telemetry.metrics import enabled as _tm_enabled
from ..telemetry.metrics import histogram as _tm_histogram
from . import native as _native
from .compile import _Codegen as _ScalarCodegen
from .native import _cc_load, cc_available
from .trace import StreamTrace

#: Live telemetry (repro.telemetry; zero-cost unless FLEET_METRICS).
_BATCH_FALLBACKS = _tm_counter(
    "fleet_batch_fallback_total",
    "batch_engine_for() declined and callers fell back to per-stream "
    "engines",
    ("reason",),
)
_BATCH_COMPILES = _tm_counter(
    "fleet_batch_compiles_total",
    "Unit programs lowered to the SIMD batch engine",
)
_NATIVE_BUILD_SECONDS = _tm_histogram(
    "fleet_batch_native_build_seconds",
    "Wall-clock seconds per native (cffi) batch-kernel build or load",
)

#: Shown when the batch engine is requested but NumPy is not importable.
NUMPY_HINT = (
    "the batch engine requires numpy (`pip install numpy`); "
    "install it or use the compiled engine"
)

#: Fleet binary operator -> local alias of the NumPy ufunc in the
#: generated driver's prelude.
_BIN_UFUNC = {
    "add": "add", "sub": "sub", "mul": "mul",
    "and": "and", "or": "orb", "xor": "xor",
    "shl": "shl", "shr": "shr",
    "eq": "eq", "ne": "ne", "lt": "lt", "le": "le",
    "gt": "gt", "ge": "ge",
}

_CMP_OPS = frozenset(("eq", "ne", "lt", "le", "gt", "ge"))
_UN_OPS = frozenset(("not", "lnot", "orr", "andr", "xorr"))
_BOOL_UNS = frozenset(("lnot", "orr", "andr", "xorr"))


def numpy_available():
    """Whether NumPy imported successfully (the batch engine's only
    dependency beyond the standard library)."""
    return _np is not None


class _Unsupported(Exception):
    """Raised during lowering when a program can't take the batch path."""


def batch_support(program):
    """Whether ``program`` can run on the batch engine.

    Returns ``(True, "")`` or ``(False, reason)``. The conditions are the
    compiled engine's totality gate plus the machine-word gate: every
    expression must fit a 64-bit lane.
    """
    if _np is None:
        return False, NUMPY_HINT
    from .compile import _state_shape_ok

    if not _state_shape_ok(program):
        return False, (
            "every BRAM and vector register needs a power-of-two "
            "element count"
        )
    if machine_bits(program.input_width) is None:
        return False, f"input width {program.input_width} exceeds 64 bits"
    if machine_bits(program.output_width) is None:
        return False, f"output width {program.output_width} exceeds 64 bits"
    roots = []
    for stmt in ast.walk_statements(program.body):
        roots.extend(ast.statement_exprs(stmt))
    seen = set()
    for root in roots:
        for node in ast.walk_expr(root):
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, ast.Const):
                if node.value > mask(MACHINE_WIDTH):
                    return False, (
                        f"constant {node.value} exceeds a 64-bit machine word"
                    )
                continue
            if machine_bits(node.width) is None:
                return False, (
                    f"expression width {node.width} exceeds 64-bit lanes"
                )
            if isinstance(node, ast.BinOp):
                if node.op not in _BIN_UFUNC:
                    return False, f"unsupported operator {node.op!r}"
            elif isinstance(node, ast.UnOp):
                if node.op not in _UN_OPS:
                    return False, f"unsupported operator {node.op!r}"
            elif not isinstance(node, (
                ast.InputToken, ast.StreamFinished, ast.RegRead,
                ast.WireRead, ast.VectorRegRead, ast.BramRead, ast.Mux,
                ast.Slice, ast.Concat,
            )):
                return False, f"unsupported node {node!r}"
    return True, ""


# ---------------------------------------------------------------------------
# Occurrences (CSE) and structural classes
# ---------------------------------------------------------------------------


class _Occ:
    """One interned expression occurrence (a value-numbered DAG node)."""

    __slots__ = ("idx", "kind", "op", "width", "children", "params",
                 "value", "cls", "row")

    def __init__(self, idx, kind, op, width, children, params, value=None):
        self.idx = idx
        self.kind = kind
        self.op = op
        self.width = width
        self.children = children
        self.params = params
        self.value = value
        self.cls = None
        self.row = None


class _Cls:
    """A structural class: occurrences evaluated by one stacked ufunc."""

    __slots__ = ("idx", "kind", "op", "members", "name", "store")

    def __init__(self, idx, kind, op):
        self.idx = idx
        self.kind = kind
        self.op = op
        self.members = []
        self.name = None
        self.store = "u"


class _BatchCodegen:
    def __init__(self, program):
        self.program = program
        self.occs = []
        self.memo = {}
        self.node_memo = {}
        self.pool = []
        self.pool_memo = {}
        self.pool_mat = set()
        self.alloc = []           # (name, rows_or_None, "u"/"b"/"intp")
        self.hoists = {}          # view expr -> prelude local name
        self.lines_cls = []
        self.lines_mask = []
        self.lines_wd = []
        self.lines_emit = []
        self.lines_guard = []
        self.lines_commit = []
        self.mask_count = 0
        self.scratch_count = 0
        self.snap_memo = {}
        self.wd_cache = {}
        self.cnz_cache = {}
        self.whiles = []          # activation mask names
        self.site_regs = []       # (row, mask, val_occ)
        self.site_states = []     # (gid, member, mask, addr_occ, val_occ)
        self.site_emits = []      # (mask, val_occ)
        self._build_layout()
        self.plan = self._walk_body(program.body)
        self._assign_classes()
        self._decide_stores()

    # -- state layout --------------------------------------------------------
    def _build_layout(self):
        program = self.program
        nregs = len(program.regs)
        self.reg_groups = {64: list(range(nregs))} if nregs else {}
        self.reg_loc = {i: (64, i) for i in range(nregs)}
        self.state_groups = []    # (64, elements, [(kind, index), ...])
        self.state_loc = {}       # (kind, index) -> (gid, member)
        keymap = {}
        decls = [("vreg", i, v) for i, v in enumerate(program.vregs)]
        decls += [("bram", i, b) for i, b in enumerate(program.brams)]
        for kind, i, decl in decls:
            gid = keymap.get(decl.elements)
            if gid is None:
                gid = len(self.state_groups)
                keymap[decl.elements] = gid
                self.state_groups.append((64, decl.elements, []))
            members = self.state_groups[gid][2]
            self.state_loc[(kind, i)] = (gid, len(members))
            members.append((kind, i))

    # -- interning -----------------------------------------------------------
    def _intern(self, kind, op, width, children, params, value=None):
        key = (kind, op, width, children, params, value)
        idx = self.memo.get(key)
        if idx is not None:
            return idx
        if kind != "const" and machine_bits(width) is None:
            raise _Unsupported(f"width {width} exceeds 64-bit lanes")
        occ = _Occ(len(self.occs), kind, op, width, children, params, value)
        self.occs.append(occ)
        self.memo[key] = occ.idx
        return occ.idx

    def _const(self, value, width):
        return self._intern("const", None, width, (), (), value)

    def _trunc(self, oid, width):
        occ = self.occs[oid]
        if occ.kind == "const":
            return self._const(occ.value & mask(width), width)
        if occ.width <= width:
            return oid
        return self._slice(oid, 0, width)

    def _slice(self, oid, lo, width):
        occ = self.occs[oid]
        if occ.kind == "const":
            return self._const((occ.value >> lo) & mask(width), width)
        if lo == 0 and width >= occ.width:
            return oid
        return self._intern("slice", None, width, (oid,), (lo,))

    def occ_of(self, node):
        oid = self.node_memo.get(id(node))
        if oid is None:
            oid = self._occ_of(node)
            self.node_memo[id(node)] = oid
        return oid

    def _occ_of(self, node):
        from .. import ops

        if isinstance(node, ast.Const):
            if node.value > mask(MACHINE_WIDTH):
                raise _Unsupported(f"constant {node.value} exceeds 64 bits")
            return self._const(node.value, node.width)
        if isinstance(node, ast.InputToken):
            return self._intern("token", None, node.width, (), ())
        if isinstance(node, ast.StreamFinished):
            return self._intern("sf", None, 1, (), ())
        if isinstance(node, ast.WireRead):
            return self.occ_of(node.wire.value)
        if isinstance(node, ast.RegRead):
            ri = self.program.regs.index(node.reg)
            return self._intern("reg", None, node.width, (), (ri,))
        if isinstance(node, (ast.VectorRegRead, ast.BramRead)):
            if isinstance(node, ast.VectorRegRead):
                kind = "vreg"
                di = self.program.vregs.index(node.vreg)
                aw = node.vreg.index_width
                addr = self.occ_of(node.index)
            else:
                kind = "bram"
                di = self.program.brams.index(node.bram)
                aw = node.bram.addr_width
                addr = self.occ_of(node.addr)
            gid, member = self.state_loc[(kind, di)]
            addr = self._trunc(addr, aw)
            aocc = self.occs[addr]
            if aocc.kind == "const":
                _, elements, _ = self.state_groups[gid]
                row = member * elements + aocc.value
                return self._intern("sload", None, node.width, (),
                                    (gid, row))
            return self._intern("vread", None, node.width, (addr,),
                                (gid, member))
        if isinstance(node, ast.BinOp):
            lhs = self.occ_of(node.lhs)
            rhs = self.occ_of(node.rhs)
            lo, ro = self.occs[lhs], self.occs[rhs]
            if lo.kind == "const" and ro.kind == "const":
                value = ops.eval_binop(
                    node.op, lo.value, ro.value,
                    node.lhs.width, node.rhs.width,
                )
                return self._const(value, node.width)
            if node.op == "shr" and ro.kind == "const" \
                    and ro.value >= node.lhs.width:
                return self._const(0, node.width)
            if node.op not in _BIN_UFUNC:
                raise _Unsupported(f"operator {node.op!r}")
            return self._intern("bin", node.op, node.width, (lhs, rhs),
                                (node.lhs.width, node.rhs.width))
        if isinstance(node, ast.UnOp):
            a = self.occ_of(node.operand)
            ao = self.occs[a]
            if ao.kind == "const":
                value = ops.eval_unop(node.op, ao.value, node.operand.width)
                return self._const(value, node.width)
            op = node.op
            if op not in _UN_OPS:
                raise _Unsupported(f"operator {op!r}")
            if node.operand.width == 1:
                # Width-1 reductions are the identity; width-1 NOT is
                # logical-not (both keep the 0/1 value exact).
                if op in ("orr", "andr", "xorr"):
                    return a
                if op == "not":
                    op = "lnot"
            return self._intern("un", op, node.width, (a,),
                                (node.operand.width,))
        if isinstance(node, ast.Mux):
            cond = self.occ_of(node.cond)
            co = self.occs[cond]
            if co.kind == "const":
                return self.occ_of(node.then if co.value else node.els)
            then = self.occ_of(node.then)
            els = self.occ_of(node.els)
            if then == els:
                return then
            return self._intern("mux", None, node.width, (cond, then, els),
                                ())
        if isinstance(node, ast.Slice):
            return self._slice(self.occ_of(node.operand), node.lo,
                               node.width)
        if isinstance(node, ast.Concat):
            parts = tuple(self.occ_of(p) for p in node.parts)
            if all(self.occs[p].kind == "const" for p in parts):
                value = 0
                for p, pn in zip(parts, node.parts):
                    value = (value << pn.width) | self.occs[p].value
                return self._const(value, node.width)
            widths = tuple(p.width for p in node.parts)
            return self._intern("cat", None, node.width, parts, (widths,))
        raise _Unsupported(f"unsupported node {node!r}")

    # -- statement walk (builds occs, records the plan) ----------------------
    def _walk_body(self, body):
        plan = []
        for stmt in body:
            if isinstance(stmt, ast.If):
                arms = []
                for cond, arm_body in stmt.arms:
                    cocc = None if cond is None else self.occ_of(cond)
                    arms.append((cocc, self._walk_body(arm_body)))
                plan.append(("if", arms))
            elif isinstance(stmt, ast.While):
                cocc = self.occ_of(stmt.cond)
                plan.append(("while", cocc, self._walk_body(stmt.body)))
            elif isinstance(stmt, ast.RegAssign):
                ri = self.program.regs.index(stmt.reg)
                val = self._trunc(self.occ_of(stmt.value), stmt.reg.width)
                plan.append(("reg", ri, val))
            elif isinstance(stmt, ast.VectorRegAssign):
                di = self.program.vregs.index(stmt.vreg)
                gid, member = self.state_loc[("vreg", di)]
                addr = self._trunc(self.occ_of(stmt.index),
                                   stmt.vreg.index_width)
                val = self._trunc(self.occ_of(stmt.value), stmt.vreg.width)
                plan.append(("state", gid, member, addr, val))
            elif isinstance(stmt, ast.BramWrite):
                di = self.program.brams.index(stmt.bram)
                gid, member = self.state_loc[("bram", di)]
                addr = self._trunc(self.occ_of(stmt.addr),
                                   stmt.bram.addr_width)
                val = self._trunc(self.occ_of(stmt.value), stmt.bram.width)
                plan.append(("state", gid, member, addr, val))
            elif isinstance(stmt, ast.Emit):
                val = self._trunc(self.occ_of(stmt.value),
                                  self.program.output_width)
                plan.append(("emit", val))
            else:
                raise _Unsupported(f"unsupported statement {stmt!r}")
        return plan

    # -- classing ------------------------------------------------------------
    def _assign_classes(self):
        self.classes = []
        sigmap = {}
        for occ in self.occs:
            if occ.kind in ("const", "token", "sf"):
                continue
            if occ.kind == "reg":
                sig = ("reg",)
            elif occ.kind == "sload":
                sig = ("sload", occ.params[0])
            else:
                marks = []
                for ci in occ.children:
                    c = self.occs[ci]
                    if c.kind == "const":
                        marks.append("K")
                    elif c.kind == "token":
                        marks.append("T")
                    elif c.kind == "sf":
                        marks.append("S")
                    else:
                        marks.append(("C", c.cls))
                extra = occ.params[0] if occ.kind == "vread" else None
                sig = (occ.kind, occ.op, tuple(marks), extra)
            cls = sigmap.get(sig)
            if cls is None:
                cls = _Cls(len(self.classes), occ.kind, occ.op)
                self.classes.append(cls)
                sigmap[sig] = cls
            occ.cls = cls.idx
            occ.row = len(cls.members)
            cls.members.append(occ.idx)

    def _boolish_child(self, ci):
        """Whether child occurrence ``ci`` is stored as (or acts like) a
        boolean: a bool-stored class row, stream-finished, or a 0/1
        constant."""
        c = self.occs[ci]
        if c.kind == "sf":
            return True
        if c.kind == "const":
            return c.value <= 1
        if c.kind in ("token", "reg", "sload"):
            return False
        return self.classes[c.cls].store == "b"

    def _decide_stores(self):
        """Pick bool vs uint64 storage per class. Children are always
        interned (and therefore classed) before their parents, so one
        in-order pass suffices."""
        for cls in self.classes:
            if cls.kind == "bin" and cls.op in _CMP_OPS:
                cls.store = "b"
            elif cls.kind == "un" and cls.op in _BOOL_UNS:
                cls.store = "b"
            elif cls.kind == "bin" and cls.op in ("and", "or", "xor"):
                if all(
                    self._boolish_child(ci)
                    for m in cls.members
                    for ci in self.occs[m].children
                ):
                    cls.store = "b"
            elif cls.kind == "mux":
                if all(
                    self._boolish_child(self.occs[m].children[s])
                    for m in cls.members
                    for s in (1, 2)
                ):
                    cls.store = "b"

    # -- pools, buffers, hoisted views ---------------------------------------
    def _pool(self, array, mat=False):
        """Intern a constant array. ``mat=True`` marks a per-row value
        column to be materialized as a full contiguous ``(g, N)`` matrix
        in the prelude: a ``(g, 1)`` broadcast forces the ufunc off its
        flat 1-D fast loop and measures ~2x slower per call."""
        key = (array.dtype.str, array.shape, array.tobytes())
        idx = self.pool_memo.get(key)
        if idx is None:
            idx = len(self.pool)
            self.pool.append(array)
            self.pool_memo[key] = idx
        if mat:
            self.pool_mat.add(idx)
        return f"_k{idx}"

    def _buffer(self, name, rows, dt):
        self.alloc.append((name, rows, dt))
        return name

    def _scratch(self, rows, dt):
        name = f"_x{self.scratch_count}"
        self.scratch_count += 1
        return self._buffer(name, rows, dt)

    def _hoist(self, expr):
        """Prelude-hoisted local for a row/slice view of a stable buffer
        (a basic-slice view stays live across in-place writes; nothing in
        the generated body ever rebinds a buffer)."""
        name = self.hoists.get(expr)
        if name is None:
            name = f"_h{len(self.hoists)}"
            self.hoists[expr] = name
        return name

    # -- operand realization -------------------------------------------------
    def _occ_matrow(self, occ):
        """(matrix, row) for an occurrence living in a stacked matrix."""
        if occ.kind == "reg":
            return "_rm", occ.params[0]
        if occ.kind == "sload":
            gid, row = occ.params
            return f"_sld{gid}", row
        cls = self.classes[occ.cls]
        return cls.name, occ.row

    def _rows(self, kids):
        """Operand info for same-class occurrences stacked in row order:
        ``("x", expr, is_bool)``. Single rows and contiguous slices are
        hoisted views; scattered rows fall back to a fancy gather (which
        copies, so it must be evaluated fresh each cycle)."""
        k0 = kids[0]
        if k0.kind in ("reg", "sload"):
            isb = False
        else:
            isb = self.classes[k0.cls].store == "b"
        mat0, _ = self._occ_matrow(k0)
        rows = [self._occ_matrow(k)[1] for k in kids]
        if all(r == rows[0] for r in rows):
            return ("x", self._hoist(f"{mat0}[{rows[0]}]"), isb)
        if all(rows[i] + 1 == rows[i + 1] for i in range(len(rows) - 1)):
            return ("x",
                    self._hoist(f"{mat0}[{rows[0]}:{rows[-1] + 1}]"), isb)
        step = rows[1] - rows[0]
        if step > 1 and all(
            rows[i] + step == rows[i + 1] for i in range(len(rows) - 1)
        ):
            # A constant-stride run is a basic-slice view: no per-cycle
            # gather copy.
            return ("x", self._hoist(
                f"{mat0}[{rows[0]}:{rows[-1] + 1}:{step}]"), isb)
        idx = self._pool(_np.array(rows, dtype=_np.intp))
        return ("x", f"{mat0}[{idx}]", isb)

    def _slot(self, cls, slot):
        """Operand info for one child slot of every member of ``cls``:
        ``("k", values)`` or ``("x", expr, is_bool)``."""
        kids = [self.occs[self.occs[m].children[slot]]
                for m in cls.members]
        k0 = kids[0]
        if k0.kind == "const":
            return ("k", [k.value for k in kids])
        if k0.kind == "token":
            return ("x", "_tok", False)
        if k0.kind == "sf":
            return ("x", "_sf", True)
        return self._rows(kids)

    def _refo(self, oid):
        """Operand info for a single occurrence."""
        occ = self.occs[oid]
        if occ.kind == "const":
            return ("k", [occ.value])
        if occ.kind == "token":
            return ("x", "_tok", False)
        if occ.kind == "sf":
            return ("x", "_sf", True)
        return self._rows([occ])

    def _isb(self, info):
        return info[0] == "x" and info[2]

    def _is_bool_oid(self, oid):
        occ = self.occs[oid]
        if occ.kind == "sf":
            return True
        if occ.kind in ("const", "token", "reg", "sload"):
            return False
        return self.classes[occ.cls].store == "b"

    def _sx(self, info, other_bool=False, arith=False):
        """Source text for an operand. Constants become plain literals
        (NEP 50 weak scalars adopt the uint64 array dtype) except when
        the partner operand is a boolean array: a weak int above 1 would
        raise OverflowError against ``bool``, and arithmetic must not
        fall into NumPy's logical bool-loops, so those constants are
        wrapped as typed ``_u64(...)`` scalars (or bool literals/columns
        for pure mask logic)."""
        if info[0] == "x":
            return info[1]
        values = info[1]
        if all(v == values[0] for v in values):
            v = values[0]
            if other_bool:
                if arith or v > 1:
                    return f"_u64({v})"
                return "True" if v else "False"
            return str(v)
        if other_bool and not arith and max(values) <= 1:
            col = _np.array(values, dtype=_np.bool_).reshape(-1, 1)
        else:
            col = _np.array(values, dtype=_np.uint64).reshape(-1, 1)
        return self._pool(col, mat=True)

    # -- class evaluation ----------------------------------------------------
    def _emit_class_lines(self):
        lines = self.lines_cls
        for cls in self.classes:
            if cls.kind in ("reg", "sload"):
                continue
            name = f"_c{cls.idx}"
            cls.name = name
            self._buffer(name, len(cls.members),
                         "b" if cls.store == "b" else "u")
            if cls.kind == "bin":
                self._emit_bin(lines, cls, name)
            elif cls.kind == "un":
                self._emit_un(lines, cls, name)
            elif cls.kind == "mux":
                self._emit_mux(lines, cls, name)
            elif cls.kind == "vread":
                self._emit_vread(lines, cls, name)
            elif cls.kind == "slice":
                self._emit_slice(lines, cls, name)
            elif cls.kind == "cat":
                self._emit_cat(lines, cls, name)
            else:  # pragma: no cover - classing covers all kinds
                raise _Unsupported(f"class kind {cls.kind!r}")

    def _emit_bin(self, lines, cls, name):
        op = cls.op
        g = len(cls.members)
        ai = self._slot(cls, 0)
        bi = self._slot(cls, 1)
        ab, bb = self._isb(ai), self._isb(bi)
        fn = f"_{_BIN_UFUNC[op]}"
        if op in _CMP_OPS:
            a = self._sx(ai, other_bool=bb)
            b = self._sx(bi, other_bool=ab)
            lines.append(f"{fn}({a}, {b}, out={name})")
            return
        if op == "shr":
            a = self._sx(ai)
            b = self._sx(bi)
            bmaxes = []
            for m in cls.members:
                rocc = self.occs[self.occs[m].children[1]]
                bmaxes.append(rocc.value if rocc.kind == "const"
                              else mask(self.occs[m].params[1]))
            if max(bmaxes) < 64:
                lines.append(f"{fn}({a}, {b}, out={name})")
            else:
                bs = self._scratch(g, "u")
                bm = self._scratch(g, "b")
                lines.append(f"_min({b}, 63, out={bs})")
                lines.append(f"{fn}({a}, {bs}, out={name})")
                lines.append(f"_lt({b}, 64, out={bm})")
                lines.append(f"_mul({name}, {bm}, out={name})")
            return
        arith = op in ("add", "sub", "mul", "shl")
        a = self._sx(ai, other_bool=bb, arith=arith)
        b = self._sx(bi, other_bool=ab, arith=arith)
        dt = ""
        if op in ("add", "sub", "shl") and ab and bb:
            # bool+bool is logical-or in NumPy; force the uint64 loop.
            dt = ", dtype=_np.uint64"
        lines.append(f"{fn}({a}, {b}, out={name}{dt})")
        if op == "sub":
            widths = [self.occs[m].width for m in cls.members]
            if any(w < 64 for w in widths):
                mk = self._sx(("k", [mask(w) for w in widths]))
                lines.append(f"_and({name}, {mk}, out={name})")

    def _emit_un(self, lines, cls, name):
        op = cls.op
        g = len(cls.members)
        ai = self._slot(cls, 0)
        a = self._sx(ai)
        opw = [self.occs[m].params[0] for m in cls.members]
        if op == "not":
            mk = self._sx(("k", [mask(w) for w in opw]))
            lines.append(f"_xor({a}, {mk}, out={name})")
        elif op == "lnot":
            if self._isb(ai):
                lines.append(f"_lnot({a}, out={name})")
            else:
                lines.append(f"_eq({a}, 0, out={name})")
        elif op == "orr":
            lines.append(f"_ne({a}, 0, out={name})")
        elif op == "andr":
            mk = self._sx(("k", [mask(w) for w in opw]))
            lines.append(f"_eq({a}, {mk}, out={name})")
        else:  # xorr: xor-shift parity fold (high bits are zero)
            sc = self._scratch(g, "u")
            s2 = self._scratch(g, "u")
            lines.append(f"_cpy({sc}, {a})")
            sh = 32
            while sh:
                lines.append(f"_shr({sc}, {sh}, out={s2})")
                lines.append(f"_xor({sc}, {s2}, out={sc})")
                sh //= 2
            lines.append(f"_and({sc}, 1, out={sc})")
            lines.append(f"_ne({sc}, 0, out={name})")

    def _emit_mux(self, lines, cls, name):
        g = len(cls.members)
        ci = self._slot(cls, 0)
        ti = self._slot(cls, 1)
        ei = self._slot(cls, 2)
        cexpr = self._sx(ci)
        cbool = self._isb(ci)
        cw = max(self.occs[self.occs[m].children[0]].width
                 for m in cls.members)
        if cls.store == "b":
            # name = e ^ ((t ^ e) & c), all booleans.
            if not cbool:
                cn = self._scratch(g, "b")
                lines.append(f"_ne({cexpr}, 0, out={cn})")
                cexpr = cn
            if ti[0] == "k" and ei[0] == "k":
                dv = [tv ^ ev for tv, ev in zip(ti[1], ei[1])]
                d = self._sx(("k", dv), other_bool=True)
                lines.append(f"_and({d}, {cexpr}, out={name})")
                if any(ei[1]):
                    e = self._sx(("k", ei[1]), other_bool=True)
                    lines.append(f"_xor({name}, {e}, out={name})")
                return
            t = self._sx(ti, other_bool=True)
            e = self._sx(ei, other_bool=True)
            lines.append(f"_xor({t}, {e}, out={name})")
            lines.append(f"_and({name}, {cexpr}, out={name})")
            lines.append(f"_xor({name}, {e}, out={name})")
            return
        # name = (t - e) * c + e, exact modulo 2**64 for a 0/1 cond.
        if not cbool and cw > 1:
            cn = self._scratch(g, "b")
            lines.append(f"_ne({cexpr}, 0, out={cn})")
            cexpr = cn
            cbool = True
        if ti[0] == "k" and ei[0] == "k":
            dv = [(tv - ev) % 2 ** 64 for tv, ev in zip(ti[1], ei[1])]
            d = self._sx(("k", dv), other_bool=cbool, arith=True)
            lines.append(f"_mul({cexpr}, {d}, out={name})")
            if any(ei[1]):
                e = self._sx(("k", ei[1]))
                lines.append(f"_add({name}, {e}, out={name})")
            return
        t = self._sx(ti, other_bool=self._isb(ei), arith=True)
        e = self._sx(ei, other_bool=self._isb(ti), arith=True)
        lines.append(f"_sub({t}, {e}, out={name})")
        lines.append(f"_mul({name}, {cexpr}, out={name})")
        lines.append(f"_add({name}, {e}, out={name})")

    def _emit_vread(self, lines, cls, name):
        g = len(cls.members)
        gid = self.occs[cls.members[0]].params[0]
        _, elements, _ = self.state_groups[gid]
        ai = self._slot(cls, 0)
        a = self._sx(ai)
        # Index math runs in intp: a uint64 fancy index measures ~2x
        # slower than intp, and one flat gather beats an N-D fancy
        # gather (whose multi-index setup costs more than three ufuncs).
        ix = self._scratch(g, "intp")
        if self._isb(ai):
            lines.append(f"_mul({a}, _nNi, out={ix})")
        else:
            lines.append(f"_mul({a}, _N, out={ix}, casting='unsafe')")
        lines.append(f"_add({ix}, _lanesi, out={ix})")
        bases = [self.occs[m].params[1] * elements for m in cls.members]
        if any(bases):
            if all(b == bases[0] for b in bases):
                lines.append(f"_add({ix}, {bases[0]} * _N, out={ix})")
            else:
                col = self._pool(
                    _np.array(bases, dtype=_np.intp).reshape(-1, 1),
                    mat=True,
                )
                off = self._hoist(f"{col} * _N")
                lines.append(f"_add({ix}, {off}, out={ix})")
        lines.append(f"_cpy({name}, _sfl{gid}[{ix}])")

    def _emit_slice(self, lines, cls, name):
        ai = self._slot(cls, 0)
        a = self._sx(ai)
        los = [self.occs[m].params[0] for m in cls.members]
        widths = [self.occs[m].width for m in cls.members]
        child_ws = [self.occs[self.occs[m].children[0]].width
                    for m in cls.members]
        src = a
        if any(los):
            lo = self._sx(("k", los))
            lines.append(f"_shr({src}, {lo}, out={name})")
            src = name
        need_and = any(w < cw - lo
                       for w, cw, lo in zip(widths, child_ws, los))
        if need_and or src == a:
            mk = self._sx(("k", [mask(w) for w in widths]))
            lines.append(f"_and({src}, {mk}, out={name})")

    def _emit_cat(self, lines, cls, name):
        nparts = len(self.occs[cls.members[0]].children)
        infos = [self._slot(cls, s) for s in range(nparts)]
        widths_by_slot = [
            [self.occs[m].params[0][s] for m in cls.members]
            for s in range(nparts)
        ]
        # Fold any constant prefix into a single OR against the first
        # non-constant part (an all-constant cat folds at intern time).
        if infos[0][0] == "k":
            accv = list(infos[0][1])
            idx0 = 1
            while infos[idx0][0] == "k":
                accv = [(av << w) | pv for av, w, pv in zip(
                    accv, widths_by_slot[idx0], infos[idx0][1])]
                idx0 += 1
            shifted = [av << w
                       for av, w in zip(accv, widths_by_slot[idx0])]
            p = infos[idx0]
            ke = self._sx(("k", shifted), other_bool=self._isb(p))
            lines.append(f"_orb({ke}, {self._sx(p)}, out={name})")
            src = name
            srcb = False
            idx0 += 1
        else:
            src = self._sx(infos[0])
            srcb = self._isb(infos[0])
            idx0 = 1
        for si in range(idx0, nparts):
            we = self._sx(("k", widths_by_slot[si]),
                          other_bool=srcb, arith=True)
            lines.append(f"_shl({src}, {we}, out={name})")
            p = infos[si]
            lines.append(f"_orb({name}, {self._sx(p)}, out={name})")
            src = name
            srcb = False

    # -- masks and sites -----------------------------------------------------
    def _new_mask(self):
        """Masks live as rows of one stacked ``(M, N)`` matrix so a
        single per-cycle or-reduction yields every site guard at once."""
        name = f"_m{self.mask_count}"
        self.mask_count += 1
        return name

    def _norm(self, oid, out_lines):
        """Boolean expression for a condition occurrence; wide or
        uint64-stored conditions normalize through the shared ``_mnt``
        temp (consumed immediately by the following mask op)."""
        occ = self.occs[oid]
        if occ.kind == "sf":
            return "_sf"
        info = self._refo(oid)
        if self._isb(info):
            return info[1]
        out_lines.append(f"_ne({info[1]}, 0, out=_mnt)")
        return "_mnt"

    def _emit_masks(self, plan, ctx, in_loop):
        lines = self.lines_mask
        for item in plan:
            kind = item[0]
            if kind == "if":
                arms = item[1]
                nav = ctx
                narms = len(arms)
                for i, (cocc, subplan) in enumerate(arms):
                    if cocc is None:
                        self._emit_masks(subplan, nav, in_loop)
                        break
                    occ = self.occs[cocc]
                    if occ.kind == "const":
                        if occ.value:
                            self._emit_masks(subplan, nav, in_loop)
                            break
                        continue
                    c01 = self._norm(cocc, lines)
                    m = self._new_mask()
                    lines.append(f"_and({c01}, {nav}, out={m})")
                    self._emit_masks(subplan, m, in_loop)
                    if i + 1 < narms:
                        # m is a subset of nav, so nav' = nav ^ m.
                        nv = self._new_mask()
                        lines.append(f"_xor({nav}, {m}, out={nv})")
                        nav = nv
            elif kind == "while":
                _, cocc, subplan = item
                occ = self.occs[cocc]
                if occ.kind == "const" and not occ.value:
                    continue
                if occ.kind == "const":
                    act = ctx
                else:
                    c01 = self._norm(cocc, lines)
                    act = self._new_mask()
                    lines.append(f"_and({c01}, {ctx}, out={act})")
                self.whiles.append(act)
                self._emit_masks(subplan, act, True)
            elif kind == "reg":
                _, ri, val = item
                self.site_regs.append(
                    (ri, self._site_mask(ctx, in_loop), val)
                )
            elif kind == "state":
                _, gid, member, addr, val = item
                self.site_states.append(
                    (gid, member, self._site_mask(ctx, in_loop), addr, val)
                )
            else:  # emit
                self.site_emits.append(
                    (self._site_mask(ctx, in_loop), item[1])
                )

    def _site_mask(self, ctx, in_loop):
        """Leaf-site mask: statements outside every while fire only on the
        while_done cycle (paper Section 3)."""
        if in_loop or not self.has_whiles:
            return ctx
        name = self.wd_cache.get(ctx)
        if name is None:
            name = self._new_mask()
            self.wd_cache[ctx] = name
            self.lines_wdctx.append(f"_and({ctx}, _wd, out={name})")
        return name

    # -- emits ---------------------------------------------------------------
    def _emit_emit_lines(self):
        sites = self.site_emits
        lines = self.lines_emit
        if not sites:
            self.em_guard = None
            return
        if len(sites) == 1:
            m, val = sites[0]
            self.em_guard = self._guard(m)
            self.emm = m
            occ = self.occs[val]
            if occ.kind == "const":
                self.emv_chunk = (
                    f"_np.full(_si.shape[0], {occ.value}, _np.uint64)"
                )
            else:
                self.emv_chunk = f"_np.take({self._refo(val)[1]}, _si)"
            return
        self._buffer("_emv", None, "u")
        self._buffer("_emb", None, "b")
        self._buffer("_emt", None, "u")
        # Each site only contributes when its mask has a live lane (most
        # cycles fire at most one site); sites are certified disjoint,
        # so masked values sum (and mask bits OR) without interference.
        lines.append("_emn = False")
        for m, val in sites:
            occ = self.occs[val]
            if occ.kind == "const":
                v = self._sx(("k", [occ.value]), other_bool=True,
                             arith=True)
            else:
                v = self._refo(val)[1]
            lines.append(f"if {self._guard(m)}:")
            lines.append("    if _emn:")
            lines.append(f"        _mul({v}, {m}, out=_emt)")
            lines.append("        _add(_emv, _emt, out=_emv)")
            lines.append(f"        _orb(_emb, {m}, out=_emb)")
            lines.append("    else:")
            lines.append(f"        _mul({v}, {m}, out=_emv)")
            lines.append(f"        _cpy(_emb, {m})")
            lines.append("        _emn = True")
        self.em_guard = "_emn"
        self.emm = "_emb"
        self.emv_chunk = "_np.take(_emv, _si)"

    # -- commits -------------------------------------------------------------
    def _val_sig(self, oid):
        """Run-compatibility signature of a commit value/addr operand."""
        occ = self.occs[oid]
        if occ.kind == "const":
            return ("const", occ.value)
        if occ.kind in ("token", "sf"):
            return ("leaf", occ.kind)
        matrix, row = self._occ_matrow(occ)
        return ("row", matrix, row)

    def _snap(self, expr, rows=None):
        """Start-of-commit snapshot buffer for an aliased operand (a
        register/state row another commit may overwrite this cycle)."""
        name = self.snap_memo.get(expr)
        if name is None:
            name = f"_sn{len(self.snap_memo)}"
            self.snap_memo[expr] = name
            self.alloc.append((name, rows, "u"))
            self.lines_snap.append(f"_cpy({name}, {expr})")
        return name

    def _commit_ref(self, oid):
        """Operand text safe to read *during* the commit phase."""
        occ = self.occs[oid]
        if occ.kind == "const":
            return str(occ.value)
        info = self._refo(oid)
        if occ.kind in ("reg", "sload"):
            return self._snap(info[1])
        return info[1]

    def _run_block(self, sigs, oids):
        """Stacked (k, N) expression for a compatible run of operands, or
        ``None`` when they don't stack."""
        if all(s[0] == "const" for s in sigs):
            return ("col", self._sx(("k", [s[1] for s in sigs])))
        if all(s == sigs[0] for s in sigs):
            return ("same", self._commit_ref(oids[0]))
        if all(s[0] == "row" and s[1] == sigs[0][1] for s in sigs):
            rows = [s[2] for s in sigs]
            step = rows[1] - rows[0]
            if step >= 1 and all(
                rows[i] + step == rows[i + 1]
                for i in range(len(rows) - 1)
            ):
                # A constant-stride run is a basic-slice view (stride 1
                # is the common case; stride > 1 shows up when another
                # member of the same class sits between the operands).
                sl = f"{rows[0]}:{rows[-1] + 1}"
                if step > 1:
                    sl += f":{step}"
                expr = self._hoist(f"{sigs[0][1]}[{sl}]")
                if self.occs[oids[0]].kind in ("reg", "sload"):
                    expr = self._snap(expr, rows=len(rows))
                return ("block", expr)
        return None

    def _mask_row(self, m):
        """Row of ``m`` in the stacked mask matrix, or ``None``."""
        if m.startswith("_m") and m[2:].isdigit():
            return int(m[2:])
        return None

    def _guard(self, m):
        """Any-lane flag for mask ``m``; sites whose mask is empty this
        cycle are skipped entirely. Stacked masks read their slot in the
        per-cycle ``_gb`` guard vector (one reduction covers them all);
        anything else falls back to a cached ``count_nonzero``."""
        if m.startswith("_m") and m[2:].isdigit():
            return f"_gb[{int(m[2:])}]"
        flag = self.cnz_cache.get(m)
        if flag is None:
            flag = f"_f{len(self.cnz_cache)}"
            self.cnz_cache[m] = flag
            self.lines_guard.append(f"{flag} = _cnz({m})")
        return flag

    def _emit_reg_commits(self):
        lines = self.lines_commit
        sites = self.site_regs
        from collections import Counter

        counts = Counter(row for row, _, _ in sites)
        i = 0
        wn = 0
        while i < len(sites):
            row, m, val = sites[i]
            j = i + 1
            block = None
            if counts[row] == 1:
                while (j < len(sites)
                       and sites[j][0] == sites[j - 1][0] + 1
                       and counts[sites[j][0]] == 1
                       and sites[j][1] == m):
                    j += 1
                while j > i + 1:
                    block = self._run_block(
                        [self._val_sig(s[2]) for s in sites[i:j]],
                        [s[2] for s in sites[i:j]],
                    )
                    if block is not None:
                        break
                    j -= 1
            flag = self._guard(m)
            if j > i + 1:
                _, vexpr = block
                k = j - i
                w = self._buffer(f"_w{wn}", k, "u")
                wn += 1
                vt = self._hoist(f"_rm[{row}:{row + k}]")
                lines.append(f"if {flag}:")
                lines.append(f"    _sub({vexpr}, {vt}, out={w})")
                lines.append(f"    _mul({w}, {m}, out={w})")
                lines.append(f"    _add({vt}, {w}, out={vt})")
                i = j
            else:
                v = self._commit_ref(val)
                w = self._buffer(f"_w{wn}", None, "u")
                wn += 1
                old = self._hoist(f"_rm[{row}]")
                lines.append(f"if {flag}:")
                lines.append(f"    _sub({v}, {old}, out={w})")
                lines.append(f"    _mul({w}, {m}, out={w})")
                lines.append(f"    _add({old}, {w}, out={old})")
                i += 1

    def _emit_state_commits(self):
        lines = self.lines_commit
        sites = self.site_states
        i = 0
        wn = 0
        while i < len(sites):
            gid, member, m, addr, val = sites[i]
            _, elements, _ = self.state_groups[gid]
            j = i + 1
            ablock = vblock = None
            while (j < len(sites)
                   and sites[j][0] == gid
                   and sites[j][1] == sites[j - 1][1] + 1
                   and sites[j][2] == m):
                j += 1
            mr = None
            while j > i + 1:
                run = sites[i:j]
                ablock = self._run_block(
                    [self._val_sig(s[3]) for s in run],
                    [s[3] for s in run],
                )
                vblock = self._run_block(
                    [self._val_sig(s[4]) for s in run],
                    [s[4] for s in run],
                )
                if ablock is not None and vblock is not None \
                        and ablock[0] != "col":
                    break
                j -= 1
                ablock = vblock = None
            k = j - i
            flag = self._guard(m)
            if k > 1:
                aexpr = ablock[1]
                wi = self._buffer(f"_wi{wn}", k, "intp")
            else:
                aexpr = self._commit_ref(addr)
                wi = self._buffer(f"_wi{wn}", None, "intp")
            wn += 1
            lines.append(f"if {flag}:")
            if self._is_bool_oid(addr):
                lines.append(f"    _mul({aexpr}, _nNi, out={wi})")
            else:
                lines.append(
                    f"    _mul({aexpr}, _N, out={wi}, casting='unsafe')"
                )
            lines.append(f"    _add({wi}, _lanesi, out={wi})")
            if k > 1:
                bases = [s[1] * elements for s in sites[i:j]]
                col = self._pool(
                    _np.array(bases, dtype=_np.intp).reshape(-1, 1),
                    mat=True,
                )
                off = self._hoist(f"{col} * _N")
                lines.append(f"    _add({wi}, {off}, out={wi})")
            elif member:
                lines.append(
                    f"    _add({wi}, {member * elements} * _N, out={wi})"
                )
            lines.append(f"    _si = _nz({m})[0]")
            sel = "[:, _si]"
            if k > 1:
                kindv, vexpr = vblock
                if kindv == "col":
                    if vexpr.startswith("_k"):
                        rhs = f"{vexpr}{sel}"  # materialized (k, N)
                    else:
                        rhs = vexpr  # uniform scalar broadcasts
                elif kindv == "same":
                    occ = self.occs[sites[i][4]]
                    if occ.kind == "const":
                        rhs = str(occ.value)
                    else:
                        rhs = f"_np.take({vexpr}, _si)"
                else:
                    rhs = f"{vexpr}{sel}"
                lines.append(f"    _sfl{gid}[{wi}{sel}] = {rhs}")
            else:
                occ = self.occs[val]
                if occ.kind == "const":
                    rhs = str(occ.value)
                else:
                    rhs = f"_np.take({self._commit_ref(val)}, _si)"
                lines.append(f"    _sfl{gid}[{wi}[_si]] = {rhs}")
            i = j if k > 1 else i + 1

    # -- assembly ------------------------------------------------------------
    def _has_live_while(self, plan):
        """Whether any while under ``plan`` can actually activate,
        mirroring :meth:`_emit_masks`'s arm pruning exactly: a
        const-false if-arm is skipped, a const-false while is dead, and
        a const-true or else arm shadows every later arm. Anything
        looser would set ``has_whiles`` for a loop ``_emit_masks``
        never visits, leaving ``self.whiles`` empty at assembly time."""
        for item in plan:
            if item[0] == "if":
                for cocc, sub in item[1]:
                    occ = None if cocc is None else self.occs[cocc]
                    if occ is not None and occ.kind == "const" \
                            and not occ.value:
                        continue
                    if self._has_live_while(sub):
                        return True
                    if occ is None or occ.kind == "const":
                        break
            elif item[0] == "while":
                occ = self.occs[item[1]]
                if not (occ.kind == "const" and not occ.value):
                    return True
        return False

    def generate(self):
        self.has_whiles = self._has_live_while(self.plan)
        self.lines_wdctx = []
        self.lines_snap = []
        self._emit_class_lines()
        self._emit_masks(self.plan, "_act", False)
        if self.has_whiles:
            if len(self.whiles) == 1:
                self.lines_wd = [f"_lnot({self.whiles[0]}, out=_wd)"]
            else:
                acc = self.whiles[0]
                self.lines_wd = []
                for a in self.whiles[1:]:
                    self.lines_wd.append(f"_orb({acc}, {a}, out=_wd)")
                    acc = "_wd"
                self.lines_wd.append("_lnot(_wd, out=_wd)")
        self._emit_emit_lines()
        self._emit_reg_commits()
        self._emit_state_commits()
        return self._assemble()

    def _assemble(self):
        no_whiles = not self.has_whiles
        body = []
        body.extend(self.lines_cls)
        body.extend(self.lines_mask)
        if self.has_whiles:
            body.extend(self.lines_wd)
        body.extend(self.lines_wdctx)
        if self.mask_count:
            body.append("_any(_mm, axis=1, out=_gb)")
        body.extend(self.lines_guard)
        if self.em_guard is not None:
            body.extend(self.lines_emit)
            body.append(f"if {self.em_guard}:")
            body.append(f"    _si = _nz({self.emm})[0]")
            body.append(f"    _chunks.append((_si, {self.emv_chunk}))")
            body.append("    if _ls:")
            body.append(f"        _add(_ema[_p], {self.emm}, "
                        "out=_ema[_p])")
            body.append("    else:")
            body.append(f"        _add(_emc, {self.emm}, out=_emc)")
        body.extend(self.lines_snap)
        body.extend(self.lines_commit)

        lines = []
        out = lines.append
        out("def run_batch(_toks, _lens, _regs, _sgs, _max_vc, _res):")
        out("    _N = int(_lens.shape[0])")
        out("    _L = int(_toks.shape[0])")
        for name, alias in (
            ("add", "_add"), ("subtract", "_sub"), ("multiply", "_mul"),
            ("bitwise_and", "_and"), ("bitwise_or", "_orb"),
            ("bitwise_xor", "_xor"), ("left_shift", "_shl"),
            ("right_shift", "_shr"), ("equal", "_eq"),
            ("not_equal", "_ne"), ("less", "_lt"), ("less_equal", "_le"),
            ("greater", "_gt"), ("greater_equal", "_ge"),
            ("minimum", "_min"), ("logical_not", "_lnot"),
            ("count_nonzero", "_cnz"), ("nonzero", "_nz"),
            ("copyto", "_cpy"),
        ):
            out(f"    {alias} = _np.{name}")
        out("    _u64 = _np.uint64")
        out("    _any = _np.logical_or.reduce")
        for i in range(len(self.pool)):
            if i in self.pool_mat:
                out(f"    _k{i} = _np.repeat(_K[{i}], _N, axis=1)")
            else:
                out(f"    _k{i} = _K[{i}]")
        if self.reg_groups:
            out("    _rm = _regs[0]")
        for gid in range(len(self.state_groups)):
            out(f"    _sg{gid} = _sgs[{gid}]")
            out(f"    _sfl{gid} = _sg{gid}.reshape(-1)")
            out(f"    _sld{gid} = _sg{gid}.reshape(-1, _N)")
        for name, rows, dt in self.alloc:
            dte = {"u": "_np.uint64", "b": "_np.bool_",
                   "intp": "_np.intp"}[dt]
            if rows is None:
                out(f"    {name} = _np.empty(_N, {dte})")
            else:
                out(f"    {name} = _np.empty(({rows}, _N), {dte})")
        if self.mask_count:
            out(f"    _mm = _np.empty(({self.mask_count}, _N), "
                "_np.bool_)")
            for i in range(self.mask_count):
                out(f"    _m{i} = _mm[{i}]")
            out(f"    _gb = _np.empty({self.mask_count}, _np.bool_)")
        out("    _lanesi = _np.arange(_N, dtype=_np.intp)")
        out("    _lanesu = _np.arange(_N, dtype=_np.uint64)")
        out("    _nN = _np.uint64(_N)")
        out("    _nNi = _np.intp(_N)")
        out("    _ones = _np.ones(_N, _np.bool_)")
        out("    _act = _ones")
        out("    _sfz = _np.zeros(_N, _np.bool_)")
        out("    _sfo = _ones")
        out("    _ztok = _np.zeros(_N, _np.uint64)")
        out("    _tokb = _np.empty(_N, _np.uint64)")
        out("    _vca = _np.zeros((_L + 1, _N), _np.int32)")
        out("    _ema = _np.zeros((_L + 1, _N), _np.int32)")
        out("    _emc = _np.zeros(_N, _np.int64)")
        out("    _spent = _np.zeros(_N, _np.int64)")
        out("    _posc = _np.empty(_N, _np.intp)")
        out("    _sfb = _np.empty(_N, _np.bool_)")
        out("    _insb = _np.empty(_N, _np.bool_)")
        out("    _mnt = _np.empty(_N, _np.bool_)")
        if self.has_whiles:
            out("    _wd = _np.empty(_N, _np.bool_)")
            out("    _db = _np.empty(_N, _np.bool_)")
        for expr, hname in self.hoists.items():
            out(f"    {hname} = {expr}")
        out("    _chunks = []")
        out("    _tflat = _toks.reshape(-1)")
        out("    _ls0 = bool((_lens == _lens[0]).all())")
        out("    _ls = _ls0")
        out("    _L0 = int(_lens[0])")
        out("    _p = 0")
        out("    _sp = 0")
        out("    _gc = 0")
        out("    if not _ls:")
        out("        _pos = _np.zeros(_N, _np.intp)")
        out("        _act = _np.empty(_N, _np.bool_)")
        out("        _le(_pos, _lens, out=_act)")
        out("    while True:")
        out("        _gc += 1")
        out("        _sp += 1")
        out("        if _ls:")
        out("            if _p < _L0:")
        out("                _tok = _toks[_p]")
        out("                _sf = _sfz")
        out("            else:")
        out("                _tok = _ztok")
        out("                _sf = _sfo")
        out("        else:")
        out("            _lt(_pos, _lens, out=_insb)")
        out("            _eq(_pos, _lens, out=_sfb)")
        out("            if _L:")
        out("                _min(_pos, _L - 1, out=_posc)")
        out("                _mul(_posc, _N, out=_posc)")
        out("                _add(_posc, _lanesi, out=_posc)")
        out("                _cpy(_tokb, _tflat[_posc])")
        out("                _mul(_tokb, _insb, out=_tokb)")
        out("                _tok = _tokb")
        out("            else:")
        out("                _tok = _ztok")
        out("            _sf = _sfb")
        for line in body:
            out("        " + line)
        if no_whiles:
            out("        if _ls:")
            out("            _p += 1")
            out("            _sp = 0")
            out("            if _p > _L0:")
            out("                break")
            out("        else:")
        else:
            out("        if _ls:")
            out("            _nwd = _cnz(_wd)")
            out("            if _nwd == _N:")
            out("                _vca[_p] = _sp")
            out("                _sp = 0")
            out("                _p += 1")
            out("                if _p > _L0:")
            out("                    break")
            out("            elif _nwd:")
            out("                _pos = _np.full(_N, _p, dtype=_np.intp)")
            out("                _add(_pos, _wd, out=_pos, "
                "casting='unsafe')")
            out("                _vca[_p, _wd] = _sp")
            out("                _spent[:] = _sp")
            out("                _lnot(_wd, out=_mnt)")
            out("                _mul(_spent, _mnt, out=_spent)")
            out("                _mul(_ema[_p], _mnt, out=_emc, "
                "casting='unsafe')")
            out("                _mul(_ema[_p], _wd, out=_ema[_p])")
            out("                _act = _np.empty(_N, _np.bool_)")
            out("                _le(_pos, _lens, out=_act)")
            out("                _ls = False")
            out("            else:")
            out("                if _sp >= _max_vc:")
            out("                    raise _LoopError("
                "'while loop did not terminate within '"
                " + str(_max_vc) + ' virtual cycles')")
            out("        else:")
        out("            _add(_spent, _act, out=_spent)")
        if no_whiles:
            out("            _db = _act")
        else:
            out("            _and(_act, _wd, out=_db)")
        out("            _nd = _cnz(_db)")
        out("            if _nd:")
        out("                _di = _nz(_db)[0]")
        out("                _pi = _pos.take(_di)")
        out("                _vca[_pi, _di] = _spent.take(_di)")
        out("                _ema[_pi, _di] = _emc.take(_di)")
        out("                _lnot(_db, out=_mnt)")
        out("                _mul(_spent, _mnt, out=_spent)")
        out("                _mul(_emc, _mnt, out=_emc)")
        out("                _add(_pos, _db, out=_pos)")
        out("                _le(_pos, _lens, out=_act)")
        out("                if not _cnz(_act):")
        out("                    break")
        if not no_whiles:
            out("            if _gc >= _max_vc and "
                "_cnz(_ge(_spent, _max_vc)):")
            out("                raise _LoopError("
                "'while loop did not terminate within '"
                " + str(_max_vc) + ' virtual cycles')")
        out("    _res['cycles'] = _gc")
        out("    _res['chunks'] = _chunks")
        out("    _res['vca'] = _vca")
        out("    _res['ema'] = _ema")
        out(f"    _res['vc_all_ones'] = {no_whiles} and _ls0")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Native tier: one C kernel per program via cffi
# ---------------------------------------------------------------------------
#
# The NumPy lowering above amortizes Python overhead across N lanes, but
# each virtual cycle still pays ~one ufunc dispatch per structural class.
# When a C toolchain is present (cffi + a working compiler) we can do
# strictly better: transliterate the *compiled engine's* per-cycle code
# into C once per program and run every lane as straight-line scalar
# machine code. Lanes never interact — outputs, traces, and final state
# are interleaving-independent, and the batch's global cycle count is
# the max over lanes — so a lane-major loop nest reproduces the SIMD
# semantics exactly while eliminating all interpreter overhead.
#
# Layouts: tokens are lane-major ``(N, L)``; per-lane state keeps the
# shared register layout ``(R, N)`` (so ``peek_reg`` is unchanged) and
# transposes each ``(B, E, N)`` state group to lane-major ``(B, N, E)``
# for the kernel, transposing back afterwards. The kernel appends
# emitted values to one flat buffer (per-lane counts are returned, so
# output assembly is a cumsum slice); if the buffer fills, it returns a
# capacity error and the pure run is simply retried with a larger one.


class _CCodegen(_ScalarCodegen):
    """Renders a whole-batch C kernel for one program.

    Reuses the scalar codegen's write-site inventory, DAG hoisting, and
    two-pass cycle structure; only the surface syntax (and the pending-
    write buffers, which become fixed-size C locals) change, so the
    virtual-cycle semantics — reads see start-of-cycle state, pending
    writes commit last-wins at end of cycle, at most one emit lands per
    cycle, leaves outside whiles fire only on the ``while_done`` cycle —
    are inherited from the compiled engine by construction.
    """

    def __init__(self, program, unit):
        super().__init__(program)
        self.unit = unit

    # -- expression rendering (C) -------------------------------------
    def _render_body(self, node):
        if isinstance(node, ast.Const):
            return f"{node.value}ULL"
        if isinstance(node, ast.InputToken):
            return "_tok"
        if isinstance(node, ast.StreamFinished):
            return "_sf"
        if isinstance(node, ast.RegRead):
            return self.reg_name[node.reg]
        if isinstance(node, ast.WireRead):
            return self._render(node.wire.value)
        if isinstance(node, ast.VectorRegRead):
            index = self._trunc(node.index, node.vreg.index_width)
            return f"{self.vreg_name[node.vreg]}[{index}]"
        if isinstance(node, ast.BramRead):
            addr = self._trunc(node.addr, node.bram.addr_width)
            return f"{self.bram_name[node.bram]}[{addr}]"
        if isinstance(node, ast.BinOp):
            lhs, rhs = self._render(node.lhs), self._render(node.rhs)
            op = node.op
            if op in ("add", "mul", "and", "or", "xor"):
                c = {"add": "+", "mul": "*", "and": "&",
                     "or": "|", "xor": "^"}[op]
                return f"({lhs} {c} {rhs})"
            if op in _CMP_OPS:
                c = {"eq": "==", "ne": "!=", "lt": "<",
                     "le": "<=", "gt": ">", "ge": ">="}[op]
                return f"((uint64_t)({lhs} {c} {rhs}))"
            if op == "shl":
                return f"_shl64({lhs}, {rhs})"
            if op == "shr":
                return f"_shr64({lhs}, {rhs})"
            if op == "sub":
                return f"(({lhs} - {rhs}) & {hex(mask(node.width))}ULL)"
            raise _Unsupported(node)
        if isinstance(node, ast.UnOp):
            a = self._render(node.operand)
            w = node.operand.width
            if node.op == "not":
                return f"((~{a}) & {hex(mask(w))}ULL)"
            if node.op == "lnot":
                return f"((uint64_t)({a} == 0))"
            if node.op == "orr":
                return f"((uint64_t)({a} != 0))"
            if node.op == "andr":
                return f"((uint64_t)({a} == {hex(mask(w))}ULL))"
            if node.op == "xorr":
                return f"((uint64_t)(__builtin_popcountll({a}) & 1))"
            raise _Unsupported(node)
        if isinstance(node, ast.Mux):
            cond = self._render(node.cond)
            then = self._render(node.then)
            els = self._render(node.els)
            return f"({cond} ? ({then}) : ({els}))"
        if isinstance(node, ast.Slice):
            a = self._render(node.operand)
            if node.lo == 0 and node.width == node.operand.width:
                return a
            shifted = a if node.lo == 0 else f"({a} >> {node.lo})"
            return f"({shifted} & {hex(mask(node.width))}ULL)"
        if isinstance(node, ast.Concat):
            out = self._render(node.parts[0])
            for part in node.parts[1:]:
                out = f"(({out} << {part.width}) | {self._render(part)})"
            return out
        raise _Unsupported(node)

    def _trunc(self, node, width):
        rendered = self._render(node)
        if node.width > width:
            return f"({rendered} & {hex(mask(width))}ULL)"
        return rendered

    # -- statement rendering (C) --------------------------------------
    def _emit_pass1(self, lines, body, indent):
        pad = "    " * indent
        for stmt in body:
            if isinstance(stmt, ast.While):
                cond = self._render(stmt.cond)
                lines.append(f"{pad}if (_wd && {cond}) _wd = 0;")
            elif isinstance(stmt, ast.If) and self._contains_while(stmt):
                lines.append(f"{pad}if (_wd) {{")
                first = True
                for cond, arm_body in stmt.arms:
                    if cond is not None:
                        kw = "if" if first else "} else if"
                        rendered = self._render(cond)
                        lines.append(f"{pad}    {kw} ({rendered}) {{")
                    else:
                        lines.append(
                            f"{pad}    " + ("if (1) {" if first else "} else {")
                        )
                    first = False
                    self._emit_pass1(lines, arm_body, indent + 2)
                lines.append(f"{pad}    }}")
                lines.append(f"{pad}}}")
        return True

    def _leaf_code(self, stmt):
        if isinstance(stmt, ast.RegAssign):
            i = self.program.regs.index(stmt.reg)
            value = self._trunc(stmt.value, stmt.reg.width)
            return f"_pr{i} = {value}; _prs{i} = 1;"
        if isinstance(stmt, ast.VectorRegAssign):
            i = self.program.vregs.index(stmt.vreg)
            idx = self._trunc(stmt.index, stmt.vreg.index_width)
            value = self._trunc(stmt.value, stmt.vreg.width)
            if self.vreg_sites[stmt.vreg] == 1:
                return f"_pvi{i} = {idx}; _pvv{i} = {value}; _pvs{i} = 1;"
            # Each syntactic site runs at most once per cycle (a while
            # body is entered at most once per virtual cycle), so the
            # fixed-size queue below can never overflow.
            return (f"_pqi{i}[_pqn{i}] = {idx}; "
                    f"_pqv{i}[_pqn{i}] = {value}; _pqn{i}++;")
        if isinstance(stmt, ast.BramWrite):
            i = self.program.brams.index(stmt.bram)
            addr = self._trunc(stmt.addr, stmt.bram.addr_width)
            value = self._trunc(stmt.value, stmt.bram.width)
            return f"_pbi{i} = {addr}; _pbv{i} = {value}; _pbs{i} = 1;"
        if isinstance(stmt, ast.Emit):
            value = self._trunc(stmt.value, self.program.output_width)
            return f"_em = {value}; _ems = 1;"
        raise _Unsupported(stmt)

    def _emit_pass2(self, lines, body, indent, in_loop):
        pad = "    " * indent
        pending = []

        def flush():
            if not pending:
                return
            if in_loop:
                for code in pending:
                    lines.append(pad + code)
            else:
                lines.append(f"{pad}if (_wd) {{")
                for code in pending:
                    lines.append(f"{pad}    {code}")
                lines.append(f"{pad}}}")
            pending.clear()

        for stmt in body:
            if isinstance(stmt, ast.If):
                flush()
                first = True
                for cond, arm_body in stmt.arms:
                    if cond is not None:
                        kw = "if" if first else "} else if"
                        rendered = self._render(cond)
                        lines.append(f"{pad}{kw} ({rendered}) {{")
                    else:
                        lines.append(
                            pad + ("if (1) {" if first else "} else {")
                        )
                    first = False
                    self._emit_pass2(lines, arm_body, indent + 1, in_loop)
                lines.append(f"{pad}}}")
            elif isinstance(stmt, ast.While):
                flush()
                cond = self._render(stmt.cond)
                lines.append(f"{pad}if ({cond}) {{")
                self._emit_pass2(lines, stmt.body, indent + 1, True)
                lines.append(f"{pad}}}")
            else:
                pending.append(self._leaf_code(stmt))
        flush()
        return True

    # -- assembly -----------------------------------------------------
    def _cycle_lines(self):
        roots = self._collect_roots()
        lines = []
        for hoist in self._hoist_lines(roots):
            name, body = hoist.split(" = ", 1)
            lines.append(f"uint64_t {name} = {body};")
        lines.append("int _wd = 1;")
        self._emit_pass1(lines, self.program.body, 0)
        for i, reg in enumerate(self.program.regs):
            if reg in self.assigned_regs:
                lines.append(f"uint64_t _pr{i} = 0; int _prs{i} = 0;")
        for i, vreg in enumerate(self.program.vregs):
            sites = self.vreg_sites.get(vreg, 0)
            if sites == 1:
                lines.append(
                    f"uint64_t _pvi{i} = 0, _pvv{i} = 0; int _pvs{i} = 0;"
                )
            elif sites > 1:
                lines.append(
                    f"uint64_t _pqi{i}[{sites}], _pqv{i}[{sites}]; "
                    f"int _pqn{i} = 0;"
                )
        for i, bram in enumerate(self.program.brams):
            if bram in self.written_brams:
                lines.append(f"uint64_t _pbi{i} = 0, _pbv{i} = 0; "
                             f"int _pbs{i} = 0;")
        if self.has_emit:
            lines.append("uint64_t _em = 0; int _ems = 0;")
        self._emit_pass2(lines, self.program.body, 0, False)
        for i, reg in enumerate(self.program.regs):
            if reg in self.assigned_regs:
                lines.append(f"if (_prs{i}) _r{i} = _pr{i};")
        for i, vreg in enumerate(self.program.vregs):
            sites = self.vreg_sites.get(vreg, 0)
            if sites == 1:
                lines.append(f"if (_pvs{i}) _v{i}[_pvi{i}] = _pvv{i};")
            elif sites > 1:
                lines.append(
                    f"for (int _q = 0; _q < _pqn{i}; _q++) "
                    f"_v{i}[_pqi{i}[_q]] = _pqv{i}[_q];"
                )
        for i, bram in enumerate(self.program.brams):
            if bram in self.written_brams:
                lines.append(f"if (_pbs{i}) _b{i}[_pbi{i}] = _pbv{i};")
        if self.has_emit:
            lines.append("if (_ems) {")
            lines.append("    if (_outn >= out_cap) "
                         "{ err[0] = 2; return -1; }")
            lines.append("    out_vals[_outn++] = _em;")
            lines.append("    _emits++;")
            lines.append("}")
        return lines

    def generate(self):
        cycle = self._cycle_lines()
        program = self.program
        unit = self.unit
        nsg = len(unit.state_groups)
        sg_params = "".join(f", uint64_t *sg{g}" for g in range(nsg))
        lines = []
        out = lines.append
        out("#include <stdint.h>")
        out("")
        out("static inline uint64_t _shl64(uint64_t a, uint64_t b)")
        out("{ return b > 63 ? 0 : a << b; }")
        out("static inline uint64_t _shr64(uint64_t a, uint64_t b)")
        out("{ return b > 63 ? 0 : a >> b; }")
        out("")
        out("int fleet_run(uint64_t *toks, int64_t *lens,")
        out("              int64_t L, int64_t N,")
        out(f"              uint64_t *regs{sg_params},")
        out("              int64_t max_vc,")
        out("              uint64_t *out_vals, int64_t out_cap,")
        out("              int64_t *out_cnt,")
        out("              int32_t *vca, int32_t *ema, int64_t *err)")
        out("{")
        out("    int64_t _outn = 0;")
        out("    for (int64_t _lane = 0; _lane < N; _lane++) {")
        for i in range(len(program.regs)):
            row = unit.reg_loc[i][1]
            out(f"        uint64_t _r{i} = regs[{row} * N + _lane];")
        for i in range(len(program.vregs)):
            gid, member = unit.state_loc[("vreg", i)]
            elements = unit.state_groups[gid][1]
            out(f"        uint64_t *_v{i} = sg{gid} + "
                f"({member} * N + _lane) * {elements};")
        for i in range(len(program.brams)):
            gid, member = unit.state_loc[("bram", i)]
            elements = unit.state_groups[gid][1]
            out(f"        uint64_t *_b{i} = sg{gid} + "
                f"({member} * N + _lane) * {elements};")
        out("        const uint64_t *_tk = toks + _lane * L;")
        out("        int64_t _len = lens[_lane];")
        out("        int32_t *_vcr = vca + _lane * (L + 1);")
        out("        int32_t *_emr = ema + _lane * (L + 1);")
        out("        int64_t _start = _outn;")
        out("        for (int64_t _ti = 0; _ti <= _len; _ti++) {")
        out("            uint64_t _tok, _sf;")
        out("            if (_ti < _len) { _tok = _tk[_ti]; _sf = 0; }")
        out("            else { _tok = 0; _sf = 1; }")
        out("            int32_t _vc = 0, _emits = 0;")
        out("            for (;;) {")
        out("                _vc++;")
        for line in cycle:
            out("                " + line)
        out("                if (_wd) break;")
        out("                if (_vc >= max_vc) {")
        out("                    err[0] = 1; err[1] = _lane; err[2] = _ti;")
        out("                    return -1;")
        out("                }")
        out("            }")
        out("            _vcr[_ti] = _vc;")
        out("            _emr[_ti] = _emits;")
        out("        }")
        out("        out_cnt[_lane] = _outn - _start;")
        for i in range(len(program.regs)):
            row = unit.reg_loc[i][1]
            out(f"        regs[{row} * N + _lane] = _r{i};")
        out("    }")
        out("    err[0] = 0;")
        out("    return 0;")
        out("}")
        return "\n".join(lines) + "\n"


_CC_BACKENDS = ("auto", "numpy", "cc")


def batch_backend_env():
    """Validated ``FLEET_BATCH_BACKEND`` setting.

    ``auto`` (the default) uses the native tier when a C toolchain is
    available and falls back to NumPy; ``numpy``/``cc`` force a tier.
    Unknown values raise :class:`FleetConfigError` immediately rather
    than silently running the wrong backend (the shared
    :func:`repro.envcfg.env_choice` validator).
    """
    return env_choice("FLEET_BATCH_BACKEND", _CC_BACKENDS, "auto")


class _CcKernel:
    """Handle to one program's compiled native kernel."""

    __slots__ = ("lib", "ffi", "source", "nsg")

    def __init__(self, lib, ffi, source, nsg):
        self.lib = lib
        self.ffi = ffi
        self.source = source
        self.nsg = nsg


def _try_cc_build(program, unit, required=False):
    """Build the native kernel for ``unit``; ``None`` on any failure
    unless ``required`` (``FLEET_BATCH_BACKEND=cc``), which raises."""
    if not cc_available():
        if required:
            raise FleetSimulationError(
                "FLEET_BATCH_BACKEND=cc but no working C toolchain: "
                f"{_native.last_error()!r}"
            )
        return None
    try:
        started = time.perf_counter() if _tm_enabled() else None
        source = _CCodegen(program, unit).generate()
        nsg = len(unit.state_groups)
        sg_params = "".join(f", uint64_t *sg{g}" for g in range(nsg))
        cdef = (
            "int fleet_run(uint64_t *toks, int64_t *lens, "
            f"int64_t L, int64_t N, uint64_t *regs{sg_params}, "
            "int64_t max_vc, uint64_t *out_vals, int64_t out_cap, "
            "int64_t *out_cnt, int32_t *vca, int32_t *ema, "
            "int64_t *err);"
        )
        tag = re.sub(r"\W+", "_", program.name)[:24] or "prog"
        lib, ffi = _cc_load(cdef, source, tag)
        if started is not None:
            _NATIVE_BUILD_SECONDS.observe(time.perf_counter() - started)
        return _CcKernel(lib, ffi, source, nsg)
    except Exception as exc:
        _native.set_last_error(exc)
        if required:
            raise FleetSimulationError(
                f"native batch kernel build failed for "
                f"{program.name!r}: {exc}"
            ) from exc
        return None


def _run_batch_cc(program, unit, arrs, lens, n, max_vc):
    """Execute one ragged batch on the native kernel; mirrors the NumPy
    driver's result assembly exactly."""
    cc = unit.cc
    ffi, lib = cc.ffi, cc.lib
    max_len = int(lens.max()) if n else 0
    width = max(max_len, 1)
    toks = _np.zeros((n, width), dtype=_np.uint64)
    for i, a in enumerate(arrs):
        if a.shape[0]:
            toks[i, : a.shape[0]] = a
    lens64 = _np.ascontiguousarray(lens, dtype=_np.int64)
    vca = _np.zeros((n, width + 1), dtype=_np.int32)
    ema = _np.zeros((n, width + 1), dtype=_np.int32)
    out_cnt = _np.zeros(n, dtype=_np.int64)
    err = _np.zeros(4, dtype=_np.int64)
    total = int(lens64.sum())
    cap = max(4 * total + 16 * n + 1024, 4096)
    while True:
        regs, sgroups = unit.init_state(n)
        cc_sgs = [
            _np.ascontiguousarray(sg.transpose(0, 2, 1)) for sg in sgroups
        ]
        out_vals = _np.empty(cap, dtype=_np.uint64)
        vca[:] = 0
        ema[:] = 0
        out_cnt[:] = 0
        regp = (ffi.from_buffer("uint64_t[]", regs[0])
                if regs else ffi.NULL)
        args = (
            [ffi.from_buffer("uint64_t[]", toks),
             ffi.from_buffer("int64_t[]", lens64),
             width, n, regp]
            + [ffi.from_buffer("uint64_t[]", sg) for sg in cc_sgs]
            + [max_vc,
               ffi.from_buffer("uint64_t[]", out_vals), cap,
               ffi.from_buffer("int64_t[]", out_cnt),
               ffi.from_buffer("int32_t[]", vca),
               ffi.from_buffer("int32_t[]", ema),
               ffi.from_buffer("int64_t[]", err)]
        )
        rc = lib.fleet_run(*args)
        if rc == 0:
            break
        if int(err[0]) == 2:
            # Output buffer filled. The kernel is pure over its inputs,
            # so rerun from fresh state with a larger buffer.
            cap *= 4
            continue
        raise FleetLoopLimitError(
            "while loop did not terminate within "
            + str(max_vc) + " virtual cycles"
        )
    for sg, csg in zip(sgroups, cc_sgs):
        sg[:] = csg.transpose(0, 2, 1)

    counts = out_cnt.tolist()
    flat = out_vals[: int(out_cnt.sum())].tolist()
    outputs = []
    pos = 0
    for c in counts:
        outputs.append(flat[pos:pos + c])
        pos += c

    vc_rows = vca.tolist()
    em_rows = ema.tolist()
    len_list = lens64.tolist()
    traces = []
    for i in range(n):
        length = len_list[i]
        trace = StreamTrace()
        trace.vcycles_per_token = vc_rows[i][: length + 1]
        trace.emits_per_token = em_rows[i][: length + 1]
        trace._cleanup_recorded = True
        traces.append(trace)
    stats = BatchStats([t.total_vcycles for t in traces])
    cycles = int(vca.sum(axis=1, dtype=_np.int64).max()) if n else 0
    return BatchResult(program, outputs, traces, stats, cycles,
                       unit, regs, sgroups)


# ---------------------------------------------------------------------------
# Compiled batch unit + library driver
# ---------------------------------------------------------------------------


class BatchUnit:
    """A Fleet program lowered once to N-lane NumPy array code.

    ``run_batch(toks, lens, regs, sgroups, max_vc, res)`` executes every
    lane's whole stream (plus cleanup) against the struct-of-arrays
    state; the lowering is independent of N, so one unit serves any
    batch size.
    """

    __slots__ = ("program", "run_batch", "source", "reg_groups",
                 "reg_loc", "state_groups", "state_loc", "cc")

    def __init__(self, program, run_batch, source, codegen):
        self.program = program
        self.run_batch = run_batch
        self.source = source
        self.cc = None
        self.reg_groups = {
            bits: list(rows) for bits, rows in codegen.reg_groups.items()
        }
        self.reg_loc = dict(codegen.reg_loc)
        self.state_groups = [
            (bits, elements, list(members))
            for bits, elements, members in codegen.state_groups
        ]
        self.state_loc = dict(codegen.state_loc)

    def init_state(self, n):
        """Fresh per-lane state arrays for an N-lane batch."""
        program = self.program
        regs = []
        if self.reg_groups:
            rows = self.reg_groups[64]
            arr = _np.zeros((len(rows), n), _np.uint64)
            for row, ri in enumerate(rows):
                init = program.regs[ri].init
                if init:
                    arr[row, :] = init
            regs.append(arr)
        sgroups = []
        for _, elements, members in self.state_groups:
            arr = _np.zeros((len(members), elements, n), _np.uint64)
            for m, (kind, di) in enumerate(members):
                if kind == "vreg" and program.vregs[di].init:
                    arr[m, :, :] = program.vregs[di].init
            sgroups.append(arr)
        return regs, sgroups


def compile_batch(program, backend=None):
    """Lower ``program`` to a :class:`BatchUnit`.

    ``backend`` (default: the validated ``FLEET_BATCH_BACKEND``
    environment setting) selects the execution tier: ``"auto"`` attaches
    a native cffi kernel when a C toolchain is available and otherwise
    runs pure NumPy, ``"numpy"`` / ``"cc"`` force a tier (``"cc"``
    raises when the toolchain is missing). Both tiers are bit-identical;
    the NumPy lowering is always built — it doubles as documentation of
    the SIMD semantics and as the portable fallback.

    Raises :class:`FleetSimulationError` when NumPy is missing or the
    program can't take the batch path; use :func:`try_compile_batch` for
    the optional variant.
    """
    ok, reason = batch_support(program)
    if not ok:
        raise FleetSimulationError(
            f"program {program.name!r} is not batch-compilable: {reason}"
        )
    codegen = _BatchCodegen(program)
    try:
        source = codegen.generate()
    except _Unsupported as exc:
        raise FleetSimulationError(
            f"program {program.name!r} is not batch-compilable: "
            f"{exc.args[0]}"
        ) from None
    namespace = {
        "_np": _np,
        "_K": list(codegen.pool),
        "_SimError": FleetSimulationError,
        "_LoopError": FleetLoopLimitError,
    }
    code = compile(source, f"<fleet-batch:{program.name}>", "exec")
    exec(code, namespace)
    _BATCH_COMPILES.inc()
    unit = BatchUnit(program, namespace["run_batch"], source, codegen)
    want = batch_backend_env() if backend is None else backend
    if want not in _CC_BACKENDS:
        raise FleetConfigError(
            f"backend={want!r} is not a recognized batch backend: "
            f"choose one of {', '.join(_CC_BACKENDS)}"
        )
    if want != "numpy":
        unit.cc = _try_cc_build(program, unit, required=(want == "cc"))
    return unit


def try_compile_batch(program):
    """:func:`compile_batch`, returning ``None`` when unsupported. Cached
    on the (immutable) program object."""
    cached = getattr(program, "_fleet_batch", False)
    if cached is not False:
        return cached
    try:
        unit = compile_batch(program)
    except FleetSimulationError:
        unit = None
    program._fleet_batch = unit
    return unit


def batch_engine_for(program, check_restrictions=True):
    """The :class:`BatchUnit` to use for whole-batch execution, or
    ``None`` when callers must fall back to per-stream engines.

    Mirrors :func:`repro.interp.compile.fast_engine_for`: the
    environment can veto (``FLEET_ENGINE=interp`` or ``compiled``) or
    force (``FLEET_ENGINE=batch``, support permitting); in the default
    automatic mode the batch engine — whose grouped commits elide all
    dynamic restriction checks — additionally requires the same clean
    covering :class:`~repro.lint.certificate.RestrictionCertificate` as
    compiled-engine check-elision.
    """
    from .compile import _checks_elidable, env_engine

    env = env_engine()
    if env in ("interp", "compiled"):
        _BATCH_FALLBACKS.inc(reason="env_veto")
        return None
    unit = try_compile_batch(program)
    if unit is None:
        _BATCH_FALLBACKS.inc(reason="unsupported")
        return None
    if env == "batch":
        return unit
    if check_restrictions and not _checks_elidable(program):
        _BATCH_FALLBACKS.inc(reason="no_certificate")
        return None
    return unit


class BatchStats:
    """Per-batch occupancy accounting (the :mod:`repro.obs` counters).

    Lanes run contiguously from global cycle 1 until their stream (plus
    cleanup) completes, so per-cycle lane occupancy is derivable from the
    per-lane totals: at global cycle ``t`` exactly the lanes with
    ``total_vcycles >= t`` are active, and the ragged-tail waste is
    everything the longest lane forces the batch to wait for.
    """

    def __init__(self, lane_vcycles):
        self.lane_vcycles = list(lane_vcycles)
        self.lanes = len(self.lane_vcycles)
        self.cycles = max(self.lane_vcycles, default=0)
        self.busy_lane_cycles = sum(self.lane_vcycles)

    @property
    def slot_cycles(self):
        return self.lanes * self.cycles

    @property
    def waste_fraction(self):
        """Fraction of lane-cycle slots idle while the batch drains its
        ragged tail (0.0 for a uniform batch)."""
        if not self.slot_cycles:
            return 0.0
        return 1.0 - self.busy_lane_cycles / self.slot_cycles

    @property
    def mean_active_lanes(self):
        """Mean replicas active per virtual cycle."""
        if not self.cycles:
            return 0.0
        return self.busy_lane_cycles / self.cycles

    def active_lanes_at(self, cycle):
        """Replicas active during 1-based global virtual cycle ``cycle``."""
        return sum(1 for v in self.lane_vcycles if v >= cycle)

    def as_dict(self):
        return {
            "lanes": self.lanes,
            "cycles": self.cycles,
            "busy_lane_cycles": self.busy_lane_cycles,
            "mean_active_lanes": round(self.mean_active_lanes, 3),
            "waste_fraction": round(self.waste_fraction, 6),
        }

    def __repr__(self):
        return (
            f"BatchStats(lanes={self.lanes}, cycles={self.cycles}, "
            f"waste={self.waste_fraction:.3f})"
        )


class PredictedBatchStats:
    """Static occupancy prediction for one ragged batch.

    Built *before* the batch runs, from the certified per-token vcycle
    interval the cost analysis seals into the program's restriction
    certificate (:mod:`repro.lint.cost`): lane ``i`` with ``n_i`` tokens
    provably finishes within ``cost.stream_vcycles(n_i)``, so the
    spread of those intervals bounds the lockstep ragged-tail waste.

    The waste bound is sound, not an estimate: whichever lane attains
    the batch makespan ``M`` is busy all ``M`` cycles and every other
    lane is busy at least its certified lower bound, so

    ``waste <= 1 - 1/L - (sum(lo) - max(lo)) / (L * M_hi)``

    with the right side maximized at the certified makespan upper bound
    ``M_hi = max(hi_i)`` (the expression is increasing in ``M``).
    ``waste_bound`` is ``None`` when any lane's cost is unbounded.
    """

    def __init__(self, cost, lane_tokens):
        self.lane_tokens = list(lane_tokens)
        self.lanes = len(self.lane_tokens)
        #: per-lane certified (lo, hi) total-vcycle intervals
        self.lane_bounds = [
            cost.stream_vcycles(n) for n in self.lane_tokens
        ]
        los = [lo for lo, _hi in self.lane_bounds]
        his = [hi for _lo, hi in self.lane_bounds]
        self.cycles_lo = max(los, default=0)
        self.cycles_hi = (None if any(hi is None for hi in his)
                          else max(his, default=0))

    @property
    def waste_bound(self):
        """Certified upper bound on :attr:`BatchStats.waste_fraction`,
        or ``None`` when some lane has no finite cost bound."""
        if not self.lanes or self.cycles_hi is None:
            return None
        if not self.cycles_hi:
            return 0.0
        los = [lo for lo, _hi in self.lane_bounds]
        slack = sum(los) - max(los)
        return max(0.0, 1.0 - 1.0 / self.lanes
                   - slack / (self.lanes * self.cycles_hi))

    def check(self, stats):
        """Violation strings if the measured :class:`BatchStats` lands
        outside the certified prediction (empty = sound)."""
        violations = []
        for i, (measured, (lo, hi)) in enumerate(
                zip(stats.lane_vcycles, self.lane_bounds)):
            if measured < lo or (hi is not None and measured > hi):
                violations.append(
                    f"lane {i}: {measured} vcycles outside certified "
                    f"[{lo}, {hi}]"
                )
        bound = self.waste_bound
        if bound is not None and stats.waste_fraction > bound + 1e-12:
            violations.append(
                f"waste {stats.waste_fraction:.6f} exceeds certified "
                f"bound {bound:.6f}"
            )
        return violations

    def compare(self, stats):
        """Predicted-vs-actual occupancy report for one measured run."""
        return {
            "lanes": self.lanes,
            "predicted_cycles": [self.cycles_lo, self.cycles_hi],
            "actual_cycles": stats.cycles,
            "predicted_waste_bound": self.waste_bound,
            "actual_waste": round(stats.waste_fraction, 6),
            "sound": not self.check(stats),
        }

    def as_dict(self):
        return {
            "lanes": self.lanes,
            "lane_bounds": [list(pair) for pair in self.lane_bounds],
            "cycles": [self.cycles_lo, self.cycles_hi],
            "waste_bound": self.waste_bound,
        }

    def __repr__(self):
        bound = self.waste_bound
        waste = "unbounded" if bound is None else f"{bound:.3f}"
        return (
            f"PredictedBatchStats(lanes={self.lanes}, "
            f"cycles=[{self.cycles_lo}, {self.cycles_hi}], "
            f"waste<={waste})"
        )


def predict_batch_stats(program, lane_tokens):
    """Static :class:`PredictedBatchStats` for ``program`` lanes with
    ``lane_tokens`` tokens each, or ``None`` when the program's
    certificate carries no cost facts."""
    from ..lint.certificate import certificate_for

    cost = certificate_for(program).cost
    if cost is None:
        return None
    return PredictedBatchStats(cost, lane_tokens)


class BatchResult:
    """Outputs, traces, and occupancy stats of one ragged-batch run."""

    __slots__ = ("program", "outputs", "traces", "stats", "cycles",
                 "_unit", "_regs", "_sgroups", "_predicted")

    def __init__(self, program, outputs, traces, stats, cycles, unit,
                 regs, sgroups):
        self.program = program
        self.outputs = outputs
        self.traces = traces
        self.stats = stats
        self.cycles = cycles
        self._unit = unit
        self._regs = regs
        self._sgroups = sgroups
        self._predicted = False  # lazily computed (None is a result)

    @property
    def predicted_stats(self):
        """Static :class:`PredictedBatchStats` for this batch's lane
        token counts (``None`` when the program has no cost facts).
        Lazy — the lint cost pass runs only when occupancy prediction
        is asked for, never on the batch execution path."""
        if self._predicted is False:
            self._predicted = predict_batch_stats(
                self.program,
                [len(t.emits_per_token) - 1 for t in self.traces],
            )
        return self._predicted

    def occupancy_report(self):
        """Predicted-vs-actual occupancy: the certified pre-run bounds
        next to the measured :class:`BatchStats`, or ``None`` when no
        prediction exists."""
        predicted = self.predicted_stats
        if predicted is None:
            return None
        return predicted.compare(self.stats)

    def peek_reg(self, lane, name):
        """Final architectural value of register ``name`` in ``lane``."""
        for ri, reg in enumerate(self.program.regs):
            if reg.name == name:
                bits, row = self._unit.reg_loc[ri]
                gi = sorted(self._unit.reg_groups).index(bits)
                return int(self._regs[gi][row, lane])
        raise FleetSimulationError(f"no register named {name!r}")

    def peek_bram(self, lane, name):
        """Final contents of BRAM ``name`` in ``lane``, as a list."""
        for di, bram in enumerate(self.program.brams):
            if bram.name == name:
                gid, member = self._unit.state_loc[("bram", di)]
                return [
                    int(x) for x in self._sgroups[gid][member, :, lane]
                ]
        raise FleetSimulationError(f"no BRAM named {name!r}")

    def reg_state(self, lane):
        """``{name: value}`` of every register in ``lane`` (the
        differential harness's final-state comparison)."""
        return {
            reg.name: self.peek_reg(lane, reg.name)
            for reg in self.program.regs
        }


def _validate_stream(program, stream, tok_dtype):
    """Convert one stream to a bounds-checked token array."""
    in_mask = mask(program.input_width)
    if isinstance(stream, (bytes, bytearray, memoryview)):
        arr = _np.frombuffer(bytes(stream), dtype=_np.uint8)
        if program.input_width < 8 and arr.size \
                and int(arr.max()) > in_mask:
            bad = next(t for t in stream if t > in_mask)
            raise FleetSimulationError(
                f"token {bad!r} does not fit the declared "
                f"{program.input_width}-bit input width"
            )
        return arr.astype(tok_dtype)
    tokens = list(stream)
    try:
        arr = _np.asarray(tokens, dtype=_np.uint64)
    except (OverflowError, ValueError, TypeError):
        arr = None
    if arr is None or (arr.size and int(arr.max()) > in_mask):
        for token in tokens:
            if not (isinstance(token, int) and 0 <= token <= in_mask):
                raise FleetSimulationError(
                    f"token {token!r} does not fit the declared "
                    f"{program.input_width}-bit input width"
                )
        raise FleetSimulationError(  # pragma: no cover - defensive
            "token stream failed numpy conversion"
        )
    return arr.astype(tok_dtype)


def run_batch_streams(program, streams, *, max_vcycles_per_token=1_000_000,
                      unit=None):
    """Execute ``streams`` (one per lane, ragged lengths allowed) in a
    single SIMD batch; returns a :class:`BatchResult` whose outputs and
    per-lane :class:`~repro.interp.trace.StreamTrace` virtual-cycle
    counts are bit-identical to N independent compiled-engine runs.

    Note on invalid tokens: the batch engine validates all streams
    upfront, so a bad token raises before *any* lane executes (the
    sequential engines raise mid-stream after earlier tokens ran).
    """
    if _np is None:
        raise FleetSimulationError(NUMPY_HINT)
    if unit is None:
        unit = compile_batch(program)
    streams = list(streams)
    n = len(streams)
    if n == 0:
        raise FleetSimulationError("run_batch_streams needs >= 1 stream")
    tok_dtype = _np.uint64
    arrs = [_validate_stream(program, s, tok_dtype) for s in streams]
    lens = _np.array([a.shape[0] for a in arrs], dtype=_np.intp)
    # FLEET_NATIVE=off must win over a kernel cached on the unit:
    # flipping it mid-process (tests do) drops back to the NumPy tier.
    if unit.cc is not None and _native.native_enabled():
        return _run_batch_cc(program, unit, arrs, lens, n,
                             max_vcycles_per_token)
    max_len = int(lens.max()) if n else 0
    toks = _np.zeros((max_len, n), dtype=tok_dtype)
    for i, a in enumerate(arrs):
        if a.shape[0]:
            toks[: a.shape[0], i] = a
    regs, sgroups = unit.init_state(n)
    res = {}
    unit.run_batch(toks, lens, regs, sgroups, max_vcycles_per_token, res)

    chunks = res["chunks"]
    if chunks:
        # Scatter each per-cycle chunk straight into its lane's slot
        # range (counting sort by lane); a lane emits at most once per
        # cycle, so the fancy read-modify-write on `fill` is alias-free.
        counts = _np.bincount(
            _np.concatenate([c[0] for c in chunks]), minlength=n
        )
        offs = _np.zeros(n + 1, dtype=_np.intp)
        _np.cumsum(counts, out=offs[1:])
        flat = _np.empty(int(offs[n]), dtype=_np.uint64)
        fill = offs[:n].copy()
        for si, vals in chunks:
            flat[fill[si]] = vals
            fill[si] += 1
        flat_list = flat.tolist()
        bounds = offs.tolist()
        outputs = [
            flat_list[bounds[i]:bounds[i + 1]] for i in range(n)
        ]
    else:
        outputs = [[] for _ in range(n)]

    vca, ema = res["vca"], res["ema"]
    all_ones = res["vc_all_ones"]
    # One bulk tolist per matrix (C-speed) beats n per-lane tolists.
    vc_rows = None if all_ones else vca.T.tolist()
    em_rows = ema.T.tolist()
    len_list = lens.tolist()
    traces = []
    for i in range(n):
        length = len_list[i]
        trace = StreamTrace()
        if all_ones:
            trace.vcycles_per_token = [1] * (length + 1)
        else:
            trace.vcycles_per_token = vc_rows[i][: length + 1]
        trace.emits_per_token = em_rows[i][: length + 1]
        trace._cleanup_recorded = True
        traces.append(trace)
    stats = BatchStats([t.total_vcycles for t in traces])
    return BatchResult(program, outputs, traces, stats, res["cycles"],
                       unit, regs, sgroups)


class BatchStreamSimulator:
    """Drop-in stream simulator backed by the batch engine (N=1).

    ``run`` executes the whole stream on the SIMD path. The incremental
    API (``process_token``/``finish_stream``) transparently delegates to
    a :class:`~repro.interp.compile.CompiledSimulator` — the batch
    lowering is whole-stream by construction — so ``FLEET_ENGINE=batch``
    never breaks token-at-a-time drivers.
    """

    def __init__(self, program, *, check_restrictions=True,
                 max_vcycles_per_token=1_000_000, unit=None):
        self.program = program
        self.check_restrictions = check_restrictions
        self.max_vcycles_per_token = max_vcycles_per_token
        self._unit = unit if unit is not None else compile_batch(program)
        self.reset()

    def reset(self):
        self._outputs = []
        self._finished = False
        self._result = None
        self._fallback = None
        self.trace = StreamTrace()

    def _delegate(self):
        if self._fallback is None:
            from .compile import CompiledSimulator

            self._fallback = CompiledSimulator(
                self.program,
                check_restrictions=self.check_restrictions,
                max_vcycles_per_token=self.max_vcycles_per_token,
            )
        return self._fallback

    def run(self, tokens):
        if self._finished:
            raise FleetSimulationError(
                "stream already finished; reset() to reuse the simulator"
            )
        if self._fallback is not None:
            outputs = self._fallback.run(tokens)
            self.trace = self._fallback.trace
            self._outputs = list(self._fallback.outputs)
            self._finished = True
            return outputs
        result = run_batch_streams(
            self.program, [list(tokens)], unit=self._unit,
            max_vcycles_per_token=self.max_vcycles_per_token,
        )
        self._result = result
        self._outputs = list(result.outputs[0])
        self.trace = result.traces[0]
        self._finished = True
        return list(self._outputs)

    def process_token(self, token):
        if self._finished:
            raise FleetSimulationError(
                "stream already finished; reset() to reuse the simulator"
            )
        sim = self._delegate()
        out = sim.process_token(token)
        self.trace = sim.trace
        self._outputs = list(sim.outputs)
        return out

    def finish_stream(self):
        if self._finished:
            raise FleetSimulationError("stream already finished")
        sim = self._delegate()
        out = sim.finish_stream()
        self.trace = sim.trace
        self._outputs = list(sim.outputs)
        self._finished = True
        return out

    @property
    def outputs(self):
        return list(self._outputs)

    def peek_reg(self, name):
        if self._result is not None:
            return self._result.peek_reg(0, name)
        if self._fallback is not None:
            return self._fallback.peek_reg(name)
        for reg in self.program.regs:
            if reg.name == name:
                return reg.init
        raise FleetSimulationError(f"no register named {name!r}")

    def peek_bram(self, name):
        if self._result is not None:
            return self._result.peek_bram(0, name)
        if self._fallback is not None:
            return self._fallback.peek_bram(name)
        for bram in self.program.brams:
            if bram.name == name:
                return [0] * bram.elements
        raise FleetSimulationError(f"no BRAM named {name!r}")


__all__ = [
    "BatchResult",
    "BatchStats",
    "BatchStreamSimulator",
    "BatchUnit",
    "NUMPY_HINT",
    "PredictedBatchStats",
    "batch_backend_env",
    "batch_engine_for",
    "batch_support",
    "cc_available",
    "compile_batch",
    "numpy_available",
    "predict_batch_stats",
    "run_batch_streams",
    "try_compile_batch",
]
