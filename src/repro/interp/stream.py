"""Token packing: convert between byte buffers and fixed-width token streams.

The Fleet software runtime (paper Section 2) fills a contiguous DRAM buffer
with each processing unit's input stream; the hardware breaks the bitstream
into ``input_token_size``-bit tokens. We pack little-endian-bit-first, so an
8-bit token stream is exactly the byte sequence.
"""

from ..lang.errors import FleetSimulationError
from ..lang.types import fits, mask


def tokens_from_bytes(data, token_width):
    """Split ``data`` (bytes) into ``token_width``-bit tokens.

    The buffer length in bits must be a multiple of the token width — the
    runtime pads streams when it packs them.
    """
    total_bits = len(data) * 8
    if total_bits % token_width:
        raise FleetSimulationError(
            f"buffer of {total_bits} bits is not a whole number of "
            f"{token_width}-bit tokens"
        )
    if token_width == 8:
        return list(data)
    value = int.from_bytes(data, "little")
    return [
        (value >> (i * token_width)) & mask(token_width)
        for i in range(total_bits // token_width)
    ]


def bytes_from_tokens(tokens, token_width):
    """Pack ``token_width``-bit tokens into bytes (zero-padded to a byte
    boundary at the end)."""
    if token_width == 8:
        try:
            return bytes(tokens)
        except ValueError:
            raise FleetSimulationError(
                "token does not fit in 8 bits"
            ) from None
    value = 0
    for i, token in enumerate(tokens):
        if not fits(token, token_width):
            raise FleetSimulationError(
                f"token {token} does not fit in {token_width} bits"
            )
        value |= token << (i * token_width)
    nbytes = (len(tokens) * token_width + 7) // 8
    return value.to_bytes(nbytes, "little")


def words_to_tokens(values, *, value_width, token_width):
    """Serialize fixed-width integers into a token stream (little-endian),
    e.g. 32-bit datapoint coordinates into 8-bit tokens."""
    if value_width % token_width:
        raise FleetSimulationError(
            f"value width {value_width} is not a multiple of token width "
            f"{token_width}"
        )
    per_value = value_width // token_width
    tokens = []
    for value in values:
        if not fits(value, value_width):
            raise FleetSimulationError(
                f"value {value} does not fit in {value_width} bits"
            )
        for i in range(per_value):
            tokens.append((value >> (i * token_width)) & mask(token_width))
    return tokens


def tokens_to_words(tokens, *, value_width, token_width):
    """Inverse of :func:`words_to_tokens`."""
    if value_width % token_width:
        raise FleetSimulationError(
            f"value width {value_width} is not a multiple of token width "
            f"{token_width}"
        )
    per_value = value_width // token_width
    if len(tokens) % per_value:
        raise FleetSimulationError(
            f"{len(tokens)} tokens is not a whole number of "
            f"{value_width}-bit values"
        )
    values = []
    for i in range(0, len(tokens), per_value):
        value = 0
        for j in range(per_value):
            value |= tokens[i + j] << (j * token_width)
        values.append(value)
    return values
