"""Shared native-build machinery for the C-emitting engines.

Both native tiers — the batch engine's whole-fleet kernel
(:mod:`repro.interp.batch`) and the per-unit scalar kernel
(:mod:`repro.interp.cc`) — compile generated C through cffi with a
content-addressed on-disk build cache: the kernel source is hashed, and
a module whose ``.so`` already exists is loaded without invoking the
compiler, so rebuilds are skipped across processes.

Everything degrades gracefully: :func:`cc_available` probes the
toolchain once per process (cffi import + a trivial compile), and every
caller treats ``False`` as "use the pure-Python tier". Setting
``FLEET_NATIVE=off`` disables the probe entirely — the escape hatch for
environments where invoking a compiler is unwanted, and the lever CI
uses to exercise the toolchain-absent degradation path on machines that
do have a compiler.
"""

import glob
import hashlib
import importlib.util
import os
import tempfile

from ..envcfg import env_choice

#: Validated ``FLEET_NATIVE`` choices: ``auto`` probes for a toolchain,
#: ``off`` disables every native tier without probing.
_NATIVE_CHOICES = ("auto", "off")

#: Memoized result of the one-shot toolchain probe (None = not yet run).
_CC_OK = None
#: In-process module cache: source hash -> (lib, ffi).
_CC_MODCACHE = {}
#: Last native-build failure, kept for debugging (forced native modes
#: re-raise it with context).
_CC_LAST_ERROR = None


def native_enabled():
    """Whether native tiers may build kernels (``FLEET_NATIVE`` gate).

    Unknown values raise :class:`~repro.lang.errors.FleetConfigError`
    immediately (the shared :func:`repro.envcfg.env_choice` validator)
    rather than silently running the wrong tier.
    """
    return env_choice("FLEET_NATIVE", _NATIVE_CHOICES, "auto") != "off"


def _cc_cache_dir():
    uid = getattr(os, "getuid", lambda: 0)()
    path = os.path.join(tempfile.gettempdir(), f"fleet-cc-{uid}")
    os.makedirs(path, exist_ok=True)
    return path


def _cc_load(cdef, source, tag):
    """Compile-or-load a cffi extension module, content-addressed by its
    C source so rebuilds are skipped across processes."""
    import cffi

    key = hashlib.sha256(source.encode()).hexdigest()[:16]
    cached = _CC_MODCACHE.get(key)
    if cached is not None:
        return cached
    modname = f"_fleet_cc_{tag}_{key}"
    cachedir = _cc_cache_dir()
    matches = glob.glob(os.path.join(cachedir, modname + "*.so"))
    sopath = matches[0] if matches else None
    if sopath is None:
        ffi = cffi.FFI()
        ffi.cdef(cdef)
        ffi.set_source(modname, source,
                       extra_compile_args=["-O2", "-w"])
        sopath = ffi.compile(tmpdir=cachedir, verbose=False)
    spec = importlib.util.spec_from_file_location(modname, sopath)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    result = (mod.lib, mod.ffi)
    _CC_MODCACHE[key] = result
    return result


def cc_available():
    """Whether native tiers can build kernels here (``FLEET_NATIVE`` not
    ``off``, cffi importable, and a working C compiler). Probed once per
    process with a trivial module; the probe's build artifact is
    disk-cached like any kernel."""
    global _CC_OK, _CC_LAST_ERROR
    if not native_enabled():
        # Deliberately not memoized: flipping FLEET_NATIVE back on mid-
        # process (tests do) must re-enable the probe result.
        return False
    if _CC_OK is None:
        try:
            lib, _ = _cc_load(
                "int fleet_probe(void);",
                "int fleet_probe(void) { return 42; }",
                "probe",
            )
            _CC_OK = lib.fleet_probe() == 42
        except Exception as exc:  # pragma: no cover - toolchain-specific
            _CC_LAST_ERROR = exc
            _CC_OK = False
    return _CC_OK


def last_error():
    """The most recent native-build failure (or ``None``)."""
    return _CC_LAST_ERROR


def set_last_error(exc):
    """Record a native-build failure for later diagnostics."""
    global _CC_LAST_ERROR
    _CC_LAST_ERROR = exc


__all__ = [
    "cc_available",
    "last_error",
    "native_enabled",
    "set_last_error",
]
