"""Native (C) per-unit engine: certified specialization compiled to C.

The compiled engine (:mod:`repro.interp.compile`) lowers a program to
specialized Python; with a clean certificate its codegen additionally
deletes every guard the interval domain proves redundant. This module
takes the same certified IR one tier further: the *specialized* cycle —
dead arms gone, masks elided, registers written in place under the
snapshot-read scheme, temporaries sunk to their branch regions — is
rendered as C instead of Python and compiled through cffi (the shared
:mod:`repro.interp.native` machinery, with its content-addressed
on-disk build cache).

The cc engine is **certified-only** by design: it inherits the
specialized renderer, whose soundness rests on the certificate, and a
certificate also proves the dynamic restriction checks unnecessary — so
the native kernel performs none. An uncertified program never gets a
native kernel (:func:`cc_engine_for` returns ``None``; the forced
``engine="cc"`` path raises).

Two kernel entry points mirror the compiled engine's incremental API:
``fleet_tokens`` runs a batch of input tokens (phase 0: ``sf`` folded to
0) and ``fleet_finish`` runs the post-stream cleanup cycle (phase 1:
``sf`` folded to 1, the input token folded to 0). State crosses the FFI
boundary as two flat ``uint64_t`` buffers (registers, then every vector
register and BRAM concatenated), packed from — and on success unpacked
back into — the simulator's Python-list state, so
:class:`CcSimulator` stays a drop-in
:class:`~repro.interp.compile.CompiledSimulator` replacement (same
outputs, trace, peeks, and error surface).

Error protocol (``err[0]``): ``1`` loop limit at token ``err[1]``; ``2``
output capacity exhausted (the driver grows the buffer and reruns from
the unchanged Python-side state — invisible to callers); ``3`` a token
wider than the declared input width at index ``err[1]``. ``err[2]``
always carries the output count produced before the fault, so partial
outputs and per-token trace entries match the compiled engine exactly.

Everything degrades gracefully: no toolchain, ``FLEET_NATIVE=off``, an
uncertified or unsupported program — each makes :func:`cc_engine_for`
decline (counted in telemetry), and ``make_simulator`` falls back to the
compiled tiers.
"""

import re
import time

from ..lang import ast
from ..lang.errors import FleetLoopLimitError, FleetSimulationError
from ..lang.types import MACHINE_WIDTH, machine_bits, mask
from ..telemetry.metrics import counter as _tm_counter
from ..telemetry.metrics import enabled as _tm_enabled
from ..telemetry.metrics import histogram as _tm_histogram
from . import native as _native
from .compile import (
    _LEAF_NODES,
    _Codegen,
    _state_shape_ok,
    _Unsupported,
)
from .native import _cc_load, cc_available
from .trace import StreamTrace

#: Live telemetry (repro.telemetry; zero-cost unless FLEET_METRICS).
_CC_COMPILES = _tm_counter(
    "fleet_cc_compiles_total",
    "Unit programs lowered to the native cc engine",
)
_CC_FALLBACKS = _tm_counter(
    "fleet_cc_fallbacks_total",
    "cc_engine_for() declined and callers fell back to the compiled "
    "tiers",
    ("reason",),
)
_CC_BUILD_SECONDS = _tm_histogram(
    "fleet_cc_build_seconds",
    "Wall-clock seconds per native (cffi) cc-kernel build or load",
)

_BIN_OPS = frozenset((
    "add", "sub", "mul", "and", "or", "xor", "shl", "shr",
    "eq", "ne", "lt", "le", "gt", "ge",
))
_CMP_OPS = frozenset(("eq", "ne", "lt", "le", "gt", "ge"))
_UN_OPS = frozenset(("not", "lnot", "orr", "andr", "xorr"))


def cc_support(program):
    """Whether ``program``'s *shape* fits the native cc engine.

    Returns ``(True, "")`` or ``(False, reason)``. The conditions are
    the compiled engine's totality gate (power-of-two state) plus the
    machine-word gate shared with the batch engine: every expression
    must fit a 64-bit word so C arithmetic is exact. Certification and
    toolchain availability are separate gates (see
    :func:`compile_cc` / :func:`cc_engine_for`).
    """
    if not _state_shape_ok(program):
        return False, (
            "every BRAM and vector register needs a power-of-two "
            "element count"
        )
    if machine_bits(program.input_width) is None:
        return False, f"input width {program.input_width} exceeds 64 bits"
    if machine_bits(program.output_width) is None:
        return False, f"output width {program.output_width} exceeds 64 bits"
    roots = []
    for stmt in ast.walk_statements(program.body):
        roots.extend(ast.statement_exprs(stmt))
    seen = set()
    for root in roots:
        for node in ast.walk_expr(root):
            if id(node) in seen:
                continue
            seen.add(id(node))
            if isinstance(node, ast.Const):
                if node.value > mask(MACHINE_WIDTH):
                    return False, (
                        f"constant {node.value} exceeds a 64-bit machine "
                        "word"
                    )
                continue
            if machine_bits(node.width) is None:
                return False, (
                    f"expression width {node.width} exceeds a 64-bit "
                    "machine word"
                )
            if isinstance(node, ast.BinOp):
                if node.op not in _BIN_OPS:
                    return False, f"unsupported operator {node.op!r}"
            elif isinstance(node, ast.UnOp):
                if node.op not in _UN_OPS:
                    return False, f"unsupported operator {node.op!r}"
            elif not isinstance(node, (
                ast.InputToken, ast.StreamFinished, ast.RegRead,
                ast.WireRead, ast.VectorRegRead, ast.BramRead, ast.Mux,
                ast.Slice, ast.Concat,
            )):
                return False, f"unsupported node {node!r}"
    return True, ""


# ---------------------------------------------------------------------------
# Code generation (C surface over the specialized IR)
# ---------------------------------------------------------------------------


class _UnitCCodegen(_Codegen):
    """Renders the certified-specialized cycle of one program as C.

    Subclasses the compiled engine's codegen *with facts*, so the entire
    specialization pipeline — dead-arm elimination, phase splitting,
    mask/guard elision, constant folding, snapshot-read registers,
    region-sunk temporaries, direct emits — is inherited; only the
    surface syntax changes. The virtual-cycle semantics (reads see
    start-of-cycle state, pending vreg/BRAM writes commit last-wins at
    end of cycle, leaves outside whiles fire only on the ``while_done``
    cycle) are therefore identical to the specialized Python engine by
    construction.
    """

    def __init__(self, program, facts):
        if facts is None:
            raise _Unsupported("the cc engine is certified-only")
        super().__init__(program, facts=facts)

    # -- expression rendering (C) -------------------------------------------
    def _shift(self, node, cop, helper):
        """Render a shift: plain C ``<<``/``>>`` when the amount is
        provably below 64 (a constant, a narrow operand, or an interval
        fact), else through the saturating helper — C shifts by >= 64
        are undefined where Python's are total."""
        lhs, rhs = self._render(node.lhs), self._render(node.rhs)
        amount = node.rhs
        safe = False
        if isinstance(amount, ast.Const):
            safe = amount.value <= 63
        elif mask(amount.width) <= 63:
            safe = True
        else:
            bound = self.facts.interval(self._key(amount))
            safe = bound is not None and bound[1] <= 63
        if safe:
            return f"({lhs} {cop} {rhs})"
        return f"{helper}({lhs}, {rhs})"

    def _render_body(self, node):
        if isinstance(node, ast.Const):
            return f"{node.value}ULL"
        if not isinstance(node, _LEAF_NODES):
            folded = self.facts.constant(self._key(node))
            if folded is not None:
                self._elide("const_folds")
                return f"{folded}ULL"
        if isinstance(node, ast.InputToken):
            return "0ULL" if self._phase == 1 else "_tok"
        if isinstance(node, ast.StreamFinished):
            # cc renders are always phase-split (0 or 1).
            return f"{self._phase}ULL"
        if isinstance(node, ast.RegRead):
            return self._reg_read_name[node.reg]
        if isinstance(node, ast.WireRead):
            return self._render(node.wire.value)
        if isinstance(node, ast.VectorRegRead):
            index = self._trunc(node.index, node.vreg.index_width,
                                kind="addr_masks")
            return f"{self.vreg_name[node.vreg]}[{index}]"
        if isinstance(node, ast.BramRead):
            addr = self._trunc(node.addr, node.bram.addr_width,
                               kind="addr_masks")
            return f"{self.bram_name[node.bram]}[{addr}]"
        if isinstance(node, ast.BinOp):
            op = node.op
            if op == "shl":
                return self._shift(node, "<<", "_shl64")
            if op == "shr":
                return self._shift(node, ">>", "_shr64")
            lhs, rhs = self._render(node.lhs), self._render(node.rhs)
            if op in ("add", "mul", "and", "or", "xor"):
                c = {"add": "+", "mul": "*", "and": "&",
                     "or": "|", "xor": "^"}[op]
                return f"({lhs} {c} {rhs})"
            if op in _CMP_OPS:
                c = {"eq": "==", "ne": "!=", "lt": "<",
                     "le": "<=", "gt": ">", "ge": ">="}[op]
                return f"((uint64_t)({lhs} {c} {rhs}))"
            if op == "sub":
                if self.facts.sub_exact(self._key(node.lhs),
                                        self._key(node.rhs)):
                    self._elide("sub_masks")
                    return f"({lhs} - {rhs})"
                return f"(({lhs} - {rhs}) & {hex(mask(node.width))}ULL)"
            raise _Unsupported(node)
        if isinstance(node, ast.UnOp):
            a = self._render(node.operand)
            w = node.operand.width
            if node.op == "not":
                return f"((~{a}) & {hex(mask(w))}ULL)"
            if node.op == "lnot":
                return f"((uint64_t)({a} == 0))"
            if node.op == "orr":
                return f"((uint64_t)({a} != 0))"
            if node.op == "andr":
                return f"((uint64_t)({a} == {hex(mask(w))}ULL))"
            if node.op == "xorr":
                return f"((uint64_t)(__builtin_popcountll({a}) & 1))"
            raise _Unsupported(node)
        if isinstance(node, ast.Mux):
            cond = self._render(node.cond)
            then = self._render(node.then)
            els = self._render(node.els)
            return f"({cond} ? ({then}) : ({els}))"
        if isinstance(node, ast.Slice):
            a = self._render(node.operand)
            if node.lo == 0 and node.width == node.operand.width:
                return a
            shifted = a if node.lo == 0 else f"({a} >> {node.lo})"
            if self._fits(node.operand, node.hi + 1):
                self._elide("slice_masks")
                return shifted
            return f"({shifted} & {hex(mask(node.width))}ULL)"
        if isinstance(node, ast.Concat):
            # Concat width fits 64 bits (cc_support), so every
            # constant part-shift is < 64: plain C << is defined.
            out = self._render(node.parts[0])
            for part in node.parts[1:]:
                out = f"(({out} << {part.width}) | {self._render(part)})"
            return out
        raise _Unsupported(node)

    def _trunc(self, node, width, kind="value_masks"):
        rendered = self._render(node)
        if node.width > width:
            if self._fits(node, width):
                self._elide(kind)
                return rendered
            return f"({rendered} & {hex(mask(width))}ULL)"
        return rendered

    def _trunc_at(self, node, width, location, role, kind):
        rendered = self._render(node)
        if node.width > width:
            if self._site_fits(node, width, location, role):
                self._elide(kind)
                return rendered
            return f"({rendered} & {hex(mask(width))}ULL)"
        return rendered

    # -- statement rendering (C) --------------------------------------------
    def _emit_pass1(self, lines, body, indent):
        pad = "    " * indent
        wrote = False
        for stmt in body:
            if isinstance(stmt, ast.While):
                if not self._live_while(stmt):
                    continue
                cond = self._render(stmt.cond)
                lines.append(f"{pad}if (_wd && {cond}) _wd = 0;")
                wrote = True
            elif isinstance(stmt, ast.If) and \
                    self._contains_live_while(stmt):
                lines.append(f"{pad}if (_wd) {{")
                first = True
                for cond, arm_body, _j in self._live_arms(stmt):
                    if cond is not None:
                        kw = "if" if first else "} else if"
                        rendered = self._render(cond)
                        lines.append(f"{pad}    {kw} ({rendered}) {{")
                    else:
                        lines.append(
                            f"{pad}    "
                            + ("if (1) {" if first else "} else {")
                        )
                    first = False
                    self._emit_pass1(lines, arm_body, indent + 2)
                lines.append(f"{pad}    }}")
                lines.append(f"{pad}}}")
                wrote = True
        return wrote

    def _leaf_code(self, stmt, location):
        if isinstance(stmt, ast.RegAssign):
            index = self.program.regs.index(stmt.reg)
            value = self._trunc_at(stmt.value, stmt.reg.width,
                                   location, "value", "value_masks")
            # Snapshot-read scheme (inherited): reads render as the
            # `_o{i}` snapshot, so the write lands in place.
            self._elide("reg_sentinels")
            return f"_r{index} = {value};"
        if isinstance(stmt, ast.VectorRegAssign):
            index = self.program.vregs.index(stmt.vreg)
            idx = self._trunc_at(stmt.index, stmt.vreg.index_width,
                                 location, "addr", "addr_masks")
            value = self._trunc_at(stmt.value, stmt.vreg.width,
                                   location, "value", "value_masks")
            if self.vreg_sites[stmt.vreg] == 1:
                if stmt.vreg in self._uncond_vregs:
                    return f"_pvi{index} = {idx}; _pvv{index} = {value};"
                return (f"_pvi{index} = {idx}; _pvv{index} = {value}; "
                        f"_pvs{index} = 1;")
            # Each syntactic site runs at most once per virtual cycle,
            # so the fixed-size queue can never overflow.
            return (f"_pqi{index}[_pqn{index}] = {idx}; "
                    f"_pqv{index}[_pqn{index}] = {value}; _pqn{index}++;")
        if isinstance(stmt, ast.BramWrite):
            index = self.program.brams.index(stmt.bram)
            addr = self._trunc_at(stmt.addr, stmt.bram.addr_width,
                                  location, "addr", "addr_masks")
            value = self._trunc_at(stmt.value, stmt.bram.width,
                                   location, "value", "value_masks")
            if stmt.bram in self._uncond_brams:
                return f"_pbi{index} = {addr}; _pbv{index} = {value};"
            return (f"_pbi{index} = {addr}; _pbv{index} = {value}; "
                    f"_pbs{index} = 1;")
        if isinstance(stmt, ast.Emit):
            value = self._trunc_at(stmt.value, self.program.output_width,
                                   location, "value", "value_masks")
            # Certified emit exclusivity (inherited direct-emit): append
            # straight to the output buffer, growing via err=2 retries.
            self._elide("direct_emits")
            return ("if (_outn >= out_cap) { err[0] = 2; return -1; } "
                    f"out_vals[_outn++] = {value}; _emits++;")
        raise _Unsupported(stmt)

    def _emit_pass2(self, lines, body, indent, in_loop, path="body",
                    region=()):
        pad = "    " * indent
        wrote = False
        pending = []
        # Temps sunk to this branch region: declared at region entry,
        # before any condition or leaf referencing them.
        for code in self._region_temps.get(region, ()) if region else ():
            name, expr = code.split(" = ", 1)
            lines.append(f"{pad}uint64_t {name} = {expr};")
            wrote = True

        def flush():
            nonlocal wrote
            if not pending:
                return
            if in_loop or self._straightline:
                for code in pending:
                    lines.append(pad + code)
            else:
                lines.append(f"{pad}if (_wd) {{")
                for code in pending:
                    lines.append(f"{pad}    {code}")
                lines.append(f"{pad}}}")
            pending.clear()
            wrote = True

        for i, stmt in enumerate(body):
            loc = f"{path}[{i}]"
            if isinstance(stmt, ast.If):
                live = self._live_arms(stmt)
                if not live:
                    continue
                flush()
                first = True
                for cond, arm_body, j in live:
                    if cond is not None:
                        kw = "if" if first else "} else if"
                        rendered = self._render(cond)
                        lines.append(f"{pad}{kw} ({rendered}) {{")
                    else:
                        lines.append(
                            pad + ("if (1) {" if first else "} else {")
                        )
                    first = False
                    self._emit_pass2(
                        lines, arm_body, indent + 1, in_loop,
                        f"{loc}.arm[{j}].body",
                        region + ((id(stmt), j),),
                    )
                lines.append(f"{pad}}}")
                wrote = True
            elif isinstance(stmt, ast.While):
                if not self._live_while(stmt):
                    continue
                flush()
                cond = self._render(stmt.cond)
                lines.append(f"{pad}if ({cond}) {{")
                self._emit_pass2(
                    lines, stmt.body, indent + 1, True, f"{loc}.body",
                    region + ((id(stmt), -1),),
                )
                lines.append(f"{pad}}}")
                wrote = True
            else:
                if indent == 0 and self._straightline and not in_loop:
                    self._mark_unconditional(stmt)
                pending.append(self._leaf_code(stmt, loc))
        flush()
        return wrote

    # -- assembly -----------------------------------------------------------
    def _cycle_lines(self):
        roots = self._collect_roots()
        lines = []
        for i, reg in enumerate(self.program.regs):
            if reg in self._snap_regs:
                lines.append(f"uint64_t _o{i} = _r{i};")
        for hoist in self._hoist_lines(roots):
            name, body = hoist.split(" = ", 1)
            lines.append(f"uint64_t {name} = {body};")
        if not self._straightline:
            lines.append("int _wd = 1;")
            self._emit_pass1(lines, self.program.body, 0)
        # Pass 2 renders first: rendering discovers which pending writes
        # provably land every cycle (their sentinel test is dropped).
        body_lines = []
        self._emit_pass2(body_lines, self.program.body, 0, False)
        for i, vreg in enumerate(self.program.vregs):
            sites = self.vreg_sites.get(vreg, 0)
            if sites == 1:
                if vreg in self._uncond_vregs:
                    lines.append(f"uint64_t _pvi{i} = 0, _pvv{i} = 0;")
                else:
                    lines.append(
                        f"uint64_t _pvi{i} = 0, _pvv{i} = 0; "
                        f"int _pvs{i} = 0;"
                    )
            elif sites > 1:
                lines.append(
                    f"uint64_t _pqi{i}[{sites}], _pqv{i}[{sites}]; "
                    f"int _pqn{i} = 0;"
                )
        for i, bram in enumerate(self.program.brams):
            if bram not in self.written_brams:
                continue
            if bram in self._uncond_brams:
                lines.append(f"uint64_t _pbi{i} = 0, _pbv{i} = 0;")
            else:
                lines.append(f"uint64_t _pbi{i} = 0, _pbv{i} = 0; "
                             f"int _pbs{i} = 0;")
        lines.extend(body_lines)
        # Commit: pending vreg/BRAM writes land together at end of cycle
        # (registers landed in place; emits appended directly).
        for i, vreg in enumerate(self.program.vregs):
            sites = self.vreg_sites.get(vreg, 0)
            if vreg in self._uncond_vregs:
                self._elide("uncond_commits")
                lines.append(f"_v{i}[_pvi{i}] = _pvv{i};")
            elif sites == 1:
                lines.append(f"if (_pvs{i}) _v{i}[_pvi{i}] = _pvv{i};")
            elif sites > 1:
                lines.append(
                    f"for (int _q = 0; _q < _pqn{i}; _q++) "
                    f"_v{i}[_pqi{i}[_q]] = _pqv{i}[_q];"
                )
        for i, bram in enumerate(self.program.brams):
            if bram in self._uncond_brams:
                self._elide("uncond_commits")
                lines.append(f"_b{i}[_pbi{i}] = _pbv{i};")
            elif bram in self.written_brams:
                lines.append(f"if (_pbs{i}) _b{i}[_pbi{i}] = _pbv{i};")
        return lines

    def _emit_state_locals(self, out, pad):
        program = self.program
        for i in range(len(program.regs)):
            out(f"{pad}uint64_t _r{i} = regs[{i}];")
        off = 0
        for i, vreg in enumerate(program.vregs):
            out(f"{pad}uint64_t *_v{i} = state + {off};")
            off += vreg.elements
        for i, bram in enumerate(program.brams):
            out(f"{pad}uint64_t *_b{i} = state + {off};")
            off += bram.elements
        return off

    def _emit_reg_repack(self, out, pad):
        for i in range(len(self.program.regs)):
            out(f"{pad}regs[{i}] = _r{i};")

    def _emit_cycle_at(self, out, cycle, straightline, pad, err_ti):
        """Emit one virtual-cycle execution (loop or collapsed
        straight-line) writing ``_lvc`` with the cycle count. Error
        returns repack registers first so faulting streams leave state
        behind exactly like the compiled engine's ``finally``."""
        if straightline:
            for line in cycle:
                out(pad + line)
            out(f"{pad}_lvc = 1;")
            return
        out(f"{pad}_lvc = 0;")
        out(f"{pad}for (;;) {{")
        out(f"{pad}    _lvc++;")
        for line in cycle:
            out(f"{pad}    " + line)
        out(f"{pad}    if (_wd) break;")
        out(f"{pad}    if (_lvc >= max_vc) {{")
        out(f"{pad}        err[0] = 1; err[1] = {err_ti}; "
            "err[2] = _outn;")
        self._emit_reg_repack(out, pad + "        ")
        out(f"{pad}        return -1;")
        out(f"{pad}    }}")
        out(f"{pad}}}")

    def generate(self):
        program = self.program
        tok_cycle, tok_straight = self._render_cycle(0)
        fin_cycle, fin_straight = self._render_cycle(1)
        in_mask = mask(program.input_width)
        lines = []
        out = lines.append
        out("#include <stdint.h>")
        out("")
        out("static inline uint64_t _shl64(uint64_t a, uint64_t b)")
        out("{ return b > 63 ? 0 : a << b; }")
        out("static inline uint64_t _shr64(uint64_t a, uint64_t b)")
        out("{ return b > 63 ? 0 : a >> b; }")
        out("")
        out("int fleet_tokens(const uint64_t *toks, int64_t n,")
        out("                 uint64_t *regs, uint64_t *state,")
        out("                 int64_t max_vc,")
        out("                 uint64_t *out_vals, int64_t out_cap,")
        out("                 int32_t *vcs, int32_t *ems, int64_t *err)")
        out("{")
        self._emit_state_locals(out, "    ")
        out("    int64_t _outn = 0;")
        out("    int32_t _lvc = 0;")
        out("    for (int64_t _ti = 0; _ti < n; _ti++) {")
        out("        uint64_t _tok = toks[_ti];")
        if in_mask < mask(MACHINE_WIDTH):
            # Tokens already fitting 64 bits can still exceed the
            # declared input width; validated in-kernel for the exact
            # failing index (width == 64 needs no check).
            out(f"        if (_tok > {hex(in_mask)}ULL) {{")
            out("            err[0] = 3; err[1] = _ti; err[2] = _outn;")
            self._emit_reg_repack(out, "            ")
            out("            return -1;")
            out("        }")
        out("        int32_t _emits = 0;")
        self._emit_cycle_at(out, tok_cycle, tok_straight, "        ",
                            "_ti")
        out("        vcs[_ti] = _lvc;")
        out("        ems[_ti] = _emits;")
        out("    }")
        self._emit_reg_repack(out, "    ")
        out("    err[0] = 0; err[2] = _outn;")
        out("    return 0;")
        out("}")
        out("")
        out("int fleet_finish(uint64_t *regs, uint64_t *state,")
        out("                 int64_t max_vc,")
        out("                 uint64_t *out_vals, int64_t out_cap,")
        out("                 int32_t *vcs, int32_t *ems, int64_t *err)")
        out("{")
        self._emit_state_locals(out, "    ")
        out("    int64_t _outn = 0;")
        out("    int32_t _lvc = 0;")
        out("    int32_t _emits = 0;")
        self._emit_cycle_at(out, fin_cycle, fin_straight, "    ", "0")
        out("    vcs[0] = _lvc;")
        out("    ems[0] = _emits;")
        self._emit_reg_repack(out, "    ")
        out("    err[0] = 0; err[2] = _outn;")
        out("    return 0;")
        out("}")
        return "\n".join(lines) + "\n"


_CDEF = (
    "int fleet_tokens(const uint64_t *toks, int64_t n, uint64_t *regs, "
    "uint64_t *state, int64_t max_vc, uint64_t *out_vals, "
    "int64_t out_cap, int32_t *vcs, int32_t *ems, int64_t *err);\n"
    "int fleet_finish(uint64_t *regs, uint64_t *state, int64_t max_vc, "
    "uint64_t *out_vals, int64_t out_cap, int32_t *vcs, int32_t *ems, "
    "int64_t *err);"
)


class CcUnit:
    """A Fleet program lowered to a native (C) kernel.

    ``lib``/``ffi`` expose the two kernel entry points; ``source`` is
    the generated C (debugging and golden-snapshot hook); ``elisions``
    counts what certified specialization deleted during the lowering
    (the same taxonomy as the specialized Python engine).
    """

    __slots__ = ("program", "lib", "ffi", "source", "elisions",
                 "state_size", "specialized")

    def __init__(self, program, lib, ffi, source, elisions, state_size):
        self.program = program
        self.lib = lib
        self.ffi = ffi
        self.source = source
        self.elisions = elisions
        self.state_size = state_size
        self.specialized = True


def compile_cc(program, certificate=None):
    """Lower ``program`` to a :class:`CcUnit` (native kernel).

    Certified-only: with ``certificate=None`` the (memoized)
    certificate is fetched via
    :func:`repro.lint.certificate.certificate_for`; a rejected, stale,
    or fact-less certificate is **refused** with a hard error, exactly
    like :func:`repro.interp.compile.compile_program`'s specialization
    path. Raises :class:`FleetSimulationError` when the program shape
    is unsupported or no C toolchain is available; use
    :func:`try_compile_cc` / :func:`cc_engine_for` for the optional
    variants.
    """
    from ..lint.certificate import certificate_for

    if certificate is None:
        certificate = certificate_for(program)
    if not certificate.ok:
        raise FleetSimulationError(
            f"program {program.name!r}: refusing native specialization — "
            "certificate is rejected"
        )
    if not certificate.covers(program):
        raise FleetSimulationError(
            f"program {program.name!r}: refusing native specialization — "
            "certificate fingerprint does not match (stale or mismatched "
            "certificate)"
        )
    if certificate.facts is None:
        raise FleetSimulationError(
            f"program {program.name!r}: refusing native specialization — "
            "certificate carries no specialization facts"
        )
    ok, reason = cc_support(program)
    if not ok:
        raise FleetSimulationError(
            f"program {program.name!r} cannot take the native cc engine: "
            f"{reason}"
        )
    if not cc_available():
        raise FleetSimulationError(
            "no working C toolchain for the native cc engine "
            f"(FLEET_NATIVE={'off' if not _native.native_enabled() else 'auto'},"
            f" last error: {_native.last_error()!r})"
        )
    started = time.perf_counter() if _tm_enabled() else None
    try:
        codegen = _UnitCCodegen(program, certificate.facts)
        source = codegen.generate()
    except _Unsupported as exc:
        raise FleetSimulationError(
            f"program {program.name!r} cannot take the native cc engine: "
            f"unsupported node {exc.args[0]!r}"
        ) from None
    state_size = sum(v.elements for v in program.vregs) + \
        sum(b.elements for b in program.brams)
    tag = re.sub(r"\W+", "_", program.name)[:24] or "prog"
    try:
        lib, ffi = _cc_load(_CDEF, source, tag)
    except Exception as exc:
        _native.set_last_error(exc)
        raise FleetSimulationError(
            f"native cc kernel build failed for {program.name!r}: {exc}"
        ) from exc
    if started is not None:
        _CC_COMPILES.inc()
        _CC_BUILD_SECONDS.observe(time.perf_counter() - started)
    return CcUnit(program, lib, ffi, source, dict(codegen.elisions),
                  state_size)


def try_compile_cc(program, certificate=None):
    """:func:`compile_cc`, returning ``None`` on any failure.

    The result (including failure) is cached on the program object —
    programs are immutable once built. An explicitly supplied
    certificate bypasses the failure cache (it may newly apply) but
    shares the success cache (facts derive deterministically from the
    program, so any applicable certificate builds the same kernel).
    """
    cached = getattr(program, "_fleet_cc", False)
    if cached is not False and (cached is not None
                                or certificate is None):
        return cached
    try:
        unit = compile_cc(program, certificate=certificate)
    except FleetSimulationError:
        unit = None
    program._fleet_cc = unit
    return unit


def cc_engine_for(program):
    """The :class:`CcUnit` for ``program``, or ``None`` when the native
    engine must not run: uncertified program, unsupported shape, no
    C toolchain (or ``FLEET_NATIVE=off``), or a failed build. Each
    decline is counted so fallbacks are observable."""
    from ..lint.certificate import certificate_for

    # The FLEET_NATIVE=off lever must win over a warm per-program cache:
    # flipping it mid-process (tests do) disables an already-built unit.
    if not _native.native_enabled():
        _CC_FALLBACKS.inc(reason="native_off")
        return None
    cached = getattr(program, "_fleet_cc", False)
    if cached is not False:
        return cached
    ok, reason = cc_support(program)
    if not ok:
        _CC_FALLBACKS.inc(reason="unsupported")
        program._fleet_cc = None
        return None
    if not certificate_for(program).ok:
        _CC_FALLBACKS.inc(reason="uncertified")
        program._fleet_cc = None
        return None
    if not cc_available():
        _CC_FALLBACKS.inc(reason="no_toolchain")
        program._fleet_cc = None
        return None
    unit = try_compile_cc(program)
    if unit is None:
        _CC_FALLBACKS.inc(reason="build_failed")
    return unit


# ---------------------------------------------------------------------------
# Simulator-compatible driver
# ---------------------------------------------------------------------------


class CcSimulator:
    """Drop-in :class:`~repro.interp.simulator.UnitSimulator` replacement
    driving a :class:`CcUnit` (same incremental API, outputs, trace, and
    peek hooks as :class:`~repro.interp.compile.CompiledSimulator`).

    State lives in Python lists between calls (reset/peek parity); each
    kernel call packs it into flat ffi buffers and unpacks on return.
    Output-capacity exhaustion (``err=2``) retries transparently with a
    larger buffer from the unchanged Python-side state.
    """

    engine = "cc"

    def __init__(self, program, *, check_restrictions=True,
                 max_vcycles_per_token=1_000_000, unit=None,
                 certificate=None):
        self.program = program
        self.check_restrictions = check_restrictions
        self.max_vcycles_per_token = max_vcycles_per_token
        self._unit = unit if unit is not None else compile_cc(
            program, certificate=certificate
        )
        self._in_mask = mask(program.input_width)
        self.reset()

    def reset(self):
        self._reg_values = [r.init for r in self.program.regs]
        self._vregs = [[v.init] * v.elements for v in self.program.vregs]
        self._brams = [[0] * b.elements for b in self.program.brams]
        self._outputs = []
        self._finished = False
        self.trace = StreamTrace()

    @property
    def source(self):
        """The generated C source (debugging hook)."""
        return self._unit.source

    # -- state marshalling ---------------------------------------------------
    def _pack(self, ffi):
        regs_buf = ffi.new("uint64_t[]", self._reg_values or [0])
        flat = []
        for data in self._vregs:
            flat.extend(data)
        for data in self._brams:
            flat.extend(data)
        state_buf = ffi.new("uint64_t[]", flat or [0])
        return regs_buf, state_buf

    def _unpack(self, regs_buf, state_buf):
        ffi = self._unit.ffi
        self._reg_values[:] = ffi.unpack(regs_buf, len(self._reg_values))
        flat = ffi.unpack(state_buf, self._unit.state_size)
        off = 0
        for data in self._vregs:
            k = len(data)
            data[:] = flat[off:off + k]
            off += k
        for data in self._brams:
            k = len(data)
            data[:] = flat[off:off + k]
            off += k

    def _tokens_buf(self, tokens, ffi):
        """Pack tokens, raising the compiled engine's exact
        out-of-width message for tokens the buffer cannot hold
        (negative, non-int, or beyond 64 bits); in-range-but-too-wide
        tokens are caught in-kernel instead."""
        try:
            if tokens:
                return ffi.new("uint64_t[]", tokens)
            return ffi.new("uint64_t[]", 1)
        except (TypeError, OverflowError):
            for token in tokens:
                if not isinstance(token, int) or not (
                    0 <= token <= self._in_mask
                ):
                    raise self._token_error(token) from None
            raise

    def _token_error(self, token):
        return FleetSimulationError(
            f"token {token!r} does not fit the declared "
            f"{self.program.input_width}-bit input width"
        )

    def _loop_error(self):
        return FleetLoopLimitError(
            "while loop did not terminate within "
            f"{self.max_vcycles_per_token} virtual cycles"
        )

    # -- streaming API -------------------------------------------------------
    def run(self, tokens):
        tokens = list(tokens)
        if self._finished:
            raise FleetSimulationError(
                "stream already finished; reset() to reuse the simulator"
            )
        ffi, lib = self._unit.ffi, self._unit.lib
        n = len(tokens)
        toks_buf = self._tokens_buf(tokens, ffi)
        cap = max(4 * n + 1024, 4096)
        while True:
            regs_buf, state_buf = self._pack(ffi)
            out_buf = ffi.new("uint64_t[]", cap)
            vcs = ffi.new("int32_t[]", n + 1)
            ems = ffi.new("int32_t[]", n + 1)
            err = ffi.new("int64_t[]", 4)
            rc = lib.fleet_tokens(
                toks_buf, n, regs_buf, state_buf,
                self.max_vcycles_per_token, out_buf, cap, vcs, ems, err,
            )
            if rc != 0 and err[0] == 2:
                cap *= 4
                continue
            if rc != 0:
                # Fault mid-stream: state, partial outputs, and the
                # completed tokens' trace entries all land, matching the
                # compiled engine's ``finally`` semantics.
                self._unpack(regs_buf, state_buf)
                self._outputs.extend(out_buf[0:err[2]])
                for i in range(err[1]):
                    self.trace.record_token(vcs[i], ems[i], False)
                if err[0] == 3:
                    raise self._token_error(tokens[err[1]])
                raise self._loop_error()
            base = err[2]
            err2 = ffi.new("int64_t[]", 4)
            rc = lib.fleet_finish(
                regs_buf, state_buf, self.max_vcycles_per_token,
                out_buf + base, cap - base, vcs + n, ems + n, err2,
            )
            if rc != 0 and err2[0] == 2:
                cap *= 4
                continue
            self._unpack(regs_buf, state_buf)
            if rc != 0:
                self._outputs.extend(out_buf[0:base + err2[2]])
                for i in range(n):
                    self.trace.record_token(vcs[i], ems[i], False)
                raise self._loop_error()
            self._outputs.extend(ffi.unpack(out_buf, base + err2[2]))
            trace = self.trace
            trace.vcycles_per_token.extend(ffi.unpack(vcs, n + 1))
            trace.emits_per_token.extend(ffi.unpack(ems, n + 1))
            trace._cleanup_recorded = True
            self._finished = True
            return self.outputs

    def process_token(self, token):
        if self._finished:
            raise FleetSimulationError(
                "stream already finished; reset() to reuse the simulator"
            )
        if not isinstance(token, int) or not (
            0 <= token <= self._in_mask
        ):
            raise self._token_error(token)
        ffi, lib = self._unit.ffi, self._unit.lib
        toks_buf = ffi.new("uint64_t[]", [token])
        cap = 4096
        while True:
            regs_buf, state_buf = self._pack(ffi)
            out_buf = ffi.new("uint64_t[]", cap)
            vcs = ffi.new("int32_t[]", 1)
            ems = ffi.new("int32_t[]", 1)
            err = ffi.new("int64_t[]", 4)
            rc = lib.fleet_tokens(
                toks_buf, 1, regs_buf, state_buf,
                self.max_vcycles_per_token, out_buf, cap, vcs, ems, err,
            )
            if rc != 0 and err[0] == 2:
                cap *= 4
                continue
            self._unpack(regs_buf, state_buf)
            before = len(self._outputs)
            self._outputs.extend(out_buf[0:err[2]])
            if rc != 0:
                raise self._loop_error()
            self.trace.record_token(vcs[0], ems[0], False)
            return self._outputs[before:]

    def finish_stream(self):
        if self._finished:
            raise FleetSimulationError("stream already finished")
        ffi, lib = self._unit.ffi, self._unit.lib
        cap = 4096
        while True:
            regs_buf, state_buf = self._pack(ffi)
            out_buf = ffi.new("uint64_t[]", cap)
            vcs = ffi.new("int32_t[]", 1)
            ems = ffi.new("int32_t[]", 1)
            err = ffi.new("int64_t[]", 4)
            rc = lib.fleet_finish(
                regs_buf, state_buf, self.max_vcycles_per_token,
                out_buf, cap, vcs, ems, err,
            )
            if rc != 0 and err[0] == 2:
                cap *= 4
                continue
            self._unpack(regs_buf, state_buf)
            before = len(self._outputs)
            self._outputs.extend(out_buf[0:err[2]])
            if rc != 0:
                raise self._loop_error()
            self.trace.record_token(vcs[0], ems[0], True)
            self._finished = True
            return self._outputs[before:]

    @property
    def outputs(self):
        return list(self._outputs)

    def peek_reg(self, name):
        for reg, value in zip(self.program.regs, self._reg_values):
            if reg.name == name:
                return value
        raise FleetSimulationError(f"no register named {name!r}")

    def peek_bram(self, name):
        for bram, data in zip(self.program.brams, self._brams):
            if bram.name == name:
                return list(data)
        raise FleetSimulationError(f"no BRAM named {name!r}")


__all__ = [
    "CcSimulator",
    "CcUnit",
    "cc_available",
    "cc_engine_for",
    "cc_support",
    "compile_cc",
    "try_compile_cc",
]
