"""Software simulator for Fleet processing units.

This is the reproduction of the paper's "software simulator" (Sections 3
and 6): it runs a Fleet program one virtual cycle at a time against an input
stream, producing the output stream, and dynamically detects every language
restriction violation:

* dependent BRAM reads,
* more than one BRAM read address or more than one BRAM write per virtual
  cycle,
* more than one emit per virtual cycle,
* conflicting concurrent assignments (two executed assignments to the same
  register, or to the same vector-register/BRAM address).

Semantics implemented here (and cross-checked against the compiled RTL by
the test suite):

* All expressions read the state *at the start of* the virtual cycle; all
  writes commit together at its end (concurrent semantics, as in Chisel).
* A ``while`` loop whose condition (conjoined with its enclosing ``if``
  conditions) is true executes its body for one virtual cycle without
  consuming the input token. Statements outside every loop execute only on
  the virtual cycle where no loop is active (``while_done``), which is also
  when the input token is consumed.
* After the last input token, the logic runs once more with a dummy token
  and ``stream_finished`` true (including any while-loop virtual cycles
  that cleanup triggers).
"""

from ..lang import ast
from ..lang.errors import (
    FleetAddressError,
    FleetAssignConflictError,
    FleetDependentReadError,
    FleetEmitConflictError,
    FleetLoopLimitError,
    FleetReadPortError,
    FleetSimulationError,
    FleetWritePortError,
)
from ..lang.types import fits, mask, truncate
from ..ops import eval_binop, eval_unop
from .trace import StreamTrace


class VirtualCycle:
    """What happened during one virtual cycle (for tests and tracing)."""

    __slots__ = ("emitted", "while_done")

    def __init__(self, emitted, while_done):
        self.emitted = emitted  # output token or None
        self.while_done = while_done  # whether the input token was consumed


class _Actions:
    """Writes and emits collected during one virtual cycle, applied at the
    end to give concurrent semantics."""

    def __init__(self):
        self.reg_writes = {}  # RegDecl -> value
        self.vreg_writes = {}  # VectorRegDecl -> {index: value}
        self.bram_writes = {}  # BramDecl -> (addr, value)
        self.bram_reads = {}  # BramDecl -> set of addresses read
        self.emitted = None
        self.emit_count = 0


class UnitSimulator:
    """Runs one Fleet processing unit on one stream of tokens.

    The simulator is incremental: feed tokens with :meth:`process_token`
    and finish with :meth:`finish_stream`, or run a whole stream with
    :meth:`run`. Per-token virtual-cycle counts are recorded in
    :attr:`trace` — the full-system performance simulator replays them.

    ``engine`` selects how :meth:`run` executes a whole stream:
    ``"auto"`` (the default) uses the compile-to-Python fast engine from
    :mod:`repro.interp.compile` when it is provably equivalent for this
    program, falling back to the AST interpreter otherwise; ``"interp"``
    always walks the AST (the authoritative oracle). The incremental API
    (:meth:`process_token`) always interprets, since it performs the
    dynamic restriction checks one token at a time. After :meth:`run`,
    :attr:`last_run_engine` records which engine executed
    (``"compiled"`` or ``"interp"``).

    ``certificate`` accepts a
    :class:`~repro.lint.certificate.RestrictionCertificate`: when it is
    clean (``ok``) and its fingerprint matches this exact program, the
    dynamic restriction checks are switched off — the certificate *is*
    the proof they can never fire. A certificate for a different program
    is rejected with :class:`FleetSimulationError`; a failed certificate
    leaves the checks on. Address range checks and the loop-cycle limit
    are simulation (not restriction) errors and always stay on.
    """

    def __init__(self, program, *, check_restrictions=True,
                 max_vcycles_per_token=1_000_000, engine="auto",
                 certificate=None):
        if engine not in ("auto", "interp"):
            raise FleetSimulationError(
                f"unknown engine {engine!r} (expected 'auto' or 'interp')"
            )
        self.program = program
        self.certificate = certificate
        if certificate is not None:
            if not certificate.covers(program):
                raise FleetSimulationError(
                    f"certificate for {certificate.program_name!r} "
                    f"(fingerprint {certificate.fingerprint[:12]}…) does "
                    f"not cover program {program.name!r}"
                )
            if certificate.ok:
                check_restrictions = False
        self.check_restrictions = check_restrictions
        self.max_vcycles_per_token = max_vcycles_per_token
        self.engine = engine
        self.last_run_engine = None
        self.reset()

    def reset(self):
        """Restore all state elements to their initial values."""
        self._regs = {r: r.init for r in self.program.regs}
        self._vregs = {
            v: [v.init] * v.elements for v in self.program.vregs
        }
        self._brams = {b: [0] * b.elements for b in self.program.brams}
        self._outputs = []
        self._finished = False
        self._started = False
        self._has_read_cache = {}
        self.trace = StreamTrace()

    def _has_read(self, expr):
        cached = self._has_read_cache.get(id(expr))
        if cached is None:
            cached = ast.contains_bram_read(expr)
            self._has_read_cache[id(expr)] = cached
        return cached

    # -- public driving API ---------------------------------------------------
    def run(self, tokens):
        """Process an entire stream (then the cleanup cycle); return the
        complete output token list."""
        tokens = list(tokens)
        if self.engine == "auto" and not self._started:
            from .compile import fast_engine_for

            unit = fast_engine_for(self.program, self.check_restrictions)
            if unit is not None:
                return self._run_compiled(unit, tokens)
        self.last_run_engine = "interp"
        for token in tokens:
            self.process_token(token)
        self.finish_stream()
        return self.outputs

    def _run_compiled(self, unit, tokens):
        """Stream-level fast path: hand the whole stream to the compiled
        engine, mutating this simulator's state in place so peek hooks
        and the trace look exactly as if the interpreter had run."""
        self.last_run_engine = "compiled"
        self._started = True
        regs = [self._regs[r] for r in self.program.regs]
        # Vector-register / BRAM stores are the same list objects held in
        # the state dicts, so in-place mutation keeps them consistent.
        vregs = [self._vregs[v] for v in self.program.vregs]
        brams = [self._brams[b] for b in self.program.brams]
        vclist, emlist = [], []
        n = len(tokens)
        try:
            unit.run_stream(
                tokens, regs, vregs, brams, self._outputs,
                self.max_vcycles_per_token, vclist, emlist,
            )
        finally:
            for reg, value in zip(self.program.regs, regs):
                self._regs[reg] = value
            for i in range(len(vclist)):
                self.trace.record_token(vclist[i], emlist[i], i == n)
            if len(vclist) == n + 1:
                self._finished = True
        return self.outputs

    def process_token(self, token):
        """Feed one input token; returns the outputs it produced."""
        self._started = True
        if self._finished:
            raise FleetSimulationError(
                "stream already finished; reset() to reuse the simulator"
            )
        if not isinstance(token, int) or not fits(
            token, self.program.input_width
        ):
            raise FleetSimulationError(
                f"token {token!r} does not fit the declared "
                f"{self.program.input_width}-bit input width"
            )
        return self._process(token, stream_finished=False)

    def finish_stream(self):
        """Run the post-stream cleanup virtual cycles (``stream_finished``
        true, dummy input token); returns the outputs they produced."""
        self._started = True
        if self._finished:
            raise FleetSimulationError("stream already finished")
        outputs = self._process(0, stream_finished=True)
        self._finished = True
        return outputs

    @property
    def outputs(self):
        """All output tokens produced so far."""
        return list(self._outputs)

    def peek_reg(self, name):
        """Read a register's current value by name (testing hook)."""
        for reg, value in self._regs.items():
            if reg.name == name:
                return value
        raise FleetSimulationError(f"no register named {name!r}")

    def peek_bram(self, name):
        """Read a BRAM's current contents by name (testing hook)."""
        for bram, data in self._brams.items():
            if bram.name == name:
                return list(data)
        raise FleetSimulationError(f"no BRAM named {name!r}")

    # -- token processing -------------------------------------------------------
    def _process(self, token, stream_finished):
        produced = []
        vcycles = 0
        while True:
            cycle = self._virtual_cycle(token, stream_finished)
            vcycles += 1
            if cycle.emitted is not None:
                produced.append(cycle.emitted)
            if cycle.while_done:
                break
            if vcycles >= self.max_vcycles_per_token:
                raise FleetLoopLimitError(
                    f"while loop did not terminate within "
                    f"{self.max_vcycles_per_token} virtual cycles"
                )
        self._outputs.extend(produced)
        self.trace.record_token(vcycles, len(produced), stream_finished)
        return produced

    def _virtual_cycle(self, token, stream_finished):
        # Pass 1 (uncounted): is any while loop active this virtual cycle?
        self._eval_memo = {}
        while_done = not self._any_loop_active(
            self.program.body, token, stream_finished, guard=True
        )
        # Pass 2 (counted): execute the statements that fire this cycle.
        # A fresh memo keeps read-port accounting attached to this pass.
        self._eval_memo = {}
        actions = _Actions()
        self._exec_block(
            self.program.body,
            token,
            stream_finished,
            guard=True,
            guard_has_read=False,
            in_loop=False,
            while_done=while_done,
            actions=actions,
        )
        self._commit(actions)
        return VirtualCycle(actions.emitted, while_done)

    def _any_loop_active(self, body, token, stream_finished, guard):
        for stmt in body:
            if isinstance(stmt, ast.While):
                if guard and self._eval(stmt.cond, token, stream_finished):
                    return True
            elif isinstance(stmt, ast.If):
                taken = False
                for cond, arm_body in stmt.arms:
                    arm_guard = guard and not taken
                    if cond is not None:
                        value = (
                            bool(self._eval(cond, token, stream_finished))
                            if arm_guard
                            else False
                        )
                        if arm_guard and value:
                            taken = True
                        arm_guard = arm_guard and value
                    if arm_guard and self._any_loop_active(
                        arm_body, token, stream_finished, arm_guard
                    ):
                        return True
        return False

    def _exec_block(self, body, token, stream_finished, guard,
                    guard_has_read, in_loop, while_done, actions):
        for stmt in body:
            if isinstance(stmt, ast.If):
                taken = False
                for cond, arm_body in stmt.arms:
                    arm_guard = guard and not taken
                    arm_has_read = guard_has_read
                    if cond is not None:
                        if arm_guard:
                            value = bool(
                                self._eval(
                                    cond, token, stream_finished,
                                    actions=actions,
                                    guard_has_read=guard_has_read,
                                )
                            )
                            if value:
                                taken = True
                            arm_has_read = (
                                guard_has_read
                                or self._has_read(cond)
                            )
                            arm_guard = value
                        else:
                            arm_guard = False
                    if arm_guard:
                        self._exec_block(
                            arm_body, token, stream_finished, arm_guard,
                            arm_has_read, in_loop, while_done, actions,
                        )
            elif isinstance(stmt, ast.While):
                if guard:
                    active = bool(
                        self._eval(
                            stmt.cond, token, stream_finished,
                            actions=actions,
                            guard_has_read=guard_has_read,
                        )
                    )
                else:
                    active = False
                if active:
                    self._exec_block(
                        stmt.body, token, stream_finished, active,
                        guard_has_read or self._has_read(stmt.cond),
                        True, while_done, actions,
                    )
            else:
                # Leaf statements outside every while loop fire only on the
                # while_done virtual cycle (paper Section 3).
                if guard and (in_loop or while_done):
                    self._exec_leaf(
                        stmt, token, stream_finished, guard_has_read, actions
                    )

    def _exec_leaf(self, stmt, token, stream_finished, guard_has_read,
                   actions):
        ev = lambda e: self._eval(  # noqa: E731 - local shorthand
            e, token, stream_finished, actions=actions,
            guard_has_read=guard_has_read,
        )
        if isinstance(stmt, ast.RegAssign):
            value = truncate(ev(stmt.value), stmt.reg.width)
            if self.check_restrictions and stmt.reg in actions.reg_writes:
                raise FleetAssignConflictError(
                    f"register {stmt.reg.name!r} assigned twice in one "
                    "virtual cycle (assignment conditions must be mutually "
                    "exclusive)"
                )
            actions.reg_writes[stmt.reg] = value
        elif isinstance(stmt, ast.VectorRegAssign):
            index = self._vreg_index(stmt.vreg, ev(stmt.index))
            value = truncate(ev(stmt.value), stmt.vreg.width)
            writes = actions.vreg_writes.setdefault(stmt.vreg, {})
            if self.check_restrictions and index in writes:
                raise FleetAssignConflictError(
                    f"vector register {stmt.vreg.name!r}[{index}] assigned "
                    "twice in one virtual cycle"
                )
            writes[index] = value
        elif isinstance(stmt, ast.BramWrite):
            addr = self._bram_addr(stmt.bram, ev(stmt.addr))
            value = truncate(ev(stmt.value), stmt.bram.width)
            if self.check_restrictions and stmt.bram in actions.bram_writes:
                raise FleetWritePortError(
                    f"BRAM {stmt.bram.name!r} written twice in one virtual "
                    "cycle (one write port per virtual cycle)"
                )
            actions.bram_writes[stmt.bram] = (addr, value)
        elif isinstance(stmt, ast.Emit):
            value = truncate(ev(stmt.value), self.program.output_width)
            actions.emit_count += 1
            if self.check_restrictions and actions.emit_count > 1:
                raise FleetEmitConflictError(
                    "more than one emit in a single virtual cycle (output "
                    "tokens would have no defined order)"
                )
            actions.emitted = value
        else:
            raise FleetSimulationError(f"unexpected statement {stmt!r}")

    # -- expression evaluation -----------------------------------------------------
    def _eval(self, node, token, stream_finished, actions=None,
              guard_has_read=False, in_read_addr=False):
        if isinstance(node, ast.Const):
            return node.value
        if isinstance(node, ast.InputToken):
            return token
        if isinstance(node, ast.StreamFinished):
            return int(stream_finished)
        if isinstance(node, ast.RegRead):
            return self._regs[node.reg]
        # Composite nodes are memoized per virtual-cycle pass: expressions
        # form DAGs (wires, reused sub-expressions) and every distinct node
        # — like every piece of hardware — computes exactly once per cycle.
        memo = self._eval_memo
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        ev = lambda n, ira=in_read_addr: self._eval(  # noqa: E731
            n, token, stream_finished, actions=actions,
            guard_has_read=guard_has_read, in_read_addr=ira,
        )
        result = self._eval_composite(
            node, ev, token, stream_finished, actions,
            guard_has_read, in_read_addr,
        )
        memo[id(node)] = result
        return result

    def _eval_composite(self, node, ev, token, stream_finished, actions,
                        guard_has_read, in_read_addr):
        if isinstance(node, ast.WireRead):
            return ev(node.wire.value)
        if isinstance(node, ast.VectorRegRead):
            index = self._vreg_index(node.vreg, ev(node.index))
            return self._vregs[node.vreg][index]
        if isinstance(node, ast.BramRead):
            if self.check_restrictions and actions is not None:
                if in_read_addr:
                    raise FleetDependentReadError(
                        f"dependent BRAM read: address of a read of "
                        f"{node.bram.name!r} contains another BRAM read"
                    )
                if guard_has_read:
                    raise FleetDependentReadError(
                        f"dependent BRAM read of {node.bram.name!r}: gated "
                        "by a condition that reads a BRAM"
                    )
            addr = self._bram_addr(node.bram, ev(node.addr, True))
            if self.check_restrictions and actions is not None:
                addrs = actions.bram_reads.setdefault(node.bram, set())
                addrs.add(addr)
                if len(addrs) > 1:
                    raise FleetReadPortError(
                        f"BRAM {node.bram.name!r} read at two addresses "
                        f"{sorted(addrs)} in one virtual cycle (one read "
                        "port per virtual cycle)"
                    )
            return self._brams[node.bram][addr]
        if isinstance(node, ast.BinOp):
            return eval_binop(
                node.op, ev(node.lhs), ev(node.rhs),
                node.lhs.width, node.rhs.width,
            )
        if isinstance(node, ast.UnOp):
            return eval_unop(node.op, ev(node.operand), node.operand.width)
        if isinstance(node, ast.Mux):
            # Both arms are evaluated, as in hardware: a BRAM read in a mux
            # arm occupies the read port whether or not it is selected.
            cond = ev(node.cond)
            then = ev(node.then)
            els = ev(node.els)
            return then if cond else els
        if isinstance(node, ast.Slice):
            return (ev(node.operand) >> node.lo) & mask(node.width)
        if isinstance(node, ast.Concat):
            value = 0
            for part in node.parts:
                value = (value << part.width) | ev(part)
            return value
        raise FleetSimulationError(f"unknown expression node {node!r}")

    # -- helpers ---------------------------------------------------------------
    def _bram_addr(self, bram, raw):
        addr = truncate(raw, bram.addr_width)
        if addr >= bram.elements:
            raise FleetAddressError(
                f"BRAM {bram.name!r} address {addr} out of range "
                f"(elements={bram.elements})"
            )
        return addr

    def _vreg_index(self, vreg, raw):
        index = truncate(raw, vreg.index_width)
        if index >= vreg.elements:
            raise FleetAddressError(
                f"vector register {vreg.name!r} index {index} out of range "
                f"(elements={vreg.elements})"
            )
        return index

    def _commit(self, actions):
        for reg, value in actions.reg_writes.items():
            self._regs[reg] = value
        for vreg, writes in actions.vreg_writes.items():
            store = self._vregs[vreg]
            for index, value in writes.items():
                store[index] = value
        for bram, (addr, value) in actions.bram_writes.items():
            self._brams[bram][addr] = value
