"""Compile-to-Python fast engine for Fleet processing units.

The AST-walking interpreter in :mod:`repro.interp.simulator` pays Python
dispatch on every expression node of every virtual cycle. This module
lowers a checked :class:`~repro.lang.ast.UnitProgram` *once* into
specialized Python source — straight-line statements, no per-node
dispatch — compiles it with :func:`compile`/``exec``, and exposes the
result as a drop-in engine producing bit-identical outputs and the same
:class:`~repro.interp.trace.StreamTrace` per-token virtual-cycle counts.

Lowering strategy (mirrors the interpreter's two-pass virtual cycle):

* registers are unpacked into local variables for the whole stream and
  repacked at the end; vector registers and BRAMs stay Python lists,
  mutated in place;
* multiply-referenced expression nodes (wires, shared sub-expressions)
  are hoisted into per-cycle temporaries, evaluated once in dependency
  order — the same sharing the RTL simulator exploits, and what keeps
  deep compare-select chains (Smith-Waterman) from exploding;
* pass 1 computes ``while_done`` with early-exit guards over only the
  statements that contain a ``while``;
* pass 2 is the statement tree rendered as nested ``if``s; writes land
  in pending variables (sentinel-guarded) and commit at the end of the
  cycle, preserving the concurrent read-start-of-cycle semantics.

When is the fast engine sound?

* Every BRAM and vector register must have a power-of-two element count:
  then address truncation guarantees in-range accesses, every expression
  node is total, and unconditional hoisting plus short-circuit ``Mux``
  rendering are value-exact and error-free.
* With ``check_restrictions=False`` the interpreter's conflict semantics
  are last-write-wins in statement order, which the generated pending
  variables reproduce exactly, so any supported program qualifies.
* With ``check_restrictions=True`` the dynamic restriction checks are
  elided only when the program carries a clean
  :class:`~repro.lint.certificate.RestrictionCertificate`: the static
  prover (:func:`repro.lang.prover.prove_program`) shows the conflict
  checks can never fire, the same exclusivity argument covers
  vector-register assignments, and the lint pipeline reports no
  error-severity findings.

Set the environment variable ``FLEET_ENGINE=interp`` to disable the fast
path globally and force the authoritative interpreter oracle.
"""

import time

from ..envcfg import env_choice
from ..lang import ast
from ..lang.errors import (
    FleetLoopLimitError,
    FleetSimulationError,
)
from ..lang.types import mask
from ..telemetry.metrics import counter as _tm_counter
from ..telemetry.metrics import enabled as _tm_enabled
from ..telemetry.metrics import histogram as _tm_histogram
from .trace import StreamTrace

#: Live telemetry (repro.telemetry; zero-cost unless FLEET_METRICS).
_ENGINE_SELECTED = _tm_counter(
    "fleet_interp_engine_selected_total",
    "Simulator engines handed out by make_simulator()",
    ("engine",),
)
_COMPILES = _tm_counter(
    "fleet_interp_compiles_total",
    "Unit programs lowered by the compiled engine",
)
_COMPILE_SECONDS = _tm_histogram(
    "fleet_interp_compile_seconds",
    "Wall-clock seconds per compiled-engine lowering",
)
_CHECK_ELISIONS = _tm_counter(
    "fleet_lint_check_elisions_total",
    "Dynamic restriction-check elision decisions, by outcome",
    ("result",),
)
_SPECIALIZATIONS = _tm_counter(
    "fleet_interp_specializations_total",
    "Certified-specialization attempts, by outcome",
    ("result",),
)
_SPECIALIZED_ELISIONS = _tm_counter(
    "fleet_interp_specialized_elisions_total",
    "Guards deleted at codegen time by certified specialization, by kind",
    ("kind",),
)

#: Maximum nesting of a rendered (inline) expression; deeper chains are
#: hoisted into temporaries so generated source never stresses the parser.
DEPTH_CAP = 20

_LEAF_NODES = (ast.Const, ast.InputToken, ast.StreamFinished, ast.RegRead)

_SIMPLE_BINOPS = {
    "add": "+", "mul": "*", "and": "&", "or": "|", "xor": "^",
    "shl": "<<", "shr": ">>",
    "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
}


class _Unsupported(Exception):
    """Raised during lowering when a program can't take the fast path."""


class _NoWrite:
    __slots__ = ()

    def __repr__(self):
        return "<no-write>"


#: Sentinel distinguishing "no pending write this cycle" from any value.
_NW = _NoWrite()


class CompiledUnit:
    """A Fleet program lowered to specialized Python functions.

    ``run_token(token, sf, regs, vregs, brams, outputs, max_vc)`` runs one
    input token (or, with ``sf=1``, the post-stream cleanup) against the
    given state lists and returns ``(vcycles, emits)``.

    ``run_stream(tokens, regs, vregs, brams, outputs, max_vc, vclist,
    emlist)`` runs a whole stream plus the cleanup cycle, appending one
    per-token entry to ``vclist``/``emlist`` — the stream-level fast path
    with the token loop inside generated code.

    ``specialized`` is true when the lowering consumed a clean
    certificate's :class:`~repro.lint.facts.SpecializationFacts`;
    ``elisions`` then counts what the facts let codegen delete
    (``None`` on guarded units).
    """

    __slots__ = ("program", "run_token", "run_stream", "source",
                 "specialized", "elisions")

    def __init__(self, program, run_token, run_stream, source,
                 specialized=False, elisions=None):
        self.program = program
        self.run_token = run_token
        self.run_stream = run_stream
        self.source = source
        self.specialized = specialized
        self.elisions = elisions


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


class _Codegen:
    """Lower one program to Python source.

    ``facts`` (a clean certificate's
    :class:`~repro.lint.facts.SpecializationFacts`) switches on the
    *certified specialization* path: guards the interval domain proves
    redundant are deleted from the generated source instead of rendered —
    width-truncation masks whose operand already fits, BRAM/vreg address
    truncations with proven-in-range addresses, wrap masks on provably
    non-borrowing subtractions, slice masks on operands proven inside the
    sliced window, proven-constant expressions folded to literals, direct
    (commit-free) emits under the certificate's emit-exclusivity proof,
    and — for loop-free programs — the whole virtual-cycle machinery
    collapsed to a straight-line cycle. Every elision is counted in
    ``self.elisions`` so specialization is observable. With
    ``facts=None`` this is byte-for-byte the historical guarded codegen.
    """

    def __init__(self, program, facts=None):
        self.program = program
        self.facts = facts
        self._fact_key_memo = {}
        if facts is not None:
            from ..lint.facts import expr_fact_key

            self._expr_fact_key = expr_fact_key
        self.elisions = {
            "value_masks": 0, "addr_masks": 0, "sub_masks": 0,
            "slice_masks": 0, "const_folds": 0, "dead_arms": 0,
            "direct_emits": 0, "uncond_commits": 0, "straightline": 0,
            "reg_sentinels": 0,
        }
        self.reg_name = {r: f"_r{i}" for i, r in enumerate(program.regs)}
        self.vreg_name = {v: f"_v{i}" for i, v in enumerate(program.vregs)}
        self.bram_name = {b: f"_b{i}" for i, b in enumerate(program.brams)}
        self._while_cache = {}
        # Per-render state (see _begin_render): the specialized path
        # renders the cycle several times — once generic for run_token,
        # once per stream phase (token sf=0, cleanup sf=1) — and each
        # render has its own temporaries, live statement structure, and
        # written-state sets.
        self._phase = None
        self._temp = {}
        self._begin_render(None)

    def _begin_render(self, phase):
        """Reset per-render state and recompute the live statement
        structure for ``phase`` (``None`` = generic, ``0`` = stream
        token phase with ``sf`` folded to 0, ``1`` = cleanup phase with
        ``sf`` folded to 1 and the input token folded to 0)."""
        self._phase = phase
        self._temp = {}  # id(node) -> temp variable name
        self._live_arms_cache = {}
        # Which state elements are ever written *in live statements*,
        # and how many syntactic assignment sites each vector register
        # has (one site can commit through a cheap tuple; several need
        # an append list).
        self.assigned_regs = []
        self.vreg_sites = {}
        self.written_brams = []
        self.has_emit = False
        for stmt in self._live_leaves(self.program.body):
            if isinstance(stmt, ast.RegAssign):
                if stmt.reg not in self.assigned_regs:
                    self.assigned_regs.append(stmt.reg)
            elif isinstance(stmt, ast.VectorRegAssign):
                self.vreg_sites[stmt.vreg] = (
                    self.vreg_sites.get(stmt.vreg, 0) + 1
                )
            elif isinstance(stmt, ast.BramWrite):
                if stmt.bram not in self.written_brams:
                    self.written_brams.append(stmt.bram)
            elif isinstance(stmt, ast.Emit):
                self.has_emit = True
        # A render with no live while finishes every virtual cycle on
        # the first pass (`_wd` is vacuously true), so the cycle loop,
        # the `_wd` flag, and the loop-limit check all collapse.
        self._straightline = self.facts is not None and not \
            self._has_live_while(self.program.body)
        # A clean certificate proves emit statements mutually exclusive
        # (at most one fires per cycle), and emitted values are never
        # read back within the cycle — so emits can append directly
        # instead of staging through the `_em` pending slot.
        self.direct_emit = self.facts is not None and self.has_emit
        # State whose pending write provably lands every cycle (an
        # unconditional top-level leaf in a straight-line render):
        # commits drop the no-write sentinel test.
        self._uncond_vregs = set()
        self._uncond_brams = set()
        # Snapshot-read scheme (specialized renders only): registers
        # that are both read and assigned in live code snapshot their
        # start-of-cycle value into `_o{i}` once, every read renders as
        # the snapshot, and writes land directly in `_r{i}` at their
        # site — no pending variable, no end-of-cycle commit. Registers
        # read but never written (or written but never read) need no
        # snapshot at all.
        self._snap_regs = set()
        self._reg_read_name = self.reg_name
        self._region_temps = {}
        if self.facts is not None:
            assigned = set(self.assigned_regs)
            seen = set()
            stack = [root for root, _region in self._collect_roots()]
            while stack:
                node = stack.pop()
                if id(node) in seen:
                    continue
                seen.add(id(node))
                if isinstance(node, ast.RegRead) and node.reg in assigned:
                    self._snap_regs.add(node.reg)
                stack.extend(node.children())
            self._reg_read_name = {
                reg: (f"_o{i}" if reg in self._snap_regs else f"_r{i}")
                for i, reg in enumerate(self.program.regs)
            }

    # -- structure helpers ---------------------------------------------------
    def _contains_while(self, stmt):
        cached = self._while_cache.get(id(stmt))
        if cached is None:
            cached = any(
                isinstance(s, ast.While) for s in ast.walk_statements([stmt])
            )
            self._while_cache[id(stmt)] = cached
        return cached

    # -- live structure under specialization --------------------------------
    def _phase_const(self, node):
        """Compile-time value of ``node`` in a phase-specialized render
        (``sf`` and, in the cleanup phase, the input token are
        literals), or ``None``. Mirrors the *rendered* semantics —
        untruncated adds/shifts, wrap-masked sub — so a folded branch
        decision matches exactly what the emitted code would compute."""
        if isinstance(node, ast.Const):
            return node.value
        if self._phase is None:
            return None
        if isinstance(node, ast.StreamFinished):
            return self._phase
        if isinstance(node, ast.InputToken):
            return 0 if self._phase == 1 else None
        if isinstance(node, ast.WireRead):
            return self._phase_const(node.wire.value)
        if isinstance(node, ast.UnOp):
            a = self._phase_const(node.operand)
            if a is None:
                return None
            w = node.operand.width
            if node.op == "not":
                return (~a) & mask(w)
            if node.op == "lnot":
                return 1 if a == 0 else 0
            if node.op == "orr":
                return 1 if a != 0 else 0
            if node.op == "andr":
                return 1 if a == mask(w) else 0
            if node.op == "xorr":
                return bin(a).count("1") & 1
            return None
        if isinstance(node, ast.BinOp):
            a = self._phase_const(node.lhs)
            b = self._phase_const(node.rhs)
            # Zero absorption: operands are total and pure under the
            # power-of-two gate, so `x & 0` / `x * 0` fold without
            # knowing x.
            if node.op in ("and", "mul") and (a == 0 or b == 0):
                return 0
            if a is None or b is None:
                return None
            if node.op == "add":
                return a + b
            if node.op == "sub":
                return (a - b) & mask(node.width)
            if node.op == "mul":
                return a * b
            if node.op == "and":
                return a & b
            if node.op == "or":
                return a | b
            if node.op == "xor":
                return a ^ b
            if node.op == "shl":
                return a << b
            if node.op == "shr":
                return a >> b
            if node.op == "eq":
                return 1 if a == b else 0
            if node.op == "ne":
                return 1 if a != b else 0
            if node.op == "lt":
                return 1 if a < b else 0
            if node.op == "le":
                return 1 if a <= b else 0
            if node.op == "gt":
                return 1 if a > b else 0
            if node.op == "ge":
                return 1 if a >= b else 0
            return None
        if isinstance(node, ast.Mux):
            c = self._phase_const(node.cond)
            if c is None:
                return None
            return self._phase_const(node.then if c else node.els)
        if isinstance(node, ast.Slice):
            a = self._phase_const(node.operand)
            if a is None:
                return None
            return (a >> node.lo) & mask(node.width)
        if isinstance(node, ast.Concat):
            out = 0
            for part in node.parts:
                p = self._phase_const(part)
                if p is None:
                    return None
                out = (out << part.width) | p
            return out
        return None

    def _cond_const(self, node):
        """Compile-time truth value of a branch condition in the current
        render — certificate-proven constants plus phase literals — or
        ``None`` when the branch stays dynamic."""
        if self.facts is None:
            return None
        value = self.facts.constant(self._key(node))
        if value is not None:
            return value
        return self._phase_const(node)

    def _live_arms(self, stmt):
        """``stmt.arms`` as ``(cond, body, source_index)`` triples with
        compile-time-dead arms deleted: a proven-false arm vanishes, a
        proven-true arm becomes the final ``else`` (later arms are
        unreachable). Source indices are preserved so per-site fact
        locations keep lining up with the lint engine's statement paths.
        Identity on the guarded path."""
        if self.facts is None:
            return [(cond, arm_body, j)
                    for j, (cond, arm_body) in enumerate(stmt.arms)]
        cached = self._live_arms_cache.get(id(stmt))
        if cached is not None:
            return cached
        arms = []
        for j, (cond, arm_body) in enumerate(stmt.arms):
            if cond is None:
                arms.append((None, arm_body, j))
                break
            value = self._cond_const(cond)
            if value is None:
                arms.append((cond, arm_body, j))
            elif value:
                arms.append((None, arm_body, j))
                self.elisions["dead_arms"] += \
                    len(stmt.arms) - len(arms)
                break
            else:
                self.elisions["dead_arms"] += 1
        self._live_arms_cache[id(stmt)] = arms
        return arms

    def _live_while(self, stmt):
        """Whether a ``while`` can ever be entered in this render."""
        return self._cond_const(stmt.cond) != 0

    def _contains_live_while(self, stmt):
        """:meth:`_contains_while`, but blind to whiles that can never
        be entered in this render."""
        if self.facts is None:
            return self._contains_while(stmt)
        return self._has_live_while([stmt])

    def _has_live_while(self, body):
        for stmt in body:
            if isinstance(stmt, ast.While):
                if self._live_while(stmt):
                    return True
            elif isinstance(stmt, ast.If):
                for _cond, arm_body, _j in self._live_arms(stmt):
                    if self._has_live_while(arm_body):
                        return True
        return False

    def _live_leaves(self, body):
        """Leaf statements reachable in this render, in source order."""
        out = []
        for stmt in body:
            if isinstance(stmt, ast.While):
                if self._live_while(stmt):
                    out.extend(self._live_leaves(stmt.body))
            elif isinstance(stmt, ast.If):
                for _cond, arm_body, _j in self._live_arms(stmt):
                    out.extend(self._live_leaves(arm_body))
            else:
                out.append(stmt)
        return out

    # -- specialization fact queries ----------------------------------------
    def _key(self, node):
        return self._expr_fact_key(node, self._fact_key_memo)

    def _elide(self, kind):
        self.elisions[kind] += 1

    def _fits(self, node, width):
        """Whether ``node``'s value provably fits ``width`` bits at every
        occurrence (so its truncation mask may be deleted)."""
        return self.facts is not None and self.facts.fits(
            self._key(node), width
        )

    def _site_fits(self, node, width, location, role):
        """:meth:`_fits`, additionally trying the guard-refined bound at
        the leaf statement ``location`` — sound there because each leaf
        renders exactly once."""
        if self.facts is None:
            return False
        return self.facts.site_fits(location, role, width) or \
            self.facts.fits(self._key(node), width)

    # -- expression rendering ------------------------------------------------
    def _render(self, node):
        name = self._temp.get(id(node))
        if name is not None:
            return name
        return self._render_body(node)

    def _render_body(self, node):
        if isinstance(node, ast.Const):
            return repr(node.value)
        if self.facts is not None and not isinstance(node, _LEAF_NODES):
            folded = self.facts.constant(self._key(node))
            if folded is not None:
                self._elide("const_folds")
                return repr(folded)
        if isinstance(node, ast.InputToken):
            return "0" if self._phase == 1 else "token"
        if isinstance(node, ast.StreamFinished):
            return "sf" if self._phase is None else repr(self._phase)
        if isinstance(node, ast.RegRead):
            return self._reg_read_name[node.reg]
        if isinstance(node, ast.WireRead):
            return self._render(node.wire.value)
        if isinstance(node, ast.VectorRegRead):
            index = self._trunc(node.index, node.vreg.index_width,
                                kind="addr_masks")
            return f"{self.vreg_name[node.vreg]}[{index}]"
        if isinstance(node, ast.BramRead):
            addr = self._trunc(node.addr, node.bram.addr_width,
                               kind="addr_masks")
            return f"{self.bram_name[node.bram]}[{addr}]"
        if isinstance(node, ast.BinOp):
            lhs, rhs = self._render(node.lhs), self._render(node.rhs)
            op = _SIMPLE_BINOPS.get(node.op)
            if op is not None:
                return f"({lhs} {op} {rhs})"
            if node.op == "sub":
                if self.facts is not None and self.facts.sub_exact(
                    self._key(node.lhs), self._key(node.rhs)
                ):
                    # Proven borrow-free: the wrap mask is a no-op.
                    self._elide("sub_masks")
                    return f"({lhs} - {rhs})"
                return f"(({lhs} - {rhs}) & {hex(mask(node.width))})"
            raise _Unsupported(node)
        if isinstance(node, ast.UnOp):
            a = self._render(node.operand)
            w = node.operand.width
            if node.op == "not":
                return f"((~{a}) & {hex(mask(w))})"
            if node.op == "lnot":
                return f"({a} == 0)"
            if node.op == "orr":
                return f"({a} != 0)"
            if node.op == "andr":
                return f"({a} == {hex(mask(w))})"
            if node.op == "xorr":
                return f'(bin({a}).count("1") & 1)'
            raise _Unsupported(node)
        if isinstance(node, ast.Mux):
            # Value-exact short circuit: both arms are pure under the
            # power-of-two gate, so skipping the untaken arm is safe.
            cond = self._render(node.cond)
            then = self._render(node.then)
            els = self._render(node.els)
            return f"(({then}) if {cond} else ({els}))"
        if isinstance(node, ast.Slice):
            a = self._render(node.operand)
            if node.lo == 0 and node.width == node.operand.width:
                return a
            shifted = a if node.lo == 0 else f"({a} >> {node.lo})"
            if self._fits(node.operand, node.hi + 1):
                # Operand proven inside the sliced window: nothing above
                # bit `hi` survives the shift, the mask is a no-op.
                self._elide("slice_masks")
                return shifted
            return f"({shifted} & {hex(mask(node.width))})"
        if isinstance(node, ast.Concat):
            out = self._render(node.parts[0])
            for part in node.parts[1:]:
                out = f"(({out} << {part.width}) | {self._render(part)})"
            return out
        raise _Unsupported(node)

    def _trunc(self, node, width, kind="value_masks"):
        rendered = self._render(node)
        if node.width > width:
            if self._fits(node, width):
                self._elide(kind)
                return rendered
            return f"({rendered} & {hex(mask(width))})"
        return rendered

    def _trunc_at(self, node, width, location, role, kind):
        """:meth:`_trunc` for a leaf-statement operand, also consulting
        the guard-refined per-site bound at ``location``."""
        rendered = self._render(node)
        if node.width > width:
            if self._site_fits(node, width, location, role):
                self._elide(kind)
                return rendered
            return f"({rendered} & {hex(mask(width))})"
        return rendered

    # -- shared-node hoisting ------------------------------------------------
    def _collect_roots(self):
        """Expression roots in the order the generated code references
        them, each tagged with its *branch region* — the chain of
        ``(id(If-or-While), arm-index)`` steps pass 2 descends through
        to reach the reference. Only live statements contribute — dead
        arms and never-entered whiles are not rendered, so their
        expressions must not be hoisted.

        Regions drive temp sinking (specialized renders): within one
        virtual cycle every statement renders as pure branches, never a
        Python loop, so a temporary may be computed at the top of the
        deepest region dominating all its references instead of at cycle
        top. Pass-1 references and branch *conditions* live in the
        enclosing region (an ``elif`` chain cannot hold statements
        between arms)."""
        roots = []

        def pass1(body):
            for stmt in body:
                if isinstance(stmt, ast.While):
                    if self._live_while(stmt):
                        roots.append((stmt.cond, ()))
                elif isinstance(stmt, ast.If) and \
                        self._contains_live_while(stmt):
                    for cond, arm_body, _j in self._live_arms(stmt):
                        if cond is not None:
                            roots.append((cond, ()))
                        pass1(arm_body)

        def pass2(body, region):
            for stmt in body:
                if isinstance(stmt, ast.If):
                    for cond, arm_body, j in self._live_arms(stmt):
                        if cond is not None:
                            roots.append((cond, region))
                        pass2(arm_body, region + ((id(stmt), j),))
                elif isinstance(stmt, ast.While):
                    if self._live_while(stmt):
                        roots.append((stmt.cond, region))
                        pass2(stmt.body, region + ((id(stmt), -1),))
                else:
                    for root in ast.statement_exprs(stmt):
                        roots.append((root, region))

        if not self._straightline:
            pass1(self.program.body)
        pass2(self.program.body, ())
        return roots

    def _hoist_lines(self, pairs):
        """Choose and emit per-cycle temporaries: any node referenced more
        than once (a DAG share) and any node whose rendered nesting would
        exceed :data:`DEPTH_CAP`.

        Returns the cycle-top temp lines. In specialized renders, temps
        whose every reference lives inside one branch region *sink* to
        that region (stored in ``self._region_temps`` for
        :meth:`_emit_pass2` to emit at region entry), so e.g. hash
        chains used only on the ingest arm are not recomputed on every
        flush cycle. A child temp's region is forced to dominate every
        parent's region, so definitions always precede uses."""
        counts = {}
        region_of = {}
        for root, region in pairs:
            if self.facts is None:
                region = ()
            stack = [root]
            while stack:
                node = stack.pop()
                seen = counts.get(id(node), 0)
                counts[id(node)] = seen + 1
                if id(node) in region_of:
                    old = region_of[id(node)]
                    if old != region:
                        # Longest common prefix: deepest common region.
                        lca = []
                        for a, b in zip(old, region):
                            if a != b:
                                break
                            lca.append(a)
                        region_of[id(node)] = tuple(lca)
                else:
                    region_of[id(node)] = region
                if seen == 0:
                    stack.extend(node.children())
        # Deterministic postorder over the DAG (children before parents).
        post = []
        visited = set()
        for root, _region in pairs:
            stack = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    post.append(node)
                    continue
                if id(node) in visited:
                    continue
                visited.add(id(node))
                stack.append((node, True))
                for child in reversed(node.children()):
                    stack.append((child, False))
        # The counting walk expands each node's children once, so a
        # shared node reached again from a deeper root does not push its
        # LCA down to its own children. Propagate parents-first (reverse
        # postorder): every child's region must dominate (prefix) each
        # of its parents' regions.
        for node in reversed(post):
            parent_region = region_of[id(node)]
            for child in node.children():
                old = region_of[id(child)]
                if old != parent_region:
                    lca = []
                    for a, b in zip(old, parent_region):
                        if a != b:
                            break
                        lca.append(a)
                    region_of[id(child)] = tuple(lca)
        lines = []
        self._region_temps = {}
        depth = {}
        for node in post:
            child_depths = [
                1 if id(c) in self._temp else depth[id(c)]
                for c in node.children()
            ]
            d = 1 + max(child_depths, default=0)
            if self.facts is not None and not isinstance(
                node, _LEAF_NODES
            ) and self.facts.constant(self._key(node)) is not None:
                # Proven constant: renders as a literal everywhere, so
                # sharing/depth never justify a temporary.
                depth[id(node)] = 1
                continue
            if not isinstance(node, _LEAF_NODES) and (
                counts[id(node)] >= 2 or d > DEPTH_CAP
            ):
                body = self._render_body(node)
                name = f"_t{len(self._temp)}"
                self._temp[id(node)] = name
                region = region_of[id(node)]
                if region:
                    self._region_temps.setdefault(region, []).append(
                        f"{name} = {body}"
                    )
                else:
                    lines.append(f"{name} = {body}")
                d = 1
            depth[id(node)] = d
        return lines

    # -- statement rendering ------------------------------------------------
    def _emit_pass1(self, lines, body, indent):
        """Compute ``_wd`` (while_done) exactly as the interpreter's
        ``_any_loop_active``: evaluate only statements that can contain an
        active while, short-circuiting once one is found."""
        wrote = False
        for stmt in body:
            if isinstance(stmt, ast.While):
                if not self._live_while(stmt):
                    continue
                cond = self._render(stmt.cond)
                lines.append("    " * indent + f"if _wd and {cond}:")
                lines.append("    " * (indent + 1) + "_wd = False")
                wrote = True
            elif isinstance(stmt, ast.If) and \
                    self._contains_live_while(stmt):
                lines.append("    " * indent + "if _wd:")
                first = True
                for cond, arm_body, _j in self._live_arms(stmt):
                    if cond is not None:
                        kw = "if" if first else "elif"
                        rendered = self._render(cond)
                        lines.append(
                            "    " * (indent + 1) + f"{kw} {rendered}:"
                        )
                    else:
                        lines.append(
                            "    " * (indent + 1)
                            + ("if 1:" if first else "else:")
                        )
                    first = False
                    if not self._emit_pass1(lines, arm_body, indent + 2):
                        lines.append("    " * (indent + 2) + "pass")
                wrote = True
        return wrote

    def _leaf_code(self, stmt, location):
        # Leaf operands get the guard-refined per-site bounds recorded by
        # the lint engine at this exact statement location (sound: each
        # leaf renders exactly once), falling back to global bounds.
        if isinstance(stmt, ast.RegAssign):
            index = self.program.regs.index(stmt.reg)
            value = self._trunc_at(stmt.value, stmt.reg.width,
                                   location, "value", "value_masks")
            if self.facts is not None:
                # Snapshot-read scheme: reads render as the `_o{i}`
                # snapshot, so the write can land in place — no pending
                # slot, no end-of-cycle commit.
                self._elide("reg_sentinels")
                return f"_r{index} = {value}"
            return f"_pr{index} = {value}"
        if isinstance(stmt, ast.VectorRegAssign):
            index = self.program.vregs.index(stmt.vreg)
            idx = self._trunc_at(stmt.index, stmt.vreg.index_width,
                                 location, "addr", "addr_masks")
            value = self._trunc_at(stmt.value, stmt.vreg.width,
                                   location, "value", "value_masks")
            if self.vreg_sites[stmt.vreg] == 1:
                return f"_pv{index} = ({idx}, {value})"
            return f"_pv{index}.append(({idx}, {value}))"
        if isinstance(stmt, ast.BramWrite):
            index = self.program.brams.index(stmt.bram)
            addr = self._trunc_at(stmt.addr, stmt.bram.addr_width,
                                  location, "addr", "addr_masks")
            value = self._trunc_at(stmt.value, stmt.bram.width,
                                   location, "value", "value_masks")
            return f"_pb{index} = ({addr}, {value})"
        if isinstance(stmt, ast.Emit):
            value = self._trunc_at(stmt.value, self.program.output_width,
                                   location, "value", "value_masks")
            if self.direct_emit:
                # Certified emit exclusivity: at most one emit statement
                # fires per cycle, so the pending `_em` staging slot (and
                # its end-of-cycle commit test) is unnecessary.
                self._elide("direct_emits")
                return f"outputs.append({value}); emits += 1"
            return f"_em = {value}"
        raise _Unsupported(stmt)

    def _emit_pass2(self, lines, body, indent, in_loop, path="body",
                    region=()):
        wrote = False
        pending = []
        # Temps sunk to this branch region are computed at region entry,
        # before any condition or leaf that references them (pure and
        # total by the hoisting gate, so evaluation is unconditional
        # within the region).
        for code in self._region_temps.get(region, ()) if region else ():
            lines.append("    " * indent + code)
            wrote = True

        def flush():
            nonlocal wrote
            if not pending:
                return
            if in_loop or self._straightline:
                # In a loop body — or in a straight-line specialized
                # cycle, where `_wd` is vacuously true — leaves fire
                # unconditionally.
                for code in pending:
                    lines.append("    " * indent + code)
            else:
                # Leaf statements outside every while fire only on the
                # while_done virtual cycle (paper Section 3).
                lines.append("    " * indent + "if _wd:")
                for code in pending:
                    lines.append("    " * (indent + 1) + code)
            pending.clear()
            wrote = True

        for i, stmt in enumerate(body):
            loc = f"{path}[{i}]"
            if isinstance(stmt, ast.If):
                live = self._live_arms(stmt)
                if not live:
                    continue
                flush()
                first = True
                for cond, arm_body, j in live:
                    if cond is not None:
                        kw = "if" if first else "elif"
                        rendered = self._render(cond)
                        lines.append("    " * indent + f"{kw} {rendered}:")
                    else:
                        lines.append(
                            "    " * indent + ("if 1:" if first else "else:")
                        )
                    first = False
                    if not self._emit_pass2(
                        lines, arm_body, indent + 1, in_loop,
                        f"{loc}.arm[{j}].body",
                        region + ((id(stmt), j),),
                    ):
                        lines.append("    " * (indent + 1) + "pass")
                wrote = True
            elif isinstance(stmt, ast.While):
                if not self._live_while(stmt):
                    continue
                flush()
                cond = self._render(stmt.cond)
                lines.append("    " * indent + f"if {cond}:")
                if not self._emit_pass2(
                    lines, stmt.body, indent + 1, True, f"{loc}.body",
                    region + ((id(stmt), -1),),
                ):
                    lines.append("    " * (indent + 1) + "pass")
                wrote = True
            else:
                if indent == 0 and self._straightline and not in_loop:
                    self._mark_unconditional(stmt)
                pending.append(self._leaf_code(stmt, loc))
        flush()
        return wrote

    def _mark_unconditional(self, stmt):
        """Record that this leaf's pending write provably lands every
        cycle (top-level statement in a straight-line render), so the
        commit can skip the no-write sentinel test. Sound regardless of
        other, conditional sites: the unconditional site (re)assigns the
        pending variable every cycle, so it is always freshly defined,
        and statement-order last-write-wins is preserved by the pending
        variable itself. Registers need no marking: specialized renders
        write them in place (snapshot-read scheme)."""
        if isinstance(stmt, ast.VectorRegAssign):
            if self.vreg_sites[stmt.vreg] == 1:
                self._uncond_vregs.add(stmt.vreg)
        elif isinstance(stmt, ast.BramWrite):
            self._uncond_brams.add(stmt.bram)

    # -- assembly -----------------------------------------------------------
    def _cycle_lines(self):
        """One virtual cycle, as source lines at relative indent 0."""
        roots = self._collect_roots()
        lines = []
        if self.facts is not None:
            # Snapshot-read scheme: capture the start-of-cycle value of
            # every read+written register once; all reads below render
            # as `_o{i}`, so writes can land directly in `_r{i}`.
            for i, reg in enumerate(self.program.regs):
                if reg in self._snap_regs:
                    lines.append(f"_o{i} = _r{i}")
        lines.extend(self._hoist_lines(roots))
        if not self._straightline:
            lines.append("_wd = True")
            self._emit_pass1(lines, self.program.body, 0)
        # Pass 2 is rendered before the pending-variable inits are
        # chosen: rendering discovers which pending writes provably land
        # every cycle (their init and commit test are dropped).
        body_lines = []
        self._emit_pass2(body_lines, self.program.body, 0, False)
        for i, reg in enumerate(self.program.regs):
            # Specialized renders write registers in place (snapshot-read
            # scheme) — no pending slot to initialize.
            if self.facts is None and reg in self.assigned_regs:
                lines.append(f"_pr{i} = _NW")
        for i, vreg in enumerate(self.program.vregs):
            sites = self.vreg_sites.get(vreg, 0)
            if sites == 1 and vreg not in self._uncond_vregs:
                lines.append(f"_pv{i} = _NW")
            elif sites > 1:
                lines.append(f"_pv{i} = []")
        for i, bram in enumerate(self.program.brams):
            if bram in self.written_brams and \
                    bram not in self._uncond_brams:
                lines.append(f"_pb{i} = _NW")
        if self.has_emit and not self.direct_emit:
            lines.append("_em = _NW")
        lines.extend(body_lines)
        # Commit: all writes land together at the end of the cycle.
        for i, reg in enumerate(self.program.regs):
            if self.facts is None and reg in self.assigned_regs:
                lines.append(f"if _pr{i} is not _NW: _r{i} = _pr{i}")
        for i, vreg in enumerate(self.program.vregs):
            sites = self.vreg_sites.get(vreg, 0)
            if vreg in self._uncond_vregs:
                self._elide("uncond_commits")
                lines.append(f"_v{i}[_pv{i}[0]] = _pv{i}[1]")
            elif sites == 1:
                lines.append(
                    f"if _pv{i} is not _NW: _v{i}[_pv{i}[0]] = _pv{i}[1]"
                )
            elif sites > 1:
                lines.append(f"for _wi, _wx in _pv{i}: _v{i}[_wi] = _wx")
        for i, bram in enumerate(self.program.brams):
            if bram in self._uncond_brams:
                self._elide("uncond_commits")
                lines.append(f"_b{i}[_pb{i}[0]] = _pb{i}[1]")
            elif bram in self.written_brams:
                lines.append(
                    f"if _pb{i} is not _NW: _b{i}[_pb{i}[0]] = _pb{i}[1]"
                )
        if self.has_emit and not self.direct_emit:
            lines.append("if _em is not _NW:")
            lines.append("    outputs.append(_em)")
            lines.append("    emits += 1")
        return lines

    def _state_unpack(self, lines, indent):
        pad = "    " * indent
        for i in range(len(self.program.regs)):
            lines.append(f"{pad}_r{i} = regs[{i}]")
        for i in range(len(self.program.vregs)):
            lines.append(f"{pad}_v{i} = vregs[{i}]")
        for i in range(len(self.program.brams)):
            lines.append(f"{pad}_b{i} = brams[{i}]")

    def _state_repack(self, lines, indent):
        pad = "    " * indent
        repacked = False
        for i in range(len(self.program.regs)):
            lines.append(f"{pad}regs[{i}] = _r{i}")
            repacked = True
        if not repacked:
            lines.append(f"{pad}pass")

    def _cycle_at(self, lines, cycle, straightline, indent):
        """Emit one virtual-cycle execution (the cycle loop, or the
        collapsed straight-line form leaving ``vc`` implicit = 1) at
        ``indent``."""
        pad = "    " * indent
        vc_error = (
            '"while loop did not terminate within '
            '%d virtual cycles" % (max_vc,)'
        )
        if straightline:
            # A fully-dead body (every statement elided) still needs a
            # syntactically valid block under the caller's `try:`.
            if cycle:
                lines.extend(pad + line for line in cycle)
            else:
                lines.append(pad + "pass")
        elif self.facts is not None:
            # Specialized loop: `range` drives the cycle counter at C
            # speed and the loop-limit check moves into the for/else —
            # same cycle count and same raise point as the guarded form
            # (`_vcb` pre-clamps max_vc <= 0 to "one cycle, then raise",
            # matching the guarded while loop's check-after-cycle order).
            lines.append(pad + "for vc in range(1, _vcb):")
            lines.extend(pad + "    " + line for line in cycle)
            lines.append(pad + "    if _wd:")
            lines.append(pad + "        break")
            lines.append(pad + "else:")
            lines.append(pad + f"    raise _LoopError({vc_error})")
        else:
            lines.append(pad + "vc = 0")
            lines.append(pad + "while True:")
            lines.append(pad + "    vc += 1")
            lines.extend(pad + "    " + line for line in cycle)
            lines.append(pad + "    if _wd:")
            lines.append(pad + "        break")
            lines.append(pad + "    if vc >= max_vc:")
            lines.append(pad + f"        raise _LoopError({vc_error})")

    def _render_cycle(self, phase):
        """Begin a fresh render for ``phase`` and produce its cycle
        lines; returns ``(cycle_lines, straightline)``."""
        self._begin_render(phase)
        if self._straightline:
            self._elide("straightline")
        return self._cycle_lines(), self._straightline

    def generate(self):
        program = self.program
        in_mask = mask(program.input_width)
        token_error = (
            f'"token %r does not fit the declared '
            f'{program.input_width}-bit input width" % (token,)'
        )
        validate = (
            f"if not (isinstance(token, int) and 0 <= token <= {in_mask}):"
        )

        # run_token: one generic render (sf is a runtime argument) —
        # the incremental process_token/finish_stream entry point.
        cycle, straightline = self._render_cycle(None)
        lines = []
        lines.append(
            "def run_token(token, sf, regs, vregs, brams, outputs, max_vc):"
        )
        self._state_unpack(lines, 1)
        lines.append("    emits = 0")
        if straightline:
            # One cycle per token by construction (no live whiles): the
            # cycle loop, `_wd`, and the loop-limit check are deleted.
            lines.append("    vc = 1")
            lines.append("    try:")
            self._cycle_at(lines, cycle, True, 2)
        else:
            if self.facts is not None:
                lines.append("    _vcb = max_vc + 1 if max_vc > 0 else 2")
            lines.append("    try:")
            self._cycle_at(lines, cycle, False, 2)
        lines.append("    finally:")
        self._state_repack(lines, 2)
        lines.append("    return vc, emits")
        lines.append("")
        lines.append(
            "def run_stream(tokens, regs, vregs, brams, outputs, max_vc, "
            "vclist, emlist):"
        )
        self._state_unpack(lines, 1)
        if self.facts is None:
            # Guarded form: one generic cycle body, token/cleanup phases
            # multiplexed through `sf` at runtime.
            lines.append("    _n = len(tokens)")
            lines.append("    try:")
            lines.append("        for _ti in range(_n + 1):")
            lines.append("            if _ti < _n:")
            lines.append("                token = tokens[_ti]")
            lines.append("                sf = 0")
            lines.append("                " + validate)
            lines.append(
                f"                    raise _SimError({token_error})"
            )
            lines.append("            else:")
            lines.append("                token = 0")
            lines.append("                sf = 1")
            lines.append("            emits = 0")
            self._cycle_at(lines, cycle, False, 3)
            lines.append("            vclist.append(vc)")
            lines.append("            emlist.append(emits)")
            lines.append("    finally:")
            self._state_repack(lines, 2)
            return "\n".join(lines) + "\n"
        # Specialized form: the stream loop is phase-split. The token
        # phase renders the cycle with `sf` folded to 0 and the cleanup
        # phase with `sf` folded to 1 (and the input token folded to 0),
        # so each phase's dead arms — every `if sf:` flush branch, and
        # any while that only spins during the flush — vanish from the
        # other phase's code entirely.
        tok_cycle, tok_straight = self._render_cycle(0)
        fin_cycle, fin_straight = self._render_cycle(1)
        if not (tok_straight and fin_straight):
            lines.append("    _vcb = max_vc + 1 if max_vc > 0 else 2")
        lines.append("    try:")
        lines.append("        for token in tokens:")
        lines.append("            " + validate)
        lines.append(f"                raise _SimError({token_error})")
        lines.append("            emits = 0")
        self._cycle_at(lines, tok_cycle, tok_straight, 3)
        lines.append(
            "            vclist.append(1)" if tok_straight
            else "            vclist.append(vc)"
        )
        lines.append("            emlist.append(emits)")
        lines.append("        emits = 0")
        self._cycle_at(lines, fin_cycle, fin_straight, 2)
        lines.append(
            "        vclist.append(1)" if fin_straight
            else "        vclist.append(vc)"
        )
        lines.append("        emlist.append(emits)")
        lines.append("    finally:")
        self._state_repack(lines, 2)
        return "\n".join(lines) + "\n"


def _state_shape_ok(program):
    """Power-of-two element counts make every truncated address in range,
    so all expression nodes are total — the purity gate for hoisting."""
    for vreg in program.vregs:
        if vreg.elements != (1 << vreg.index_width):
            return False
    for bram in program.brams:
        if bram.elements != (1 << bram.addr_width):
            return False
    return True


def compile_program(program, certificate=None):
    """Lower ``program`` to a :class:`CompiledUnit`.

    With a ``certificate`` (a clean, covering
    :class:`~repro.lint.certificate.RestrictionCertificate`), the
    lowering takes the *certified specialization* path: the certificate's
    interval facts delete truncation masks and address guards from the
    generated source. Specialization **refuses** a certificate that is
    rejected, carries no facts, or does not cover ``program`` (stale or
    mismatched fingerprint) — a hard error, never a silent fallback,
    because a caller passing a certificate is asserting it should apply.

    Raises :class:`FleetSimulationError` when the program can't take the
    fast path (non-power-of-two state element, or an AST node the
    lowering doesn't know). Use :func:`try_compile` /
    :func:`try_specialize` for the optional variants.
    """
    if certificate is not None:
        if not certificate.ok:
            raise FleetSimulationError(
                f"program {program.name!r}: refusing specialization — "
                "certificate is rejected"
            )
        if not certificate.covers(program):
            raise FleetSimulationError(
                f"program {program.name!r}: refusing specialization — "
                "certificate fingerprint does not match (stale or "
                "mismatched certificate)"
            )
        if certificate.facts is None:
            raise FleetSimulationError(
                f"program {program.name!r}: refusing specialization — "
                "certificate carries no specialization facts"
            )
    if not _state_shape_ok(program):
        raise FleetSimulationError(
            f"program {program.name!r} is not compilable: every BRAM and "
            "vector register needs a power-of-two element count"
        )
    started = time.perf_counter() if _tm_enabled() else None
    facts = None if certificate is None else certificate.facts
    try:
        codegen = _Codegen(program, facts=facts)
        source = codegen.generate()
    except _Unsupported as exc:
        raise FleetSimulationError(
            f"program {program.name!r} is not compilable: "
            f"unsupported node {exc.args[0]!r}"
        ) from None
    namespace = {
        "_NW": _NW,
        "_SimError": FleetSimulationError,
        "_LoopError": FleetLoopLimitError,
    }
    tag = "specialized" if facts is not None else "compiled"
    code = compile(source, f"<fleet-{tag}:{program.name}>", "exec")
    exec(code, namespace)
    if started is not None:
        _COMPILES.inc()
        _COMPILE_SECONDS.observe(time.perf_counter() - started)
        if facts is not None:
            for kind, count in codegen.elisions.items():
                if count:
                    _SPECIALIZED_ELISIONS.inc(count, kind=kind)
    return CompiledUnit(
        program, namespace["run_token"], namespace["run_stream"], source,
        specialized=facts is not None,
        elisions=dict(codegen.elisions) if facts is not None else None,
    )


def try_compile(program):
    """:func:`compile_program` (guarded codegen), returning ``None`` when
    unsupported.

    The result (including failure) is cached on the program object —
    programs are immutable once built.
    """
    cached = getattr(program, "_fleet_compiled", False)
    if cached is not False:
        return cached
    try:
        unit = compile_program(program)
    except FleetSimulationError:
        unit = None
    program._fleet_compiled = unit
    return unit


def try_specialize(program, certificate=None):
    """The certified-specialized :class:`CompiledUnit` for ``program``,
    or ``None`` when it can't have one (uncertified, unsupported by the
    compiled lowering, or a supplied certificate that does not apply).

    With ``certificate=None`` the (fingerprint-memoized) certificate is
    fetched via :func:`repro.lint.certificate.certificate_for`. The
    result (including failure) is cached on the program object, separate
    from the guarded unit cache.
    """
    from ..lint.certificate import certificate_for

    if certificate is None:
        cached = getattr(program, "_fleet_specialized", False)
        if cached is not False:
            return cached
        certificate = certificate_for(program)
        unit = None
        if certificate.ok and certificate.facts is not None \
                and certificate.covers(program):
            try:
                unit = compile_program(program, certificate=certificate)
            except FleetSimulationError:
                unit = None
        _SPECIALIZATIONS.inc(
            result="specialized" if unit is not None else "guarded"
        )
        program._fleet_specialized = unit
        return unit
    # Explicit certificate: validate *this* certificate (it may be stale
    # or mismatched — refusal, not fallback). Once it's shown to apply,
    # the shared cache is safe: facts derive deterministically from the
    # program, so any applicable certificate specializes identically.
    if not (certificate.ok and certificate.facts is not None
            and certificate.covers(program)):
        _SPECIALIZATIONS.inc(result="refused")
        return None
    cached = getattr(program, "_fleet_specialized", False)
    if cached is not False and cached is not None:
        return cached
    try:
        unit = compile_program(program, certificate=certificate)
    except FleetSimulationError:
        unit = None
    _SPECIALIZATIONS.inc(
        result="specialized" if unit is not None else "guarded"
    )
    program._fleet_specialized = unit
    return unit


# ---------------------------------------------------------------------------
# Restriction-elision proof
# ---------------------------------------------------------------------------


def _checks_elidable(program):
    """Can the compiled engine (which performs no dynamic restriction
    checks) stand in for the checking interpreter on this program?

    Delegates to the lint layer's
    :class:`~repro.lint.certificate.RestrictionCertificate`: the prover's
    exclusivity proof, the vector-register exclusivity argument, and the
    absence of error-severity lint findings (definite out-of-bounds
    addresses, dependent reads) — the same condition, now shared with
    :class:`~repro.interp.simulator.UnitSimulator`'s ``certificate``
    parameter and the ``python -m repro.lint`` CLI."""
    from ..lint.certificate import certificate_for

    certificate = certificate_for(program)
    elidable = certificate.ok and certificate.covers(program)
    _CHECK_ELISIONS.inc(result="elided" if elidable else "kept")
    return elidable


#: Engines selectable through the ``FLEET_ENGINE`` environment variable.
_ENGINE_CHOICES = (
    "auto", "interp", "compiled", "compiled-certified", "batch", "cc",
)


def env_engine():
    """The validated ``FLEET_ENGINE`` environment setting (``"auto"``
    when unset or empty).

    A typo like ``FLEET_ENGINE=compield`` would otherwise silently fall
    back to the default engine — precisely when the user is trying to
    pin one — so unknown values raise
    :class:`~repro.lang.errors.FleetConfigError` at the first
    engine-selection point instead (via the shared
    :func:`repro.envcfg.env_choice` validator).
    """
    return env_choice("FLEET_ENGINE", _ENGINE_CHOICES, "auto")


def fast_engine_for(program, check_restrictions=True):
    """The :class:`CompiledUnit` to use for ``program``, or ``None`` when
    the interpreter must run (unsupported program, restriction checks
    not provably elidable, or ``FLEET_ENGINE=interp`` in the
    environment). ``FLEET_ENGINE=batch`` selects the batch engine only
    for whole-batch entry points; per-stream callers keep the compiled
    engine, which the batch engine itself uses as its incremental
    fallback.

    A certified program gets the **specialized** unit (certificate facts
    consumed at codegen time, guards deleted); an uncertified one that
    only passes because ``check_restrictions=False`` keeps the guarded
    lowering. ``FLEET_ENGINE=compiled`` forces the guarded lowering even
    for certified programs (the debugging escape hatch).
    """
    forced = env_engine()
    if forced == "interp":
        return None
    unit = try_compile(program)
    if unit is None:
        return None
    if check_restrictions:
        if not _checks_elidable(program):
            return None
        if forced != "compiled":
            specialized = try_specialize(program)
            if specialized is not None:
                return specialized
    return unit


# ---------------------------------------------------------------------------
# Simulator-compatible driver
# ---------------------------------------------------------------------------


class CompiledSimulator:
    """Drop-in :class:`~repro.interp.simulator.UnitSimulator` replacement
    driving a :class:`CompiledUnit` (same incremental API, outputs, trace,
    and peek hooks)."""

    def __init__(self, program, *, check_restrictions=True,
                 max_vcycles_per_token=1_000_000, unit=None):
        self.program = program
        self.check_restrictions = check_restrictions
        self.max_vcycles_per_token = max_vcycles_per_token
        self._unit = unit if unit is not None else compile_program(program)
        self.reset()

    def reset(self):
        self._reg_values = [r.init for r in self.program.regs]
        self._vregs = [[v.init] * v.elements for v in self.program.vregs]
        self._brams = [[0] * b.elements for b in self.program.brams]
        self._outputs = []
        self._finished = False
        self.trace = StreamTrace()

    @property
    def source(self):
        """The generated Python source (debugging hook)."""
        return self._unit.source

    def run(self, tokens):
        tokens = list(tokens)
        if self._finished:
            raise FleetSimulationError(
                "stream already finished; reset() to reuse the simulator"
            )
        vclist, emlist = [], []
        n = len(tokens)
        try:
            self._unit.run_stream(
                tokens, self._reg_values, self._vregs, self._brams,
                self._outputs, self.max_vcycles_per_token, vclist, emlist,
            )
        finally:
            for i in range(len(vclist)):
                self.trace.record_token(vclist[i], emlist[i], i == n)
            if len(vclist) == n + 1:
                self._finished = True
        return self.outputs

    def process_token(self, token):
        if self._finished:
            raise FleetSimulationError(
                "stream already finished; reset() to reuse the simulator"
            )
        if not isinstance(token, int) or not (
            0 <= token <= mask(self.program.input_width)
        ):
            raise FleetSimulationError(
                f"token {token!r} does not fit the declared "
                f"{self.program.input_width}-bit input width"
            )
        before = len(self._outputs)
        vc, emits = self._unit.run_token(
            token, 0, self._reg_values, self._vregs, self._brams,
            self._outputs, self.max_vcycles_per_token,
        )
        self.trace.record_token(vc, emits, False)
        return self._outputs[before:]

    def finish_stream(self):
        if self._finished:
            raise FleetSimulationError("stream already finished")
        before = len(self._outputs)
        vc, emits = self._unit.run_token(
            0, 1, self._reg_values, self._vregs, self._brams,
            self._outputs, self.max_vcycles_per_token,
        )
        self.trace.record_token(vc, emits, True)
        self._finished = True
        return self._outputs[before:]

    @property
    def outputs(self):
        return list(self._outputs)

    def peek_reg(self, name):
        for reg, value in zip(self.program.regs, self._reg_values):
            if reg.name == name:
                return value
        raise FleetSimulationError(f"no register named {name!r}")

    def peek_bram(self, name):
        for bram, data in zip(self.program.brams, self._brams):
            if bram.name == name:
                return list(data)
        raise FleetSimulationError(f"no BRAM named {name!r}")


def make_simulator(program, *, check_restrictions=True,
                   max_vcycles_per_token=1_000_000, engine="auto",
                   certificate=None):
    """Build the best available simulator for ``program``.

    ``engine`` selects:

    * ``"auto"`` — the best provably-equivalent engine: the certified
      specialized unit when the program certifies, else the guarded
      compiled unit, else the interpreter. ``FLEET_ENGINE=batch`` /
      ``FLEET_ENGINE=cc`` upgrade supported programs to the batch / the
      native C engine (each falls back gracefully when unsupported).
    * ``"interp"`` — force the authoritative oracle.
    * ``"compiled"`` — force the *guarded* compiled lowering (raises
      when unsupported).
    * ``"compiled-certified"`` — force the certified specialization
      (raises when the program is unsupported or not certified, or when
      a passed ``certificate`` does not apply).
    * ``"batch"`` — force the SIMD batch engine (raises when
      unsupported).
    * ``"cc"`` — force the native C engine (raises when the program is
      unsupported, not certified, or no C toolchain is available).

    ``certificate`` is forwarded to the interpreter (a clean covering
    :class:`~repro.lint.certificate.RestrictionCertificate` disables the
    dynamic restriction checks) and to the specializing engines, which
    refuse it when stale.
    """
    from .simulator import UnitSimulator

    if engine == "interp":
        _ENGINE_SELECTED.inc(engine="interp")
        return UnitSimulator(
            program, check_restrictions=check_restrictions,
            max_vcycles_per_token=max_vcycles_per_token, engine="interp",
            certificate=certificate,
        )
    if engine == "compiled":
        _ENGINE_SELECTED.inc(engine="compiled")
        return CompiledSimulator(
            program, check_restrictions=check_restrictions,
            max_vcycles_per_token=max_vcycles_per_token,
        )
    if engine == "compiled-certified":
        unit = try_specialize(program, certificate=certificate)
        if unit is None:
            raise FleetSimulationError(
                f"program {program.name!r} cannot take the certified "
                "specialized engine: not certified (or the supplied "
                "certificate does not apply), or unsupported by the "
                "compiled lowering"
            )
        _ENGINE_SELECTED.inc(engine="compiled-certified")
        return CompiledSimulator(
            program, check_restrictions=check_restrictions,
            max_vcycles_per_token=max_vcycles_per_token, unit=unit,
        )
    if engine == "batch":
        from .batch import BatchStreamSimulator

        _ENGINE_SELECTED.inc(engine="batch")
        return BatchStreamSimulator(
            program, check_restrictions=check_restrictions,
            max_vcycles_per_token=max_vcycles_per_token,
        )
    if engine == "cc":
        from .cc import CcSimulator

        _ENGINE_SELECTED.inc(engine="cc")
        return CcSimulator(
            program, check_restrictions=check_restrictions,
            max_vcycles_per_token=max_vcycles_per_token,
            certificate=certificate,
        )
    if engine != "auto":
        raise FleetSimulationError(f"unknown engine {engine!r}")
    forced = env_engine()
    if forced == "batch":
        from .batch import BatchStreamSimulator, batch_engine_for

        batch_unit = batch_engine_for(program)
        if batch_unit is not None:
            _ENGINE_SELECTED.inc(engine="batch")
            return BatchStreamSimulator(
                program, check_restrictions=check_restrictions,
                max_vcycles_per_token=max_vcycles_per_token,
                unit=batch_unit,
            )
    elif forced == "cc":
        from .cc import CcSimulator, cc_engine_for

        cc_unit = cc_engine_for(program)
        if cc_unit is not None:
            _ENGINE_SELECTED.inc(engine="cc")
            return CcSimulator(
                program, check_restrictions=check_restrictions,
                max_vcycles_per_token=max_vcycles_per_token, unit=cc_unit,
            )
    if certificate is not None and certificate.ok \
            and certificate.covers(program):
        check_restrictions = False
        if forced not in ("interp", "compiled"):
            unit = try_specialize(program, certificate=certificate)
            if unit is not None:
                _ENGINE_SELECTED.inc(engine="compiled-certified")
                return CompiledSimulator(
                    program, check_restrictions=check_restrictions,
                    max_vcycles_per_token=max_vcycles_per_token, unit=unit,
                )
    unit = fast_engine_for(program, check_restrictions)
    if unit is not None:
        selected = "compiled-certified" if unit.specialized else "compiled"
        _ENGINE_SELECTED.inc(engine=selected)
        return CompiledSimulator(
            program, check_restrictions=check_restrictions,
            max_vcycles_per_token=max_vcycles_per_token, unit=unit,
        )
    _ENGINE_SELECTED.inc(engine="interp")
    return UnitSimulator(
        program, check_restrictions=check_restrictions,
        max_vcycles_per_token=max_vcycles_per_token, engine="interp",
        certificate=certificate,
    )


__all__ = [
    "CompiledSimulator",
    "CompiledUnit",
    "compile_program",
    "env_engine",
    "fast_engine_for",
    "make_simulator",
    "try_compile",
    "try_specialize",
]
